//! Offline vendored subset of the `criterion` 0.5 API.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the slice of criterion its benches use:
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`],
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! Instead of criterion's full statistical machinery, each benchmark is
//! timed with a short calibrated loop and reported as a single mean
//! time per iteration. That keeps `cargo bench` useful for coarse
//! comparisons while remaining dependency-free; swap in the real
//! criterion when the registry is reachable for publication-grade
//! numbers.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimising away a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark: a function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Runs the measured closure (stub of `criterion::Bencher`).
pub struct Bencher {
    mean_ns: f64,
}

impl Bencher {
    /// Times `routine`, storing a mean nanoseconds-per-iteration figure.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One warm-up call doubles as calibration.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        // Aim for ~20ms of total measurement, 1..=1000 iterations.
        let iters = (Duration::from_millis(20).as_nanos() / once.as_nanos()).clamp(1, 1000) as u32;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / f64::from(iters);
    }
}

fn human(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn run_one(label: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher { mean_ns: 0.0 };
    f(&mut b);
    println!("{label:<60} {:>12}/iter", human(b.mean_ns));
}

/// Top-level benchmark driver (stub of `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(&id.into().id, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }
}

/// A named group of benchmarks (stub of `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub ignores sample counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id.into().id), f);
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.into().id), |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups (ignores harness CLI args).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_surfaces_run_without_panicking() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("grp");
        g.sample_size(10);
        g.bench_function(BenchmarkId::new("f", 3), |b| b.iter(|| black_box(2 * 2)));
        g.bench_with_input(BenchmarkId::new("g", "x"), &5u32, |b, &n| {
            b.iter(|| black_box(n + 1))
        });
        g.finish();
    }

    #[test]
    fn human_formats_scale() {
        assert!(human(12.0).ends_with("ns"));
        assert!(human(12_500.0).ends_with("µs"));
        assert!(human(12_500_000.0).ends_with("ms"));
        assert!(human(2.5e9).ends_with('s'));
    }
}
