//! Offline vendored subset of the `proptest` 1.x API.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the slice of proptest its property suites use:
//! the [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`/
//! `prop_assume!`, range/tuple/vec/select strategies, `prop_map` /
//! `prop_flat_map`, and [`test_runner::ProptestConfig`].
//!
//! Differences from upstream, by design:
//!
//! - **No shrinking.** A failing case reports the assertion message only.
//! - **Deterministic seeding.** Each property derives case RNGs from a
//!   hash of its module path and name plus the case and attempt index,
//!   so failures always reproduce and distinct properties explore
//!   distinct input streams.
//! - **Default case count is 64** (upstream: 256) to keep the tier-1
//!   test gate fast; raise per-block with
//!   `#![proptest_config(ProptestConfig::with_cases(n))]`.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;

/// Strategy trait and combinators.
pub mod strategy {
    use super::StdRng;

    /// A generator of test-case values (stub of `proptest::strategy::Strategy`).
    ///
    /// Unlike upstream there is no value tree; `Value` is the produced
    /// type directly and sampling never shrinks.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps produced values through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { source: self, f }
        }

        /// Builds a dependent strategy from each produced value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { source: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, T, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            (self.f)(self.source.sample(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            (self.f)(self.source.sample(rng)).sample(rng)
        }
    }

    macro_rules! range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }
        )*};
    }

    range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! tuple_strategies {
        ($(($($s:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

/// Collection strategies (stub of `proptest::collection`).
pub mod collection {
    use super::strategy::Strategy;
    use super::StdRng;

    /// Length specification for [`vec()`]: a fixed size or a range.
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<T>` with element strategy `element` and a length
    /// drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rand::Rng::gen_range(rng, self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Sampling strategies (stub of `proptest::sample`).
pub mod sample {
    use super::strategy::Strategy;
    use super::StdRng;

    /// Strategy drawing one element of `options` uniformly.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select { options }
    }

    /// Strategy returned by [`select`].
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            let i = rand::Rng::gen_range(rng, 0..self.options.len());
            self.options[i].clone()
        }
    }
}

/// Test-runner configuration and internals used by the macros.
pub mod test_runner {
    /// Per-block configuration (stub of `proptest::test_runner::Config`).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; the stub trades a little coverage
            // for a faster tier-1 gate.
            ProptestConfig { cases: 64 }
        }
    }

    /// Marker returned by `prop_assume!` when a case is rejected.
    #[derive(Clone, Copy, Debug)]
    pub struct Reject;

    /// Max resampling attempts per case before a property aborts because
    /// `prop_assume!` rejects everything (upstream: "too many global
    /// rejects").
    pub const MAX_REJECTS_PER_CASE: u32 = 256;

    /// Derives the deterministic RNG for one sampling attempt of one case
    /// of the property named `property` (pass `module_path!()` +
    /// test name so distinct properties explore distinct input streams).
    pub fn case_rng(property: &str, case: u32, attempt: u32) -> rand::rngs::StdRng {
        use rand::SeedableRng;
        // FNV-1a over the property path keeps streams stable per test but
        // different across tests.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in property.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
        rand::rngs::StdRng::seed_from_u64(
            h ^ u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ u64::from(attempt).wrapping_mul(0xD1F2_0005),
        )
    }
}

/// Everything a property-test module needs (stub of `proptest::prelude`).
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespaced access to strategy modules, as `prop::collection::vec`
    /// and friends.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let property = concat!(module_path!(), "::", stringify!($name));
            for case in 0..config.cases {
                // An Err outcome is a case rejected by prop_assume!:
                // resample (bounded) rather than count it as tested. The
                // closure exists so prop_assume! can early-return without
                // ending the test.
                let mut attempt = 0u32;
                loop {
                    let mut rng = $crate::test_runner::case_rng(property, case, attempt);
                    $(
                        let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);
                    )+
                    #[allow(clippy::redundant_closure_call)]
                    let outcome = (|| -> ::core::result::Result<(), $crate::test_runner::Reject> {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    if outcome.is_ok() {
                        break;
                    }
                    attempt += 1;
                    assert!(
                        attempt < $crate::test_runner::MAX_REJECTS_PER_CASE,
                        "property {property}: prop_assume! rejected {attempt} \
                         samples in a row; strategy and assumption are \
                         incompatible"
                    );
                }
            }
        }
    )*};
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skips the current case when `cond` does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, f in 0.25f64..=0.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..=0.5).contains(&f));
        }

        #[test]
        fn tuples_and_vecs_compose(
            (a, b) in (0i32..5, 5i32..10),
            xs in prop::collection::vec(0u8..4, 2..6),
        ) {
            prop_assert!(a < b);
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            prop_assert!(xs.iter().all(|&x| x < 4));
        }

        #[test]
        fn select_picks_an_option(v in prop::sample::select(vec![2, 4, 8])) {
            prop_assert!(v == 2 || v == 4 || v == 8);
        }

        #[test]
        fn map_and_flat_map(
            n in (1usize..5).prop_flat_map(|n| (0..n).prop_map(move |i| (n, i)))
        ) {
            let (n, i) = n;
            prop_assert!(i < n);
        }

        #[test]
        fn assume_skips(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_is_honored(_x in 0u32..1000) {
            // Runs 7 cases; nothing to assert beyond not panicking.
        }
    }

    #[test]
    fn cases_are_deterministic_but_differ_across_properties() {
        use crate::strategy::Strategy;
        let s = (0u64..1_000_000, 0u64..1_000_000);
        let sample_all = |name: &str| -> Vec<_> {
            (0..5)
                .map(|c| s.sample(&mut crate::test_runner::case_rng(name, c, 0)))
                .collect()
        };
        assert_eq!(sample_all("mod::prop_a"), sample_all("mod::prop_a"));
        assert_ne!(sample_all("mod::prop_a"), sample_all("mod::prop_b"));
    }

    #[test]
    fn impossible_assumption_aborts_instead_of_passing_vacuously() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(1))]
                fn never_accepts(x in 0u32..10) {
                    prop_assume!(x > 100);
                }
            }
            never_accepts();
        });
        let err = *result
            .expect_err("must abort")
            .downcast::<String>()
            .unwrap();
        assert!(err.contains("rejected"), "panic message: {err}");
    }
}
