//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the small slice of `rand` it actually uses:
//!
//! - [`RngCore`], [`Rng`] (with `gen`, `gen_range`, `gen_bool`) and
//!   [`SeedableRng`] (with `seed_from_u64` / `from_seed`);
//! - [`rngs::StdRng`], a deterministic xoshiro256++ generator seeded via
//!   SplitMix64 (not the upstream ChaCha12, but the same contract:
//!   portable, reproducible streams for a given seed);
//! - [`rngs::mock::StepRng`] for tests;
//! - [`seq::SliceRandom`] with `choose` and `shuffle`.
//!
//! Algorithms follow the published xoshiro256++/SplitMix64 reference
//! implementations (public domain, Blackman & Vigna). Float generation in
//! `[0, 1)` uses the standard 53-bit mantissa construction, and
//! `gen_range` uses rejection-free scaling adequate for simulation
//! workloads (Lemire-style widening multiply for integers).

#![forbid(unsafe_code)]

/// The core trait every generator implements: a source of random words.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from a generator via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (start as i128 + hi) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample(rng);
                let v = self.start + u * (self.end - self.start);
                // u < 1, but start + u*span can still round up to end for
                // tiny spans; keep the half-open contract.
                if v < self.end {
                    v
                } else {
                    self.end.next_down().max(self.start)
                }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let u = <$t as Standard>::sample(rng);
                start + u * (end - start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range [0,1]");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from a seed (mirrors
/// `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic standard generator (xoshiro256++ in this stub).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    /// Mock generators for tests.
    pub mod mock {
        use super::super::RngCore;

        /// Counts up from `initial` by `increment` on every `next_u64`.
        #[derive(Clone, Debug)]
        pub struct StepRng {
            v: u64,
            increment: u64,
        }

        impl StepRng {
            /// Creates a generator yielding `initial`, `initial + increment`, ...
            pub fn new(initial: u64, increment: u64) -> Self {
                StepRng {
                    v: initial,
                    increment,
                }
            }
        }

        impl RngCore for StepRng {
            fn next_u32(&mut self) -> u32 {
                self.next_u64() as u32
            }

            fn next_u64(&mut self) -> u64 {
                let out = self.v;
                self.v = self.v.wrapping_add(self.increment);
                out
            }
        }
    }
}

/// Sequence-related helpers (mirrors `rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension methods on slices (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Returns one uniformly chosen element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::mock::StepRng;
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn std_rng_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn gen_range_covers_and_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let v: i32 = rng.gen_range(-3..4);
            assert!((-3..4).contains(&v));
            seen[(v + 3) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values reachable");
        for _ in 0..1_000 {
            let f: f64 = rng.gen_range(0.25..=0.75);
            assert!((0.25..=0.75).contains(&f));
        }
    }

    #[test]
    fn float_gen_range_is_exclusive_even_for_tiny_spans() {
        let mut rng = StdRng::seed_from_u64(6);
        let (lo, hi) = (1.0f64, 1.0 + 2.0 * f64::EPSILON);
        for _ in 0..10_000 {
            let v = rng.gen_range(lo..hi);
            assert!(v >= lo && v < hi, "v={v}");
        }
    }

    #[test]
    fn uniform_f64_is_half_open() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn shuffle_permutes_and_choose_selects() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn step_rng_steps() {
        let mut r = StepRng::new(0, 1);
        assert_eq!(r.next_u64(), 0);
        assert_eq!(r.next_u64(), 1);
        assert_eq!(r.next_u64(), 2);
    }
}
