//! Offline stub of `serde`.
//!
//! Re-exports no-op `Serialize`/`Deserialize` derives from the vendored
//! `serde_derive` stub. The workspace derives the traits for forward
//! compatibility but performs no serialization yet; swap these vendored
//! stubs for the real crates.io `serde` when it does.

#![forbid(unsafe_code)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
