//! Offline no-op stub of `serde_derive`.
//!
//! The workspace only ever *derives* `Serialize`/`Deserialize` (no code
//! serializes anything yet), so these derives intentionally expand to
//! nothing. When real serialization lands, replace the `vendor/serde*`
//! stubs with the crates.io crates.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
