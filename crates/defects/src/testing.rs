//! Droplet-trace testing and fault diagnosis.
//!
//! The paper relies on a previously published "unified test methodology"
//! (its refs 10 and 11): stimuli droplets containing a conducting fluid
//! (e.g. KCl solution) are dispensed from a droplet source and transported
//! through the array, traversing the cells, to detect the faulty ones. A
//! catastrophic fault stops the droplet; a parametric fault shows up as a
//! performance deviation and is detectable only when the deviation exceeds
//! the measurement threshold.
//!
//! This module simulates that flow:
//!
//! 1. [`covering_walk`] plans a traversal visiting every cell of a region
//!    (a snake over lattice rows, with BFS bridges where rows are ragged).
//! 2. [`run_test_droplet`] walks it over a given [`DefectMap`] and reports
//!    where the droplet got stuck, if anywhere.
//! 3. [`diagnose`] iterates test droplets — each run localises the next
//!    blocking fault, then re-plans around all known faults — until a clean
//!    pass, producing a [`DiagnosisReport`] with the detected fault map,
//!    unreachable cells, and test cost (droplets and electrode actuations).

use crate::fault::DefectCause;
use crate::DefectMap;
use dmfb_grid::{HexCoord, Region};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Plans a walk that visits every cell of `region`, starting from its
/// smallest coordinate. Consecutive walk cells are always adjacent; cells
/// may be revisited when bridging between rows or around concavities.
///
/// Returns `None` if the region is empty or not connected (a disconnected
/// region cannot be traversed by one droplet).
///
/// # Example
///
/// ```
/// use dmfb_defects::testing::covering_walk;
/// use dmfb_grid::Region;
///
/// let region = Region::parallelogram(4, 3);
/// let walk = covering_walk(&region).unwrap();
/// assert!(walk.len() >= region.len());
/// ```
#[must_use]
pub fn covering_walk(region: &Region) -> Option<Vec<HexCoord>> {
    covering_walk_avoiding(region, &BTreeSet::new())
}

/// Like [`covering_walk`], but never enters `avoid` cells and only visits
/// the cells reachable around them. Used by [`diagnose`] to re-plan after
/// each discovered fault. Returns `None` if no start cell exists.
#[must_use]
pub fn covering_walk_avoiding(
    region: &Region,
    avoid: &BTreeSet<HexCoord>,
) -> Option<Vec<HexCoord>> {
    let start = region.iter().find(|c| !avoid.contains(c))?;
    // Targets: all allowed cells, visited in snake order (rows of constant
    // r, alternating q direction) for short bridges.
    let mut rows: BTreeMap<i32, Vec<HexCoord>> = BTreeMap::new();
    for c in region.iter().filter(|c| !avoid.contains(c)) {
        rows.entry(c.r).or_default().push(c);
    }
    let mut targets: Vec<HexCoord> = Vec::new();
    for (i, (_, mut row)) in rows.into_iter().enumerate() {
        row.sort();
        if i % 2 == 1 {
            row.reverse();
        }
        targets.extend(row);
    }

    let mut walk = vec![start];
    let mut current = start;
    let mut visited: BTreeSet<HexCoord> = BTreeSet::new();
    visited.insert(start);
    for t in targets {
        // `current` is always in `visited`, so this also skips t == current.
        if visited.contains(&t) {
            continue;
        }
        match bfs_path(region, avoid, current, t) {
            Some(path) => {
                // path[0] == current; append the rest.
                for c in path.into_iter().skip(1) {
                    visited.insert(c);
                    walk.push(c);
                }
                current = t;
            }
            None => {
                // Unreachable around the avoided cells; skip (reported by
                // the caller as unreachable).
            }
        }
    }
    Some(walk)
}

/// Shortest in-region path between two cells avoiding `avoid`, inclusive of
/// both endpoints.
fn bfs_path(
    region: &Region,
    avoid: &BTreeSet<HexCoord>,
    from: HexCoord,
    to: HexCoord,
) -> Option<Vec<HexCoord>> {
    if from == to {
        return Some(vec![from]);
    }
    let mut prev: BTreeMap<HexCoord, HexCoord> = BTreeMap::new();
    let mut queue = VecDeque::new();
    queue.push_back(from);
    prev.insert(from, from);
    while let Some(c) = queue.pop_front() {
        for n in region.neighbors_in(c) {
            if avoid.contains(&n) || prev.contains_key(&n) {
                continue;
            }
            prev.insert(n, c);
            if n == to {
                let mut path = vec![to];
                let mut cur = to;
                while cur != from {
                    cur = prev[&cur];
                    path.push(cur);
                }
                path.reverse();
                return Some(path);
            }
            queue.push_back(n);
        }
    }
    None
}

/// The outcome of routing one test droplet along a walk.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TestOutcome {
    /// The droplet traversed the whole walk and reached the sink.
    Passed {
        /// Number of electrode actuations (moves) performed.
        moves: usize,
    },
    /// The droplet failed to move onto `cell` at walk index `step`
    /// (a catastrophic fault blocks actuation onto that electrode).
    Stuck {
        /// The cell the droplet could not enter.
        cell: HexCoord,
        /// Index into the walk at which the failure occurred.
        step: usize,
    },
}

/// Routes a test droplet along `walk` over the true defect state.
///
/// The droplet cannot *enter* a catastrophically faulty cell: breakdown
/// electrolyses the droplet, an open never actuates, and a short means the
/// droplet cannot overlap the next electrode. If the walk's first cell is
/// itself faulty, dispensing fails at step 0.
///
/// # Panics
///
/// Panics if consecutive walk cells are not adjacent (an invalid plan).
#[must_use]
pub fn run_test_droplet(walk: &[HexCoord], defects: &DefectMap) -> TestOutcome {
    let mut moves = 0;
    for (i, &cell) in walk.iter().enumerate() {
        if i > 0 {
            assert!(
                walk[i - 1].is_adjacent(cell),
                "walk cells {} and {} are not adjacent",
                walk[i - 1],
                cell
            );
        }
        let blocked = matches!(defects.cause(cell), Some(DefectCause::Catastrophic(_)));
        if blocked {
            return TestOutcome::Stuck { cell, step: i };
        }
        if i > 0 {
            moves += 1;
        }
    }
    TestOutcome::Passed { moves }
}

/// Result of the iterative diagnosis procedure.
#[derive(Clone, Debug, PartialEq)]
pub struct DiagnosisReport {
    /// Faults localised by the procedure.
    pub detected: DefectMap,
    /// Cells that could not be reached by any test droplet once the
    /// detected faults were avoided (they cannot be certified fault-free).
    pub unreachable: Vec<HexCoord>,
    /// Number of test droplets dispensed.
    pub droplets_used: usize,
    /// Total electrode actuations across all droplets.
    pub total_moves: usize,
}

impl DiagnosisReport {
    /// Whether diagnosis found every catastrophic fault in `truth` and
    /// reported no false positives among reachable cells.
    #[must_use]
    pub fn catches_all_catastrophic(&self, truth: &DefectMap) -> bool {
        truth
            .iter()
            .filter(|(_, cause)| matches!(cause, DefectCause::Catastrophic(_)))
            .all(|(c, _)| self.detected.is_faulty(c) || self.unreachable.contains(&c))
    }
}

/// Parameters of the measurement used to catch parametric faults.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MeasurementModel {
    /// Minimum |relative deviation| observable during a traversal (droplet
    /// velocity / capacitance measurement resolution).
    pub detect_threshold: f64,
}

impl Default for MeasurementModel {
    fn default() -> Self {
        MeasurementModel {
            detect_threshold: 0.10,
        }
    }
}

/// Runs the full iterative test-and-diagnose procedure.
///
/// Each iteration plans a covering walk around the already-known faults and
/// dispenses a fresh test droplet. When the droplet sticks, the blocking
/// cell is recorded and the walk is re-planned; when it passes, every
/// traversed cell with an out-of-threshold parametric deviation is also
/// recorded (the droplet *can* cross such cells, but the measured transport
/// characteristics reveal them). Terminates when a droplet completes its
/// walk or no cells remain testable.
#[must_use]
pub fn diagnose(
    region: &Region,
    truth: &DefectMap,
    measurement: MeasurementModel,
) -> DiagnosisReport {
    let mut known: BTreeSet<HexCoord> = BTreeSet::new();
    let mut detected = DefectMap::new();
    let mut droplets = 0usize;
    let mut total_moves = 0usize;

    // Loop ends when every cell is known faulty (no walk exists).
    while let Some(walk) = covering_walk_avoiding(region, &known) {
        droplets += 1;
        match run_test_droplet(&walk, truth) {
            TestOutcome::Stuck { cell, step } => {
                total_moves += step.saturating_sub(1);
                known.insert(cell);
                let cause = *truth.cause(cell).expect("stuck on a faulty cell");
                detected.mark(cell, cause);
            }
            TestOutcome::Passed { moves } => {
                total_moves += moves;
                // Parametric screening along the successful traversal.
                for &cell in &walk {
                    if let Some(DefectCause::Parametric(param, dev)) = truth.cause(cell) {
                        if dev.abs() > measurement.detect_threshold {
                            detected.mark(cell, DefectCause::Parametric(*param, *dev));
                        }
                    }
                }
                break;
            }
        }
        if known.len() >= region.len() {
            break;
        }
    }

    // Reachability audit around the detected catastrophic faults.
    let covered: BTreeSet<HexCoord> = covering_walk_avoiding(region, &known)
        .map(|walk| walk.into_iter().collect())
        .unwrap_or_default();
    let unreachable: Vec<HexCoord> = region
        .iter()
        .filter(|c| !known.contains(c) && !covered.contains(c))
        .collect();

    DiagnosisReport {
        detected,
        unreachable,
        droplets_used: droplets,
        total_moves,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{CatastrophicDefect, ParametricDefect};

    fn breakdown() -> DefectCause {
        DefectCause::Catastrophic(CatastrophicDefect::DielectricBreakdown)
    }

    #[test]
    fn covering_walk_visits_every_cell() {
        let region = Region::parallelogram(5, 4);
        let walk = covering_walk(&region).unwrap();
        let visited: BTreeSet<HexCoord> = walk.iter().copied().collect();
        assert_eq!(visited.len(), region.len());
        for w in walk.windows(2) {
            assert!(w[0].is_adjacent(w[1]));
        }
    }

    #[test]
    fn covering_walk_on_hexagon_region() {
        let region = Region::hexagon(HexCoord::ORIGIN, 3);
        let walk = covering_walk(&region).unwrap();
        let visited: BTreeSet<HexCoord> = walk.iter().copied().collect();
        assert_eq!(visited.len(), region.len());
    }

    #[test]
    fn empty_region_has_no_walk() {
        assert!(covering_walk(&Region::new()).is_none());
    }

    #[test]
    fn clean_chip_passes_one_droplet() {
        let region = Region::parallelogram(6, 6);
        let report = diagnose(&region, &DefectMap::new(), MeasurementModel::default());
        assert_eq!(report.droplets_used, 1);
        assert!(report.detected.is_fault_free());
        assert!(report.unreachable.is_empty());
        assert!(report.total_moves >= region.len() - 1);
    }

    #[test]
    fn droplet_sticks_on_catastrophic_cell() {
        let region = Region::parallelogram(4, 1);
        let walk = covering_walk(&region).unwrap();
        let mut truth = DefectMap::new();
        truth.mark(HexCoord::new(2, 0), breakdown());
        match run_test_droplet(&walk, &truth) {
            TestOutcome::Stuck { cell, step } => {
                assert_eq!(cell, HexCoord::new(2, 0));
                assert_eq!(step, 2);
            }
            other => panic!("expected stuck, got {other:?}"),
        }
    }

    #[test]
    fn diagnose_localises_all_catastrophic_faults() {
        let region = Region::parallelogram(8, 8);
        let mut truth = DefectMap::new();
        for c in [
            HexCoord::new(2, 3),
            HexCoord::new(5, 1),
            HexCoord::new(6, 6),
        ] {
            truth.mark(c, breakdown());
        }
        let report = diagnose(&region, &truth, MeasurementModel::default());
        assert!(report.catches_all_catastrophic(&truth));
        assert_eq!(report.detected.fault_count(), 3);
        // One droplet per fault plus the final clean pass.
        assert_eq!(report.droplets_used, 4);
        assert!(report.unreachable.is_empty());
    }

    #[test]
    fn parametric_detection_depends_on_threshold() {
        let region = Region::parallelogram(5, 5);
        let mut truth = DefectMap::new();
        truth.mark(
            HexCoord::new(2, 2),
            DefectCause::Parametric(ParametricDefect::PlateGap, 0.15),
        );
        // Threshold below the deviation: caught.
        let caught = diagnose(
            &region,
            &truth,
            MeasurementModel {
                detect_threshold: 0.10,
            },
        );
        assert_eq!(caught.detected.fault_count(), 1);
        // Threshold above the deviation: the soft fault escapes.
        let escaped = diagnose(
            &region,
            &truth,
            MeasurementModel {
                detect_threshold: 0.20,
            },
        );
        assert!(escaped.detected.is_fault_free());
        // Either way the droplet passes in one run.
        assert_eq!(caught.droplets_used, 1);
    }

    #[test]
    fn enclosed_cells_reported_unreachable() {
        // A radius-2 hexagon whose inner ring is entirely faulty: the
        // centre cannot be probed.
        let region = Region::hexagon(HexCoord::ORIGIN, 2);
        let mut truth = DefectMap::new();
        for c in HexCoord::ORIGIN.ring(1) {
            truth.mark(c, breakdown());
        }
        let report = diagnose(&region, &truth, MeasurementModel::default());
        assert!(report.catches_all_catastrophic(&truth));
        assert!(report.unreachable.contains(&HexCoord::ORIGIN));
    }

    #[test]
    fn fully_faulty_region_terminates() {
        let region = Region::parallelogram(3, 3);
        let mut truth = DefectMap::new();
        for c in region.iter() {
            truth.mark(c, breakdown());
        }
        let report = diagnose(&region, &truth, MeasurementModel::default());
        // First cell of every re-plan is faulty; all cells end up detected.
        assert_eq!(report.detected.fault_count(), 9);
    }

    #[test]
    #[should_panic(expected = "not adjacent")]
    fn invalid_walk_is_rejected() {
        let walk = vec![HexCoord::new(0, 0), HexCoord::new(5, 5)];
        let _ = run_test_droplet(&walk, &DefectMap::new());
    }
}
