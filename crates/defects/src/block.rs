//! Transposed Bernoulli defect sampling: 64 independent trials per word.
//!
//! The scalar injection path ([`crate::injection::Bernoulli`]) draws one
//! uniform per cell per trial. [`BlockSampler`] transposes that loop: it
//! runs up to 64 per-trial generators in lock-step (one *lane* per trial)
//! and emits, for each cell, a single `u64` **fault word** whose bit `L`
//! is the fault flag of lane `L` — the bit-sliced Bernoulli draw the
//! word-parallel classifier tiers consume directly.
//!
//! Two properties make the transposition safe to rely on:
//!
//! * **Byte identity.** Lane `L` seeded with `seeds[L]` replays exactly
//!   the stream of `StdRng::seed_from_u64(seeds[L])`, and
//!   [`fault_threshold`] turns the scalar `u >= p` float compare into an
//!   equivalent integer mantissa compare. A trial's verdict therefore
//!   never depends on which lane, block, or thread evaluated it — the
//!   caller keeps the scalar engine's `SeedSequence` trial→seed mapping
//!   and gets bit-identical results at any block width.
//! * **Stream hand-off.** [`BlockSampler::resume_lane`] reconstructs a
//!   scalar [`StdRng`] from a lane's mid-stream state, so stages that
//!   need scalar draws *after* the transposed cell sweep (e.g. the
//!   operational engine's wear-model injection) continue the exact
//!   stream the scalar engine would have used.
//!
//! # Example
//!
//! ```
//! use dmfb_defects::block::{fault_threshold, BlockSampler};
//! use rand::{rngs::StdRng, Rng, SeedableRng};
//!
//! let seeds = [11u64, 22, 33];
//! let mut sampler = BlockSampler::new(&seeds);
//! let t = fault_threshold(0.95);
//! let word = sampler.fault_word(t); // one cell, three trials
//! let mut scalar = StdRng::seed_from_u64(22);
//! let u: f64 = scalar.gen();
//! assert_eq!((word >> 1) & 1 == 1, u >= 0.95);
//! ```

use dmfb_graph::words::{lane_mask, mantissa_threshold, LaneRngs, LANES};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Integer mantissa threshold equivalent to the scalar fault test
/// `rng.gen::<f64>() >= p` for survival probability `p` — defect-model
/// alias of [`dmfb_graph::words::mantissa_threshold`].
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]`.
#[must_use]
pub fn fault_threshold(p: f64) -> u64 {
    mantissa_threshold(p)
}

/// Up to 64 lock-step per-trial generators emitting one fault word per
/// cell draw.
///
/// Construction order is the contract: the caller draws cells in the
/// same order as the scalar engine (the evaluator's sorted cell order),
/// one [`BlockSampler::fault_word`] or [`BlockSampler::mantissas`] call
/// per cell, so each lane consumes its stream exactly like
/// `survival_trial`'s per-cell loop.
#[derive(Clone, Debug)]
pub struct BlockSampler {
    rngs: LaneRngs,
    lanes: usize,
    /// Per-lane sparse Fisher–Yates overrides for
    /// [`BlockSampler::exact_fault_words`] — `(position, value)` pairs of
    /// permutation slots displaced from the identity. Sized lazily on the
    /// first exact-count call, cleared (not freed) per block.
    fy_overrides: Vec<Vec<(u32, u32)>>,
}

impl BlockSampler {
    /// Creates a sampler with one lane per seed (at most 64).
    ///
    /// # Panics
    ///
    /// Panics if more than 64 seeds are supplied.
    #[must_use]
    pub fn new(seeds: &[u64]) -> Self {
        BlockSampler {
            rngs: LaneRngs::new(seeds),
            lanes: seeds.len(),
            fy_overrides: Vec::new(),
        }
    }

    /// Reseeds in place for the next block of trials, reusing the state
    /// arrays.
    ///
    /// # Panics
    ///
    /// Panics if more than 64 seeds are supplied.
    pub fn reseed(&mut self, seeds: &[u64]) {
        self.rngs.reseed(seeds);
        self.lanes = seeds.len();
    }

    /// Number of live lanes (trials) in the current block.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// All-ones mask over the live lanes; idle lanes read as zero in
    /// every fault word, so they never contribute faults.
    #[must_use]
    pub fn live_mask(&self) -> u64 {
        lane_mask(self.lanes)
    }

    /// Draws one cell for all lanes: bit `L` of the result is lane `L`'s
    /// fault flag under mantissa `threshold` (see [`fault_threshold`]).
    /// Idle lanes are masked to zero.
    #[must_use]
    pub fn fault_word(&mut self, threshold: u64) -> u64 {
        self.rngs.next_ge(threshold) & self.live_mask()
    }

    /// Draws one cell per `out` slot for all lanes — byte-identical to
    /// `out.len()` successive [`BlockSampler::fault_word`] calls but
    /// batched so lane RNG state stays in registers across the sweep
    /// (the survival engine's whole-structure sampling pass).
    pub fn fill_fault_words(&mut self, threshold: u64, out: &mut [u64]) {
        self.rngs.fill_ge(threshold, out);
        let live = self.live_mask();
        for word in out.iter_mut() {
            *word &= live;
        }
    }

    /// Draws one cell for all lanes and stores the raw 53-bit mantissas
    /// (`out[L]` = lane `L`'s draw) — the transposed common-random-number
    /// form used when one draw must be thresholded at many survival
    /// probabilities (grid sweeps). `mantissa >= fault_threshold(p)` is
    /// the fault test.
    pub fn mantissas(&mut self, out: &mut [u64; LANES]) {
        self.rngs.next_mantissas(out);
    }

    /// Transposed exact-fault-count sampling: stages, for every live
    /// lane, exactly `faults` distinct faulty cells out of `n` into
    /// `out` (bit `L` of `out[cell]` = cell faulty in lane `L`),
    /// byte-identical to the scalar partial Fisher–Yates
    /// `for i in 0..faults { j = rng.gen_range(i..n); perm.swap(i, j) }`
    /// run per lane on `StdRng::seed_from_u64(seeds[L])`.
    ///
    /// The scalar path pays an `O(n)` identity-permutation reset per lane
    /// before drawing; this variant draws the swap indices for all lanes
    /// lock-step from the lane generators (one [`LaneRngs`] step per
    /// fault — the vendored `gen_range` consumes exactly one `next_u64`
    /// via a widening multiply, replayed here verbatim) and tracks only
    /// the displaced permutation slots per lane, so a `k`-fault block
    /// costs `O(k² · lanes)` instead of `O(n · lanes)`. For the small
    /// stratum counts the stratified estimator samples, that removes the
    /// dominant term.
    ///
    /// Lanes advance by exactly `faults` draws, so
    /// [`BlockSampler::resume_lane`] stays in step with the scalar
    /// stream.
    ///
    /// # Panics
    ///
    /// Panics if `faults > n` or `out` is shorter than `n` words.
    pub fn exact_fault_words(&mut self, n: usize, faults: usize, out: &mut [u64]) {
        assert!(faults <= n, "cannot pick {faults} faults out of {n} cells");
        assert!(out.len() >= n, "fault-word buffer shorter than {n} cells");
        for word in out[..n].iter_mut() {
            *word = 0;
        }
        if faults == 0 || self.lanes == 0 {
            return;
        }
        if self.fy_overrides.len() < self.lanes {
            self.fy_overrides.resize_with(LANES, Vec::new);
        }
        for overrides in self.fy_overrides[..self.lanes].iter_mut() {
            overrides.clear();
        }
        // perm(x) = identity except where a swap displaced a slot; only
        // slots >= the current draw index are ever read again, so the
        // override list stays O(faults) per lane.
        fn slot(overrides: &[(u32, u32)], x: usize) -> u32 {
            overrides
                .iter()
                .find(|&&(p, _)| p as usize == x)
                .map_or(x as u32, |&(_, v)| v)
        }
        let mut raw = [0u64; LANES];
        for i in 0..faults {
            self.rngs.next_raw(&mut raw);
            let span = (n - i) as u128;
            for (lane, &raw_word) in raw.iter().enumerate().take(self.lanes) {
                // Exactly the vendored `gen_range(i..n)` scaling.
                let j = i + ((u128::from(raw_word) * span) >> 64) as usize;
                let overrides = &mut self.fy_overrides[lane];
                let selected = slot(overrides, j);
                if j != i {
                    let displaced = slot(overrides, i);
                    match overrides.iter_mut().find(|(p, _)| *p as usize == j) {
                        Some(entry) => entry.1 = displaced,
                        None => overrides.push((j as u32, displaced)),
                    }
                }
                out[selected as usize] |= 1u64 << lane;
            }
        }
    }

    /// Reconstructs a scalar [`StdRng`] that continues lane `lane`'s
    /// stream from its current position — for per-trial follow-on draws
    /// after the transposed cell sweep.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is not a live lane.
    #[must_use]
    pub fn resume_lane(&self, lane: usize) -> StdRng {
        assert!(lane < self.lanes, "lane {lane} out of range");
        let state = self.rngs.state(lane);
        let mut bytes = [0u8; 32];
        for (chunk, word) in bytes.chunks_mut(8).zip(state) {
            chunk.copy_from_slice(&word.to_le_bytes());
        }
        StdRng::from_seed(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn fault_words_replay_scalar_bernoulli() {
        let seeds: Vec<u64> = (0..64).map(|i| 0x5EED + i * 131).collect();
        for &p in &[0.0, 0.5, 0.95, 0.99, 1.0] {
            let mut sampler = BlockSampler::new(&seeds);
            let t = fault_threshold(p);
            let mut scalars: Vec<StdRng> =
                seeds.iter().map(|&s| StdRng::seed_from_u64(s)).collect();
            for cell in 0..40 {
                let word = sampler.fault_word(t);
                for (lane, rng) in scalars.iter_mut().enumerate() {
                    let u: f64 = rng.gen();
                    assert_eq!(
                        (word >> lane) & 1 == 1,
                        u >= p,
                        "p={p} cell={cell} lane={lane}"
                    );
                }
            }
        }
    }

    #[test]
    fn fill_fault_words_matches_per_cell_calls() {
        let seeds: Vec<u64> = (0..23).map(|i| 0xFA_57 + i * 13).collect();
        for &p in &[0.0, 0.9, 0.99, 1.0] {
            let t = fault_threshold(p);
            let mut batched = BlockSampler::new(&seeds);
            let mut reference = BlockSampler::new(&seeds);
            let mut words = vec![u64::MAX; 150];
            batched.fill_fault_words(t, &mut words);
            for (cell, &word) in words.iter().enumerate() {
                assert_eq!(word, reference.fault_word(t), "p={p} cell={cell}");
            }
            // Idle lanes masked, and resumable states still in step.
            for &word in &words {
                assert_eq!(word & !batched.live_mask(), 0);
            }
            for lane in 0..seeds.len() {
                let a: f64 = batched.resume_lane(lane).gen();
                let b: f64 = reference.resume_lane(lane).gen();
                assert_eq!(a, b, "lane={lane}");
            }
        }
    }

    #[test]
    fn idle_lanes_stay_silent() {
        let mut sampler = BlockSampler::new(&[1, 2, 3]);
        assert_eq!(sampler.lanes(), 3);
        assert_eq!(sampler.live_mask(), 0b111);
        // p = 0 faults every live lane; idle lanes must still read zero.
        let word = sampler.fault_word(fault_threshold(0.0));
        assert_eq!(word, 0b111);
    }

    #[test]
    fn resume_lane_continues_the_scalar_stream() {
        let seeds = [41u64, 42, 43];
        let mut sampler = BlockSampler::new(&seeds);
        let t = fault_threshold(0.9);
        for _ in 0..17 {
            let _ = sampler.fault_word(t);
        }
        for (lane, &seed) in seeds.iter().enumerate() {
            let mut reference = StdRng::seed_from_u64(seed);
            for _ in 0..17 {
                let _: f64 = reference.gen();
            }
            let mut resumed = sampler.resume_lane(lane);
            for _ in 0..8 {
                let a: f64 = resumed.gen();
                let b: f64 = reference.gen();
                assert_eq!(a, b, "lane={lane}");
            }
        }
    }

    #[test]
    fn reseed_resets_all_lanes() {
        let mut sampler = BlockSampler::new(&[5, 6]);
        let t = fault_threshold(0.5);
        let first = sampler.fault_word(t);
        sampler.reseed(&[5, 6]);
        assert_eq!(sampler.fault_word(t), first);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn resume_rejects_idle_lane() {
        let sampler = BlockSampler::new(&[1]);
        let _ = sampler.resume_lane(1);
    }

    /// The scalar reference: partial Fisher–Yates over a dense identity
    /// permutation, exactly as the per-trial exact-count path draws it.
    fn scalar_fault_set(seed: u64, n: usize, faults: usize) -> Vec<usize> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut perm: Vec<u32> = (0..n as u32).collect();
        let mut picked = Vec::new();
        for i in 0..faults {
            let j = rng.gen_range(i..n);
            perm.swap(i, j);
            picked.push(perm[i] as usize);
        }
        picked
    }

    #[test]
    fn exact_fault_words_replay_scalar_fisher_yates() {
        let seeds: Vec<u64> = (0..64).map(|i| 0xE0_57 + i * 977).collect();
        for &(n, faults) in &[
            (1usize, 0usize),
            (1, 1),
            (7, 3),
            (40, 1),
            (40, 40),
            (313, 11),
        ] {
            let mut sampler = BlockSampler::new(&seeds);
            let mut words = vec![u64::MAX; n];
            sampler.exact_fault_words(n, faults, &mut words);
            for (lane, &seed) in seeds.iter().enumerate() {
                let mut expected = vec![false; n];
                for cell in scalar_fault_set(seed, n, faults) {
                    expected[cell] = true;
                }
                for (cell, &word) in words.iter().enumerate() {
                    assert_eq!(
                        (word >> lane) & 1 == 1,
                        expected[cell],
                        "n={n} faults={faults} lane={lane} cell={cell}"
                    );
                }
            }
            // Every lane holds exactly `faults` distinct faulty cells.
            let total: u32 = words.iter().map(|w| w.count_ones()).sum();
            assert_eq!(total as usize, faults * seeds.len());
        }
    }

    #[test]
    fn exact_fault_words_keep_lanes_resumable() {
        // Each trial consumes exactly `faults` draws, so resume_lane must
        // continue where the scalar stream would be after its swaps.
        let seeds = [3u64, 1441, 0xDEAD];
        let (n, faults) = (29usize, 5usize);
        let mut sampler = BlockSampler::new(&seeds);
        let mut words = vec![0u64; n];
        sampler.exact_fault_words(n, faults, &mut words);
        for (lane, &seed) in seeds.iter().enumerate() {
            let mut reference = StdRng::seed_from_u64(seed);
            for _ in 0..faults {
                let _ = reference.gen_range(0..n);
            }
            let mut resumed = sampler.resume_lane(lane);
            for _ in 0..4 {
                let a: f64 = resumed.gen();
                let b: f64 = reference.gen();
                assert_eq!(a, b, "lane={lane}");
            }
        }
    }

    #[test]
    fn exact_fault_words_mask_idle_lanes_and_clear_stale_bits() {
        let mut sampler = BlockSampler::new(&[9, 10]);
        let mut words = vec![u64::MAX; 12];
        sampler.exact_fault_words(12, 2, &mut words);
        for &word in &words {
            assert_eq!(
                word & !sampler.live_mask(),
                0,
                "idle lanes must stay silent"
            );
        }
        // Zero faults still clears the staging buffer.
        let mut stale = vec![u64::MAX; 5];
        sampler.exact_fault_words(5, 0, &mut stale);
        assert!(stale.iter().all(|&w| w == 0));
    }

    #[test]
    #[should_panic(expected = "cannot pick")]
    fn exact_fault_words_reject_overfull() {
        let mut sampler = BlockSampler::new(&[1]);
        let mut words = vec![0u64; 4];
        sampler.exact_fault_words(4, 5, &mut words);
    }
}
