//! Stochastic defect injection models.
//!
//! The paper's yield analysis rests on one explicit assumption: "Each
//! single cell in the microfluidic array, including each primary and spare
//! cell, has the same defect probability q. Moreover, the failures of the
//! cells are independent." [`Bernoulli`] implements exactly that.
//! [`ExactCount`] implements the Figure 13 protocol ("we randomly introduce
//! m cell failures"). [`ClusteredSpot`] is *not* in the paper; it is the
//! ablation used to probe how far the independence assumption carries.

use crate::fault::{CatastrophicDefect, DefectCause};
use crate::DefectMap;
use dmfb_grid::{HexCoord, HexDir, Region, Topology};
use rand::seq::SliceRandom;
use rand::Rng;

/// A stochastic model that turns a chip region into a random defect map.
///
/// Implementors must be deterministic given the RNG: all randomness flows
/// through `rng` so that Monte-Carlo trials are reproducible.
pub trait InjectionModel {
    /// Samples one chip instance's defects.
    fn inject(&self, region: &Region, rng: &mut impl Rng) -> DefectMap;
}

/// Draws a random catastrophic cause for a failed cell, with the relative
/// frequencies loosely following the paper's defect list (opens and
/// breakdowns dominate; shorts are rarer and involve a partner cell).
fn random_catastrophic(cell: HexCoord, region: &Region, rng: &mut impl Rng) -> DefectCause {
    let roll: f64 = rng.gen();
    if roll < 0.4 {
        DefectCause::Catastrophic(CatastrophicDefect::DielectricBreakdown)
    } else if roll < 0.8 {
        DefectCause::Catastrophic(CatastrophicDefect::OpenConnection)
    } else {
        // Pick a random in-region neighbour for the short; fall back to an
        // open if the cell is isolated (cannot happen on real layouts).
        let dirs: Vec<HexDir> = HexDir::ALL
            .into_iter()
            .filter(|d| region.contains(cell.step(*d)))
            .collect();
        match dirs.choose(rng) {
            Some(d) => DefectCause::Catastrophic(CatastrophicDefect::ElectrodeShort(*d)),
            None => DefectCause::Catastrophic(CatastrophicDefect::OpenConnection),
        }
    }
}

/// Independent, identically distributed cell failures — the paper's model.
///
/// # Example
///
/// ```
/// use dmfb_defects::injection::{Bernoulli, InjectionModel};
/// use dmfb_grid::Region;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let model = Bernoulli::from_survival(0.9);
/// let mut rng = StdRng::seed_from_u64(7);
/// let m = model.inject(&Region::parallelogram(20, 20), &mut rng);
/// // ~10% of 400 cells fail.
/// assert!(m.fault_count() > 10 && m.fault_count() < 80);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Bernoulli {
    defect_probability: f64,
}

impl Bernoulli {
    /// Creates the model from the defect probability `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not within `[0, 1]`.
    #[must_use]
    pub fn new(defect_probability: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&defect_probability),
            "defect probability must be in [0, 1], got {defect_probability}"
        );
        Bernoulli { defect_probability }
    }

    /// Creates the model from the survival probability `p = 1 − q`, the
    /// parameterisation the paper's figures use.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    #[must_use]
    pub fn from_survival(p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "survival probability must be in [0, 1], got {p}"
        );
        Bernoulli::new(1.0 - p)
    }

    /// The defect probability `q`.
    #[must_use]
    pub fn defect_probability(&self) -> f64 {
        self.defect_probability
    }

    /// The survival probability `p = 1 − q`.
    #[must_use]
    pub fn survival_probability(&self) -> f64 {
        1.0 - self.defect_probability
    }

    /// Topology-generic injection: every cell of `topo` fails independently
    /// with probability `q`, marked with a generic open-connection cause
    /// (cause taxonomy richer than open/failed is hexagonal-specific).
    ///
    /// On a hexagonal [`Region`] this draws the same *fault sets* as
    /// [`InjectionModel::inject`] would, differing only in the recorded
    /// causes and consumed randomness.
    pub fn inject_in<T: Topology>(&self, topo: &T, rng: &mut impl Rng) -> DefectMap<T::Coord> {
        let mut map = DefectMap::new();
        if self.defect_probability == 0.0 {
            return map;
        }
        for cell in topo.cells_iter() {
            if rng.gen_bool(self.defect_probability) {
                map.mark(
                    cell,
                    DefectCause::Catastrophic(CatastrophicDefect::OpenConnection),
                );
            }
        }
        map
    }
}

impl InjectionModel for Bernoulli {
    fn inject(&self, region: &Region, rng: &mut impl Rng) -> DefectMap {
        let mut map = DefectMap::new();
        if self.defect_probability == 0.0 {
            return map;
        }
        for cell in region.iter() {
            if rng.gen_bool(self.defect_probability) {
                let cause = random_catastrophic(cell, region, rng);
                map.mark(cell, cause);
            }
        }
        map
    }
}

/// Exactly `m` faulty cells chosen uniformly at random without replacement
/// — the Figure 13 case-study protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExactCount {
    faults: usize,
}

impl ExactCount {
    /// Creates the model injecting exactly `faults` failures.
    #[must_use]
    pub fn new(faults: usize) -> Self {
        ExactCount { faults }
    }

    /// The number of failures injected per chip instance.
    #[must_use]
    pub fn faults(&self) -> usize {
        self.faults
    }

    /// Topology-generic injection: exactly `m` distinct cells of `topo`
    /// fail, chosen uniformly without replacement, marked with a generic
    /// open-connection cause.
    ///
    /// # Panics
    ///
    /// Panics if `m` exceeds the number of cells in the topology.
    pub fn inject_in<T: Topology>(&self, topo: &T, rng: &mut impl Rng) -> DefectMap<T::Coord> {
        let mut cells: Vec<T::Coord> = topo.cells_iter().collect();
        assert!(
            self.faults <= cells.len(),
            "cannot inject {} faults into a {}-cell topology",
            self.faults,
            cells.len()
        );
        cells.shuffle(rng);
        DefectMap::from_cells(cells.into_iter().take(self.faults))
    }
}

impl InjectionModel for ExactCount {
    /// # Panics
    ///
    /// Panics if `m` exceeds the number of cells in the region.
    fn inject(&self, region: &Region, rng: &mut impl Rng) -> DefectMap {
        let mut cells: Vec<HexCoord> = region.iter().collect();
        assert!(
            self.faults <= cells.len(),
            "cannot inject {} faults into a {}-cell region",
            self.faults,
            cells.len()
        );
        cells.shuffle(rng);
        let mut map = DefectMap::new();
        for cell in cells.into_iter().take(self.faults) {
            let cause = random_catastrophic(cell, region, rng);
            map.mark(cell, cause);
        }
        map
    }
}

/// Clustered spot defects: a Poisson number of defect clusters, each
/// centred on a uniform cell and failing nearby cells with a probability
/// decaying with hex distance.
///
/// This violates the paper's independence assumption on purpose; the
/// ablation bench quantifies the yield impact for the same *expected*
/// number of failures.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClusteredSpot {
    /// Expected number of clusters per chip.
    pub mean_clusters: f64,
    /// Cluster radius in cells.
    pub radius: u32,
    /// Failure probability at the cluster centre, decaying linearly to zero
    /// at `radius + 1`.
    pub peak_probability: f64,
}

impl ClusteredSpot {
    /// Creates a clustered-spot model.
    ///
    /// # Panics
    ///
    /// Panics if `mean_clusters < 0` or `peak_probability` is outside
    /// `[0, 1]`.
    #[must_use]
    pub fn new(mean_clusters: f64, radius: u32, peak_probability: f64) -> Self {
        assert!(mean_clusters >= 0.0, "mean_clusters must be non-negative");
        assert!(
            (0.0..=1.0).contains(&peak_probability),
            "peak probability must be in [0, 1]"
        );
        ClusteredSpot {
            mean_clusters,
            radius,
            peak_probability,
        }
    }

    /// Expected number of failed cells per chip on an infinite array
    /// (boundary effects reduce it slightly).
    #[must_use]
    pub fn expected_failures(&self) -> f64 {
        // Sum of decayed probabilities over the cluster footprint.
        let mut per_cluster = 0.0;
        for k in 0..=self.radius {
            let ring = if k == 0 { 1.0 } else { 6.0 * f64::from(k) };
            let decay = 1.0 - f64::from(k) / (f64::from(self.radius) + 1.0);
            per_cluster += ring * self.peak_probability * decay;
        }
        self.mean_clusters * per_cluster
    }
}

/// Samples a Poisson variate by inversion (adequate for small means).
fn poisson(mean: f64, rng: &mut impl Rng) -> u32 {
    if mean <= 0.0 {
        return 0;
    }
    let limit = (-mean).exp();
    let mut product: f64 = rng.gen();
    let mut count = 0u32;
    while product > limit {
        product *= rng.gen::<f64>();
        count += 1;
        if count > 10_000 {
            break; // Guard against pathological means.
        }
    }
    count
}

impl InjectionModel for ClusteredSpot {
    fn inject(&self, region: &Region, rng: &mut impl Rng) -> DefectMap {
        let mut map = DefectMap::new();
        let cells: Vec<HexCoord> = region.iter().collect();
        if cells.is_empty() {
            return map;
        }
        let clusters = poisson(self.mean_clusters, rng);
        for _ in 0..clusters {
            let center = *cells.choose(rng).expect("non-empty");
            for k in 0..=self.radius {
                let decay = 1.0 - f64::from(k) / (f64::from(self.radius) + 1.0);
                let prob = self.peak_probability * decay;
                for cell in center.ring(k) {
                    if region.contains(cell) && !map.is_faulty(cell) && rng.gen_bool(prob) {
                        let cause = random_catastrophic(cell, region, rng);
                        map.mark(cell, cause);
                    }
                }
            }
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn bernoulli_parameterisations_agree() {
        let a = Bernoulli::new(0.05);
        let b = Bernoulli::from_survival(0.95);
        assert!((a.defect_probability() - b.defect_probability()).abs() < 1e-12);
        assert!((b.survival_probability() - 0.95).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn bernoulli_rejects_bad_probability() {
        let _ = Bernoulli::new(1.5);
    }

    #[test]
    fn bernoulli_extremes() {
        let region = Region::parallelogram(10, 10);
        let none = Bernoulli::new(0.0).inject(&region, &mut rng(1));
        assert!(none.is_fault_free());
        let all = Bernoulli::new(1.0).inject(&region, &mut rng(1));
        assert_eq!(all.fault_count(), 100);
    }

    #[test]
    fn bernoulli_rate_close_to_q() {
        let region = Region::parallelogram(50, 50);
        let m = Bernoulli::new(0.1).inject(&region, &mut rng(42));
        let rate = m.fault_count() as f64 / 2_500.0;
        assert!((rate - 0.1).abs() < 0.03, "rate {rate}");
    }

    #[test]
    fn bernoulli_deterministic_given_seed() {
        let region = Region::parallelogram(15, 15);
        let a = Bernoulli::new(0.2).inject(&region, &mut rng(9));
        let b = Bernoulli::new(0.2).inject(&region, &mut rng(9));
        assert_eq!(a, b);
    }

    #[test]
    fn exact_count_is_exact() {
        let region = Region::parallelogram(12, 12);
        for m in [0usize, 1, 7, 50, 144] {
            let map = ExactCount::new(m).inject(&region, &mut rng(5));
            assert_eq!(map.fault_count(), m);
            for c in map.faulty_cells() {
                assert!(region.contains(c));
            }
        }
        assert_eq!(ExactCount::new(3).faults(), 3);
    }

    #[test]
    #[should_panic(expected = "cannot inject")]
    fn exact_count_rejects_overfull() {
        let region = Region::parallelogram(2, 2);
        let _ = ExactCount::new(5).inject(&region, &mut rng(1));
    }

    #[test]
    fn clustered_spot_clusters_are_local() {
        let region = Region::parallelogram(30, 30);
        let model = ClusteredSpot::new(1.0, 2, 0.9);
        // Over many samples, faults exist and stay inside the region.
        let mut any = false;
        for seed in 0..20 {
            let m = model.inject(&region, &mut rng(seed));
            for c in m.faulty_cells() {
                assert!(region.contains(c));
            }
            any |= !m.is_fault_free();
        }
        assert!(any, "clusters should appear at mean 1.0");
    }

    #[test]
    fn clustered_expected_failures_positive() {
        let model = ClusteredSpot::new(2.0, 1, 0.5);
        // centre 0.5 + ring1: 6 * 0.5 * 0.5 = 1.5 → per cluster 2.0 → 4.0
        assert!((model.expected_failures() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn poisson_zero_mean() {
        assert_eq!(poisson(0.0, &mut rng(1)), 0);
    }

    #[test]
    fn topology_generic_injection_on_square_lattice() {
        use dmfb_grid::SquareRegion;
        let region = SquareRegion::rect(20, 20);
        let none = Bernoulli::new(0.0).inject_in(&region, &mut rng(1));
        assert!(none.is_fault_free());
        let all = Bernoulli::new(1.0).inject_in(&region, &mut rng(1));
        assert_eq!(all.fault_count(), 400);
        for m in [0usize, 3, 50] {
            let map = ExactCount::new(m).inject_in(&region, &mut rng(5));
            assert_eq!(map.fault_count(), m);
            for c in map.faulty_cells() {
                assert!(region.contains(c));
            }
        }
    }

    #[test]
    fn shorts_reference_in_region_partners() {
        let region = Region::parallelogram(8, 8);
        // With q = 1 every cell fails; every short must point inside.
        let mut map = Bernoulli::new(1.0).inject(&region, &mut rng(3));
        map.close_shorts();
        for (c, cause) in map.iter() {
            if let DefectCause::Catastrophic(CatastrophicDefect::ElectrodeShort(d)) = cause {
                assert!(region.contains(c.step(*d)), "short partner inside region");
            }
        }
    }
}
