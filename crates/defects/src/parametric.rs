//! Parametric fault modelling: geometry deviations vs. tolerance.
//!
//! "Manufacturing defects that cause parametric faults include geometrical
//! parameter deviations. The deviation in insulator thickness, electrode
//! length and height between parallel plates may exceed their tolerance
//! value during fabrication. ... A parametric fault is detectable only if
//! this deviation exceeds the tolerance in system performance."

use crate::fault::{DefectCause, ParametricDefect};
use crate::DefectMap;
use dmfb_grid::Region;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Nominal cell geometry of the biochip described in the paper's Section 3.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct GeometryNominal {
    /// Parylene C insulator thickness in nanometres (~800 nm).
    pub insulator_thickness_nm: f64,
    /// Electrode pitch in micrometres.
    pub electrode_length_um: f64,
    /// Gap between the two parallel glass plates in micrometres.
    pub plate_gap_um: f64,
}

impl Default for GeometryNominal {
    fn default() -> Self {
        GeometryNominal {
            insulator_thickness_nm: 800.0,
            electrode_length_um: 1_000.0,
            plate_gap_um: 300.0,
        }
    }
}

/// Relative manufacturing spread (one standard deviation) and tolerance
/// (maximum acceptable |relative deviation|) per geometry parameter.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ParametricModel {
    /// Std-dev of the relative deviation of each parameter.
    pub sigma: f64,
    /// Tolerance: a cell is parametrically *faulty* when any parameter's
    /// |relative deviation| exceeds this.
    pub tolerance: f64,
}

impl Default for ParametricModel {
    fn default() -> Self {
        // With sigma = 4% and tolerance = 12% (3 sigma), out-of-tolerance
        // cells are rare, matching the paper's focus on catastrophic
        // defects for the headline yield numbers.
        ParametricModel {
            sigma: 0.04,
            tolerance: 0.12,
        }
    }
}

/// One cell's sampled relative deviations.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CellDeviation {
    /// Insulator thickness relative deviation.
    pub insulator: f64,
    /// Electrode length relative deviation.
    pub electrode: f64,
    /// Plate gap relative deviation.
    pub plate_gap: f64,
}

impl CellDeviation {
    /// The largest |relative deviation| and the parameter it belongs to.
    #[must_use]
    pub fn worst(&self) -> (ParametricDefect, f64) {
        let cands = [
            (ParametricDefect::InsulatorThickness, self.insulator),
            (ParametricDefect::ElectrodeLength, self.electrode),
            (ParametricDefect::PlateGap, self.plate_gap),
        ];
        cands
            .into_iter()
            .max_by(|a, b| a.1.abs().total_cmp(&b.1.abs()))
            .expect("non-empty candidates")
    }
}

/// Samples a standard normal variate via Box–Muller (the `rand` crate alone
/// provides only uniform primitives).
fn standard_normal(rng: &mut impl Rng) -> f64 {
    // Avoid ln(0) by sampling in the half-open interval (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

impl ParametricModel {
    /// Creates a model from spread and tolerance.
    ///
    /// # Panics
    ///
    /// Panics if either value is negative.
    #[must_use]
    pub fn new(sigma: f64, tolerance: f64) -> Self {
        assert!(sigma >= 0.0, "sigma must be non-negative");
        assert!(tolerance >= 0.0, "tolerance must be non-negative");
        ParametricModel { sigma, tolerance }
    }

    /// Samples the geometry deviation of one cell.
    pub fn sample_cell(&self, rng: &mut impl Rng) -> CellDeviation {
        CellDeviation {
            insulator: self.sigma * standard_normal(rng),
            electrode: self.sigma * standard_normal(rng),
            plate_gap: self.sigma * standard_normal(rng),
        }
    }

    /// Whether a sampled deviation constitutes a parametric *fault*.
    #[must_use]
    pub fn is_fault(&self, dev: &CellDeviation) -> bool {
        dev.worst().1.abs() > self.tolerance
    }

    /// Probability that a single parameter stays within tolerance
    /// (`erf`-based closed form approximated by Abramowitz–Stegun 7.1.26).
    #[must_use]
    pub fn per_parameter_pass_probability(&self) -> f64 {
        if self.sigma == 0.0 {
            return 1.0;
        }
        let z = self.tolerance / self.sigma;
        erf(z / std::f64::consts::SQRT_2)
    }

    /// Probability a cell is parametrically fault-free (all three
    /// parameters in tolerance, independent).
    #[must_use]
    pub fn cell_pass_probability(&self) -> f64 {
        self.per_parameter_pass_probability().powi(3)
    }

    /// Injects parametric faults over `region`: each cell's geometry is
    /// sampled and out-of-tolerance cells are marked with their worst
    /// parameter.
    pub fn inject(&self, region: &Region, rng: &mut impl Rng) -> DefectMap {
        let mut map = DefectMap::new();
        for cell in region.iter() {
            let dev = self.sample_cell(rng);
            if self.is_fault(&dev) {
                let (param, value) = dev.worst();
                map.mark(cell, DefectCause::Parametric(param, value));
            }
        }
        map
    }
}

/// Abramowitz–Stegun 7.1.26 rational approximation of `erf` (|err| < 1.5e-7).
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn defaults_are_sane() {
        let nominal = GeometryNominal::default();
        assert!((nominal.insulator_thickness_nm - 800.0).abs() < 1e-9);
        let model = ParametricModel::default();
        assert!(model.tolerance > model.sigma);
    }

    #[test]
    fn erf_reference_values() {
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
        assert!((erf(3.0) - 0.999_977_9).abs() < 1e-6);
    }

    #[test]
    fn pass_probability_monotone_in_tolerance() {
        let tight = ParametricModel::new(0.05, 0.05);
        let loose = ParametricModel::new(0.05, 0.20);
        assert!(loose.cell_pass_probability() > tight.cell_pass_probability());
        assert!(ParametricModel::new(0.0, 0.1).cell_pass_probability() == 1.0);
    }

    #[test]
    fn sampled_fault_rate_matches_closed_form() {
        let model = ParametricModel::new(0.05, 0.08);
        let region = Region::parallelogram(60, 60);
        let mut rng = StdRng::seed_from_u64(17);
        let map = model.inject(&region, &mut rng);
        let rate = map.fault_count() as f64 / region.len() as f64;
        let expected = 1.0 - model.cell_pass_probability();
        assert!(
            (rate - expected).abs() < 0.03,
            "rate {rate} vs expected {expected}"
        );
    }

    #[test]
    fn worst_picks_largest_magnitude() {
        let dev = CellDeviation {
            insulator: 0.02,
            electrode: -0.3,
            plate_gap: 0.1,
        };
        let (param, value) = dev.worst();
        assert_eq!(param, ParametricDefect::ElectrodeLength);
        assert!((value + 0.3).abs() < 1e-12);
    }

    #[test]
    fn normal_sampler_moments() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn faults_marked_with_parametric_cause() {
        // Sigma huge, tolerance tiny: everything fails parametrically.
        let model = ParametricModel::new(1.0, 1e-9);
        let region = Region::parallelogram(4, 4);
        let mut rng = StdRng::seed_from_u64(2);
        let map = model.inject(&region, &mut rng);
        assert_eq!(map.fault_count(), 16);
        for (_, cause) in map.iter() {
            assert!(matches!(cause, DefectCause::Parametric(..)));
        }
    }
}
