//! Per-chip defect maps.

use crate::fault::{CatastrophicDefect, DefectCause, FaultClass};
use dmfb_grid::{CellMap, HexCoord};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The set of faulty cells of one fabricated chip instance, with the cause
/// of each fault.
///
/// A `DefectMap` is what the test methodology produces and what the
/// reconfiguration engine consumes. It is generic over the cell coordinate
/// type `C`, defaulting to the hexagonal lattice's [`HexCoord`]; the square
/// lattice uses `DefectMap<SquareCoord>`. Electrode shorts implicitly fault
/// the *partner* cell too — the shorted pair "effectively forms one longer
/// electrode" — which [`DefectMap::close_shorts`] (hexagonal maps only)
/// makes explicit.
///
/// # Example
///
/// ```
/// use dmfb_defects::{CatastrophicDefect, DefectCause, DefectMap};
/// use dmfb_grid::HexCoord;
///
/// let mut defects = DefectMap::new();
/// defects.mark(
///     HexCoord::new(1, 1),
///     DefectCause::Catastrophic(CatastrophicDefect::OpenConnection),
/// );
/// assert!(defects.is_faulty(HexCoord::new(1, 1)));
/// assert_eq!(defects.fault_count(), 1);
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct DefectMap<C: Ord + Copy = HexCoord> {
    faults: CellMap<DefectCause, C>,
}

impl<C: Ord + Copy> Default for DefectMap<C> {
    fn default() -> Self {
        DefectMap {
            faults: CellMap::new(),
        }
    }
}

impl<C: Ord + Copy + fmt::Debug> fmt::Debug for DefectMap<C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DefectMap({} faulty cells)", self.faults.len())
    }
}

impl<C: Ord + Copy> DefectMap<C> {
    /// Creates an empty (fault-free) map.
    #[must_use]
    pub fn new() -> Self {
        DefectMap::default()
    }

    /// Builds a map marking `cells` faulty with a generic open-connection
    /// cause. Convenient for tests and for the exact-`m` injection mode
    /// where only *which* cells fail matters.
    #[must_use]
    pub fn from_cells<I: IntoIterator<Item = C>>(cells: I) -> Self {
        let mut map = DefectMap::new();
        for c in cells {
            map.mark(
                c,
                DefectCause::Catastrophic(CatastrophicDefect::OpenConnection),
            );
        }
        map
    }

    /// Marks `cell` faulty with `cause`; returns the previous cause if the
    /// cell was already faulty.
    pub fn mark(&mut self, cell: C, cause: DefectCause) -> Option<DefectCause> {
        self.faults.insert(cell, cause)
    }

    /// Clears the fault at `cell`, returning its cause if present.
    pub fn clear(&mut self, cell: C) -> Option<DefectCause> {
        self.faults.remove(cell)
    }

    /// Whether `cell` is faulty.
    #[must_use]
    pub fn is_faulty(&self, cell: C) -> bool {
        self.faults.contains(cell)
    }

    /// The recorded cause of a fault, if any.
    #[must_use]
    pub fn cause(&self, cell: C) -> Option<&DefectCause> {
        self.faults.get(cell)
    }

    /// Number of faulty cells.
    #[must_use]
    pub fn fault_count(&self) -> usize {
        self.faults.len()
    }

    /// Whether the chip instance is entirely fault-free.
    #[must_use]
    pub fn is_fault_free(&self) -> bool {
        self.faults.is_empty()
    }

    /// Iterates `(cell, cause)` in sorted cell order.
    pub fn iter(&self) -> impl Iterator<Item = (C, &DefectCause)> {
        self.faults.iter()
    }

    /// Iterates the faulty cells in sorted order.
    pub fn faulty_cells(&self) -> impl Iterator<Item = C> + '_ {
        self.faults.cells()
    }

    /// Faulty cells restricted to one fault class.
    pub fn cells_of_class(&self, class: FaultClass) -> impl Iterator<Item = C> + '_ {
        self.faults.cells_where(move |c| c.class() == class)
    }

    /// The union of two defect maps (first cause wins on conflicts).
    #[must_use]
    pub fn merged(&self, other: &DefectMap<C>) -> DefectMap<C> {
        let mut out = self.clone();
        for (c, cause) in other.iter() {
            if !out.is_faulty(c) {
                out.mark(c, *cause);
            }
        }
        out
    }
}

impl DefectMap<HexCoord> {
    /// Propagates electrode shorts to their partner cells: for every
    /// `ElectrodeShort(dir)` at cell `c`, the adjacent cell `c.step(dir)` is
    /// also marked faulty (as the other end of the same short) if not
    /// already. Returns the number of cells newly marked.
    ///
    /// Short directions are hexagonal transport directions, so this method
    /// exists only on hexagonal defect maps.
    pub fn close_shorts(&mut self) -> usize {
        let partners: Vec<(HexCoord, HexCoord)> = self
            .faults
            .iter()
            .filter_map(|(c, cause)| match cause {
                DefectCause::Catastrophic(CatastrophicDefect::ElectrodeShort(d)) => {
                    Some((c, c.step(*d)))
                }
                _ => None,
            })
            .collect();
        let mut added = 0;
        for (origin, partner) in partners {
            if !self.faults.contains(partner) {
                // Record the reciprocal short on the partner.
                let back = origin - partner;
                let dir = dmfb_grid::HexDir::ALL
                    .into_iter()
                    .find(|d| {
                        let (dq, dr) = d.offset();
                        dq == back.q && dr == back.r
                    })
                    .expect("short partner is adjacent by construction");
                self.faults.insert(
                    partner,
                    DefectCause::Catastrophic(CatastrophicDefect::ElectrodeShort(dir)),
                );
                added += 1;
            }
        }
        added
    }
}

impl<C: Ord + Copy> FromIterator<(C, DefectCause)> for DefectMap<C> {
    fn from_iter<I: IntoIterator<Item = (C, DefectCause)>>(iter: I) -> Self {
        DefectMap {
            faults: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmfb_grid::{HexDir, SquareCoord};

    #[test]
    fn mark_query_clear() {
        let mut m = DefectMap::new();
        assert!(m.is_fault_free());
        let cell = HexCoord::new(2, 3);
        m.mark(
            cell,
            DefectCause::Catastrophic(CatastrophicDefect::DielectricBreakdown),
        );
        assert!(m.is_faulty(cell));
        assert_eq!(m.fault_count(), 1);
        assert!(matches!(
            m.cause(cell),
            Some(DefectCause::Catastrophic(
                CatastrophicDefect::DielectricBreakdown
            ))
        ));
        assert!(m.clear(cell).is_some());
        assert!(m.is_fault_free());
    }

    #[test]
    fn from_cells_marks_all() {
        let cells = [HexCoord::new(0, 0), HexCoord::new(1, 0)];
        let m = DefectMap::from_cells(cells);
        assert_eq!(m.fault_count(), 2);
        for c in cells {
            assert!(m.is_faulty(c));
        }
        let listed: Vec<_> = m.faulty_cells().collect();
        assert_eq!(listed, cells.to_vec());
    }

    #[test]
    fn close_shorts_marks_partner() {
        let mut m = DefectMap::new();
        let a = HexCoord::new(0, 0);
        m.mark(
            a,
            DefectCause::Catastrophic(CatastrophicDefect::ElectrodeShort(HexDir::East)),
        );
        assert_eq!(m.close_shorts(), 1);
        let b = a.step(HexDir::East);
        assert!(m.is_faulty(b));
        // Partner records the reciprocal direction.
        assert!(matches!(
            m.cause(b),
            Some(DefectCause::Catastrophic(
                CatastrophicDefect::ElectrodeShort(HexDir::West)
            ))
        ));
        // Idempotent.
        assert_eq!(m.close_shorts(), 0);
    }

    #[test]
    fn class_filter() {
        let mut m = DefectMap::new();
        m.mark(
            HexCoord::new(0, 0),
            DefectCause::Catastrophic(CatastrophicDefect::OpenConnection),
        );
        m.mark(
            HexCoord::new(1, 0),
            DefectCause::Parametric(crate::fault::ParametricDefect::PlateGap, 0.3),
        );
        assert_eq!(m.cells_of_class(FaultClass::Catastrophic).count(), 1);
        assert_eq!(m.cells_of_class(FaultClass::Parametric).count(), 1);
    }

    #[test]
    fn merge_prefers_existing() {
        let a_cell = HexCoord::new(0, 0);
        let mut a = DefectMap::new();
        a.mark(
            a_cell,
            DefectCause::Catastrophic(CatastrophicDefect::OpenConnection),
        );
        let mut b = DefectMap::new();
        b.mark(
            a_cell,
            DefectCause::Catastrophic(CatastrophicDefect::DielectricBreakdown),
        );
        b.mark(
            HexCoord::new(5, 5),
            DefectCause::Catastrophic(CatastrophicDefect::OpenConnection),
        );
        let m = a.merged(&b);
        assert_eq!(m.fault_count(), 2);
        assert!(matches!(
            m.cause(a_cell),
            Some(DefectCause::Catastrophic(
                CatastrophicDefect::OpenConnection
            ))
        ));
    }

    #[test]
    fn square_lattice_map() {
        let cells = [SquareCoord::new(0, 0), SquareCoord::new(2, 1)];
        let m: DefectMap<SquareCoord> = DefectMap::from_cells(cells);
        assert_eq!(m.fault_count(), 2);
        assert!(m.is_faulty(SquareCoord::new(2, 1)));
        assert!(!m.is_faulty(SquareCoord::new(1, 1)));
        let merged = m.merged(&DefectMap::from_cells([SquareCoord::new(5, 5)]));
        assert_eq!(merged.fault_count(), 3);
    }
}
