//! Operational (in-service) fault arrival.
//!
//! The paper's Section 2 classifies faults "as either manufacturing or
//! operational". Manufacturing defects are the subject of its yield
//! analysis; operational faults accrue in the field — dielectric ageing
//! under repeated actuation, progressive breakdown at high drive voltage.
//! This module models their arrival so the online-reconfiguration layer
//! (`dmfb-bioassay::online`) has a realistic source of mid-protocol
//! failures.
//!
//! Each cell fails independently as a Poisson process whose rate scales
//! with actuation stress; the first arrival per cell is exponentially
//! distributed with the cell's MTBF.

use crate::fault::{CatastrophicDefect, DefectCause};
use crate::map::DefectMap;
use dmfb_grid::{HexCoord, Region};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Exponential first-failure model for in-service cells.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MtbfModel {
    /// Mean time between failures of one cell at reference stress, in
    /// hours of operation.
    pub cell_mtbf_hours: f64,
    /// Stress multiplier (≥ 0): 2.0 doubles the failure rate, e.g. when
    /// driving electrodes near the 90 V limit.
    pub stress_factor: f64,
}

impl Default for MtbfModel {
    fn default() -> Self {
        MtbfModel {
            cell_mtbf_hours: 20_000.0,
            stress_factor: 1.0,
        }
    }
}

/// One sampled in-service failure.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FailureEvent {
    /// Hours of operation at which the cell fails.
    pub at_hours: f64,
    /// The failing cell.
    pub cell: HexCoord,
}

impl FailureEvent {
    /// The defect cause recorded when this in-service failure is folded
    /// into a [`DefectMap`]: dielectric breakdown, the wear-out mechanism
    /// of repeated actuation near the drive-voltage limit (the paper's
    /// Section 2 operational-fault class). Breakdown is catastrophic, so
    /// routed faults block droplet transport exactly like manufacturing
    /// opens do.
    #[must_use]
    pub fn cause(&self) -> DefectCause {
        DefectCause::Catastrophic(CatastrophicDefect::DielectricBreakdown)
    }
}

impl MtbfModel {
    /// Creates a model.
    ///
    /// # Panics
    ///
    /// Panics if `cell_mtbf_hours <= 0` or `stress_factor < 0`.
    #[must_use]
    pub fn new(cell_mtbf_hours: f64, stress_factor: f64) -> Self {
        assert!(
            cell_mtbf_hours > 0.0 && cell_mtbf_hours.is_finite(),
            "MTBF must be positive"
        );
        assert!(
            stress_factor >= 0.0 && stress_factor.is_finite(),
            "stress factor must be non-negative"
        );
        MtbfModel {
            cell_mtbf_hours,
            stress_factor,
        }
    }

    /// Effective per-cell failure rate in 1/hours.
    #[must_use]
    pub fn rate_per_hour(&self) -> f64 {
        self.stress_factor / self.cell_mtbf_hours
    }

    /// Probability that a given cell survives `horizon_hours` of service.
    #[must_use]
    pub fn cell_survival(&self, horizon_hours: f64) -> f64 {
        (-self.rate_per_hour() * horizon_hours.max(0.0)).exp()
    }

    /// Expected number of failed cells on `region` after `horizon_hours`.
    #[must_use]
    pub fn expected_failures(&self, region: &Region, horizon_hours: f64) -> f64 {
        region.len() as f64 * (1.0 - self.cell_survival(horizon_hours))
    }

    /// Samples the first-failure events occurring within `horizon_hours`,
    /// sorted by time. Cells whose sampled failure lies beyond the horizon
    /// are omitted.
    #[must_use]
    pub fn sample_failures(
        &self,
        region: &Region,
        horizon_hours: f64,
        rng: &mut impl Rng,
    ) -> Vec<FailureEvent> {
        let rate = self.rate_per_hour();
        if rate <= 0.0 || horizon_hours <= 0.0 {
            return Vec::new();
        }
        let mut events: Vec<FailureEvent> = region
            .iter()
            .filter_map(|cell| {
                // Inverse-CDF sample of Exp(rate), guarding u=0.
                let u: f64 = 1.0 - rng.gen::<f64>();
                let t = -u.ln() / rate;
                (t <= horizon_hours).then_some(FailureEvent { at_hours: t, cell })
            })
            .collect();
        events.sort_by(|a, b| a.at_hours.total_cmp(&b.at_hours));
        events
    }

    /// Samples the failures within `horizon_hours` and folds them into a
    /// [`DefectMap`] with their operational fault class
    /// ([`FailureEvent::cause`]) — the bridge that routes in-service wear
    /// into the same reconfiguration/remapping pipeline as manufacturing
    /// defects. The operational-yield engine merges this map on top of the
    /// manufacturing fault draw to model a chip after `horizon_hours` in
    /// the field.
    #[must_use]
    pub fn inject_service_faults(
        &self,
        region: &Region,
        horizon_hours: f64,
        rng: &mut impl Rng,
    ) -> DefectMap {
        let mut map = DefectMap::new();
        for ev in self.sample_failures(region, horizon_hours, rng) {
            map.mark(ev.cell, ev.cause());
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn survival_decays_with_time_and_stress() {
        let model = MtbfModel::default();
        assert!(model.cell_survival(0.0) > 0.999_999);
        assert!(model.cell_survival(1_000.0) > model.cell_survival(10_000.0));
        let stressed = MtbfModel::new(20_000.0, 3.0);
        assert!(stressed.cell_survival(1_000.0) < model.cell_survival(1_000.0));
        assert!((stressed.rate_per_hour() - 3.0 / 20_000.0).abs() < 1e-15);
    }

    #[test]
    fn sampled_count_matches_expectation() {
        let model = MtbfModel::new(1_000.0, 1.0);
        let region = Region::parallelogram(30, 30);
        let horizon = 500.0;
        let expected = model.expected_failures(&region, horizon);
        let mut rng = StdRng::seed_from_u64(42);
        let mut total = 0usize;
        let reps = 40;
        for _ in 0..reps {
            total += model.sample_failures(&region, horizon, &mut rng).len();
        }
        let mean = total as f64 / f64::from(reps);
        assert!(
            (mean - expected).abs() < expected * 0.1,
            "mean {mean} vs expected {expected}"
        );
    }

    #[test]
    fn events_sorted_within_horizon_inside_region() {
        let model = MtbfModel::new(100.0, 1.0);
        let region = Region::parallelogram(10, 10);
        let mut rng = StdRng::seed_from_u64(7);
        let events = model.sample_failures(&region, 50.0, &mut rng);
        assert!(!events.is_empty());
        for w in events.windows(2) {
            assert!(w[0].at_hours <= w[1].at_hours);
        }
        for e in &events {
            assert!(e.at_hours <= 50.0 && e.at_hours >= 0.0);
            assert!(region.contains(e.cell));
        }
    }

    #[test]
    fn service_faults_carry_the_operational_class() {
        use crate::fault::FaultClass;
        let model = MtbfModel::new(50.0, 1.0);
        let region = Region::parallelogram(8, 8);
        let mut rng = StdRng::seed_from_u64(3);
        let map = model.inject_service_faults(&region, 100.0, &mut rng);
        assert!(!map.is_fault_free());
        for (cell, cause) in map.iter() {
            assert!(region.contains(cell));
            assert_eq!(cause.class(), FaultClass::Catastrophic);
            assert_eq!(
                *cause,
                DefectCause::Catastrophic(CatastrophicDefect::DielectricBreakdown)
            );
        }
    }

    #[test]
    fn zero_stress_never_fails() {
        let model = MtbfModel::new(1_000.0, 0.0);
        let region = Region::parallelogram(5, 5);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(model.sample_failures(&region, 1e9, &mut rng).is_empty());
        assert_eq!(model.cell_survival(1e9), 1.0);
    }

    #[test]
    #[should_panic(expected = "MTBF must be positive")]
    fn rejects_bad_mtbf() {
        let _ = MtbfModel::new(0.0, 1.0);
    }
}
