//! Fault taxonomy for digital microfluidic biochips (paper Section 4).

use dmfb_grid::HexDir;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Fault classification along the lines used for analog circuits:
/// catastrophic faults cause complete malfunction, parametric faults cause
/// a performance deviation that only matters when it exceeds tolerance.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum FaultClass {
    /// Complete malfunction of the cell (hard fault).
    Catastrophic,
    /// Performance deviation beyond tolerance (soft fault).
    Parametric,
}

impl fmt::Display for FaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultClass::Catastrophic => write!(f, "catastrophic"),
            FaultClass::Parametric => write!(f, "parametric"),
        }
    }
}

/// The catastrophic manufacturing defects listed in the paper.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum CatastrophicDefect {
    /// Dielectric breakdown: a short between droplet and electrode; the
    /// droplet undergoes electrolysis and can no longer be transported.
    DielectricBreakdown,
    /// Short between this electrode and the adjacent electrode in the given
    /// direction; the pair effectively forms one long electrode, on which a
    /// droplet cannot overlap the next electrode and so cannot be actuated.
    ElectrodeShort(HexDir),
    /// Open in the metal connection between the electrode and its control
    /// source: the electrode can never be activated.
    OpenConnection,
}

impl fmt::Display for CatastrophicDefect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatastrophicDefect::DielectricBreakdown => write!(f, "dielectric breakdown"),
            CatastrophicDefect::ElectrodeShort(d) => {
                write!(f, "electrode short towards {d:?}")
            }
            CatastrophicDefect::OpenConnection => write!(f, "open control connection"),
        }
    }
}

/// Geometry parameters whose deviation causes parametric faults.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum ParametricDefect {
    /// Deviation in insulator (Parylene C, nominally ~800 nm) thickness.
    InsulatorThickness,
    /// Deviation in electrode length/pitch.
    ElectrodeLength,
    /// Deviation in the gap between the two parallel glass plates.
    PlateGap,
}

impl fmt::Display for ParametricDefect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParametricDefect::InsulatorThickness => write!(f, "insulator thickness deviation"),
            ParametricDefect::ElectrodeLength => write!(f, "electrode length deviation"),
            ParametricDefect::PlateGap => write!(f, "plate gap deviation"),
        }
    }
}

/// The concrete cause recorded for a faulty cell in a [`DefectMap`].
///
/// [`DefectMap`]: crate::DefectMap
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub enum DefectCause {
    /// A catastrophic manufacturing defect.
    Catastrophic(CatastrophicDefect),
    /// A parametric defect with the observed relative deviation (e.g.
    /// `0.12` = 12% off nominal). Whether it is a *fault* depends on the
    /// tolerance; only out-of-tolerance deviations appear in defect maps.
    Parametric(ParametricDefect, f64),
}

impl DefectCause {
    /// The fault class of this cause.
    #[must_use]
    pub fn class(&self) -> FaultClass {
        match self {
            DefectCause::Catastrophic(_) => FaultClass::Catastrophic,
            DefectCause::Parametric(..) => FaultClass::Parametric,
        }
    }
}

impl fmt::Display for DefectCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DefectCause::Catastrophic(d) => write!(f, "{d}"),
            DefectCause::Parametric(d, dev) => write!(f, "{d} ({:+.1}%)", 100.0 * dev),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes() {
        assert_eq!(
            DefectCause::Catastrophic(CatastrophicDefect::OpenConnection).class(),
            FaultClass::Catastrophic
        );
        assert_eq!(
            DefectCause::Parametric(ParametricDefect::PlateGap, 0.2).class(),
            FaultClass::Parametric
        );
    }

    #[test]
    fn display_messages() {
        assert_eq!(FaultClass::Catastrophic.to_string(), "catastrophic");
        assert_eq!(
            CatastrophicDefect::DielectricBreakdown.to_string(),
            "dielectric breakdown"
        );
        let c = DefectCause::Parametric(ParametricDefect::InsulatorThickness, -0.15);
        assert!(c.to_string().contains("-15.0%"));
        assert!(CatastrophicDefect::ElectrodeShort(HexDir::East)
            .to_string()
            .contains("East"));
        assert!(!ParametricDefect::ElectrodeLength.to_string().is_empty());
    }
}
