//! Scripted adversarial fault campaigns: a small scenario DSL and its
//! deterministic compiler.
//!
//! The stochastic models in this crate answer "what fraction of chips
//! survive random damage?". A fab or deployment also asks the targeted
//! question: *what happens to this chip after a localized process
//! excursion, a cluster next to a reservoir, or a season of wear?* This
//! module scripts such attacks as named **scenarios** — an ordered list
//! of damage steps in a hand-rolled line-oriented text format — and
//! compiles them into deterministic, seeded [`DefectMap`] trajectories.
//!
//! Replay discipline follows the remote fault-injection plan of the
//! qsl-protocol test suite (NA-0090): every step `idx` carries the marker
//! key `k = seed + idx`, per-step randomness comes from
//! [`SeedSequence::nth_seed`]`(seed, idx)`, and each step emits one
//! textual marker line. Rehearsal runs ([`Scenario::rehearse`]) inject
//! nothing and emit `ok` markers only; live runs ([`Scenario::execute`])
//! inject the scripted damage and flag the affected steps `hostile`.
//! Identical seeds therefore produce byte-identical marker streams on
//! every rerun, which is what the campaign replay gates compare.
//!
//! # Grammar
//!
//! ```text
//! scenario <name>              # [a-z0-9-], first line
//! step calm                    # no damage; marker plumbing only
//! step wipe-column <i>         # i-th occupied axial column (from west)
//! step wipe-row <i>            # i-th occupied axial row (from north)
//! step cluster <q> <r> radius <R> peak <P>   # hop-decayed blast at (q,r)
//! step wear mtbf <H> stress <S> hours <T>    # MtbfModel service faults
//! step drift sigma <S> tolerance <T>         # ParametricModel excursion
//! step salvo <n>               # n lanes, k%4==0 open / k%4==1 breakdown
//! ```
//!
//! Blank lines and `#` comments are ignored. [`Scenario`] implements
//! [`fmt::Display`] with the canonical form of the same grammar, so
//! `parse → format → parse` round-trips exactly.
//!
//! # Example
//!
//! ```
//! use dmfb_defects::scenario::Scenario;
//! use dmfb_grid::Region;
//!
//! let s = Scenario::parse("scenario demo\nstep wipe-column 0\nstep salvo 8\n").unwrap();
//! let region = Region::parallelogram(6, 6);
//! let live = s.execute(&region, 41);
//! let dry = s.rehearse(&region, 41);
//! assert!(live.hostile_count() > 0);
//! assert_eq!(dry.hostile_count(), 0);
//! assert_eq!(live.markers(), s.execute(&region, 41).markers());
//! ```

use crate::fault::{CatastrophicDefect, DefectCause};
use crate::map::DefectMap;
use crate::operational::MtbfModel;
use crate::parametric::ParametricModel;
use dmfb_grid::{HexCoord, Region};
use dmfb_sim::SeedSequence;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::str::FromStr;

/// Maximum number of steps in one scenario.
pub const MAX_STEPS: usize = 64;
/// Maximum scenario name length in bytes.
pub const MAX_NAME_LEN: usize = 64;
/// Maximum salvo lane count per step.
pub const MAX_SALVO: u32 = 4_096;
/// Maximum cluster blast radius in hops.
pub const MAX_CLUSTER_RADIUS: u32 = 64;
/// Maximum absolute axial coordinate accepted for cluster centers, and
/// maximum wipe index — matches the CLI's array-dimension cap.
pub const MAX_COORD: i32 = 4_096;
/// Maximum hours accepted for wear horizons and cell MTBF.
pub const MAX_HOURS: f64 = 1.0e9;

/// One scripted damage step.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum StepAction {
    /// No damage: the step only exercises marker plumbing, so rehearsal
    /// and live runs agree on it.
    Calm,
    /// Kill every cell in the `i`-th occupied axial column (distinct `q`
    /// values of the target region, ascending). An index past the last
    /// column injects nothing.
    WipeColumn(u32),
    /// Kill every cell in the `i`-th occupied axial row (distinct `r`
    /// values, ascending). An index past the last row injects nothing.
    WipeRow(u32),
    /// A localized blast centred at axial `(q, r)`: each cell within
    /// `radius` hops fails with probability `peak * (1 - d/(radius+1))`.
    Cluster {
        /// Axial column of the blast center.
        q: i32,
        /// Axial row of the blast center.
        r: i32,
        /// Blast radius in hops.
        radius: u32,
        /// Failure probability at the center, in `(0, 1]`.
        peak: f64,
    },
    /// In-service wear over a horizon: [`MtbfModel::inject_service_faults`]
    /// with the given cell MTBF, stress multiplier, and horizon hours.
    Wear {
        /// Cell mean time between failures at reference stress, hours.
        mtbf_hours: f64,
        /// Stress multiplier (≥ 0).
        stress: f64,
        /// Operating horizon in hours.
        hours: f64,
    },
    /// A parametric process excursion: [`ParametricModel::inject`] with
    /// the given deviation sigma and tolerance.
    Drift {
        /// Relative standard deviation of the geometry parameters.
        sigma: f64,
        /// Relative tolerance beyond which a deviation is a fault.
        tolerance: f64,
    },
    /// `n` targeted lanes over distinct cells drawn from the step RNG;
    /// lane `j` uses key `k + j` and the NA-0090 mapping: `% 4 == 0`
    /// injects an open connection, `% 4 == 1` a dielectric breakdown,
    /// anything else leaves the lane's cell untouched.
    Salvo(u32),
}

impl StepAction {
    /// Space-free marker label, stable across releases (replay gates
    /// byte-compare it).
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            StepAction::Calm => "calm".to_string(),
            StepAction::WipeColumn(i) => format!("wipe-column:{i}"),
            StepAction::WipeRow(i) => format!("wipe-row:{i}"),
            StepAction::Cluster { q, r, radius, peak } => {
                format!("cluster:{q},{r}:r{radius}:p{peak}")
            }
            StepAction::Wear {
                mtbf_hours,
                stress,
                hours,
            } => format!("wear:mtbf{mtbf_hours}:s{stress}:h{hours}"),
            StepAction::Drift { sigma, tolerance } => format!("drift:s{sigma}:t{tolerance}"),
            StepAction::Salvo(n) => format!("salvo:{n}"),
        }
    }

    /// Validates the action's parameters; `Err` carries the reason.
    fn validate(&self) -> Result<(), String> {
        match *self {
            StepAction::Calm => Ok(()),
            StepAction::WipeColumn(i) | StepAction::WipeRow(i) => {
                if i > MAX_COORD as u32 {
                    Err(format!("wipe index {i} exceeds {MAX_COORD}"))
                } else {
                    Ok(())
                }
            }
            StepAction::Cluster { q, r, radius, peak } => {
                if q.abs() > MAX_COORD || r.abs() > MAX_COORD {
                    Err(format!("cluster center ({q}, {r}) exceeds |{MAX_COORD}|"))
                } else if radius > MAX_CLUSTER_RADIUS {
                    Err(format!(
                        "cluster radius {radius} exceeds {MAX_CLUSTER_RADIUS}"
                    ))
                } else if !(peak.is_finite() && 0.0 < peak && peak <= 1.0) {
                    Err(format!("cluster peak {peak} must be in (0, 1]"))
                } else {
                    Ok(())
                }
            }
            StepAction::Wear {
                mtbf_hours,
                stress,
                hours,
            } => {
                if !(mtbf_hours.is_finite() && 0.0 < mtbf_hours && mtbf_hours <= MAX_HOURS) {
                    Err(format!(
                        "wear mtbf {mtbf_hours} must be in (0, {MAX_HOURS:e}]"
                    ))
                } else if !(stress.is_finite() && (0.0..=1_000.0).contains(&stress)) {
                    Err(format!("wear stress {stress} must be in [0, 1000]"))
                } else if !(hours.is_finite() && (0.0..=MAX_HOURS).contains(&hours)) {
                    Err(format!("wear hours {hours} must be in [0, {MAX_HOURS:e}]"))
                } else {
                    Ok(())
                }
            }
            StepAction::Drift { sigma, tolerance } => {
                if !(sigma.is_finite() && 0.0 < sigma && sigma <= 10.0) {
                    Err(format!("drift sigma {sigma} must be in (0, 10]"))
                } else if !(tolerance.is_finite() && 0.0 < tolerance && tolerance <= 10.0) {
                    Err(format!("drift tolerance {tolerance} must be in (0, 10]"))
                } else {
                    Ok(())
                }
            }
            StepAction::Salvo(n) => {
                if n == 0 || n > MAX_SALVO {
                    Err(format!("salvo count {n} must be in 1..={MAX_SALVO}"))
                } else {
                    Ok(())
                }
            }
        }
    }
}

impl fmt::Display for StepAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StepAction::Calm => write!(f, "calm"),
            StepAction::WipeColumn(i) => write!(f, "wipe-column {i}"),
            StepAction::WipeRow(i) => write!(f, "wipe-row {i}"),
            StepAction::Cluster { q, r, radius, peak } => {
                write!(f, "cluster {q} {r} radius {radius} peak {peak}")
            }
            StepAction::Wear {
                mtbf_hours,
                stress,
                hours,
            } => write!(f, "wear mtbf {mtbf_hours} stress {stress} hours {hours}"),
            StepAction::Drift { sigma, tolerance } => {
                write!(f, "drift sigma {sigma} tolerance {tolerance}")
            }
            StepAction::Salvo(n) => write!(f, "salvo {n}"),
        }
    }
}

/// A parse or validation failure, with the 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScenarioError {
    /// 1-based line number of the offending input line (0 for whole-file
    /// problems such as a missing `scenario` header).
    pub line: usize,
    /// Human-readable reason.
    pub message: String,
}

impl ScenarioError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ScenarioError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "scenario: {}", self.message)
        } else {
            write!(f, "scenario line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ScenarioError {}

/// A named, ordered list of damage steps.
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    name: String,
    steps: Vec<StepAction>,
}

impl Scenario {
    /// Builds a scenario from parts, applying the same validation as the
    /// parser.
    pub fn new(name: impl Into<String>, steps: Vec<StepAction>) -> Result<Self, ScenarioError> {
        let name = name.into();
        validate_name(&name).map_err(|m| ScenarioError::new(0, m))?;
        if steps.is_empty() {
            return Err(ScenarioError::new(0, "scenario has no steps"));
        }
        if steps.len() > MAX_STEPS {
            return Err(ScenarioError::new(
                0,
                format!("{} steps exceed the {MAX_STEPS}-step cap", steps.len()),
            ));
        }
        for (idx, step) in steps.iter().enumerate() {
            step.validate()
                .map_err(|m| ScenarioError::new(0, format!("step {idx}: {m}")))?;
        }
        Ok(Scenario { name, steps })
    }

    /// The scenario name (`[a-z0-9-]`, at most [`MAX_NAME_LEN`] bytes).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The scripted steps in execution order.
    #[must_use]
    pub fn steps(&self) -> &[StepAction] {
        &self.steps
    }

    /// Parses DSL text. Blank lines and `#` comments are ignored; the
    /// first significant line must be `scenario <name>`, every following
    /// line `step <action ...>`. Errors are clean [`ScenarioError`]s —
    /// the parser never panics, whatever the input.
    pub fn parse(text: &str) -> Result<Self, ScenarioError> {
        let mut name: Option<String> = None;
        let mut steps: Vec<StepAction> = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            let line = match raw.find('#') {
                Some(pos) => &raw[..pos],
                None => raw,
            };
            let mut tokens = line.split_whitespace();
            let Some(head) = tokens.next() else { continue };
            match head {
                "scenario" => {
                    if name.is_some() {
                        return Err(ScenarioError::new(lineno, "duplicate 'scenario' header"));
                    }
                    if !steps.is_empty() {
                        return Err(ScenarioError::new(lineno, "'scenario' must come first"));
                    }
                    let n = tokens
                        .next()
                        .ok_or_else(|| ScenarioError::new(lineno, "missing scenario name"))?;
                    validate_name(n).map_err(|m| ScenarioError::new(lineno, m))?;
                    reject_trailing(lineno, &mut tokens)?;
                    name = Some(n.to_string());
                }
                "step" => {
                    if name.is_none() {
                        return Err(ScenarioError::new(
                            lineno,
                            "'step' before the 'scenario' header",
                        ));
                    }
                    if steps.len() == MAX_STEPS {
                        return Err(ScenarioError::new(
                            lineno,
                            format!("more than {MAX_STEPS} steps"),
                        ));
                    }
                    let action = parse_action(lineno, &mut tokens)?;
                    reject_trailing(lineno, &mut tokens)?;
                    action
                        .validate()
                        .map_err(|m| ScenarioError::new(lineno, m))?;
                    steps.push(action);
                }
                other => {
                    return Err(ScenarioError::new(
                        lineno,
                        format!("unknown directive '{other}' (expected 'scenario' or 'step')"),
                    ));
                }
            }
        }
        let name = name.ok_or_else(|| ScenarioError::new(0, "missing 'scenario <name>' header"))?;
        if steps.is_empty() {
            return Err(ScenarioError::new(0, "scenario has no steps"));
        }
        Ok(Scenario { name, steps })
    }

    /// Compiles the scenario against `region` with live damage: each step
    /// injects its scripted faults into the cumulative [`DefectMap`] and
    /// emits a marker (`hostile` when the step newly marked any cell).
    #[must_use]
    pub fn execute(&self, region: &Region, seed: u64) -> Trajectory {
        self.run(region, seed, true)
    }

    /// Dry-runs the scenario: identical step keys and labels, but no step
    /// injects anything, so every marker reads `injected=0 … ok`. This is
    /// the happy path of the NA-0090 triads.
    #[must_use]
    pub fn rehearse(&self, region: &Region, seed: u64) -> Trajectory {
        self.run(region, seed, false)
    }

    fn run(&self, region: &Region, seed: u64, live: bool) -> Trajectory {
        let mut cumulative: DefectMap = DefectMap::new();
        let mut steps = Vec::with_capacity(self.steps.len());
        for (idx, action) in self.steps.iter().enumerate() {
            let k = seed.wrapping_add(idx as u64);
            let mut injected = 0usize;
            if live {
                let mut rng = StdRng::seed_from_u64(SeedSequence::nth_seed(seed, idx as u64));
                let delta = apply_action(action, region, k, &mut rng);
                for (cell, cause) in delta.iter() {
                    if !cumulative.is_faulty(cell) {
                        cumulative.mark(cell, *cause);
                        injected += 1;
                    }
                }
            }
            steps.push(StepRecord {
                idx,
                k,
                action: *action,
                injected,
                map: cumulative.clone(),
            });
        }
        Trajectory {
            scenario: self.name.clone(),
            seed,
            live,
            steps,
        }
    }
}

impl fmt::Display for Scenario {
    /// Canonical DSL text; [`Scenario::parse`] of the output yields an
    /// equal scenario.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "scenario {}", self.name)?;
        for step in &self.steps {
            writeln!(f, "step {step}")?;
        }
        Ok(())
    }
}

impl FromStr for Scenario {
    type Err = ScenarioError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Scenario::parse(s)
    }
}

/// One compiled step: marker key, action, and the cumulative damage after
/// the step ran.
#[derive(Clone, Debug, PartialEq)]
pub struct StepRecord {
    /// 0-based step index.
    pub idx: usize,
    /// Marker key `k = seed + idx` (wrapping), the NA-0090 replay handle.
    pub k: u64,
    /// The scripted action.
    pub action: StepAction,
    /// Cells newly marked faulty by this step (0 on rehearsal).
    pub injected: usize,
    /// Cumulative defect map after this step.
    pub map: DefectMap,
}

impl StepRecord {
    /// Whether the step damaged the chip.
    #[must_use]
    pub fn hostile(&self) -> bool {
        self.injected > 0
    }

    /// The replayable marker line for this step.
    #[must_use]
    pub fn marker(&self) -> String {
        format!(
            "marker step={} k={} action={} injected={} cumulative={} {}",
            self.idx,
            self.k,
            self.action.label(),
            self.injected,
            self.map.fault_count(),
            if self.hostile() { "hostile" } else { "ok" }
        )
    }
}

/// A compiled scenario: the per-step records of one seeded run.
#[derive(Clone, Debug, PartialEq)]
pub struct Trajectory {
    /// Name of the scenario that produced this trajectory.
    pub scenario: String,
    /// Master seed of the run.
    pub seed: u64,
    /// `true` for [`Scenario::execute`], `false` for [`Scenario::rehearse`].
    pub live: bool,
    /// Per-step records in execution order.
    pub steps: Vec<StepRecord>,
}

impl Trajectory {
    /// The newline-terminated marker stream — the byte string the replay
    /// gates compare across reruns and thread counts.
    #[must_use]
    pub fn markers(&self) -> String {
        let mut out = String::new();
        for step in &self.steps {
            out.push_str(&step.marker());
            out.push('\n');
        }
        out
    }

    /// Cumulative damage after the final step (empty for an empty run).
    #[must_use]
    pub fn final_map(&self) -> DefectMap {
        self.steps.last().map(|s| s.map.clone()).unwrap_or_default()
    }

    /// Number of steps that injected damage.
    #[must_use]
    pub fn hostile_count(&self) -> usize {
        self.steps.iter().filter(|s| s.hostile()).count()
    }
}

/// Computes the damage one live step deals, before merging into the
/// cumulative map. Public within the crate for the oracle proptests.
pub(crate) fn apply_action(
    action: &StepAction,
    region: &Region,
    k: u64,
    rng: &mut StdRng,
) -> DefectMap {
    let open = DefectCause::Catastrophic(CatastrophicDefect::OpenConnection);
    let breakdown = DefectCause::Catastrophic(CatastrophicDefect::DielectricBreakdown);
    match *action {
        StepAction::Calm => DefectMap::new(),
        StepAction::WipeColumn(i) => {
            let mut qs: Vec<i32> = region.iter().map(|c| c.q).collect();
            qs.dedup(); // region iterates sorted by (q, r)
            match qs.get(i as usize) {
                Some(&q) => region
                    .iter()
                    .filter(|c| c.q == q)
                    .map(|c| (c, open))
                    .collect(),
                None => DefectMap::new(),
            }
        }
        StepAction::WipeRow(i) => {
            let mut rs: Vec<i32> = region.iter().map(|c| c.r).collect();
            rs.sort_unstable();
            rs.dedup();
            match rs.get(i as usize) {
                Some(&r) => region
                    .iter()
                    .filter(|c| c.r == r)
                    .map(|c| (c, open))
                    .collect(),
                None => DefectMap::new(),
            }
        }
        StepAction::Cluster { q, r, radius, peak } => {
            let center = HexCoord::new(q, r);
            let mut map = DefectMap::new();
            for cell in region.iter() {
                let d = cell.distance(center);
                if d <= radius {
                    let p = peak * (1.0 - f64::from(d) / f64::from(radius + 1));
                    if rng.gen_bool(p.clamp(0.0, 1.0)) {
                        map.mark(cell, breakdown);
                    }
                }
            }
            map
        }
        StepAction::Wear {
            mtbf_hours,
            stress,
            hours,
        } => MtbfModel::new(mtbf_hours, stress).inject_service_faults(region, hours, rng),
        StepAction::Drift { sigma, tolerance } => {
            ParametricModel::new(sigma, tolerance).inject(region, rng)
        }
        StepAction::Salvo(n) => {
            let mut cells: Vec<HexCoord> = region.iter().collect();
            let lanes = (n as usize).min(cells.len());
            let mut map = DefectMap::new();
            for j in 0..lanes {
                let pick = rng.gen_range(j..cells.len());
                cells.swap(j, pick);
                // NA-0090 lane mapping: k%4==0 → open, k%4==1 → breakdown,
                // 2 and 3 → the lane holds fire.
                match k.wrapping_add(j as u64) % 4 {
                    0 => {
                        map.mark(cells[j], open);
                    }
                    1 => {
                        map.mark(cells[j], breakdown);
                    }
                    _ => {}
                }
            }
            map
        }
    }
}

fn validate_name(name: &str) -> Result<(), String> {
    if name.is_empty() {
        return Err("empty scenario name".to_string());
    }
    if name.len() > MAX_NAME_LEN {
        return Err(format!("scenario name longer than {MAX_NAME_LEN} bytes"));
    }
    if !name
        .bytes()
        .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-')
    {
        return Err(format!(
            "invalid scenario name '{name}' (use lowercase letters, digits, '-')"
        ));
    }
    Ok(())
}

fn reject_trailing<'a>(
    lineno: usize,
    tokens: &mut impl Iterator<Item = &'a str>,
) -> Result<(), ScenarioError> {
    match tokens.next() {
        Some(extra) => Err(ScenarioError::new(
            lineno,
            format!("unexpected trailing token '{extra}'"),
        )),
        None => Ok(()),
    }
}

fn parse_action<'a>(
    lineno: usize,
    tokens: &mut impl Iterator<Item = &'a str>,
) -> Result<StepAction, ScenarioError> {
    let verb = tokens
        .next()
        .ok_or_else(|| ScenarioError::new(lineno, "missing step action"))?;
    match verb {
        "calm" => Ok(StepAction::Calm),
        "wipe-column" => Ok(StepAction::WipeColumn(parse_u32(lineno, tokens, "index")?)),
        "wipe-row" => Ok(StepAction::WipeRow(parse_u32(lineno, tokens, "index")?)),
        "cluster" => {
            let q = parse_i32(lineno, tokens, "q")?;
            let r = parse_i32(lineno, tokens, "r")?;
            expect_keyword(lineno, tokens, "radius")?;
            let radius = parse_u32(lineno, tokens, "radius")?;
            expect_keyword(lineno, tokens, "peak")?;
            let peak = parse_f64(lineno, tokens, "peak")?;
            Ok(StepAction::Cluster { q, r, radius, peak })
        }
        "wear" => {
            expect_keyword(lineno, tokens, "mtbf")?;
            let mtbf_hours = parse_f64(lineno, tokens, "mtbf")?;
            expect_keyword(lineno, tokens, "stress")?;
            let stress = parse_f64(lineno, tokens, "stress")?;
            expect_keyword(lineno, tokens, "hours")?;
            let hours = parse_f64(lineno, tokens, "hours")?;
            Ok(StepAction::Wear {
                mtbf_hours,
                stress,
                hours,
            })
        }
        "drift" => {
            expect_keyword(lineno, tokens, "sigma")?;
            let sigma = parse_f64(lineno, tokens, "sigma")?;
            expect_keyword(lineno, tokens, "tolerance")?;
            let tolerance = parse_f64(lineno, tokens, "tolerance")?;
            Ok(StepAction::Drift { sigma, tolerance })
        }
        "salvo" => Ok(StepAction::Salvo(parse_u32(lineno, tokens, "count")?)),
        other => Err(ScenarioError::new(
            lineno,
            format!(
                "unknown action '{other}' (expected calm, wipe-column, wipe-row, \
                 cluster, wear, drift, or salvo)"
            ),
        )),
    }
}

fn expect_keyword<'a>(
    lineno: usize,
    tokens: &mut impl Iterator<Item = &'a str>,
    kw: &str,
) -> Result<(), ScenarioError> {
    match tokens.next() {
        Some(t) if t == kw => Ok(()),
        Some(t) => Err(ScenarioError::new(
            lineno,
            format!("expected keyword '{kw}', found '{t}'"),
        )),
        None => Err(ScenarioError::new(
            lineno,
            format!("missing keyword '{kw}'"),
        )),
    }
}

fn parse_u32<'a>(
    lineno: usize,
    tokens: &mut impl Iterator<Item = &'a str>,
    what: &str,
) -> Result<u32, ScenarioError> {
    let t = tokens
        .next()
        .ok_or_else(|| ScenarioError::new(lineno, format!("missing {what}")))?;
    t.parse::<u32>()
        .map_err(|_| ScenarioError::new(lineno, format!("invalid {what} '{t}'")))
}

fn parse_i32<'a>(
    lineno: usize,
    tokens: &mut impl Iterator<Item = &'a str>,
    what: &str,
) -> Result<i32, ScenarioError> {
    let t = tokens
        .next()
        .ok_or_else(|| ScenarioError::new(lineno, format!("missing {what}")))?;
    t.parse::<i32>()
        .map_err(|_| ScenarioError::new(lineno, format!("invalid {what} '{t}'")))
}

fn parse_f64<'a>(
    lineno: usize,
    tokens: &mut impl Iterator<Item = &'a str>,
    what: &str,
) -> Result<f64, ScenarioError> {
    let t = tokens
        .next()
        .ok_or_else(|| ScenarioError::new(lineno, format!("missing {what}")))?;
    let v = t
        .parse::<f64>()
        .map_err(|_| ScenarioError::new(lineno, format!("invalid {what} '{t}'")))?;
    if v.is_finite() {
        Ok(v)
    } else {
        Err(ScenarioError::new(
            lineno,
            format!("non-finite {what} '{t}'"),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEMO: &str = "\
# a comment
scenario demo-1

step calm
step wipe-column 0   # west edge
step cluster 2 3 radius 2 peak 0.9
step wear mtbf 2000 stress 1.5 hours 500
step drift sigma 0.05 tolerance 0.1
step salvo 16
";

    #[test]
    fn parses_and_round_trips() {
        let s = Scenario::parse(DEMO).unwrap();
        assert_eq!(s.name(), "demo-1");
        assert_eq!(s.steps().len(), 6);
        let text = s.to_string();
        let again = Scenario::parse(&text).unwrap();
        assert_eq!(s, again);
        assert_eq!(text, again.to_string());
    }

    #[test]
    fn parse_errors_are_clean() {
        for (input, needle) in [
            ("", "missing 'scenario"),
            ("scenario", "missing scenario name"),
            ("scenario UPPER\nstep calm\n", "invalid scenario name"),
            ("scenario x\n", "no steps"),
            ("step calm\n", "before the 'scenario'"),
            ("scenario x\nscenario y\nstep calm\n", "duplicate"),
            ("scenario x\nstep calm extra\n", "trailing token"),
            ("scenario x\nstep explode\n", "unknown action"),
            ("scenario x\nstep salvo 0\n", "salvo count"),
            ("scenario x\nstep salvo nan\n", "invalid count"),
            ("scenario x\nstep cluster 0 0 radius 2 peak 1.5\n", "peak"),
            (
                "scenario x\nstep cluster 0 0 radius 999 peak 0.5\n",
                "radius",
            ),
            ("scenario x\nstep wear mtbf inf stress 1 hours 1\n", "mtbf"),
            ("scenario x\nstep drift sigma 0 tolerance 0.1\n", "sigma"),
            (
                "scenario x\nstep cluster 0 0 peak 0.5\n",
                "expected keyword 'radius'",
            ),
            ("bogus directive\n", "unknown directive"),
        ] {
            let err = Scenario::parse(input).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "input {input:?}: error {err} should mention {needle:?}"
            );
        }
    }

    #[test]
    fn wipe_column_kills_exactly_one_column() {
        let s = Scenario::parse("scenario w\nstep wipe-column 0\n").unwrap();
        let region = Region::parallelogram(4, 5);
        let t = s.execute(&region, 9);
        assert_eq!(t.final_map().fault_count(), 5);
        assert!(t.final_map().iter().all(|(c, _)| c.q == 0));
        // Out-of-range index is a no-op, not an error.
        let s = Scenario::parse("scenario w\nstep wipe-column 99\n").unwrap();
        assert_eq!(s.execute(&region, 9).final_map().fault_count(), 0);
    }

    #[test]
    fn rehearse_is_damage_free_and_live_is_hostile() {
        let s = Scenario::parse(DEMO).unwrap();
        let region = Region::parallelogram(8, 8);
        let dry = s.rehearse(&region, 7);
        assert_eq!(dry.hostile_count(), 0);
        assert!(dry.final_map().is_fault_free());
        assert!(dry.markers().lines().all(|l| l.ends_with(" ok")));
        let live = s.execute(&region, 7);
        assert!(live.hostile_count() > 0);
        assert!(live.markers().lines().any(|l| l.ends_with(" hostile")));
        // Same keys and labels on both sides of the triad.
        for (a, b) in dry.steps.iter().zip(live.steps.iter()) {
            assert_eq!(a.k, b.k);
            assert_eq!(a.action, b.action);
        }
    }

    #[test]
    fn markers_replay_byte_identically() {
        let s = Scenario::parse(DEMO).unwrap();
        let region = Region::parallelogram(8, 8);
        let a = s.execute(&region, 1234);
        let b = s.execute(&region, 1234);
        assert_eq!(a.markers(), b.markers());
        assert_eq!(a.final_map(), b.final_map());
        let c = s.execute(&region, 1235);
        assert_ne!(a.markers(), c.markers(), "seed must matter");
    }

    #[test]
    fn salvo_key_mapping_follows_na0090() {
        // With seed chosen so k = 4m, lanes 0 and 1 fire (k%4==0 open,
        // k+1%4==1 breakdown), lanes 2 and 3 hold.
        let s = Scenario::parse("scenario v\nstep salvo 4\n").unwrap();
        let region = Region::parallelogram(6, 6);
        let t = s.execute(&region, 8);
        assert_eq!(t.steps[0].k, 8);
        assert_eq!(t.steps[0].injected, 2);
        let classes: Vec<_> = t.final_map().iter().map(|(_, c)| *c).collect();
        assert!(classes.contains(&DefectCause::Catastrophic(
            CatastrophicDefect::OpenConnection
        )));
        assert!(classes.contains(&DefectCause::Catastrophic(
            CatastrophicDefect::DielectricBreakdown
        )));
    }

    #[test]
    fn cluster_damage_stays_within_radius() {
        let s = Scenario::parse("scenario c\nstep cluster 3 3 radius 2 peak 1\n").unwrap();
        let region = Region::parallelogram(8, 8);
        let t = s.execute(&region, 5);
        let center = HexCoord::new(3, 3);
        assert!(t.final_map().fault_count() > 0);
        assert!(t.final_map().iter().all(|(c, _)| c.distance(center) <= 2));
        // Peak 1 at distance 0 always fires.
        assert!(t.final_map().is_faulty(center));
    }
}
