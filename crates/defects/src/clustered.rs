//! Clustered wafer-defect model: negative-binomial cluster seeds with
//! topology-aware spread.
//!
//! The paper's yield analysis assumes i.i.d. cell failures, but real
//! wafers do not fail that way: contamination events seed *clusters* of
//! defects, and the number of events per chip is over-dispersed relative
//! to a Poisson count (the classic negative-binomial yield models of the
//! semiconductor literature). [`ClusteredDefects`] models both effects:
//!
//! * the **cluster count** per chip is negative-binomial — a compound
//!   (Gamma-mixed Poisson) law sampled as a sum of `dispersion` geometric
//!   variates, so smaller `dispersion` means burstier wafers at the same
//!   mean;
//! * each cluster seeds at a uniformly random cell and **spreads by BFS
//!   over the topology's adjacency** out to `spread_radius`, failing
//!   cells with a probability that decays linearly with hop distance.
//!   Because the spread walks [`Topology::neighbors_of`], the same model
//!   is wafer-realistic on the hexagonal DTMB lattice, the square
//!   interstitial lattice, and anything added later — clusters follow
//!   the actual electrode adjacency instead of a hard-coded geometry.
//!
//! Unlike the hex-only [`ClusteredSpot`](crate::injection::ClusteredSpot)
//! ablation (Poisson counts, hexagonal rings), this model is generic over
//! [`Topology`] exactly like the PR 3 injectors, so it can drive the
//! scheme-generic yield engines directly.
//!
//! # Example
//!
//! ```
//! use dmfb_defects::clustered::ClusteredDefects;
//! use dmfb_grid::SquareRegion;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let model = ClusteredDefects::new(2.0, 1, 2, 0.8);
//! let mut rng = StdRng::seed_from_u64(7);
//! let map = model.inject_in(&SquareRegion::rect(20, 20), &mut rng);
//! // Clusters are local: every failed cell is within the region.
//! assert!(map.fault_count() <= 400);
//! ```

use crate::fault::{CatastrophicDefect, DefectCause};
use crate::injection::InjectionModel;
use crate::DefectMap;
use dmfb_grid::{Region, Topology};
use rand::Rng;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Negative-binomial clustered defect model, generic over the lattice
/// topology.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClusteredDefects {
    mean_clusters: f64,
    dispersion: u32,
    spread_radius: u32,
    peak_probability: f64,
}

impl ClusteredDefects {
    /// Creates the model.
    ///
    /// * `mean_clusters` — expected contamination events per chip;
    /// * `dispersion` — the negative-binomial shape `r ≥ 1`: the count is
    ///   a sum of `r` geometric variates with mean `mean_clusters / r`
    ///   each, so variance is `mean·(1 + mean/r)`; small `r` = bursty
    ///   wafers, large `r` → Poisson-like counts;
    /// * `spread_radius` — BFS hops a cluster reaches from its seed;
    /// * `peak_probability` — failure probability at the seed, decaying
    ///   linearly to zero at `spread_radius + 1` hops.
    ///
    /// # Panics
    ///
    /// Panics if `mean_clusters < 0`, `dispersion == 0`, or
    /// `peak_probability` is outside `[0, 1]`.
    #[must_use]
    pub fn new(
        mean_clusters: f64,
        dispersion: u32,
        spread_radius: u32,
        peak_probability: f64,
    ) -> Self {
        assert!(
            mean_clusters >= 0.0 && mean_clusters.is_finite(),
            "mean_clusters must be non-negative and finite"
        );
        assert!(dispersion >= 1, "dispersion must be at least 1");
        assert!(
            (0.0..=1.0).contains(&peak_probability),
            "peak probability must be in [0, 1]"
        );
        ClusteredDefects {
            mean_clusters,
            dispersion,
            spread_radius,
            peak_probability,
        }
    }

    /// Expected contamination events per chip.
    #[must_use]
    pub fn mean_clusters(&self) -> f64 {
        self.mean_clusters
    }

    /// The negative-binomial shape parameter `r`.
    #[must_use]
    pub fn dispersion(&self) -> u32 {
        self.dispersion
    }

    /// BFS spread radius in lattice hops.
    #[must_use]
    pub fn spread_radius(&self) -> u32 {
        self.spread_radius
    }

    /// Failure probability at the cluster seed.
    #[must_use]
    pub fn peak_probability(&self) -> f64 {
        self.peak_probability
    }

    /// Failure probability at BFS depth `d` from a seed: linear decay
    /// from the peak to zero at `spread_radius + 1` hops.
    #[must_use]
    pub fn probability_at(&self, depth: u32) -> f64 {
        if depth > self.spread_radius {
            return 0.0;
        }
        let decay = 1.0 - f64::from(depth) / (f64::from(self.spread_radius) + 1.0);
        self.peak_probability * decay
    }

    /// Variance of the cluster count: `mean·(1 + mean/r)` — always
    /// over-dispersed relative to the Poisson count of equal mean.
    #[must_use]
    pub fn cluster_count_variance(&self) -> f64 {
        self.mean_clusters * (1.0 + self.mean_clusters / f64::from(self.dispersion))
    }

    /// Samples the negative-binomial cluster count as a sum of
    /// `dispersion` geometric variates (failures before success at
    /// success probability `r / (r + mean)`), by inversion.
    fn sample_cluster_count(&self, rng: &mut impl Rng) -> u32 {
        if self.mean_clusters == 0.0 {
            return 0;
        }
        let r = f64::from(self.dispersion);
        let success = r / (r + self.mean_clusters);
        let ln_fail = (1.0 - success).ln();
        let mut total = 0u64;
        for _ in 0..self.dispersion {
            // Inversion: P(X >= k) = (1-s)^k, so X = floor(ln U / ln(1-s)).
            let u: f64 = rng.gen();
            let draw = if u <= 0.0 {
                0.0
            } else {
                (u.ln() / ln_fail).floor()
            };
            // Guard pathological parameters; 10^4 clusters already blanket
            // any realistic chip.
            total += draw.clamp(0.0, 10_000.0) as u64;
        }
        u32::try_from(total.min(u64::from(u32::MAX))).unwrap_or(u32::MAX)
    }

    /// Samples one chip instance's defects on any topology: draws the
    /// cluster count, seeds each cluster uniformly, and BFS-spreads it
    /// over the lattice adjacency with depth-decayed failure probability.
    /// All cells are marked with a generic open-connection cause (the
    /// richer cause taxonomy is hexagonal-specific).
    ///
    /// Randomness consumption per cluster depends only on the seed and
    /// the topology, never on previously drawn faults, so trials are
    /// reproducible under common-random-number schemes.
    pub fn inject_in<T: Topology>(&self, topo: &T, rng: &mut impl Rng) -> DefectMap<T::Coord> {
        let mut map = DefectMap::new();
        let cells: Vec<T::Coord> = topo.cells_iter().collect();
        if cells.is_empty() {
            return map;
        }
        let clusters = self.sample_cluster_count(rng);
        // Generation-stamped visited set, reused across clusters.
        let mut visited: BTreeMap<T::Coord, u32> = BTreeMap::new();
        let mut queue: VecDeque<(T::Coord, u32)> = VecDeque::new();
        for cluster in 1..=clusters {
            let seed = cells[rng.gen_range(0..cells.len())];
            queue.clear();
            queue.push_back((seed, 0));
            visited.insert(seed, cluster);
            while let Some((cell, depth)) = queue.pop_front() {
                let prob = self.probability_at(depth);
                if prob > 0.0 && rng.gen_bool(prob) {
                    map.mark(
                        cell,
                        DefectCause::Catastrophic(CatastrophicDefect::OpenConnection),
                    );
                }
                if depth == self.spread_radius {
                    continue;
                }
                for next in topo.neighbors_of(cell) {
                    if visited.get(&next) != Some(&cluster) {
                        visited.insert(next, cluster);
                        queue.push_back((next, depth + 1));
                    }
                }
            }
        }
        map
    }

    /// Expected failed-cell count on `topo`, computed exactly by summing
    /// the per-cell failure probability over every possible seed
    /// (`O(cells × ball)`; intended for tests and calibration, not hot
    /// loops).
    #[must_use]
    pub fn expected_failures_in<T: Topology>(&self, topo: &T) -> f64 {
        let cells: Vec<T::Coord> = topo.cells_iter().collect();
        if cells.is_empty() {
            return 0.0;
        }
        // Per seed: expected failures of one cluster from that seed.
        let mut per_seed_total = 0.0;
        let mut visited: BTreeSet<T::Coord> = BTreeSet::new();
        let mut queue: VecDeque<(T::Coord, u32)> = VecDeque::new();
        for &seed in &cells {
            visited.clear();
            queue.clear();
            queue.push_back((seed, 0));
            visited.insert(seed);
            while let Some((cell, depth)) = queue.pop_front() {
                per_seed_total += self.probability_at(depth);
                if depth == self.spread_radius {
                    continue;
                }
                for next in topo.neighbors_of(cell) {
                    if visited.insert(next) {
                        queue.push_back((next, depth + 1));
                    }
                }
            }
        }
        self.mean_clusters * per_seed_total / cells.len() as f64
    }
}

impl InjectionModel for ClusteredDefects {
    fn inject(&self, region: &Region, rng: &mut impl Rng) -> DefectMap {
        self.inject_in(region, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmfb_grid::SquareRegion;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn parameters_round_trip_and_validate() {
        let m = ClusteredDefects::new(1.5, 2, 3, 0.7);
        assert_eq!(m.mean_clusters(), 1.5);
        assert_eq!(m.dispersion(), 2);
        assert_eq!(m.spread_radius(), 3);
        assert_eq!(m.peak_probability(), 0.7);
        assert!((m.probability_at(0) - 0.7).abs() < 1e-12);
        assert_eq!(m.probability_at(4), 0.0);
        assert!(m.probability_at(1) < m.probability_at(0));
    }

    #[test]
    #[should_panic(expected = "dispersion must be at least 1")]
    fn rejects_zero_dispersion() {
        let _ = ClusteredDefects::new(1.0, 0, 1, 0.5);
    }

    #[test]
    #[should_panic(expected = "peak probability")]
    fn rejects_bad_peak() {
        let _ = ClusteredDefects::new(1.0, 1, 1, 1.5);
    }

    #[test]
    fn zero_mean_injects_nothing() {
        let m = ClusteredDefects::new(0.0, 1, 2, 0.9);
        let map = m.inject_in(&SquareRegion::rect(10, 10), &mut rng(1));
        assert!(map.is_fault_free());
    }

    #[test]
    fn cluster_count_mean_is_calibrated() {
        for dispersion in [1u32, 4] {
            let m = ClusteredDefects::new(3.0, dispersion, 0, 1.0);
            let mut total = 0u64;
            let n = 20_000;
            let mut r = rng(42);
            for _ in 0..n {
                total += u64::from(m.sample_cluster_count(&mut r));
            }
            let mean = total as f64 / f64::from(n);
            assert!(
                (mean - 3.0).abs() < 0.1,
                "dispersion {dispersion}: mean {mean}"
            );
        }
    }

    #[test]
    fn smaller_dispersion_is_burstier() {
        // Same mean, different dispersion: empirical variance must be
        // larger for r = 1 than r = 8, and both above Poisson (= mean).
        let sample_var = |dispersion: u32| {
            let m = ClusteredDefects::new(2.0, dispersion, 0, 1.0);
            let mut r = rng(7);
            let n = 20_000;
            let draws: Vec<f64> = (0..n)
                .map(|_| f64::from(m.sample_cluster_count(&mut r)))
                .collect();
            let mean: f64 = draws.iter().sum::<f64>() / n as f64;
            draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64
        };
        let bursty = sample_var(1);
        let smooth = sample_var(8);
        assert!(bursty > smooth + 0.5, "var r=1 {bursty} vs r=8 {smooth}");
        assert!(
            (bursty - ClusteredDefects::new(2.0, 1, 0, 1.0).cluster_count_variance()).abs() < 0.5
        );
    }

    #[test]
    fn faults_stay_in_region_and_cluster_locally() {
        let region = SquareRegion::rect(30, 30);
        let m = ClusteredDefects::new(1.0, 1, 2, 0.9);
        let mut any = false;
        for seed in 0..30 {
            let map = m.inject_in(&region, &mut rng(seed));
            for c in map.faulty_cells() {
                assert!(region.contains(c));
            }
            any |= !map.is_fault_free();
        }
        assert!(any, "clusters should appear at mean 1.0");
    }

    #[test]
    fn hex_and_square_topologies_both_work() {
        use dmfb_grid::Region;
        let m = ClusteredDefects::new(2.0, 1, 1, 1.0);
        let hex = m.inject_in(&Region::parallelogram(12, 12), &mut rng(3));
        let square = m.inject_in(&SquareRegion::rect(12, 12), &mut rng(3));
        // Peak 1.0 with ≥ 1 cluster ⇒ at least the seed fails.
        assert!(!hex.is_fault_free() || !square.is_fault_free());
        // The hex-region InjectionModel impl is the generic path.
        use crate::injection::InjectionModel as _;
        let via_trait = m.inject(&Region::parallelogram(12, 12), &mut rng(3));
        assert_eq!(via_trait, hex);
    }

    #[test]
    fn expected_failures_match_empirical_rate() {
        let region = SquareRegion::rect(20, 20);
        let m = ClusteredDefects::new(1.5, 2, 1, 0.6);
        let expected = m.expected_failures_in(&region);
        assert!(expected > 0.0);
        let mut r = rng(11);
        let n = 4_000;
        let mut total = 0usize;
        for _ in 0..n {
            total += m.inject_in(&region, &mut r).fault_count();
        }
        let empirical = total as f64 / f64::from(n);
        assert!(
            (empirical - expected).abs() / expected < 0.1,
            "empirical {empirical} vs expected {expected}"
        );
    }

    #[test]
    fn interior_expected_footprint_is_radius_ball() {
        // On a big square lattice an interior cluster touches
        // 1 + 4 + 8 = 13 cells at radius 2... but the decayed expectation
        // per cluster is Σ ring(d)·peak·decay(d). Check the exact helper
        // against a hand computation on a large region (boundary effects
        // diluted below the tolerance).
        let region = SquareRegion::rect(60, 60);
        let m = ClusteredDefects::new(1.0, 1, 2, 0.9);
        // Interior: ring sizes 1, 4, 8 at depths 0, 1, 2 (square
        // 4-adjacency BFS = Manhattan distance).
        let interior = 0.9 * (1.0 + 4.0 * (2.0 / 3.0) + 8.0 * (1.0 / 3.0));
        let exact = m.expected_failures_in(&region);
        assert!(
            (exact - interior).abs() / interior < 0.05,
            "exact {exact} vs interior {interior}"
        );
    }
}
