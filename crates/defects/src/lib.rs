//! Manufacturing defect models, stochastic injection, and droplet-trace
//! testing for digital microfluidic biochips.
//!
//! Following the paper's Section 4, faults are classified like analog
//! circuits: **catastrophic** (dielectric breakdown, shorts between
//! adjacent electrodes, opens in the electrode/control-source connection)
//! and **parametric** (geometry deviations that only fail when they exceed
//! tolerance).
//!
//! Three layers live here:
//!
//! * Fault taxonomy and per-chip [`DefectMap`]s ([`fault`], [`map`]).
//! * Stochastic injection ([`injection`]): the paper's i.i.d. cell-failure
//!   assumption ([`injection::Bernoulli`]), the exact-`m`-failures mode used
//!   for the Figure 13 case study ([`injection::ExactCount`]), and a
//!   clustered-spot extension used only for ablation studies.
//! * Transposed block sampling ([`block`]): up to 64 lock-step per-trial
//!   generators emitting one bit-sliced fault word per cell — the sampler
//!   tier of the word-parallel trial engine, byte-identical to the scalar
//!   per-trial streams.
//! * Clustered wafer defects ([`clustered`]): negative-binomial cluster
//!   seeds spreading over any lattice [`dmfb_grid::Topology`] — the
//!   "real wafers cluster" model the scheme-generic yield engines accept
//!   as a drop-in defect sampler.
//! * Test and diagnosis ([`testing`]): simulation of the electrostatic
//!   droplet-trace test methodology the paper cites (its refs 10 and 11) — a test
//!   droplet traverses the cells; catastrophic faults block it; bisection
//!   over traversal segments localises the faulty cells.
//! * Scripted campaigns ([`scenario`]): a line-oriented DSL compiling
//!   named adversarial fault campaigns into deterministic, seeded damage
//!   trajectories with replayable per-step markers — the targeted-damage
//!   counterpart to the stochastic injectors, built on the same models.
//!
//! # Example
//!
//! ```
//! use dmfb_defects::injection::{Bernoulli, InjectionModel};
//! use dmfb_grid::Region;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let chip = Region::parallelogram(10, 10);
//! let mut rng = StdRng::seed_from_u64(1);
//! let defects = Bernoulli::from_survival(0.95).inject(&chip, &mut rng);
//! assert!(defects.fault_count() <= 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod clustered;
pub mod fault;
pub mod injection;
pub mod map;
pub mod operational;
pub mod parametric;
pub mod scenario;
pub mod testing;

pub use clustered::ClusteredDefects;
pub use fault::{CatastrophicDefect, DefectCause, FaultClass, ParametricDefect};
pub use map::DefectMap;
pub use scenario::{Scenario, ScenarioError, StepAction, StepRecord, Trajectory};
