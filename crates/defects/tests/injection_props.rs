//! Property-based tests for defect injection and droplet-trace testing.

use dmfb_defects::injection::{Bernoulli, ClusteredSpot, ExactCount, InjectionModel};
use dmfb_defects::testing::{covering_walk, diagnose, MeasurementModel};
use dmfb_defects::{DefectCause, DefectMap};
use dmfb_grid::{HexCoord, Region};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_region() -> impl Strategy<Value = Region> {
    (2u32..10, 2u32..10).prop_map(|(w, h)| Region::parallelogram(w, h))
}

proptest! {
    /// Injected faults always land inside the region, for every model.
    #[test]
    fn faults_stay_in_region(region in arb_region(), seed in 0u64..500, q in 0.0f64..=1.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let maps = [
            Bernoulli::new(q).inject(&region, &mut rng),
            ExactCount::new(region.len() / 3).inject(&region, &mut rng),
            ClusteredSpot::new(1.5, 2, 0.7).inject(&region, &mut rng),
        ];
        for map in maps {
            for c in map.faulty_cells() {
                prop_assert!(region.contains(c));
            }
        }
    }

    /// ExactCount injects exactly m distinct faults for any m <= |region|.
    #[test]
    fn exact_count_is_exact(region in arb_region(), seed in 0u64..500, frac in 0.0f64..=1.0) {
        let m = (region.len() as f64 * frac) as usize;
        let mut rng = StdRng::seed_from_u64(seed);
        let map = ExactCount::new(m).inject(&region, &mut rng);
        prop_assert_eq!(map.fault_count(), m);
    }

    /// Injection is deterministic in the RNG seed.
    #[test]
    fn injection_deterministic(region in arb_region(), seed in 0u64..500) {
        let a = Bernoulli::new(0.3).inject(&region, &mut StdRng::seed_from_u64(seed));
        let b = Bernoulli::new(0.3).inject(&region, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(a, b);
    }

    /// Short closure: after close_shorts, every electrode short's partner
    /// is also faulty, and closing again is a no-op.
    #[test]
    fn short_closure_idempotent(region in arb_region(), seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut map = Bernoulli::new(0.4).inject(&region, &mut rng);
        map.close_shorts();
        for (c, cause) in map.iter() {
            if let DefectCause::Catastrophic(
                dmfb_defects::CatastrophicDefect::ElectrodeShort(d),
            ) = cause
            {
                prop_assert!(map.is_faulty(c.step(*d)), "unclosed short at {c}");
            }
        }
        let mut again = map.clone();
        prop_assert_eq!(again.close_shorts(), 0);
    }

    /// Covering walks visit every cell of any connected region, stepping
    /// only between adjacent cells.
    #[test]
    fn covering_walks_cover(region in arb_region()) {
        let walk = covering_walk(&region).expect("parallelograms are connected");
        let visited: std::collections::BTreeSet<HexCoord> = walk.iter().copied().collect();
        prop_assert_eq!(visited.len(), region.len());
        for w in walk.windows(2) {
            prop_assert!(w[0].is_adjacent(w[1]));
        }
    }

    /// Diagnosis finds every catastrophic fault (or reports the cell
    /// unreachable) and never reports a fault on a healthy cell.
    #[test]
    fn diagnosis_sound_and_complete(region in arb_region(), seed in 0u64..300) {
        let mut rng = StdRng::seed_from_u64(seed);
        let truth = Bernoulli::new(0.15).inject(&region, &mut rng);
        let report = diagnose(&region, &truth, MeasurementModel::default());
        prop_assert!(report.catches_all_catastrophic(&truth));
        for c in report.detected.faulty_cells() {
            prop_assert!(truth.is_faulty(c), "false positive at {c}");
        }
    }

    /// Map merge is commutative on the fault set (causes may differ).
    #[test]
    fn merge_union_of_cells(
        a_cells in prop::collection::vec((0i32..8, 0i32..8), 0..12),
        b_cells in prop::collection::vec((0i32..8, 0i32..8), 0..12),
    ) {
        let a = DefectMap::from_cells(a_cells.iter().map(|&(q, r)| HexCoord::new(q, r)));
        let b = DefectMap::from_cells(b_cells.iter().map(|&(q, r)| HexCoord::new(q, r)));
        let ab = a.merged(&b);
        let ba = b.merged(&a);
        let cells_ab: Vec<HexCoord> = ab.faulty_cells().collect();
        let cells_ba: Vec<HexCoord> = ba.faulty_cells().collect();
        prop_assert_eq!(cells_ab, cells_ba);
        for c in a.faulty_cells().chain(b.faulty_cells()) {
            prop_assert!(ab.is_faulty(c));
        }
    }
}
