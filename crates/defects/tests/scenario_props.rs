//! Property-based tests for the scenario DSL and its compiler.
//!
//! Two properties from the issue: the DSL round-trips
//! `parse → format → parse`, and a compiled scenario's injected faults
//! are equivalent to manually constructed `DefectMap`s — the oracle below
//! re-implements each step action from the public injection APIs and the
//! documented seed derivation, independently of the compiler.

use dmfb_defects::operational::MtbfModel;
use dmfb_defects::parametric::ParametricModel;
use dmfb_defects::scenario::{Scenario, StepAction};
use dmfb_defects::{CatastrophicDefect, DefectCause, DefectMap};
use dmfb_grid::{HexCoord, Region};
use dmfb_sim::SeedSequence;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn arb_action() -> impl Strategy<Value = StepAction> {
    (
        (0u8..7, 0u32..6, 1u32..32),
        (-3i32..10, -3i32..10, 0u32..5),
        (0.01f64..=1.0, 0.01f64..=0.5),
    )
        .prop_map(|((tag, idx, count), (q, r, radius), (pa, pb))| match tag {
            0 => StepAction::Calm,
            1 => StepAction::WipeColumn(idx),
            2 => StepAction::WipeRow(idx),
            3 => StepAction::Cluster {
                q,
                r,
                radius,
                peak: pa,
            },
            4 => StepAction::Wear {
                mtbf_hours: 1_000.0 + 50_000.0 * pa,
                stress: 4.0 * pb,
                hours: 2_000.0 * pa,
            },
            5 => StepAction::Drift {
                sigma: 0.2 * pa.max(0.01),
                tolerance: pb,
            },
            _ => StepAction::Salvo(count),
        })
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    proptest::collection::vec(arb_action(), 1..8)
        .prop_map(|steps| Scenario::new("prop-campaign", steps).expect("generated steps valid"))
}

/// Independent re-implementation of one live step's damage, from the
/// documented semantics and public injection APIs only.
fn oracle_delta(action: &StepAction, region: &Region, k: u64, rng: &mut StdRng) -> DefectMap {
    let open = DefectCause::Catastrophic(CatastrophicDefect::OpenConnection);
    let breakdown = DefectCause::Catastrophic(CatastrophicDefect::DielectricBreakdown);
    match *action {
        StepAction::Calm => DefectMap::new(),
        StepAction::WipeColumn(i) => {
            let mut qs: Vec<i32> = region.iter().map(|c| c.q).collect();
            qs.sort_unstable();
            qs.dedup();
            qs.get(i as usize).map_or_else(DefectMap::new, |&q| {
                region
                    .iter()
                    .filter(|c| c.q == q)
                    .map(|c| (c, open))
                    .collect()
            })
        }
        StepAction::WipeRow(i) => {
            let mut rs: Vec<i32> = region.iter().map(|c| c.r).collect();
            rs.sort_unstable();
            rs.dedup();
            rs.get(i as usize).map_or_else(DefectMap::new, |&r| {
                region
                    .iter()
                    .filter(|c| c.r == r)
                    .map(|c| (c, open))
                    .collect()
            })
        }
        StepAction::Cluster { q, r, radius, peak } => {
            let center = HexCoord::new(q, r);
            let mut map = DefectMap::new();
            for cell in region.iter() {
                let d = cell.distance(center);
                if d <= radius {
                    let p = peak * (1.0 - f64::from(d) / f64::from(radius + 1));
                    if rng.gen_bool(p.clamp(0.0, 1.0)) {
                        map.mark(cell, breakdown);
                    }
                }
            }
            map
        }
        StepAction::Wear {
            mtbf_hours,
            stress,
            hours,
        } => MtbfModel::new(mtbf_hours, stress).inject_service_faults(region, hours, rng),
        StepAction::Drift { sigma, tolerance } => {
            ParametricModel::new(sigma, tolerance).inject(region, rng)
        }
        StepAction::Salvo(n) => {
            let mut cells: Vec<HexCoord> = region.iter().collect();
            let lanes = (n as usize).min(cells.len());
            let mut map = DefectMap::new();
            for j in 0..lanes {
                let pick = rng.gen_range(j..cells.len());
                cells.swap(j, pick);
                match k.wrapping_add(j as u64) % 4 {
                    0 => {
                        map.mark(cells[j], open);
                    }
                    1 => {
                        map.mark(cells[j], breakdown);
                    }
                    _ => {}
                }
            }
            map
        }
    }
}

proptest! {
    /// `parse(format(s))` reproduces the scenario exactly, and the
    /// canonical text is a fixed point of `parse → format`.
    #[test]
    fn dsl_round_trips(scenario in arb_scenario()) {
        let text = scenario.to_string();
        let parsed = Scenario::parse(&text).expect("canonical text parses");
        prop_assert_eq!(&parsed, &scenario);
        prop_assert_eq!(parsed.to_string(), text);
    }

    /// Non-canonical but valid input (comments, blank lines, extra
    /// spaces) still round-trips through one format cycle.
    #[test]
    fn noisy_input_normalises_to_a_fixed_point(scenario in arb_scenario()) {
        let mut noisy = String::from("# header comment\n\n");
        for line in scenario.to_string().lines() {
            noisy.push_str(&format!("  {line}   # trailing comment\n\n"));
        }
        let parsed = Scenario::parse(&noisy).expect("noisy text parses");
        prop_assert_eq!(parsed, scenario);
    }

    /// Compiler ≡ oracle: the executed trajectory's cumulative maps equal
    /// a manual first-cause-wins merge of per-step damage built from the
    /// public injection APIs with the documented per-step seeds
    /// (`SeedSequence::nth_seed(seed, idx)`).
    #[test]
    fn compiled_faults_match_direct_injection_oracle(
        scenario in arb_scenario(),
        seed in 0u64..500,
        w in 4u32..9,
        h in 4u32..9,
    ) {
        let region = Region::parallelogram(w, h);
        let trajectory = scenario.execute(&region, seed);
        let mut cum = DefectMap::new();
        for (idx, action) in scenario.steps().iter().enumerate() {
            let k = seed.wrapping_add(idx as u64);
            let mut rng = StdRng::seed_from_u64(SeedSequence::nth_seed(seed, idx as u64));
            let delta = oracle_delta(action, &region, k, &mut rng);
            let merged = cum.merged(&delta);
            let rec = &trajectory.steps[idx];
            prop_assert_eq!(&rec.map, &merged, "step {} of {}", idx, scenario.name());
            prop_assert_eq!(
                rec.injected,
                merged.fault_count() - cum.fault_count(),
                "step {} injected count", idx
            );
            cum = merged;
        }
        prop_assert_eq!(trajectory.final_map(), cum);
    }

    /// Rehearsal never damages, whatever the scenario.
    #[test]
    fn rehearsal_is_always_damage_free(scenario in arb_scenario(), seed in 0u64..500) {
        let region = Region::parallelogram(6, 6);
        let dry = scenario.rehearse(&region, seed);
        prop_assert_eq!(dry.hostile_count(), 0);
        prop_assert!(dry.final_map().is_fault_free());
    }
}
