//! Deterministic parallel job orchestration for parameter sweeps.
//!
//! A yield curve is a list of independent `(design, p, trials)` jobs; a
//! fault-count profile is a list of independent `m` jobs. This module runs
//! such job lists across worker threads with **byte-identical results to a
//! sequential run**: every job's output depends only on the job itself,
//! and outputs are returned in input order regardless of which thread
//! computed them or in what order they finished.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The number of worker threads the host machine can usefully run —
/// [`std::thread::available_parallelism`], falling back to 1 where the
/// parallelism cannot be determined.
///
/// This is the default everywhere a thread count is optional: the CLI's
/// `--threads 0`, [`parallel_map`]'s `threads == 0`, and the Monte-Carlo
/// engines' auto modes.
#[must_use]
pub fn auto_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Applies `f` to every item of `items` across `threads` worker threads
/// and returns the results **in input order**.
///
/// Scheduling is dynamic (an atomic cursor hands out the next unclaimed
/// index), so long jobs do not serialise behind short ones; determinism is
/// preserved because each result is keyed by its input index, never by
/// completion order. `threads == 0` means [`auto_threads`]. With one
/// thread (or zero/one items) the call degrades to a plain sequential map
/// on the caller's thread.
///
/// # Example
///
/// ```
/// use dmfb_sim::sweep::parallel_map;
///
/// let squares = parallel_map(0, &[1u64, 2, 3, 4], |_, &x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
///
/// # Panics
///
/// Panics if a worker thread panics.
pub fn parallel_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = if threads == 0 {
        auto_threads()
    } else {
        threads
    };
    let threads = threads.min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut labelled: Vec<(usize, R)> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let cursor = &cursor;
            let f = &f;
            handles.push(scope.spawn(move || {
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    local.push((i, f(i, &items[i])));
                }
                local
            }));
        }
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    });
    labelled.sort_by_key(|(i, _)| *i);
    debug_assert_eq!(labelled.len(), items.len());
    labelled.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_threads_is_positive() {
        assert!(auto_threads() >= 1);
    }

    #[test]
    fn preserves_input_order_for_any_thread_count() {
        let items: Vec<u64> = (0..97).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for threads in [0, 1, 2, 3, 8, 200] {
            let got = parallel_map(threads, &items, |_, &x| x * 3 + 1);
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn index_argument_matches_position() {
        let items = ["a", "b", "c"];
        let got = parallel_map(2, &items, |i, s| format!("{i}:{s}"));
        assert_eq!(got, vec!["0:a", "1:b", "2:c"]);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(4, &empty, |_, &x| x).is_empty());
        assert_eq!(parallel_map(4, &[42u32], |_, &x| x + 1), vec![43]);
    }

    #[test]
    fn uneven_job_durations_do_not_reorder() {
        // Early items sleep longest; dynamic scheduling would finish them
        // last, yet the output order must still match the input.
        let items: Vec<u64> = (0..16).collect();
        let got = parallel_map(4, &items, |_, &x| {
            std::thread::sleep(std::time::Duration::from_millis(16 - x));
            x
        });
        assert_eq!(got, items);
    }
}
