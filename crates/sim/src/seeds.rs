//! Deterministic seed derivation.

/// A stream of decorrelated 64-bit seeds derived from one master seed with
/// the SplitMix64 generator.
///
/// Every Monte-Carlo trial gets its own seed from this stream, so a run is
/// reproducible bit-for-bit regardless of how trials are distributed over
/// threads.
///
/// # Example
///
/// ```
/// use dmfb_sim::SeedSequence;
///
/// let a: Vec<u64> = SeedSequence::new(7).take(3).collect();
/// let b: Vec<u64> = SeedSequence::new(7).take(3).collect();
/// assert_eq!(a, b);
/// assert_ne!(a[0], a[1]);
/// ```
#[derive(Clone, Debug)]
pub struct SeedSequence {
    state: u64,
}

impl SeedSequence {
    /// Starts a stream from `master_seed`.
    #[must_use]
    pub fn new(master_seed: u64) -> Self {
        SeedSequence { state: master_seed }
    }

    /// The `i`-th seed of the stream without iterating (O(1) skip-ahead is
    /// not available for SplitMix64's output function, but the state
    /// increment is linear, so we can jump directly).
    #[must_use]
    pub fn nth_seed(master_seed: u64, i: u64) -> u64 {
        let state = master_seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i + 1));
        mix(state)
    }
}

/// SplitMix64 output function.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Iterator for SeedSequence {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        Some(mix(self.state))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_distinct() {
        let a: Vec<u64> = SeedSequence::new(123).take(100).collect();
        let b: Vec<u64> = SeedSequence::new(123).take(100).collect();
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 100, "all seeds distinct");
    }

    #[test]
    fn different_masters_diverge() {
        let a: Vec<u64> = SeedSequence::new(1).take(10).collect();
        let b: Vec<u64> = SeedSequence::new(2).take(10).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn nth_matches_iteration() {
        let stream: Vec<u64> = SeedSequence::new(99).take(20).collect();
        for (i, s) in stream.iter().enumerate() {
            assert_eq!(SeedSequence::nth_seed(99, i as u64), *s);
        }
    }
}
