//! Defect-count-stratified Monte-Carlo estimation for rare-event yields.
//!
//! Plain Monte-Carlo wastes almost every trial in the high-survival regime
//! the paper's figures live in: at `p = 0.999` a 160-cell chip is
//! defect-free ~85% of the time, so resolving a failure probability of
//! `10⁻⁴` takes millions of trials. Conditioning on the defect count `K`
//! fixes that. With i.i.d. cell failures `K ~ Binomial(n, q)`, so the
//! survival probability decomposes exactly as
//!
//! ```text
//! Y = Σₖ P(K = k) · P(survive | K = k)
//! ```
//!
//! The binomial weights `P(K = k)` are known in closed form; only the
//! per-stratum conditional survival probabilities `sₖ = P(survive | K = k)`
//! need sampling — and each stratum is sampled by placing **exactly `k`**
//! defects uniformly at random, which spends every trial on a chip that
//! actually has something to tolerate. [`StratifiedMonteCarlo`] implements
//! the full estimator:
//!
//! * **strata planning** — keep the binomial window around the mode whose
//!   total mass is at least `1 − tolerance` (strata outside the window are
//!   truncated and their mass reported as [`StratifiedEstimate::truncated_mass`]);
//! * **exact strata** — `k = 0` and `k = n` have a *unique* defect
//!   placement, so one evaluation determines `sₖ` exactly with zero
//!   variance; callers holding a structural guarantee (Hall-type bounds
//!   like `TrialEvaluator::guaranteed_tolerable_faults`) extend this to
//!   every `k ≤` [`StratifiedMonteCarlo::with_proven_tolerable`] — this
//!   is where the rare-event speed-up comes from: at `p → 1` most of the
//!   probability mass needs no sampling at all;
//! * **Neyman allocation** — a pilot pass estimates each stratum's
//!   Bernoulli spread, then the remaining trial budget is split
//!   proportionally to `wₖ·σ̃ₖ` (the allocation that minimises the
//!   variance of the combined estimate);
//! * **honest variance reporting** — sampled strata contribute
//!   `wₖ²·s̃ₖ(1−s̃ₖ)/nₖ` with the Agresti–Coull-smoothed
//!   `s̃ₖ = (x+1)/(n+2)`, so an all-success stratum still admits the
//!   failure probability its trial count cannot exclude; only exact
//!   strata contribute nothing. [`StratifiedEstimate::effective_trials`]
//!   converts the variance back into "how many naive trials would this
//!   precision have cost" (a plain naive run scores exactly its own
//!   trial count under the same smoothing).
//!
//! Results are deterministic in `(budget, master_seed)` and independent of
//! thread count: every stratum runs through the same [`MonteCarlo`]
//! machinery as the naive estimator, with per-stratum master seeds derived
//! from [`SeedSequence`].
//!
//! # Example
//!
//! ```
//! use dmfb_sim::StratifiedMonteCarlo;
//!
//! // Estimate P(at most 1 of 50 components fails) at q = 0.01 — the
//! // trial closure receives the stratum's exact defect count.
//! let est = StratifiedMonteCarlo::new(50, 2_000, 7)
//!     .estimate(0.01, || (), |k, _rng, ()| k <= 1);
//! let exact = 0.99f64.powi(50) + 50.0 * 0.01 * 0.99f64.powi(49);
//! assert!((est.point - exact).abs() < 1e-3);
//! assert!(est.variance >= 0.0);
//! ```

use crate::{BernoulliEstimate, MonteCarlo, SeedSequence};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Tuning knobs for [`StratifiedMonteCarlo`].
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct StratifiedConfig {
    /// Maximum total binomial mass the planner may truncate. The point
    /// estimate treats truncated strata as never surviving, so it
    /// understates the true probability by at most this much.
    pub tolerance: f64,
    /// Pilot trials per stochastic stratum, used to estimate the spreads
    /// behind the Neyman allocation before the main budget is split.
    pub pilot: u32,
    /// Hard cap on the number of strata kept (planning stops growing the
    /// window once reached, even if `tolerance` is not yet met).
    pub max_strata: usize,
}

impl Default for StratifiedConfig {
    fn default() -> Self {
        StratifiedConfig {
            tolerance: 1e-6,
            pilot: 64,
            max_strata: 48,
        }
    }
}

/// One planned stratum: an exact defect count and its binomial mass.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StratumPlan {
    /// The exact defect count this stratum conditions on.
    pub faults: usize,
    /// `P(K = faults)` under `K ~ Binomial(n, q)`.
    pub weight: f64,
}

/// One measured stratum of a [`StratifiedEstimate`].
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct StratumEstimate {
    /// The exact defect count this stratum conditions on.
    pub faults: usize,
    /// `P(K = faults)` under `K ~ Binomial(n, q)`.
    pub weight: f64,
    /// The conditional survival estimate `ŝₖ` and its trial count. For
    /// exact strata this is the true value from a single evaluation.
    pub estimate: BernoulliEstimate,
    /// Whether the stratum was resolved **exactly** rather than sampled:
    /// `k = 0` and `k = n` (unique placement), or
    /// `k ≤ proven_tolerable` (structurally guaranteed success). Exact
    /// strata carry no sampling error and contribute zero variance.
    pub exact: bool,
}

impl StratumEstimate {
    /// The Agresti–Coull-smoothed conditional estimate
    /// `s̃ = (x+1)/(n+2)` used for the variance and effective-trial
    /// bookkeeping of *sampled* strata — never exactly 0 or 1, so an
    /// all-success stratum still admits the failure its trial count
    /// cannot exclude. Exact strata return the true value unchanged.
    #[must_use]
    pub fn smoothed(&self) -> f64 {
        if self.exact {
            self.estimate.point()
        } else {
            (self.estimate.successes() as f64 + 1.0) / (self.estimate.trials() as f64 + 2.0)
        }
    }

    /// This stratum's contribution to the combined variance:
    /// `w²·s̃(1−s̃)/n` for sampled strata, zero for exact ones.
    #[must_use]
    pub fn variance_contribution(&self) -> f64 {
        if self.exact || self.estimate.trials() == 0 {
            return 0.0;
        }
        let s = self.smoothed();
        self.weight * self.weight * s * (1.0 - s) / self.estimate.trials() as f64
    }
}

/// The combined stratified estimate: point, variance, and the per-stratum
/// breakdown behind them.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StratifiedEstimate {
    /// `Σₖ wₖ·ŝₖ` over the kept strata. Truncated strata contribute
    /// nothing, so this understates the true probability by at most
    /// [`StratifiedEstimate::truncated_mass`].
    pub point: f64,
    /// Stratified variance `Σ wₖ²·s̃ₖ(1−s̃ₖ)/nₖ` over the *sampled*
    /// strata, with the Agresti–Coull-smoothed `s̃ₖ = (x+1)/(n+2)` so a
    /// stratum whose samples were all-success still admits the failure
    /// probability its trial count cannot rule out. Exact strata
    /// (`k = 0`, `k = n`, structurally proven counts) contribute zero;
    /// the variance is exactly zero only when *nothing* was sampled.
    pub variance: f64,
    /// Binomial mass of the strata the planner dropped.
    pub truncated_mass: f64,
    /// Total trials actually spent (pilot + main, all strata).
    pub trials: u64,
    /// Per-stratum breakdown, ascending in defect count.
    pub strata: Vec<StratumEstimate>,
}

impl StratifiedEstimate {
    /// Standard error of the point estimate.
    #[must_use]
    pub fn std_error(&self) -> f64 {
        self.variance.sqrt()
    }

    /// Normal-approximation 95% interval, widened on the high side by the
    /// truncated mass (the truncated strata could all have survived).
    #[must_use]
    pub fn ci95(&self) -> (f64, f64) {
        let half = 1.959_963_984_540_054 * self.std_error();
        (
            (self.point - half).max(0.0),
            (self.point + half + self.truncated_mass).min(1.0),
        )
    }

    /// Half-width of [`StratifiedEstimate::ci95`].
    #[must_use]
    pub fn margin95(&self) -> f64 {
        let (lo, hi) = self.ci95();
        (hi - lo) / 2.0
    }

    /// The smoothed combined estimate `Ỹ = Σ wₖ·s̃ₖ` (exact strata
    /// unchanged) — the numerator companion to the smoothed variance, so
    /// the two never disagree about whether anything is uncertain.
    #[must_use]
    pub fn smoothed_point(&self) -> f64 {
        self.strata.iter().map(|s| s.weight * s.smoothed()).sum()
    }

    /// How many *naive* Monte-Carlo trials it would take to reach this
    /// estimate's precision: naive variance at the same (smoothed)
    /// estimate is `Ỹ(1−Ỹ)/N`, so `N_eff = Ỹ(1−Ỹ)/variance`. Both sides
    /// use the Agresti–Coull smoothing, which makes the definition
    /// self-consistent: a plain naive run scores exactly its own trial
    /// count. Infinite only when every stratum was resolved exactly
    /// (nothing sampled at all); the ratio `effective_trials / trials`
    /// is the rare-event speed-up factor.
    #[must_use]
    pub fn effective_trials(&self) -> f64 {
        let y = self.smoothed_point();
        if self.variance > 0.0 {
            y * (1.0 - y) / self.variance
        } else {
            f64::INFINITY
        }
    }
}

/// Natural log of the binomial probability `P(K = k)` for
/// `K ~ Binomial(n, q)`, computed stably in log space (no underflow for
/// large `n`).
///
/// Returns `f64::NEG_INFINITY` for zero-probability outcomes.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]` or `k > n`.
#[must_use]
pub fn ln_binomial_pmf(n: usize, k: usize, q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "q must be in [0, 1], got {q}");
    assert!(k <= n, "k ({k}) cannot exceed n ({n})");
    if q == 0.0 {
        return if k == 0 { 0.0 } else { f64::NEG_INFINITY };
    }
    if q == 1.0 {
        return if k == n { 0.0 } else { f64::NEG_INFINITY };
    }
    // ln C(n, k) accumulated as Σ ln((n-i)/(i+1)) over the smaller side.
    let kk = k.min(n - k);
    let mut ln_choose = 0.0f64;
    for i in 0..kk {
        ln_choose += ((n - i) as f64).ln() - ((i + 1) as f64).ln();
    }
    ln_choose + k as f64 * q.ln() + (n - k) as f64 * (1.0 - q).ln()
}

/// Plans the strata for `K ~ Binomial(n, q)`: grows a window outward from
/// the mode, always absorbing the heavier neighbouring stratum next, until
/// the captured mass reaches `1 − tolerance` or `max_strata` is hit.
/// Returns the kept strata (ascending in defect count) and the truncated
/// mass.
#[must_use]
pub fn plan_strata(n: usize, q: f64, config: &StratifiedConfig) -> (Vec<StratumPlan>, f64) {
    assert!(
        config.tolerance >= 0.0 && config.tolerance < 1.0,
        "tolerance must be in [0, 1), got {}",
        config.tolerance
    );
    assert!(config.max_strata >= 1, "need at least one stratum");
    if q == 0.0 || q == 1.0 {
        let k = if q == 0.0 { 0 } else { n };
        return (
            vec![StratumPlan {
                faults: k,
                weight: 1.0,
            }],
            0.0,
        );
    }
    let mode = (((n + 1) as f64) * q).floor().min(n as f64) as usize;
    let weight = |k: usize| ln_binomial_pmf(n, k, q).exp();
    // Two cursors expand the window [lo, hi] outward from the mode.
    let mut lo = mode;
    let mut hi = mode;
    let mut kept: Vec<StratumPlan> = vec![StratumPlan {
        faults: mode,
        weight: weight(mode),
    }];
    let mut mass: f64 = kept[0].weight;
    while mass < 1.0 - config.tolerance && kept.len() < config.max_strata {
        let below = lo.checked_sub(1).map(weight);
        let above = if hi < n { Some(weight(hi + 1)) } else { None };
        let take_below = match (below, above) {
            (Some(b), Some(a)) => b >= a,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => break,
        };
        let (k, w) = if take_below {
            lo -= 1;
            (lo, below.unwrap_or(0.0))
        } else {
            hi += 1;
            (hi, above.unwrap_or(0.0))
        };
        kept.push(StratumPlan {
            faults: k,
            weight: w,
        });
        mass += w;
    }
    kept.sort_unstable_by_key(|s| s.faults);
    ((kept), (1.0 - mass).max(0.0))
}

/// The stratified estimator: owns the cell count, trial budget, master
/// seed, thread count and tuning, and runs caller-supplied exact-`k`
/// trials.
///
/// The trial closure **must** be a deterministic function of the sampled
/// fault set (all randomness drawn from the provided RNG, verdict fixed
/// given the faults). That contract is what makes the `k = 0` and `k = n`
/// strata — whose fault placement is unique — exactly resolvable from a
/// single evaluation.
#[derive(Clone, Debug)]
pub struct StratifiedMonteCarlo {
    cells: usize,
    budget: u32,
    master_seed: u64,
    threads: usize,
    config: StratifiedConfig,
    proven_tolerable: usize,
}

impl StratifiedMonteCarlo {
    /// Creates an estimator over `cells` i.i.d. components with a total
    /// trial `budget`, seeded by `master_seed`. Defaults to
    /// single-threaded execution and [`StratifiedConfig::default`].
    #[must_use]
    pub fn new(cells: usize, budget: u32, master_seed: u64) -> Self {
        StratifiedMonteCarlo {
            cells,
            budget,
            master_seed,
            threads: 1,
            config: StratifiedConfig::default(),
            proven_tolerable: 0,
        }
    }

    /// Declares that every outcome's verdict is **provably `true`** for
    /// any placement of at most `faults` defects (e.g. a Hall-type
    /// structural bound such as
    /// `TrialEvaluator::guaranteed_tolerable_faults`). Strata at or below
    /// the bound are resolved exactly — one confirming evaluation, zero
    /// variance — instead of being sampled, which is where the bulk of
    /// the rare-event speed-up comes from at `p → 1` (the `k = 1` stratum
    /// usually carries most of the non-defect-free mass). The confirming
    /// evaluation asserts the claim, so a wrong bound panics rather than
    /// biasing the estimate.
    #[must_use]
    pub fn with_proven_tolerable(mut self, faults: usize) -> Self {
        self.proven_tolerable = faults;
        self
    }

    /// Distributes each stratum's trials across `threads` worker threads
    /// (`0` = one worker per available core). Results are identical
    /// regardless of thread count.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Overrides the tuning configuration.
    #[must_use]
    pub fn with_config(mut self, config: StratifiedConfig) -> Self {
        self.config = config;
        self
    }

    /// The planned strata and truncated mass for defect probability `q` —
    /// exposed so tests and reports can inspect the planner's choices.
    #[must_use]
    pub fn strata(&self, q: f64) -> (Vec<StratumPlan>, f64) {
        plan_strata(self.cells, q, &self.config)
    }

    /// Runs the stratified experiment for defect probability `q`.
    ///
    /// `init` builds per-worker scratch state; `trial` receives the
    /// stratum's exact defect count, an RNG, and the scratch, and returns
    /// the survival verdict for one random placement of exactly that many
    /// defects.
    pub fn estimate<S>(
        &self,
        q: f64,
        init: impl Fn() -> S + Sync,
        trial: impl Fn(usize, &mut StdRng, &mut S) -> bool + Sync,
    ) -> StratifiedEstimate {
        self.estimate_multi(q, 1, init, |k, rng, state, out| {
            out[0] = trial(k, rng, state);
        })
        .pop()
        .expect("one outcome in, one estimate out")
    }

    /// Vector-valued variant of [`StratifiedMonteCarlo::estimate`]: each
    /// trial fills `outcomes` verdict slots for the *same* random defect
    /// placement (e.g. the raw/reconfigured/operational tiers), and one
    /// shared trial allocation serves every outcome. Returns one
    /// [`StratifiedEstimate`] per slot.
    ///
    /// The Neyman allocation uses each stratum's *largest* per-outcome
    /// spread, so no outcome is starved.
    ///
    /// # Panics
    ///
    /// Panics if `outcomes == 0`.
    pub fn estimate_multi<S>(
        &self,
        q: f64,
        outcomes: usize,
        init: impl Fn() -> S + Sync,
        trial: impl Fn(usize, &mut StdRng, &mut S, &mut [bool]) + Sync,
    ) -> Vec<StratifiedEstimate> {
        assert!(outcomes > 0, "need at least one outcome slot");
        self.estimate_multi_with(q, outcomes, |faults, trials, stream| {
            self.run_stratum(faults, trials, stream, outcomes, &init, &trial)
        })
    }

    /// Block-engine variant of [`StratifiedMonteCarlo::estimate`]: each
    /// stratum's exact-`k` trials run through
    /// [`MonteCarlo::run_blocks_with`] in groups of up to `width` seeds,
    /// with `block_trial` returning how many of the group's placements
    /// survived. Every stratum keeps the same trial counts and
    /// per-stratum seed streams as the scalar path, so the result is
    /// **byte-identical** to [`StratifiedMonteCarlo::estimate`] whenever
    /// `block_trial` gives each seed the verdict the scalar `trial`
    /// closure would (the `dmfb-reconfig` word-parallel contract) — at
    /// any `width` and any thread count.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`, or (like the scalar path) if a
    /// proven-tolerable stratum's confirming evaluation fails.
    pub fn estimate_block<S>(
        &self,
        q: f64,
        width: usize,
        init: impl Fn() -> S + Sync,
        block_trial: impl Fn(usize, &[u64], &mut S) -> u32 + Sync,
    ) -> StratifiedEstimate {
        assert!(width > 0, "block width must be positive");
        self.estimate_multi_with(q, 1, |faults, trials, stream| {
            let seed = SeedSequence::nth_seed(self.master_seed, stream);
            vec![MonteCarlo::new(trials, seed).run_blocks_with(
                self.threads,
                width,
                &init,
                |s, st| block_trial(faults, s, st),
            )]
        })
        .pop()
        .expect("one outcome in, one estimate out")
    }

    /// The shared stratified-estimation body: plans strata, resolves
    /// exact ones, pilots and Neyman-allocates the stochastic ones, and
    /// combines — with `runner(faults, trials, stream)` supplying the
    /// per-outcome estimates of one stratum run. Both the scalar and the
    /// block engines are thin wrappers over this, which is what keeps
    /// their allocation decisions (and hence results) identical.
    fn estimate_multi_with(
        &self,
        q: f64,
        outcomes: usize,
        runner: impl Fn(usize, u32, u64) -> Vec<BernoulliEstimate>,
    ) -> Vec<StratifiedEstimate> {
        let (plans, truncated_mass) = plan_strata(self.cells, q, &self.config);
        // Per-stratum outcome counts: `counts[s][o]` successes out of
        // `trials_run[s]` trials.
        let mut estimates: Vec<Vec<BernoulliEstimate>> = Vec::with_capacity(plans.len());
        let mut spent: u64 = 0;

        // Phase 0 + 1: exact strata (one evaluation) and pilots. A
        // stratum is exact when its placement is unique (`k = 0`,
        // `k = n`) or when the caller proved every placement tolerable
        // (`k ≤ proven_tolerable`).
        let exact: Vec<bool> = plans
            .iter()
            .map(|s| s.faults == 0 || s.faults == self.cells || s.faults <= self.proven_tolerable)
            .collect();
        let stochastic = exact.iter().filter(|&&e| !e).count();
        let budget = u64::from(self.budget);
        let pilot_each = if stochastic == 0 {
            0
        } else {
            u64::from(self.config.pilot)
                .min(budget.saturating_sub(exact.len() as u64) / stochastic as u64)
                .max(1) as u32
        };
        for (i, plan) in plans.iter().enumerate() {
            let n = if exact[i] { 1 } else { pilot_each };
            let run = runner(plan.faults, n, 2 * i as u64);
            if exact[i] && plan.faults > 0 && plan.faults <= self.proven_tolerable {
                assert!(
                    run.iter().all(|e| e.successes() == e.trials()),
                    "proven_tolerable({}) is wrong: a {}-fault placement failed",
                    self.proven_tolerable,
                    plan.faults
                );
            }
            spent += u64::from(n);
            estimates.push(run);
        }

        // Phase 2: Neyman split of the remaining budget over the
        // stochastic strata, scored by weight × (largest outcome spread,
        // Agresti–Coull-adjusted so extreme pilots keep a positive score).
        let remaining = budget.saturating_sub(spent);
        let scores: Vec<f64> = plans
            .iter()
            .zip(&estimates)
            .zip(&exact)
            .map(|((plan, ests), &is_exact)| {
                if is_exact {
                    0.0
                } else {
                    let spread = ests
                        .iter()
                        .map(|e| {
                            let s = (e.successes() as f64 + 1.0) / (e.trials() as f64 + 2.0);
                            (s * (1.0 - s)).sqrt()
                        })
                        .fold(0.0f64, f64::max);
                    plan.weight * spread
                }
            })
            .collect();
        let extra = apportion(remaining, &scores);
        for (i, (plan, n)) in plans.iter().zip(extra).enumerate() {
            if n == 0 {
                continue;
            }
            let run = runner(
                plan.faults,
                u32::try_from(n).unwrap_or(u32::MAX),
                2 * i as u64 + 1,
            );
            spent += n;
            for (acc, fresh) in estimates[i].iter_mut().zip(run) {
                *acc = acc.merged(fresh);
            }
        }

        // Combine per outcome.
        (0..outcomes)
            .map(|o| {
                let mut point = 0.0;
                let mut variance = 0.0;
                let mut strata = Vec::with_capacity(plans.len());
                for (i, plan) in plans.iter().enumerate() {
                    let stratum = StratumEstimate {
                        faults: plan.faults,
                        weight: plan.weight,
                        estimate: estimates[i][o],
                        exact: exact[i],
                    };
                    point += stratum.weight * stratum.estimate.point();
                    variance += stratum.variance_contribution();
                    strata.push(stratum);
                }
                StratifiedEstimate {
                    point,
                    variance,
                    truncated_mass,
                    trials: spent,
                    strata,
                }
            })
            .collect()
    }

    /// Runs `trials` exact-`k` trials with a stratum-and-phase-specific
    /// master seed, returning one estimate per outcome slot.
    fn run_stratum<S>(
        &self,
        faults: usize,
        trials: u32,
        stream: u64,
        outcomes: usize,
        init: &(impl Fn() -> S + Sync),
        trial: &(impl Fn(usize, &mut StdRng, &mut S, &mut [bool]) + Sync),
    ) -> Vec<BernoulliEstimate> {
        let seed = SeedSequence::nth_seed(self.master_seed, stream);
        MonteCarlo::new(trials, seed).tally_parallel(self.threads, outcomes, init, |rng, s, out| {
            trial(faults, rng, s, out);
        })
    }
}

/// Splits `total` into integer shares proportional to `scores`
/// (largest-remainder rounding; deterministic). Zero-score slots get
/// nothing; if every score is zero the whole budget is dropped.
fn apportion(total: u64, scores: &[f64]) -> Vec<u64> {
    let sum: f64 = scores.iter().sum();
    if sum <= 0.0 || total == 0 {
        return vec![0; scores.len()];
    }
    let exact: Vec<f64> = scores
        .iter()
        .map(|&s| total as f64 * (s / sum).max(0.0))
        .collect();
    let mut shares: Vec<u64> = exact.iter().map(|&x| x.floor() as u64).collect();
    let assigned: u64 = shares.iter().sum();
    // Hand out the leftovers by descending fractional part (ties broken
    // by index for determinism).
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| {
        let fa = exact[a] - exact[a].floor();
        let fb = exact[b] - exact[b].floor();
        fb.partial_cmp(&fa).unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut leftover = total.saturating_sub(assigned);
    for i in order {
        if leftover == 0 {
            break;
        }
        if scores[i] > 0.0 {
            shares[i] += 1;
            leftover -= 1;
        }
    }
    shares
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn pmf_matches_direct_computation() {
        // n = 10, q = 0.3: compare against the naive formula.
        let n = 10;
        let q: f64 = 0.3;
        let choose = |k: usize| -> f64 {
            let mut c = 1.0;
            for i in 0..k {
                c = c * (n - i) as f64 / (i + 1) as f64;
            }
            c
        };
        for k in 0..=n {
            let direct = choose(k) * q.powi(k as i32) * (1.0 - q).powi((n - k) as i32);
            let ln = ln_binomial_pmf(n, k, q);
            assert!((ln.exp() - direct).abs() < 1e-12, "k={k}");
        }
    }

    #[test]
    fn pmf_survives_large_n() {
        // p^n underflows in linear space for n = 10^6; log space must not.
        let ln = ln_binomial_pmf(1_000_000, 500_000, 0.5);
        assert!(ln.is_finite());
        // Near the mode the mass is ~1/sqrt(2π·n·q·(1-q)).
        let approx = 1.0 / (2.0 * std::f64::consts::PI * 250_000.0f64).sqrt();
        assert!((ln.exp() - approx).abs() / approx < 0.01);
    }

    #[test]
    fn pmf_extremes() {
        assert_eq!(ln_binomial_pmf(5, 0, 0.0), 0.0);
        assert_eq!(ln_binomial_pmf(5, 3, 0.0), f64::NEG_INFINITY);
        assert_eq!(ln_binomial_pmf(5, 5, 1.0), 0.0);
        assert_eq!(ln_binomial_pmf(5, 1, 1.0), f64::NEG_INFINITY);
    }

    #[test]
    fn plan_covers_tolerance() {
        let config = StratifiedConfig {
            tolerance: 1e-6,
            ..StratifiedConfig::default()
        };
        for &(n, q) in &[(160usize, 0.001), (100, 0.05), (40, 0.5), (7, 0.9)] {
            let (plans, truncated) = plan_strata(n, q, &config);
            let mass: f64 = plans.iter().map(|s| s.weight).sum();
            assert!(mass >= 1.0 - config.tolerance - 1e-12, "n={n} q={q}");
            assert!((1.0 - mass - truncated).abs() < 1e-12);
            assert!(truncated <= config.tolerance + 1e-12);
            // Ascending, distinct, contiguous defect counts.
            for w in plans.windows(2) {
                assert_eq!(w[1].faults, w[0].faults + 1);
            }
        }
    }

    #[test]
    fn plan_degenerate_probabilities() {
        let config = StratifiedConfig::default();
        let (p0, t0) = plan_strata(30, 0.0, &config);
        assert_eq!((p0.len(), p0[0].faults, t0), (1, 0, 0.0));
        let (p1, t1) = plan_strata(30, 1.0, &config);
        assert_eq!((p1.len(), p1[0].faults, t1), (1, 30, 0.0));
    }

    #[test]
    fn plan_respects_max_strata() {
        let config = StratifiedConfig {
            tolerance: 0.0,
            max_strata: 3,
            ..StratifiedConfig::default()
        };
        let (plans, truncated) = plan_strata(100, 0.5, &config);
        assert_eq!(plans.len(), 3);
        assert!(truncated > 0.0);
    }

    #[test]
    fn apportion_is_exact_and_deterministic() {
        let shares = apportion(100, &[1.0, 1.0, 2.0]);
        assert_eq!(shares.iter().sum::<u64>(), 100);
        assert_eq!(shares, vec![25, 25, 50]);
        assert_eq!(apportion(10, &[0.0, 0.0]), vec![0, 0]);
        let uneven = apportion(10, &[1.0, 1.0, 1.0]);
        assert_eq!(uneven.iter().sum::<u64>(), 10);
    }

    #[test]
    fn matches_closed_form_threshold_model() {
        // Survive iff at most 2 of 80 cells fail: Y = binomial CDF.
        let n = 80usize;
        let q: f64 = 0.02;
        let exact: f64 = (0..=2).map(|k| ln_binomial_pmf(n, k, q).exp()).sum();
        let est = StratifiedMonteCarlo::new(n, 4_000, 11).estimate(q, || (), |k, _, ()| k <= 2);
        // The verdict depends on k alone, so the sampled per-stratum
        // estimates are error-free — but the estimator cannot know that,
        // so it still reports the smoothed variance its trial counts
        // admit (honesty over optimism).
        assert!((est.point - exact).abs() < 1e-6, "{} vs {exact}", est.point);
        assert!(est.variance > 0.0, "sampled strata must admit error");
        assert!((est.point - exact).abs() < 4.0 * est.std_error() + est.truncated_mass + 1e-6);
    }

    #[test]
    fn proven_tolerable_resolves_low_strata_exactly() {
        // Same threshold model, but the caller *proves* k <= 2 always
        // survives: those strata become exact, and with the surviving
        // mass concentrated there the variance collapses to the k >= 3
        // (all-fail, smoothed) residue.
        let n = 80usize;
        let q: f64 = 0.02;
        let exact: f64 = (0..=2).map(|k| ln_binomial_pmf(n, k, q).exp()).sum();
        let est = StratifiedMonteCarlo::new(n, 4_000, 11)
            .with_proven_tolerable(2)
            .estimate(q, || (), |k, _, ()| k <= 2);
        assert!((est.point - exact).abs() < 1e-6);
        for s in &est.strata {
            assert_eq!(s.exact, s.faults <= 2, "k={}", s.faults);
            if s.exact {
                assert_eq!(s.estimate.trials(), 1);
                assert_eq!(s.variance_contribution(), 0.0);
            } else {
                assert!(s.variance_contribution() > 0.0);
            }
        }
        // The budget that would have gone to the proven strata is
        // re-targeted, so the reported variance beats the un-proven run.
        let unproven =
            StratifiedMonteCarlo::new(n, 4_000, 11).estimate(q, || (), |k, _, ()| k <= 2);
        assert!(
            est.variance < unproven.variance,
            "proven {} vs unproven {}",
            est.variance,
            unproven.variance
        );
    }

    #[test]
    #[should_panic(expected = "proven_tolerable")]
    fn wrong_proven_bound_panics_instead_of_biasing() {
        // Claim k <= 3 always survives while the truth is k <= 2: the
        // confirming evaluation of the k = 3 stratum must catch the lie.
        let _ = StratifiedMonteCarlo::new(40, 500, 7)
            .with_proven_tolerable(3)
            .estimate(0.05, || (), |k, _, ()| k <= 2);
    }

    #[test]
    fn stochastic_strata_agree_with_naive() {
        // A genuinely random verdict: each of the k defects independently
        // "misses" with probability 0.5; survive iff all miss.
        let n = 60usize;
        let q = 0.05;
        let trial = |k: usize, rng: &mut StdRng, (): &mut ()| (0..k).all(|_| rng.gen_bool(0.5));
        let strat = StratifiedMonteCarlo::new(n, 20_000, 3).estimate(q, || (), trial);
        // Closed form: Σ_k w_k 0.5^k = (1 - q/2)^n.
        let exact = (1.0 - q / 2.0).powi(n as i32);
        assert!(
            (strat.point - exact).abs() < 4.0 * strat.std_error() + 1e-3,
            "{} vs {exact} (σ {})",
            strat.point,
            strat.std_error()
        );
        assert!(strat.variance > 0.0);
        assert!(strat.trials <= 20_000);
    }

    #[test]
    fn deterministic_strata_need_one_trial() {
        // q so small that k = 0 dominates: almost the entire budget is
        // left unspent on the deterministic stratum.
        let est = StratifiedMonteCarlo::new(100, 1_000, 5).estimate(1e-9, || (), |k, _, ()| k == 0);
        assert!(est.point > 0.999_999);
        let zero = est.strata.iter().find(|s| s.faults == 0).unwrap();
        assert_eq!(zero.estimate.trials(), 1);
        assert_eq!(zero.estimate.successes(), 1);
    }

    #[test]
    fn thread_invariant() {
        let run = |threads: usize| {
            StratifiedMonteCarlo::new(50, 3_000, 17)
                .with_threads(threads)
                .estimate(0.03, || (), |k, rng, ()| (0..k).all(|_| rng.gen_bool(0.8)))
        };
        let seq = run(1);
        for threads in [0, 2, 5] {
            assert_eq!(run(threads), seq, "threads={threads}");
        }
    }

    #[test]
    fn block_engine_is_byte_identical_to_scalar() {
        use rand::SeedableRng;
        let trial =
            |k: usize, rng: &mut StdRng, (): &mut ()| k <= 1 || (0..k).all(|_| rng.gen_bool(0.8));
        let scalar = StratifiedMonteCarlo::new(50, 3_000, 17)
            .with_proven_tolerable(1)
            .estimate(0.03, || (), trial);
        for width in [1usize, 64, 512] {
            for threads in [1usize, 3] {
                let block = StratifiedMonteCarlo::new(50, 3_000, 17)
                    .with_proven_tolerable(1)
                    .with_threads(threads)
                    .estimate_block(
                        0.03,
                        width,
                        || (),
                        |k, seeds, ()| {
                            seeds
                                .iter()
                                .filter(|&&s| trial(k, &mut StdRng::seed_from_u64(s), &mut ()))
                                .count() as u32
                        },
                    );
                assert_eq!(block, scalar, "width={width} threads={threads}");
            }
        }
    }

    #[test]
    fn multi_outcome_shares_placements() {
        // Outcome 0: no defects at all; outcome 1: at most 3 defects.
        // Nested events ⇒ nested estimates, stratum by stratum.
        let ests = StratifiedMonteCarlo::new(40, 2_000, 9).estimate_multi(
            0.05,
            2,
            || (),
            |k, _, (), out| {
                out[0] = k == 0;
                out[1] = k <= 3;
            },
        );
        assert_eq!(ests.len(), 2);
        assert!(ests[0].point <= ests[1].point);
        assert_eq!(ests[0].trials, ests[1].trials);
        let exact0 = 0.95f64.powi(40);
        assert!((ests[0].point - exact0).abs() < 1e-6);
    }

    #[test]
    fn effective_trials_reports_speedup() {
        let est = StratifiedMonteCarlo::new(30, 500, 2).estimate(1e-12, || (), |k, _, ()| k == 0);
        assert_eq!(est.variance, 0.0);
        assert!(est.effective_trials().is_infinite());
        let (lo, hi) = est.ci95();
        assert!(lo <= est.point && est.point <= hi);
        assert!(est.margin95() < 1e-6);
    }

    #[test]
    fn budget_is_respected() {
        for budget in [10u32, 100, 5_000] {
            let est = StratifiedMonteCarlo::new(64, budget, 21).estimate(
                0.1,
                || (),
                |k, rng, ()| (0..k).all(|_| rng.gen_bool(0.9)),
            );
            assert!(est.trials <= u64::from(budget).max(est.strata.len() as u64));
        }
    }
}
