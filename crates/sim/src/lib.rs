//! Seeded, parallel Monte-Carlo engine and statistics.
//!
//! The paper estimates the yield of DTMB(2,6), DTMB(3,6) and DTMB(4,4)
//! designs by Monte-Carlo simulation: "After 10000 simulation runs, the
//! yield of this microfluidic array is determined from the proportion of
//! successful reconfigurations." This crate supplies that machinery in a
//! reusable form:
//!
//! * [`MonteCarlo`] — runs a success/failure experiment for a fixed number
//!   of trials, sequentially or across threads, with per-trial RNGs derived
//!   deterministically from one master seed (results are reproducible and
//!   independent of thread count).
//! * [`BernoulliEstimate`] — success-proportion estimate with Wilson
//!   confidence intervals.
//! * [`Summary`] — streaming mean/variance for real-valued observables.
//! * [`SeedSequence`] — SplitMix64 stream of decorrelated sub-seeds.
//! * [`stratified`] — the defect-count-stratified rare-event estimator
//!   ([`StratifiedMonteCarlo`]): conditions on the binomial defect count,
//!   spends trials only where the verdict is uncertain, and reports a
//!   variance plus the equivalent naive trial count.
//! * [`sweep`] — deterministic parallel job orchestration
//!   ([`parallel_map`]) and the [`auto_threads`] core-count default used
//!   wherever a thread count is optional (`0` = one worker per core).
//!
//! # Example
//!
//! ```
//! use dmfb_sim::MonteCarlo;
//! use rand::Rng;
//!
//! // Estimate P(success) of a biased coin.
//! let mc = MonteCarlo::new(10_000, 42);
//! let est = mc.run(|rng| rng.gen_bool(0.25));
//! assert!((est.point() - 0.25).abs() < 0.02);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod mc;
mod seeds;
mod stats;
pub mod stratified;
pub mod sweep;

pub use mc::MonteCarlo;
pub use seeds::SeedSequence;
pub use stats::{wilson_interval, BernoulliEstimate, Summary};
pub use stratified::{StratifiedConfig, StratifiedEstimate, StratifiedMonteCarlo, StratumEstimate};
pub use sweep::{auto_threads, parallel_map};
