//! Estimators and confidence intervals.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A Bernoulli (success proportion) estimate from a Monte-Carlo run.
///
/// # Example
///
/// ```
/// use dmfb_sim::BernoulliEstimate;
///
/// let est = BernoulliEstimate::new(9_000, 10_000);
/// assert_eq!(est.point(), 0.9);
/// let (lo, hi) = est.wilson95();
/// assert!(lo < 0.9 && 0.9 < hi);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BernoulliEstimate {
    successes: u64,
    trials: u64,
}

impl BernoulliEstimate {
    /// Creates an estimate from raw counts.
    ///
    /// # Panics
    ///
    /// Panics if `successes > trials`.
    #[must_use]
    pub fn new(successes: u64, trials: u64) -> Self {
        assert!(
            successes <= trials,
            "successes ({successes}) cannot exceed trials ({trials})"
        );
        BernoulliEstimate { successes, trials }
    }

    /// Number of successful trials.
    #[must_use]
    pub fn successes(&self) -> u64 {
        self.successes
    }

    /// Total number of trials.
    #[must_use]
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// The point estimate `successes / trials` (0 when there are no trials).
    #[must_use]
    pub fn point(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.successes as f64 / self.trials as f64
        }
    }

    /// The 95% Wilson score interval.
    #[must_use]
    pub fn wilson95(&self) -> (f64, f64) {
        wilson_interval(self.successes, self.trials, 1.959_963_984_540_054)
    }

    /// Half-width of the 95% Wilson interval — a convenient "±" figure.
    #[must_use]
    pub fn margin95(&self) -> f64 {
        let (lo, hi) = self.wilson95();
        (hi - lo) / 2.0
    }

    /// Merges two independent estimates of the same quantity.
    #[must_use]
    pub fn merged(self, other: BernoulliEstimate) -> BernoulliEstimate {
        BernoulliEstimate::new(self.successes + other.successes, self.trials + other.trials)
    }
}

impl fmt::Display for BernoulliEstimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (lo, hi) = self.wilson95();
        write!(
            f,
            "{:.4} (95% CI [{:.4}, {:.4}], {}/{} trials)",
            self.point(),
            lo,
            hi,
            self.successes,
            self.trials
        )
    }
}

/// The Wilson score interval for a binomial proportion.
///
/// Unlike the normal approximation, the Wilson interval is well behaved at
/// proportions near 0 and 1 — exactly where yield estimates live.
/// Returns `(0.0, 1.0)` when `trials == 0`.
#[must_use]
pub fn wilson_interval(successes: u64, trials: u64, z: f64) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 1.0);
    }
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    // Analytically the Wilson interval always contains the point estimate;
    // guard against floating-point rounding pushing a bound past it.
    let lo = (center - half).max(0.0).min(p);
    let hi = (center + half).min(1.0).max(p);
    (lo, hi)
}

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// # Example
///
/// ```
/// use dmfb_sim::Summary;
///
/// let mut s = Summary::new();
/// for x in [1.0, 2.0, 3.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.sample_variance(), 1.0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    #[must_use]
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn stddev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Smallest observation (`+inf` when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator (Chan's parallel variant).
    #[must_use]
    pub fn merged(self, other: Summary) -> Summary {
        if self.count == 0 {
            return other;
        }
        if other.count == 0 {
            return self;
        }
        let count = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / count as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * (self.count as f64 * other.count as f64) / count as f64;
        Summary {
            count,
            mean,
            m2,
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        s.extend(iter);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bernoulli_point_and_bounds() {
        let e = BernoulliEstimate::new(0, 0);
        assert_eq!(e.point(), 0.0);
        assert_eq!(e.wilson95(), (0.0, 1.0));
        let e = BernoulliEstimate::new(10, 10);
        assert_eq!(e.point(), 1.0);
        let (lo, hi) = e.wilson95();
        assert!(lo > 0.6 && hi == 1.0);
    }

    #[test]
    #[should_panic(expected = "cannot exceed")]
    fn bernoulli_rejects_impossible_counts() {
        let _ = BernoulliEstimate::new(2, 1);
    }

    #[test]
    fn wilson_shrinks_with_trials() {
        let narrow = BernoulliEstimate::new(9_000, 10_000).margin95();
        let wide = BernoulliEstimate::new(90, 100).margin95();
        assert!(narrow < wide);
    }

    #[test]
    fn wilson_contains_point_estimate() {
        for (s, t) in [(0u64, 10u64), (5, 10), (10, 10), (9999, 10000)] {
            let e = BernoulliEstimate::new(s, t);
            let (lo, hi) = e.wilson95();
            assert!(lo <= e.point() && e.point() <= hi, "{s}/{t}");
            assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
        }
    }

    #[test]
    fn merged_estimates_pool_counts() {
        let a = BernoulliEstimate::new(3, 10);
        let b = BernoulliEstimate::new(7, 10);
        let m = a.merged(b);
        assert_eq!(m.point(), 0.5);
        assert_eq!(m.trials(), 20);
        assert_eq!(m.successes(), 10);
    }

    #[test]
    fn summary_known_values() {
        let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.sample_variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn summary_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let full: Summary = xs.iter().copied().collect();
        let left: Summary = xs[..37].iter().copied().collect();
        let right: Summary = xs[37..].iter().copied().collect();
        let merged = left.merged(right);
        assert_eq!(merged.count(), full.count());
        assert!((merged.mean() - full.mean()).abs() < 1e-10);
        assert!((merged.sample_variance() - full.sample_variance()).abs() < 1e-10);
        // Identity merges
        assert_eq!(Summary::new().merged(full).count(), full.count());
        assert_eq!(full.merged(Summary::new()).count(), full.count());
    }

    #[test]
    fn display_nonempty() {
        let e = BernoulliEstimate::new(1, 2);
        assert!(e.to_string().contains("0.5"));
    }
}
