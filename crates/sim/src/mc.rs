//! The Monte-Carlo engine.

use crate::{BernoulliEstimate, SeedSequence, Summary};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A reproducible Monte-Carlo experiment runner.
///
/// Each trial receives its own [`StdRng`] seeded from a [`SeedSequence`], so
/// an experiment's result depends only on `(trials, master_seed)` — never on
/// thread count or scheduling. This is what lets the figure generators print
/// the exact numbers recorded in `EXPERIMENTS.md`.
///
/// # Example
///
/// ```
/// use dmfb_sim::MonteCarlo;
/// use rand::Rng;
///
/// let mc = MonteCarlo::new(5_000, 1);
/// let seq = mc.run(|rng| rng.gen_bool(0.5));
/// let par = mc.run_parallel(4, |rng| rng.gen_bool(0.5));
/// assert_eq!(seq.successes(), par.successes());
/// ```
#[derive(Clone, Copy, Debug)]
pub struct MonteCarlo {
    trials: u32,
    master_seed: u64,
}

impl MonteCarlo {
    /// Creates an engine that will run `trials` trials seeded by
    /// `master_seed`.
    #[must_use]
    pub fn new(trials: u32, master_seed: u64) -> Self {
        MonteCarlo {
            trials,
            master_seed,
        }
    }

    /// Number of trials per run.
    #[must_use]
    pub fn trials(&self) -> u32 {
        self.trials
    }

    /// The master seed.
    #[must_use]
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// Runs `trial` once per trial sequentially and returns the success
    /// proportion.
    pub fn run(&self, mut trial: impl FnMut(&mut StdRng) -> bool) -> BernoulliEstimate {
        let mut successes = 0u64;
        for seed in SeedSequence::new(self.master_seed).take(self.trials as usize) {
            let mut rng = StdRng::seed_from_u64(seed);
            if trial(&mut rng) {
                successes += 1;
            }
        }
        BernoulliEstimate::new(successes, u64::from(self.trials))
    }

    /// Runs the experiment across `threads` worker threads. The result is
    /// identical to [`MonteCarlo::run`] because each trial's RNG depends
    /// only on its index.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` or if a worker thread panics.
    pub fn run_parallel(
        &self,
        threads: usize,
        trial: impl Fn(&mut StdRng) -> bool + Sync,
    ) -> BernoulliEstimate {
        assert!(threads > 0, "at least one thread required");
        if threads == 1 || self.trials < 2 {
            return self.run(|rng| trial(rng));
        }
        let total = self.trials as u64;
        let master = self.master_seed;
        let successes = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for t in 0..threads as u64 {
                let trial = &trial;
                handles.push(scope.spawn(move || {
                    let mut local = 0u64;
                    let mut i = t;
                    while i < total {
                        let mut rng = StdRng::seed_from_u64(SeedSequence::nth_seed(master, i));
                        if trial(&mut rng) {
                            local += 1;
                        }
                        i += threads as u64;
                    }
                    local
                }));
            }
            handles.into_iter().map(|h| h.join().expect("worker")).sum()
        });
        BernoulliEstimate::new(successes, total)
    }

    /// Runs a real-valued observable once per trial and accumulates a
    /// [`Summary`].
    pub fn observe(&self, mut observable: impl FnMut(&mut StdRng) -> f64) -> Summary {
        let mut s = Summary::new();
        for seed in SeedSequence::new(self.master_seed).take(self.trials as usize) {
            let mut rng = StdRng::seed_from_u64(seed);
            s.push(observable(&mut rng));
        }
        s
    }

    /// Runs trials until the 95% Wilson interval half-width drops below
    /// `target_half_width` or the engine's trial budget is exhausted,
    /// whichever comes first. Checks the width every `batch` trials.
    ///
    /// The trial stream is the same as [`MonteCarlo::run`]'s, so stopping
    /// early is statistically safe to first order (the stopping rule looks
    /// only at the width, not the estimate).
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0` or `target_half_width <= 0`.
    pub fn run_to_precision(
        &self,
        target_half_width: f64,
        batch: u32,
        mut trial: impl FnMut(&mut StdRng) -> bool,
    ) -> BernoulliEstimate {
        assert!(batch > 0, "batch must be positive");
        assert!(
            target_half_width > 0.0,
            "target half-width must be positive"
        );
        let mut successes = 0u64;
        let mut done = 0u64;
        let mut seeds = SeedSequence::new(self.master_seed);
        while done < u64::from(self.trials) {
            for _ in 0..batch.min((u64::from(self.trials) - done) as u32) {
                let seed = seeds.next().expect("seed stream is infinite");
                let mut rng = StdRng::seed_from_u64(seed);
                if trial(&mut rng) {
                    successes += 1;
                }
                done += 1;
            }
            let est = BernoulliEstimate::new(successes, done);
            if est.margin95() <= target_half_width {
                return est;
            }
        }
        BernoulliEstimate::new(successes, done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn reproducible_runs() {
        let mc = MonteCarlo::new(1_000, 7);
        let a = mc.run(|rng| rng.gen_bool(0.3));
        let b = mc.run(|rng| rng.gen_bool(0.3));
        assert_eq!(a, b);
        assert_eq!(mc.trials(), 1_000);
        assert_eq!(mc.master_seed(), 7);
    }

    #[test]
    fn parallel_equals_sequential() {
        let mc = MonteCarlo::new(2_000, 99);
        let seq = mc.run(|rng| rng.gen_bool(0.42));
        for threads in [1, 2, 3, 8] {
            let par = mc.run_parallel(threads, |rng| rng.gen_bool(0.42));
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn estimates_converge() {
        let mc = MonteCarlo::new(20_000, 3);
        let est = mc.run(|rng| rng.gen_bool(0.8));
        assert!((est.point() - 0.8).abs() < 0.01);
        let (lo, hi) = est.wilson95();
        assert!(lo <= 0.8 && 0.8 <= hi);
    }

    #[test]
    fn observe_summary() {
        let mc = MonteCarlo::new(10_000, 11);
        let s = mc.observe(|rng| rng.gen_range(0.0..1.0));
        assert!((s.mean() - 0.5).abs() < 0.02);
        assert!(s.min() >= 0.0 && s.max() <= 1.0);
        assert_eq!(s.count(), 10_000);
    }

    #[test]
    fn zero_trials() {
        let mc = MonteCarlo::new(0, 5);
        let est = mc.run(|_| true);
        assert_eq!(est.trials(), 0);
        assert_eq!(est.point(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let mc = MonteCarlo::new(10, 5);
        let _ = mc.run_parallel(0, |_| true);
    }

    #[test]
    fn precision_mode_stops_early_when_easy() {
        let mc = MonteCarlo::new(100_000, 21);
        // A certain event needs very few trials to reach a tight interval.
        let est = mc.run_to_precision(0.01, 100, |_| true);
        assert!(
            est.trials() < 50_000,
            "stopped after {} trials",
            est.trials()
        );
        assert_eq!(est.point(), 1.0);
        assert!(est.margin95() <= 0.01);
    }

    #[test]
    fn precision_mode_exhausts_budget_when_hard() {
        let mc = MonteCarlo::new(500, 22);
        // A fair coin cannot reach +-0.1% with 500 trials.
        let est = mc.run_to_precision(0.001, 100, |rng| rng.gen_bool(0.5));
        assert_eq!(est.trials(), 500);
        assert!(est.margin95() > 0.001);
    }

    #[test]
    fn precision_mode_prefix_of_run() {
        // The precision mode consumes the same trial stream, so its counts
        // are a prefix of the full run's trial-by-trial history.
        let mc = MonteCarlo::new(2_000, 23);
        let full = mc.run(|rng| rng.gen_bool(0.3));
        let partial = mc.run_to_precision(1.0, 2_000, |rng| rng.gen_bool(0.3));
        assert_eq!(partial.trials(), 2_000);
        assert_eq!(partial.successes(), full.successes());
    }

    #[test]
    #[should_panic(expected = "batch must be positive")]
    fn precision_mode_rejects_zero_batch() {
        let _ = MonteCarlo::new(10, 1).run_to_precision(0.1, 0, |_| true);
    }

    #[test]
    fn different_seeds_differ() {
        let a = MonteCarlo::new(500, 1).run(|rng| rng.gen_bool(0.5));
        let b = MonteCarlo::new(500, 2).run(|rng| rng.gen_bool(0.5));
        // Overwhelmingly likely to differ in exact success count.
        assert_ne!(a.successes(), b.successes());
    }
}
