//! The Monte-Carlo engine.

use crate::{BernoulliEstimate, SeedSequence, Summary};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Maps the public "0 = one worker per core" convention onto a concrete
/// worker count.
fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        crate::sweep::auto_threads()
    } else {
        threads
    }
}

/// A reproducible Monte-Carlo experiment runner.
///
/// Each trial receives its own [`StdRng`] seeded from a [`SeedSequence`], so
/// an experiment's result depends only on `(trials, master_seed)` — never on
/// thread count or scheduling. This is what lets the figure generators print
/// the exact numbers recorded in `EXPERIMENTS.md`.
///
/// # Example
///
/// ```
/// use dmfb_sim::MonteCarlo;
/// use rand::Rng;
///
/// let mc = MonteCarlo::new(5_000, 1);
/// let seq = mc.run(|rng| rng.gen_bool(0.5));
/// // `0` threads means "one worker per available core"
/// // (std::thread::available_parallelism).
/// let par = mc.run_parallel(0, |rng| rng.gen_bool(0.5));
/// assert_eq!(seq.successes(), par.successes());
/// ```
#[derive(Clone, Copy, Debug)]
pub struct MonteCarlo {
    trials: u32,
    master_seed: u64,
}

impl MonteCarlo {
    /// Creates an engine that will run `trials` trials seeded by
    /// `master_seed`.
    #[must_use]
    pub fn new(trials: u32, master_seed: u64) -> Self {
        MonteCarlo {
            trials,
            master_seed,
        }
    }

    /// Number of trials per run.
    #[must_use]
    pub fn trials(&self) -> u32 {
        self.trials
    }

    /// The master seed.
    #[must_use]
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// Runs `trial` once per trial sequentially and returns the success
    /// proportion.
    pub fn run(&self, mut trial: impl FnMut(&mut StdRng) -> bool) -> BernoulliEstimate {
        self.run_with(|| (), |rng, ()| trial(rng))
    }

    /// Like [`MonteCarlo::run`], but threads a caller-built scratch state
    /// through every trial. `init` is called once before the loop; `trial`
    /// receives the same `&mut S` each time, so buffers allocated in
    /// `init` amortise across the whole run (the incremental-evaluator
    /// pattern in `dmfb-reconfig`).
    pub fn run_with<S>(
        &self,
        init: impl FnOnce() -> S,
        mut trial: impl FnMut(&mut StdRng, &mut S) -> bool,
    ) -> BernoulliEstimate {
        let mut state = init();
        let mut successes = 0u64;
        for seed in SeedSequence::new(self.master_seed).take(self.trials as usize) {
            let mut rng = StdRng::seed_from_u64(seed);
            if trial(&mut rng, &mut state) {
                successes += 1;
            }
        }
        BernoulliEstimate::new(successes, u64::from(self.trials))
    }

    /// Runs the experiment across `threads` worker threads (`0` means one
    /// worker per available core, per [`crate::sweep::auto_threads`]). The
    /// result is identical to [`MonteCarlo::run`] because each trial's RNG
    /// depends only on its index.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics.
    pub fn run_parallel(
        &self,
        threads: usize,
        trial: impl Fn(&mut StdRng) -> bool + Sync,
    ) -> BernoulliEstimate {
        self.run_parallel_with(threads, || (), |rng, ()| trial(rng))
    }

    /// Per-thread-state variant of [`MonteCarlo::run_parallel`]: each
    /// worker thread calls `init` once and reuses the returned scratch for
    /// all of its trials. Results are byte-identical to
    /// [`MonteCarlo::run_with`] for any thread count, because every
    /// trial's RNG depends only on the trial index and the per-worker
    /// success counts are summed in worker order.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics.
    pub fn run_parallel_with<S>(
        &self,
        threads: usize,
        init: impl Fn() -> S + Sync,
        trial: impl Fn(&mut StdRng, &mut S) -> bool + Sync,
    ) -> BernoulliEstimate {
        let threads = resolve_threads(threads);
        if threads == 1 || self.trials < 2 {
            return self.run_with(&init, |rng, s| trial(rng, s));
        }
        let total = self.trials as u64;
        let master = self.master_seed;
        let successes = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for t in 0..threads as u64 {
                let trial = &trial;
                let init = &init;
                handles.push(scope.spawn(move || {
                    let mut state = init();
                    let mut local = 0u64;
                    let mut i = t;
                    while i < total {
                        let mut rng = StdRng::seed_from_u64(SeedSequence::nth_seed(master, i));
                        if trial(&mut rng, &mut state) {
                            local += 1;
                        }
                        i += threads as u64;
                    }
                    local
                }));
            }
            handles.into_iter().map(|h| h.join().expect("worker")).sum()
        });
        BernoulliEstimate::new(successes, total)
    }

    /// Block-parallel counterpart of [`MonteCarlo::run_parallel_with`]:
    /// trials are handed to `block` in groups of up to `width` *seeds*
    /// (the same `SeedSequence` seeds the scalar engine would have used,
    /// in trial order), and `block` returns how many of them succeeded.
    ///
    /// Because each trial's seed depends only on its global index, the
    /// result is identical for any `width`, any `threads`, and to the
    /// scalar runners — provided `block` gives each seed the verdict the
    /// scalar `trial` closure would (the contract the `dmfb-reconfig`
    /// word-parallel engine upholds).
    ///
    /// # Panics
    ///
    /// Panics if `width == 0` or a worker thread panics.
    pub fn run_blocks_with<S>(
        &self,
        threads: usize,
        width: usize,
        init: impl Fn() -> S + Sync,
        block: impl Fn(&[u64], &mut S) -> u32 + Sync,
    ) -> BernoulliEstimate {
        assert!(width > 0, "block width must be positive");
        let total = u64::from(self.trials);
        let blocks = total.div_ceil(width as u64);
        let threads = resolve_threads(threads);
        let master = self.master_seed;
        let fill_seeds = |seeds: &mut Vec<u64>, b: u64| {
            seeds.clear();
            seeds.extend(
                (b * width as u64..total.min((b + 1) * width as u64))
                    .map(|i| SeedSequence::nth_seed(master, i)),
            );
        };
        if threads == 1 || blocks < 2 {
            let mut state = init();
            let mut seeds = Vec::with_capacity(width);
            let mut successes = 0u64;
            for b in 0..blocks {
                fill_seeds(&mut seeds, b);
                successes += u64::from(block(&seeds, &mut state));
            }
            return BernoulliEstimate::new(successes, total);
        }
        let successes = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for t in 0..threads as u64 {
                let block = &block;
                let init = &init;
                let fill_seeds = &fill_seeds;
                handles.push(scope.spawn(move || {
                    let mut state = init();
                    let mut seeds = Vec::with_capacity(width);
                    let mut local = 0u64;
                    let mut b = t;
                    while b < blocks {
                        fill_seeds(&mut seeds, b);
                        local += u64::from(block(&seeds, &mut state));
                        b += threads as u64;
                    }
                    local
                }));
            }
            handles.into_iter().map(|h| h.join().expect("worker")).sum()
        });
        BernoulliEstimate::new(successes, total)
    }

    /// Block-parallel counterpart of [`MonteCarlo::tally_parallel`]:
    /// `block` receives a group of up to `width` trial seeds and *adds*
    /// each slot's success count for those trials into the `k`-slot
    /// count vector. Per-worker counts are summed element-wise, so the
    /// estimates are identical for any `width` and `threads`.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0` or a worker thread panics.
    pub fn tally_blocks_with<S>(
        &self,
        threads: usize,
        width: usize,
        k: usize,
        init: impl Fn() -> S + Sync,
        block: impl Fn(&[u64], &mut S, &mut [u64]) + Sync,
    ) -> Vec<BernoulliEstimate> {
        assert!(width > 0, "block width must be positive");
        let total = u64::from(self.trials);
        let blocks = total.div_ceil(width as u64);
        let threads = resolve_threads(threads);
        let master = self.master_seed;
        let fill_seeds = |seeds: &mut Vec<u64>, b: u64| {
            seeds.clear();
            seeds.extend(
                (b * width as u64..total.min((b + 1) * width as u64))
                    .map(|i| SeedSequence::nth_seed(master, i)),
            );
        };
        let counts = if threads == 1 || blocks < 2 {
            let mut state = init();
            let mut seeds = Vec::with_capacity(width);
            let mut counts = vec![0u64; k];
            for b in 0..blocks {
                fill_seeds(&mut seeds, b);
                block(&seeds, &mut state, &mut counts);
            }
            counts
        } else {
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(threads);
                for t in 0..threads as u64 {
                    let block = &block;
                    let init = &init;
                    let fill_seeds = &fill_seeds;
                    handles.push(scope.spawn(move || {
                        let mut state = init();
                        let mut seeds = Vec::with_capacity(width);
                        let mut local = vec![0u64; k];
                        let mut b = t;
                        while b < blocks {
                            fill_seeds(&mut seeds, b);
                            block(&seeds, &mut state, &mut local);
                            b += threads as u64;
                        }
                        local
                    }));
                }
                let mut counts = vec![0u64; k];
                for h in handles {
                    for (c, l) in counts.iter_mut().zip(h.join().expect("worker")) {
                        *c += l;
                    }
                }
                counts
            })
        };
        counts
            .into_iter()
            .map(|c| BernoulliEstimate::new(c, total))
            .collect()
    }

    /// Runs a *vector-valued* experiment: every trial fills a `k`-slot
    /// success vector (one slot per swept parameter value), and the engine
    /// tallies per-slot success counts into `k` estimates.
    ///
    /// This is how one Monte-Carlo pass serves an entire yield curve: a
    /// trial draws one random chip and reports, for each survival
    /// probability on the grid, whether that chip would have been
    /// tolerable — see `dmfb-yield`'s batched sweep.
    pub fn tally<S>(
        &self,
        k: usize,
        init: impl FnOnce() -> S,
        mut trial: impl FnMut(&mut StdRng, &mut S, &mut [bool]),
    ) -> Vec<BernoulliEstimate> {
        let mut state = init();
        let mut outcomes = vec![false; k];
        let mut counts = vec![0u64; k];
        for seed in SeedSequence::new(self.master_seed).take(self.trials as usize) {
            let mut rng = StdRng::seed_from_u64(seed);
            outcomes.iter_mut().for_each(|o| *o = false);
            trial(&mut rng, &mut state, &mut outcomes);
            for (c, &o) in counts.iter_mut().zip(&outcomes) {
                *c += u64::from(o);
            }
        }
        counts
            .into_iter()
            .map(|c| BernoulliEstimate::new(c, u64::from(self.trials)))
            .collect()
    }

    /// Parallel, byte-identical counterpart of [`MonteCarlo::tally`]
    /// (`threads == 0` means one worker per available core). Per-worker
    /// count vectors are summed element-wise, which is order-independent,
    /// so the estimates never depend on scheduling.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics.
    pub fn tally_parallel<S>(
        &self,
        threads: usize,
        k: usize,
        init: impl Fn() -> S + Sync,
        trial: impl Fn(&mut StdRng, &mut S, &mut [bool]) + Sync,
    ) -> Vec<BernoulliEstimate> {
        let threads = resolve_threads(threads);
        if threads == 1 || self.trials < 2 {
            return self.tally(k, &init, |rng, s, out| trial(rng, s, out));
        }
        let total = self.trials as u64;
        let master = self.master_seed;
        let counts = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for t in 0..threads as u64 {
                let trial = &trial;
                let init = &init;
                handles.push(scope.spawn(move || {
                    let mut state = init();
                    let mut outcomes = vec![false; k];
                    let mut local = vec![0u64; k];
                    let mut i = t;
                    while i < total {
                        let mut rng = StdRng::seed_from_u64(SeedSequence::nth_seed(master, i));
                        outcomes.iter_mut().for_each(|o| *o = false);
                        trial(&mut rng, &mut state, &mut outcomes);
                        for (c, &o) in local.iter_mut().zip(&outcomes) {
                            *c += u64::from(o);
                        }
                        i += threads as u64;
                    }
                    local
                }));
            }
            let mut counts = vec![0u64; k];
            for h in handles {
                for (c, l) in counts.iter_mut().zip(h.join().expect("worker")) {
                    *c += l;
                }
            }
            counts
        });
        counts
            .into_iter()
            .map(|c| BernoulliEstimate::new(c, total))
            .collect()
    }

    /// Runs a real-valued observable once per trial and accumulates a
    /// [`Summary`].
    pub fn observe(&self, mut observable: impl FnMut(&mut StdRng) -> f64) -> Summary {
        let mut s = Summary::new();
        for seed in SeedSequence::new(self.master_seed).take(self.trials as usize) {
            let mut rng = StdRng::seed_from_u64(seed);
            s.push(observable(&mut rng));
        }
        s
    }

    /// Runs trials until the 95% Wilson interval half-width drops below
    /// `target_half_width` or the engine's trial budget is exhausted,
    /// whichever comes first. Checks the width every `batch` trials.
    ///
    /// The trial stream is the same as [`MonteCarlo::run`]'s, so stopping
    /// early is statistically safe to first order (the stopping rule looks
    /// only at the width, not the estimate).
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0` or `target_half_width <= 0`.
    pub fn run_to_precision(
        &self,
        target_half_width: f64,
        batch: u32,
        mut trial: impl FnMut(&mut StdRng) -> bool,
    ) -> BernoulliEstimate {
        assert!(batch > 0, "batch must be positive");
        assert!(
            target_half_width > 0.0,
            "target half-width must be positive"
        );
        let mut successes = 0u64;
        let mut done = 0u64;
        let mut seeds = SeedSequence::new(self.master_seed);
        while done < u64::from(self.trials) {
            for _ in 0..batch.min((u64::from(self.trials) - done) as u32) {
                let seed = seeds.next().expect("seed stream is infinite");
                let mut rng = StdRng::seed_from_u64(seed);
                if trial(&mut rng) {
                    successes += 1;
                }
                done += 1;
            }
            let est = BernoulliEstimate::new(successes, done);
            if est.margin95() <= target_half_width {
                return est;
            }
        }
        BernoulliEstimate::new(successes, done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn reproducible_runs() {
        let mc = MonteCarlo::new(1_000, 7);
        let a = mc.run(|rng| rng.gen_bool(0.3));
        let b = mc.run(|rng| rng.gen_bool(0.3));
        assert_eq!(a, b);
        assert_eq!(mc.trials(), 1_000);
        assert_eq!(mc.master_seed(), 7);
    }

    #[test]
    fn parallel_equals_sequential() {
        let mc = MonteCarlo::new(2_000, 99);
        let seq = mc.run(|rng| rng.gen_bool(0.42));
        // 0 = one worker per available core.
        for threads in [0, 1, 2, 3, 8] {
            let par = mc.run_parallel(threads, |rng| rng.gen_bool(0.42));
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn per_thread_state_is_reused_and_results_match() {
        let mc = MonteCarlo::new(1_000, 5);
        // Count how many times init runs sequentially: exactly once.
        let mut inits = 0u32;
        let seq = mc.run_with(
            || {
                inits += 1;
                Vec::<u8>::with_capacity(16)
            },
            |rng, buf| {
                buf.clear();
                buf.push(1);
                rng.gen_bool(0.37)
            },
        );
        assert_eq!(inits, 1);
        for threads in [0, 1, 2, 5] {
            let par = mc.run_parallel_with(
                threads,
                || Vec::<u8>::with_capacity(16),
                |rng, buf| {
                    buf.clear();
                    buf.push(1);
                    rng.gen_bool(0.37)
                },
            );
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn tally_parallel_is_byte_identical() {
        let mc = MonteCarlo::new(1_500, 41);
        let grid = [0.2, 0.5, 0.9];
        let fill = |rng: &mut StdRng, (): &mut (), out: &mut [bool]| {
            let u: f64 = rng.gen();
            for (o, &p) in out.iter_mut().zip(&grid) {
                *o = u < p;
            }
        };
        let seq = mc.tally(grid.len(), || (), fill);
        assert_eq!(seq.len(), grid.len());
        // Slots are monotone in p by construction (common random numbers).
        assert!(seq[0].successes() <= seq[1].successes());
        assert!(seq[1].successes() <= seq[2].successes());
        for threads in [0, 2, 7] {
            let par = mc.tally_parallel(threads, grid.len(), || (), fill);
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn estimates_converge() {
        let mc = MonteCarlo::new(20_000, 3);
        let est = mc.run(|rng| rng.gen_bool(0.8));
        assert!((est.point() - 0.8).abs() < 0.01);
        let (lo, hi) = est.wilson95();
        assert!(lo <= 0.8 && 0.8 <= hi);
    }

    #[test]
    fn observe_summary() {
        let mc = MonteCarlo::new(10_000, 11);
        let s = mc.observe(|rng| rng.gen_range(0.0..1.0));
        assert!((s.mean() - 0.5).abs() < 0.02);
        assert!(s.min() >= 0.0 && s.max() <= 1.0);
        assert_eq!(s.count(), 10_000);
    }

    #[test]
    fn zero_trials() {
        let mc = MonteCarlo::new(0, 5);
        let est = mc.run(|_| true);
        assert_eq!(est.trials(), 0);
        assert_eq!(est.point(), 0.0);
    }

    #[test]
    fn zero_threads_means_auto() {
        let mc = MonteCarlo::new(64, 5);
        let auto = mc.run_parallel(0, |rng| rng.gen_bool(0.5));
        let seq = mc.run(|rng| rng.gen_bool(0.5));
        assert_eq!(auto, seq);
    }

    #[test]
    fn precision_mode_stops_early_when_easy() {
        let mc = MonteCarlo::new(100_000, 21);
        // A certain event needs very few trials to reach a tight interval.
        let est = mc.run_to_precision(0.01, 100, |_| true);
        assert!(
            est.trials() < 50_000,
            "stopped after {} trials",
            est.trials()
        );
        assert_eq!(est.point(), 1.0);
        assert!(est.margin95() <= 0.01);
    }

    #[test]
    fn precision_mode_exhausts_budget_when_hard() {
        let mc = MonteCarlo::new(500, 22);
        // A fair coin cannot reach +-0.1% with 500 trials.
        let est = mc.run_to_precision(0.001, 100, |rng| rng.gen_bool(0.5));
        assert_eq!(est.trials(), 500);
        assert!(est.margin95() > 0.001);
    }

    #[test]
    fn precision_mode_prefix_of_run() {
        // The precision mode consumes the same trial stream, so its counts
        // are a prefix of the full run's trial-by-trial history.
        let mc = MonteCarlo::new(2_000, 23);
        let full = mc.run(|rng| rng.gen_bool(0.3));
        let partial = mc.run_to_precision(1.0, 2_000, |rng| rng.gen_bool(0.3));
        assert_eq!(partial.trials(), 2_000);
        assert_eq!(partial.successes(), full.successes());
    }

    #[test]
    #[should_panic(expected = "batch must be positive")]
    fn precision_mode_rejects_zero_batch() {
        let _ = MonteCarlo::new(10, 1).run_to_precision(0.1, 0, |_| true);
    }

    #[test]
    fn blocks_match_scalar_at_any_width_and_thread_count() {
        let mc = MonteCarlo::new(1_003, 77);
        let seq = mc.run(|rng| rng.gen_bool(0.42));
        for width in [1usize, 7, 64, 256, 2048] {
            for threads in [1usize, 2, 5] {
                let blocked = mc.run_blocks_with(
                    threads,
                    width,
                    || (),
                    |seeds, ()| {
                        seeds
                            .iter()
                            .filter(|&&s| StdRng::seed_from_u64(s).gen_bool(0.42))
                            .count() as u32
                    },
                );
                assert_eq!(blocked, seq, "width={width} threads={threads}");
            }
        }
    }

    #[test]
    fn tally_blocks_match_scalar_tally() {
        let mc = MonteCarlo::new(997, 31);
        let grid = [0.2, 0.5, 0.9];
        let seq = mc.tally(
            grid.len(),
            || (),
            |rng, (), out| {
                let u: f64 = rng.gen();
                for (o, &p) in out.iter_mut().zip(&grid) {
                    *o = u < p;
                }
            },
        );
        for width in [1usize, 64, 300] {
            for threads in [1usize, 3] {
                let blocked = mc.tally_blocks_with(
                    threads,
                    width,
                    grid.len(),
                    || (),
                    |seeds, (), counts| {
                        for &s in seeds {
                            let u: f64 = StdRng::seed_from_u64(s).gen();
                            for (c, &p) in counts.iter_mut().zip(&grid) {
                                *c += u64::from(u < p);
                            }
                        }
                    },
                );
                assert_eq!(blocked, seq, "width={width} threads={threads}");
            }
        }
    }

    #[test]
    fn zero_trials_block_runner() {
        let mc = MonteCarlo::new(0, 9);
        let est = mc.run_blocks_with(4, 64, || (), |seeds, ()| seeds.len() as u32);
        assert_eq!(est.trials(), 0);
    }

    #[test]
    #[should_panic(expected = "block width must be positive")]
    fn block_runner_rejects_zero_width() {
        let _ = MonteCarlo::new(10, 1).run_blocks_with(1, 0, || (), |_, ()| 0);
    }

    #[test]
    fn different_seeds_differ() {
        let a = MonteCarlo::new(500, 1).run(|rng| rng.gen_bool(0.5));
        let b = MonteCarlo::new(500, 2).run(|rng| rng.gen_bool(0.5));
        // Overwhelmingly likely to differ in exact success count.
        assert_ne!(a.successes(), b.successes());
    }
}
