//! Property-based tests for the Monte-Carlo engine and statistics.

use dmfb_sim::{wilson_interval, BernoulliEstimate, MonteCarlo, SeedSequence, Summary};
use proptest::prelude::*;
use rand::Rng;

proptest! {
    /// Wilson intervals are ordered, inside [0,1], and contain the point
    /// estimate for any counts.
    #[test]
    fn wilson_interval_well_formed(trials in 0u64..100_000, frac in 0.0f64..=1.0) {
        let successes = (trials as f64 * frac) as u64;
        let est = BernoulliEstimate::new(successes, trials);
        let (lo, hi) = est.wilson95();
        prop_assert!(lo <= hi);
        prop_assert!((0.0..=1.0).contains(&lo));
        prop_assert!((0.0..=1.0).contains(&hi));
        prop_assert!(lo <= est.point() && est.point() <= hi);
    }

    /// Larger z never shrinks the interval.
    #[test]
    fn wilson_monotone_in_z(s in 0u64..500, extra in 0u64..500, z in 0.1f64..4.0) {
        let t = s + extra;
        let (lo1, hi1) = wilson_interval(s, t, z);
        let (lo2, hi2) = wilson_interval(s, t, z + 0.5);
        prop_assert!(lo2 <= lo1 + 1e-12);
        prop_assert!(hi2 >= hi1 - 1e-12);
    }

    /// Merging summaries in any split equals the sequential computation.
    #[test]
    fn summary_merge_associative(xs in prop::collection::vec(-1e6f64..1e6, 1..200), split in 0usize..200) {
        let split = split % xs.len();
        let full: Summary = xs.iter().copied().collect();
        let left: Summary = xs[..split].iter().copied().collect();
        let right: Summary = xs[split..].iter().copied().collect();
        let merged = left.merged(right);
        prop_assert_eq!(merged.count(), full.count());
        prop_assert!((merged.mean() - full.mean()).abs() < 1e-6_f64.max(full.mean().abs() * 1e-9));
        prop_assert!(
            (merged.sample_variance() - full.sample_variance()).abs()
                < 1e-3_f64.max(full.sample_variance() * 1e-6)
        );
        prop_assert_eq!(merged.min(), full.min());
        prop_assert_eq!(merged.max(), full.max());
    }

    /// The parallel Monte-Carlo runner gives identical results for any
    /// thread count.
    #[test]
    fn parallel_thread_invariance(trials in 1u32..400, seed in 0u64..1000, threads in 1usize..6, bias in 0.0f64..=1.0) {
        let mc = MonteCarlo::new(trials, seed);
        let seq = mc.run(|rng| rng.gen_bool(bias));
        let par = mc.run_parallel(threads, |rng| rng.gen_bool(bias));
        prop_assert_eq!(seq, par);
    }

    /// Seed streams are reproducible and collision-free over short spans.
    #[test]
    fn seed_stream_properties(master in 0u64..u64::MAX / 2, len in 1usize..200) {
        let a: Vec<u64> = SeedSequence::new(master).take(len).collect();
        let b: Vec<u64> = SeedSequence::new(master).take(len).collect();
        prop_assert_eq!(&a, &b);
        let mut dedup = a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), len);
        for (i, s) in a.iter().enumerate() {
            prop_assert_eq!(SeedSequence::nth_seed(master, i as u64), *s);
        }
    }
}
