//! Property tests for the tiered bit-parallel trial engine: on random
//! structures, survival probabilities and seed sets, every block method
//! must be **byte-identical** to its scalar counterpart — not just equal
//! in aggregate, but verdict-for-verdict per seed — and invariant under
//! how the seed slice is chunked into word groups. This is the contract
//! `dmfb --block-trials` advertises, checked adversarially.

use dmfb_grid::SquareRegion;
use dmfb_reconfig::dtmb::DtmbKind;
use dmfb_reconfig::shifted::{ModuleBand, SpareRowArray};
use dmfb_reconfig::{ReconfigPolicy, SquarePattern, TrialEvaluator};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn seeds(base: u64, n: usize) -> Vec<u64> {
    (0..n as u64)
        .map(|i| base.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(i))
        .collect()
}

/// Runs the byte-identity check for one concrete evaluator: per-seed
/// scalar verdicts equal per-seed block verdicts (width-1 calls), the
/// whole-slice block count equals the scalar sum, and chunking the slice
/// any way leaves the total unchanged.
fn check_survival<C: Copy + Ord>(eval: &TrialEvaluator<C>, p: f64, s: &[u64], chunk: usize) {
    let mut block = eval.block_scratch();
    let mut scratch = eval.scratch();
    let mut scalar_total = 0u32;
    for &seed in s {
        let mut rng = StdRng::seed_from_u64(seed);
        let scalar = eval.survival_trial(p, &mut rng, &mut scratch);
        let lane = eval.survival_block(p, &[seed], &mut block);
        prop_assert_eq!(lane, u32::from(scalar), "verdict differs for seed {seed}");
        scalar_total += u32::from(scalar);
    }
    prop_assert_eq!(eval.survival_block(p, s, &mut block), scalar_total);
    let split: u32 = s
        .chunks(chunk.max(1))
        .map(|c| eval.survival_block(p, c, &mut block))
        .sum();
    prop_assert_eq!(split, scalar_total, "chunk width {chunk} changed the total");
    let stats = block.stats();
    prop_assert_eq!(stats.classified + stats.matched, stats.lanes);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Block survival trials are byte-identical to scalar trials on any
    /// structure — hex DTMB, square interstitial or spare rows, chosen
    /// by `kind` — at any survival probability, seed set and chunking.
    #[test]
    fn survival_block_is_byte_identical(
        kind in 0usize..7,
        p in 0.0f64..=1.0,
        dim_a in 3u32..12,
        dim_b in 1u32..8,
        base in 0u64..u64::MAX,
        n in 1usize..100,
        chunk in 1usize..130,
    ) {
        let s = seeds(base, n);
        if kind < 5 {
            let hex = [
                DtmbKind::Dtmb16,
                DtmbKind::Dtmb26A,
                DtmbKind::Dtmb26B,
                DtmbKind::Dtmb36,
                DtmbKind::Dtmb44,
            ][kind];
            let primaries = 8 + (dim_a as usize) * (dim_b as usize);
            let array = hex.with_primary_count(primaries);
            let eval = TrialEvaluator::new(&array, &ReconfigPolicy::AllPrimaries);
            check_survival(&eval, p, &s, chunk);
        } else if kind == 5 {
            let pattern = SquarePattern::ALL[(dim_a as usize) % SquarePattern::ALL.len()];
            let region = SquareRegion::rect(dim_a, 3 + dim_b);
            let eval = TrialEvaluator::for_scheme(&region, &pattern);
            check_survival(&eval, p, &s, chunk);
        } else {
            let array = SpareRowArray::new(
                dim_a,
                vec![ModuleBand { name: "M".into(), rows: dim_b }],
                dim_b / 2,
            );
            let eval = TrialEvaluator::for_scheme(&array.region(), &array);
            check_survival(&eval, p, &s, chunk);
        }
    }

    /// Grid-mode block trials reproduce the scalar grid per point, and
    /// stay monotone along the ascending grid (the common-random-numbers
    /// invariant the retire-early scan exploits).
    #[test]
    fn grid_block_is_byte_identical(
        primaries in 8usize..70,
        base in 0u64..u64::MAX,
        n in 1usize..90,
    ) {
        let array = DtmbKind::Dtmb26A.with_primary_count(primaries);
        let eval = TrialEvaluator::new(&array, &ReconfigPolicy::AllPrimaries);
        let ps = [0.0, 0.55, 0.85, 0.95, 0.99, 1.0];
        let s = seeds(base, n);
        let mut block = eval.block_scratch();
        let mut counts = vec![0u64; ps.len()];
        eval.survival_grid_block(&ps, &s, &mut block, &mut counts);
        let mut scratch = eval.scratch();
        let mut expected = vec![0u64; ps.len()];
        let mut out = [false; 6];
        for &seed in &s {
            let mut rng = StdRng::seed_from_u64(seed);
            eval.survival_trial_grid(&ps, &mut rng, &mut scratch, &mut out);
            prop_assert!(out.windows(2).all(|w| w[1] || !w[0]), "non-monotone: {out:?}");
            for (e, &o) in expected.iter_mut().zip(&out) {
                *e += u64::from(o);
            }
        }
        prop_assert_eq!(counts, expected);
    }

    /// Exact-fault-count block trials replay the scalar partial
    /// Fisher–Yates stream lane for lane.
    #[test]
    fn exact_fault_block_is_byte_identical(
        primaries in 8usize..60,
        fault_frac in 0.0f64..=1.0,
        base in 0u64..u64::MAX,
        n in 1usize..90,
    ) {
        let array = DtmbKind::Dtmb44.with_primary_count(primaries);
        let eval = TrialEvaluator::new(&array, &ReconfigPolicy::AllPrimaries);
        let faults = ((eval.cell_count() as f64) * fault_frac) as usize;
        let s = seeds(base, n);
        let mut block = eval.block_scratch();
        let mut scratch = eval.scratch();
        let mut expected = 0u32;
        for &seed in &s {
            let mut rng = StdRng::seed_from_u64(seed);
            expected += u32::from(eval.exact_fault_trial(faults, &mut rng, &mut scratch));
        }
        prop_assert_eq!(eval.exact_fault_block(faults, &s, &mut block), expected);
        // Per-lane agreement, not just in aggregate.
        for &seed in s.iter().take(8) {
            let mut rng = StdRng::seed_from_u64(seed);
            let scalar = eval.exact_fault_trial(faults, &mut rng, &mut scratch);
            prop_assert_eq!(
                eval.exact_fault_block(faults, &[seed], &mut block),
                u32::from(scalar)
            );
        }
    }

    /// A shared scratch carries no state between calls: interleaving
    /// unrelated block work does not perturb later verdicts.
    #[test]
    fn block_scratch_reuse_is_stateless(
        primaries in 8usize..60,
        p in 0.5f64..=1.0,
        base in 0u64..u64::MAX,
    ) {
        let array = DtmbKind::Dtmb26B.with_primary_count(primaries);
        let eval = TrialEvaluator::new(&array, &ReconfigPolicy::AllPrimaries);
        let mut block = eval.block_scratch();
        let s = seeds(base, 70);
        let first = eval.survival_block(p, &s, &mut block);
        let _ = eval.exact_fault_block(1.min(eval.cell_count()), &seeds(!base, 40), &mut block);
        let mut counts = [0u64; 2];
        eval.survival_grid_block(&[0.5, 0.9], &seeds(base ^ 0xA5, 30), &mut block, &mut counts);
        prop_assert_eq!(eval.survival_block(p, &s, &mut block), first);
    }
}
