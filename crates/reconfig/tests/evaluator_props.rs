//! Property tests: the incremental [`TrialEvaluator`] must agree with the
//! reference `local::is_reconfigurable` engine on every defect map, for
//! every published DTMB design and policy scope.

use dmfb_defects::DefectMap;
use dmfb_grid::HexCoord;
use dmfb_reconfig::dtmb::DtmbKind;
use dmfb_reconfig::{local, ReconfigPolicy, TrialEvaluator};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn arb_kind() -> impl Strategy<Value = DtmbKind> {
    prop::sample::select(DtmbKind::ALL.to_vec())
}

proptest! {
    /// Random fault subsets of the array: identical verdicts, including
    /// when the evaluator's scratch is reused across cases.
    #[test]
    fn evaluator_matches_reference_engine(
        kind in arb_kind(),
        n in 20usize..80,
        picks in prop::collection::vec((0usize..1000, 0usize..1000), 0..30),
    ) {
        let array = kind.with_primary_count(n);
        let cells: Vec<HexCoord> = array.region().iter().collect();
        let faulty: Vec<HexCoord> = picks
            .iter()
            .map(|&(a, b)| cells[(a * 1000 + b) % cells.len()])
            .collect();
        let defects = DefectMap::from_cells(faulty);
        let policy = ReconfigPolicy::AllPrimaries;
        let eval = TrialEvaluator::new(&array, &policy);
        let mut scratch = eval.scratch();
        let expected = local::is_reconfigurable(&array, &defects, &policy);
        prop_assert_eq!(eval.evaluate_defects(&defects, &mut scratch), expected);
        // Scratch reuse: evaluating again (and after an unrelated map)
        // still gives the same verdict.
        let noise = DefectMap::from_cells(cells.iter().copied().take(5));
        let _ = eval.evaluate_defects(&noise, &mut scratch);
        prop_assert_eq!(eval.evaluate_defects(&defects, &mut scratch), expected);
    }

    /// Scoped policies: verdicts agree when only a subset of primaries is
    /// required to work.
    #[test]
    fn evaluator_matches_reference_under_scoped_policy(
        kind in arb_kind(),
        n in 20usize..60,
        scope_picks in prop::collection::vec(0usize..1000, 0..25),
        fault_picks in prop::collection::vec(0usize..1000, 0..25),
    ) {
        let array = kind.with_primary_count(n);
        let primaries: Vec<HexCoord> = array.primaries().collect();
        let cells: Vec<HexCoord> = array.region().iter().collect();
        let scope: BTreeSet<HexCoord> = scope_picks
            .iter()
            .map(|&i| primaries[i % primaries.len()])
            .collect();
        let policy = ReconfigPolicy::UsedCells(scope);
        let defects = DefectMap::from_cells(
            fault_picks.iter().map(|&i| cells[i % cells.len()]),
        );
        let eval = TrialEvaluator::new(&array, &policy);
        let mut scratch = eval.scratch();
        prop_assert_eq!(
            eval.evaluate_defects(&defects, &mut scratch),
            local::is_reconfigurable(&array, &defects, &policy)
        );
    }
}
