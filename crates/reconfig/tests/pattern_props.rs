//! Property-based tests for DTMB patterns and local reconfiguration.

use dmfb_defects::DefectMap;
use dmfb_grid::{HexCoord, Region};
use dmfb_reconfig::dtmb::DtmbKind;
use dmfb_reconfig::{attempt_reconfiguration, ReconfigPolicy};
use proptest::prelude::*;

fn arb_kind() -> impl Strategy<Value = DtmbKind> {
    prop::sample::select(DtmbKind::ALL.to_vec())
}

proptest! {
    /// Definition 1 degree guarantees hold on any parallelogram region for
    /// all five patterns, regardless of offset (translation of the window).
    #[test]
    fn degree_invariants(
        kind in arb_kind(),
        w in 6u32..16,
        h in 6u32..16,
        dq in -20i32..20,
        dr in -20i32..20,
    ) {
        let region = Region::parallelogram(w, h).translated(HexCoord::new(dq, dr));
        let array = kind.instantiate(&region);
        let audit = array.audit().unwrap();
        let (s, p) = kind.spec();
        prop_assert!(audit.matches(s, p), "{kind}: {audit:?}");
    }

    /// The spare pattern density approaches RR/(1+RR) of all cells.
    #[test]
    fn spare_density(kind in arb_kind(), side in 20u32..36) {
        let array = kind.instantiate(&Region::parallelogram(side, side));
        let rr = kind.redundancy_ratio_limit();
        let expected_fraction = rr / (1.0 + rr);
        let actual = array.spare_count() as f64 / array.total_cells() as f64;
        prop_assert!((actual - expected_fraction).abs() < 0.05,
            "{kind}: spare fraction {actual} vs {expected_fraction}");
    }

    /// A reconfiguration plan always assigns adjacent, fault-free, distinct
    /// spares, and covers exactly the in-scope faulty primaries.
    #[test]
    fn plans_are_sound(
        kind in arb_kind(),
        fault_seed in prop::collection::vec((0i32..12, 0i32..12), 0..10),
    ) {
        let region = Region::parallelogram(12, 12);
        let array = kind.instantiate(&region);
        let defects = DefectMap::from_cells(
            fault_seed.into_iter().map(|(q, r)| HexCoord::new(q, r)),
        );
        if let Ok(plan) = attempt_reconfiguration(&array, &defects, &ReconfigPolicy::AllPrimaries) {
            let faulty_primaries: Vec<HexCoord> = defects
                .faulty_cells()
                .filter(|c| array.is_primary(*c))
                .collect();
            prop_assert_eq!(plan.len(), faulty_primaries.len());
            let mut used = std::collections::BTreeSet::new();
            for (faulty, spare) in plan.iter() {
                prop_assert!(faulty.is_adjacent(spare));
                prop_assert!(array.is_spare(spare));
                prop_assert!(!defects.is_faulty(spare));
                prop_assert!(used.insert(spare), "spare reused");
                prop_assert!(defects.is_faulty(faulty));
            }
        }
    }

    /// Monotonicity: removing a fault never turns a reconfigurable chip
    /// into an unreconfigurable one.
    #[test]
    fn fault_removal_is_monotone(
        kind in arb_kind(),
        fault_seed in prop::collection::vec((0i32..10, 0i32..10), 1..8),
    ) {
        let region = Region::parallelogram(10, 10);
        let array = kind.instantiate(&region);
        let cells: Vec<HexCoord> = fault_seed
            .into_iter()
            .map(|(q, r)| HexCoord::new(q, r))
            .collect();
        let full = DefectMap::from_cells(cells.clone());
        let ok_full =
            attempt_reconfiguration(&array, &full, &ReconfigPolicy::AllPrimaries).is_ok();
        if ok_full {
            for skip in 0..cells.len() {
                let reduced: Vec<HexCoord> = cells
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != skip)
                    .map(|(_, c)| *c)
                    .collect();
                let sub = DefectMap::from_cells(reduced);
                prop_assert!(
                    attempt_reconfiguration(&array, &sub, &ReconfigPolicy::AllPrimaries).is_ok()
                );
            }
        }
    }
}
