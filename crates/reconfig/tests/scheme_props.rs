//! Property tests: the generic [`TrialEvaluator`] (compiled through the
//! `RedundancyScheme` layer) must agree with the legacy per-scheme
//! oracles — `SquarePattern::is_reconfigurable` and
//! `SpareRowArray::shifted_replacement` — on random defect maps, mirroring
//! `evaluator_props.rs` for the hexagonal engine.

use dmfb_defects::DefectMap;
use dmfb_grid::{SquareCoord, SquareRegion, Topology};
use dmfb_reconfig::shifted::{ModuleBand, SpareRowArray};
use dmfb_reconfig::{SquarePattern, TrialEvaluator};
use proptest::prelude::*;

fn arb_pattern() -> impl Strategy<Value = SquarePattern> {
    prop::sample::select(SquarePattern::ALL.to_vec())
}

/// Maps pick indices onto distinct region cells. Fault sets are sets: the
/// legacy oracle takes a slice and would treat a duplicated faulty primary
/// as two left nodes competing for distinct spares, so duplicates are
/// removed up front (as `DefectMap` does implicitly).
fn cells_from_picks(region: &SquareRegion, picks: &[usize]) -> Vec<SquareCoord> {
    let cells: Vec<SquareCoord> = region.iter().collect();
    let mut faulty: Vec<SquareCoord> = picks.iter().map(|&i| cells[i % cells.len()]).collect();
    faulty.sort_unstable();
    faulty.dedup();
    faulty
}

proptest! {
    /// Square DTMB patterns: random fault subsets give identical verdicts
    /// through the generic engine and the legacy matching oracle,
    /// including with scratch reuse across cases.
    #[test]
    fn generic_engine_matches_square_oracle(
        pattern in arb_pattern(),
        width in 3u32..14,
        height in 3u32..14,
        picks in prop::collection::vec(0usize..10_000, 0..40),
    ) {
        let region = SquareRegion::rect(width, height);
        let faulty = cells_from_picks(&region, &picks);
        let eval = TrialEvaluator::for_scheme(&region, &pattern);
        let mut scratch = eval.scratch();
        let expected = pattern.is_reconfigurable(&region, &faulty);
        prop_assert_eq!(
            eval.evaluate_faulty_cells(&faulty, &mut scratch),
            expected,
            "{} {}x{}", pattern, width, height
        );
        // The DefectMap path agrees with the slice path.
        let map: DefectMap<SquareCoord> = DefectMap::from_cells(faulty.iter().copied());
        prop_assert_eq!(eval.evaluate_defects(&map, &mut scratch), expected);
        // Scratch reuse: evaluating again after an unrelated map still
        // gives the same verdict.
        let noise: Vec<SquareCoord> = region.iter().take(5).collect();
        let _ = eval.evaluate_faulty_cells(&noise, &mut scratch);
        prop_assert_eq!(eval.evaluate_faulty_cells(&faulty, &mut scratch), expected);
    }

    /// Spare-row arrays: the generic engine's matching verdict equals the
    /// legacy shift-plan feasibility, for arbitrary band layouts, spare
    /// counts and fault sets (including out-of-array and spare-row faults,
    /// which both sides must ignore).
    #[test]
    fn generic_engine_matches_shifted_oracle(
        width in 1u32..10,
        band_rows in prop::collection::vec(1u32..4, 1..4),
        spare_rows in 0u32..4,
        picks in prop::collection::vec((-2i32..12, -2i32..14), 0..25),
    ) {
        let bands: Vec<ModuleBand> = band_rows
            .iter()
            .enumerate()
            .map(|(i, &rows)| ModuleBand { name: format!("Module {i}"), rows })
            .collect();
        let array = SpareRowArray::new(width, bands, spare_rows);
        let faults: Vec<SquareCoord> = picks
            .iter()
            .map(|&(x, y)| SquareCoord::new(x, y))
            .collect();
        let eval = TrialEvaluator::for_scheme(&array.region(), &array);
        let mut scratch = eval.scratch();
        prop_assert_eq!(
            eval.evaluate_faulty_cells(&faults, &mut scratch),
            array.shifted_replacement(&faults).is_ok()
        );
    }

    /// Survival-grid trials through the generic engine stay monotone in
    /// `p` for every scheme (the CRN invariant the batched sweeps rely
    /// on).
    #[test]
    fn square_grid_trials_are_monotone(
        pattern in arb_pattern(),
        seed in 0u64..500,
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        let region = SquareRegion::rect(10, 10);
        let eval = TrialEvaluator::for_scheme(&region, &pattern);
        let mut scratch = eval.scratch();
        let ps = [0.0, 0.6, 0.9, 0.97, 1.0];
        let mut out = [false; 5];
        let mut rng = StdRng::seed_from_u64(seed);
        eval.survival_trial_grid(&ps, &mut rng, &mut scratch, &mut out);
        for w in out.windows(2) {
            prop_assert!(w[1] || !w[0], "monotone violated: {:?}", out);
        }
        prop_assert!(out[4], "p = 1 never fails");
    }
}

#[test]
fn spare_row_units_track_region() {
    let array = SpareRowArray::new(
        5,
        vec![ModuleBand {
            name: "M".into(),
            rows: 4,
        }],
        2,
    );
    let eval = TrialEvaluator::for_scheme(&array.region(), &array);
    assert_eq!(eval.unit_count(), 4);
    assert_eq!(eval.resource_count(), 2);
    assert_eq!(eval.cell_count(), 20, "only module cells are sampled");
    assert_eq!(array.region().cell_count(), 30);
}
