//! Property-based tests for the square-lattice interstitial patterns.

use dmfb_grid::{SquareCoord, SquareRegion};
use dmfb_reconfig::square_dtmb::SquarePattern;
use proptest::prelude::*;

fn arb_pattern() -> impl Strategy<Value = SquarePattern> {
    prop::sample::select(SquarePattern::ALL.to_vec())
}

proptest! {
    /// The audited minimum interior spare-degree matches each pattern's
    /// guarantee on any window size (the defective quarter pattern
    /// included), and the density approaches the published RR.
    #[test]
    fn audits_match_guarantees(pattern in arb_pattern(), w in 8u32..20, h in 8u32..20) {
        let region = SquareRegion::rect(w, h);
        let (min, _max) = pattern.audit(&region);
        prop_assert_eq!(min, pattern.guaranteed_spares(), "pattern {}", pattern);
        let (primaries, spares) = pattern.counts(&region);
        prop_assert_eq!(primaries + spares, region.len());
        let rr = spares as f64 / primaries as f64;
        // Odd window heights give stripes up to one extra spare row, so
        // finite-window RR can sit 0.25 above the limit at h = 9.
        prop_assert!(
            (rr - pattern.redundancy_ratio_limit()).abs() <= 0.30,
            "pattern {}: rr {}",
            pattern,
            rr
        );
    }

    /// Reconfigurability is monotone: removing a fault never breaks a
    /// tolerable pattern.
    #[test]
    fn square_reconfig_monotone(
        pattern in arb_pattern(),
        faults in prop::collection::vec((0i32..10, 0i32..10), 1..6),
    ) {
        let region = SquareRegion::rect(10, 10);
        let cells: Vec<SquareCoord> = faults
            .into_iter()
            .map(|(x, y)| SquareCoord::new(x, y))
            .collect();
        if pattern.is_reconfigurable(&region, &cells) {
            for skip in 0..cells.len() {
                let reduced: Vec<SquareCoord> = cells
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != skip)
                    .map(|(_, c)| *c)
                    .collect();
                prop_assert!(pattern.is_reconfigurable(&region, &reduced));
            }
        }
    }

    /// Spare-only fault sets are always tolerable, and the empty set is.
    #[test]
    fn square_spare_faults_harmless(pattern in arb_pattern(), seed in 0usize..50) {
        let region = SquareRegion::rect(9, 9);
        prop_assert!(pattern.is_reconfigurable(&region, &[]));
        let spares: Vec<SquareCoord> = region
            .iter()
            .filter(|c| pattern.is_spare_site(*c))
            .skip(seed % 3)
            .collect();
        prop_assert!(pattern.is_reconfigurable(&region, &spares));
    }

    /// On patterns with a real guarantee (not Quarter), any single primary
    /// fault is tolerable.
    #[test]
    fn single_fault_tolerated_with_guarantee(x in 1i32..9, y in 1i32..9) {
        let region = SquareRegion::rect(10, 10);
        let cell = SquareCoord::new(x, y);
        for pattern in [
            SquarePattern::PerfectCode,
            SquarePattern::Stripes,
            SquarePattern::Checkerboard,
        ] {
            if !pattern.is_spare_site(cell) {
                prop_assert!(
                    pattern.is_reconfigurable(&region, &[cell]),
                    "pattern {} must tolerate a single interior fault at {}",
                    pattern,
                    cell
                );
            }
        }
    }
}
