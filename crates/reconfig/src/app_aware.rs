//! Application-aware reconfiguration without space redundancy.
//!
//! The paper's first category of reconfiguration techniques "do not add
//! space redundancy ... Instead, they attempt to tolerate the defect by
//! using fault-free unused cells. In order to achieve satisfactory yield
//! using this method, fault tolerance must be considered in the design
//! procedure, e.g., in the placement of microfluidic modules in the array.
//! Consequently, it leads to an increase in design complexity." This module
//! implements that alternative as a baseline: virtual modules are re-placed
//! onto fault-free parallelogram footprints of the array.

use dmfb_defects::DefectMap;
use dmfb_grid::{HexCoord, Region};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A rectangular (parallelogram, in axial coordinates) virtual module.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct VirtualModule {
    /// Module name (e.g. "mixer", "detector").
    pub name: String,
    /// Footprint width in cells (axial `q` extent).
    pub width: u32,
    /// Footprint height in cells (axial `r` extent).
    pub height: u32,
}

impl VirtualModule {
    /// Creates a module with the given footprint.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(name: impl Into<String>, width: u32, height: u32) -> Self {
        assert!(
            width > 0 && height > 0,
            "module footprint must be non-empty"
        );
        VirtualModule {
            name: name.into(),
            width,
            height,
        }
    }

    /// The cells covered when the module's low corner sits at `origin`.
    pub fn footprint(&self, origin: HexCoord) -> impl Iterator<Item = HexCoord> + '_ {
        let (w, h) = (self.width as i32, self.height as i32);
        (0..w).flat_map(move |dq| (0..h).map(move |dr| HexCoord::new(origin.q + dq, origin.r + dr)))
    }
}

/// A successful re-placement: one origin per module, in input order.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Placement {
    /// New module origins, parallel to the module list.
    pub origins: Vec<HexCoord>,
    /// Number of modules whose origin changed from the preferred one.
    pub modules_moved: usize,
    /// Sum of hex distances between preferred and final origins.
    pub total_displacement: u32,
}

/// Why re-placement failed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PlacementFailure {
    /// The module that could not be placed.
    pub module: String,
}

impl fmt::Display for PlacementFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "no fault-free placement available for module '{}'",
            self.module
        )
    }
}

impl std::error::Error for PlacementFailure {}

/// Greedy first-fit re-placement of `modules` onto the fault-free cells of
/// `region`, preferring each module's original origin and then scanning
/// origins in order of distance from it.
///
/// This models the application-dependent alternative to interstitial
/// redundancy. Greedy placement is not complete — it may fail where an
/// exhaustive placer would succeed — mirroring the "increase in design
/// complexity" the paper attributes to this approach.
///
/// # Errors
///
/// [`PlacementFailure`] naming the first module that does not fit.
pub fn replace_modules(
    region: &Region,
    defects: &DefectMap,
    modules: &[VirtualModule],
    preferred: &[HexCoord],
) -> Result<Placement, PlacementFailure> {
    assert_eq!(
        modules.len(),
        preferred.len(),
        "one preferred origin per module"
    );
    let mut occupied: BTreeSet<HexCoord> = BTreeSet::new();
    let mut origins = Vec::with_capacity(modules.len());
    let mut moved = 0usize;
    let mut displacement = 0u32;

    let candidate_origins: Vec<HexCoord> = region.iter().collect();
    for (module, &pref) in modules.iter().zip(preferred) {
        let fits = |origin: HexCoord, occupied: &BTreeSet<HexCoord>| {
            module
                .footprint(origin)
                .all(|c| region.contains(c) && !defects.is_faulty(c) && !occupied.contains(&c))
        };
        // Try the preferred origin first, then all origins by distance.
        let chosen = if fits(pref, &occupied) {
            Some(pref)
        } else {
            let mut sorted: Vec<HexCoord> = candidate_origins.clone();
            sorted.sort_by_key(|c| (pref.distance(*c), *c));
            sorted.into_iter().find(|&o| fits(o, &occupied))
        };
        match chosen {
            Some(origin) => {
                for c in module.footprint(origin) {
                    occupied.insert(c);
                }
                if origin != pref {
                    moved += 1;
                    displacement += pref.distance(origin);
                }
                origins.push(origin);
            }
            None => {
                return Err(PlacementFailure {
                    module: module.name.clone(),
                })
            }
        }
    }
    Ok(Placement {
        origins,
        modules_moved: moved,
        total_displacement: displacement,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixer() -> VirtualModule {
        VirtualModule::new("mixer", 2, 2)
    }

    #[test]
    fn footprint_covers_rectangle() {
        let m = VirtualModule::new("m", 3, 2);
        let cells: Vec<HexCoord> = m.footprint(HexCoord::new(1, 1)).collect();
        assert_eq!(cells.len(), 6);
        assert!(cells.contains(&HexCoord::new(3, 2)));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_footprint_rejected() {
        let _ = VirtualModule::new("bad", 0, 2);
    }

    #[test]
    fn fault_free_placement_stays_put() {
        let region = Region::parallelogram(6, 6);
        let placement = replace_modules(
            &region,
            &DefectMap::new(),
            &[mixer()],
            &[HexCoord::new(1, 1)],
        )
        .unwrap();
        assert_eq!(placement.origins, vec![HexCoord::new(1, 1)]);
        assert_eq!(placement.modules_moved, 0);
        assert_eq!(placement.total_displacement, 0);
    }

    #[test]
    fn fault_inside_module_forces_relocation() {
        let region = Region::parallelogram(6, 6);
        let defects = DefectMap::from_cells([HexCoord::new(1, 1)]);
        let placement =
            replace_modules(&region, &defects, &[mixer()], &[HexCoord::new(1, 1)]).unwrap();
        assert_eq!(placement.modules_moved, 1);
        assert!(placement.total_displacement >= 1);
        // New footprint avoids the fault.
        let m = mixer();
        for c in m.footprint(placement.origins[0]) {
            assert!(!defects.is_faulty(c));
        }
    }

    #[test]
    fn modules_do_not_overlap() {
        let region = Region::parallelogram(4, 4);
        let modules = [mixer(), mixer(), mixer(), mixer()];
        let preferred = [
            HexCoord::new(0, 0),
            HexCoord::new(2, 0),
            HexCoord::new(0, 2),
            HexCoord::new(2, 2),
        ];
        let placement = replace_modules(&region, &DefectMap::new(), &modules, &preferred).unwrap();
        let mut all: Vec<HexCoord> = Vec::new();
        for (m, o) in modules.iter().zip(&placement.origins) {
            all.extend(m.footprint(*o));
        }
        let n = all.len();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), n, "footprints overlap");
    }

    #[test]
    fn saturated_array_fails_gracefully() {
        // 4x4 region fully packed with four 2x2 modules; one fault makes
        // placement impossible (no unused cells to absorb it).
        let region = Region::parallelogram(4, 4);
        let modules = [mixer(), mixer(), mixer(), mixer()];
        let preferred = [
            HexCoord::new(0, 0),
            HexCoord::new(2, 0),
            HexCoord::new(0, 2),
            HexCoord::new(2, 2),
        ];
        let defects = DefectMap::from_cells([HexCoord::new(3, 3)]);
        let err = replace_modules(&region, &defects, &modules, &preferred).unwrap_err();
        assert!(!err.module.is_empty());
        assert!(err.to_string().contains("no fault-free placement"));
    }

    #[test]
    fn spare_headroom_enables_tolerance() {
        // Same four modules on a 6x6 region: plenty of unused cells, the
        // defect is absorbed by moving one module.
        let region = Region::parallelogram(6, 6);
        let modules = [mixer(), mixer(), mixer(), mixer()];
        let preferred = [
            HexCoord::new(0, 0),
            HexCoord::new(2, 0),
            HexCoord::new(0, 2),
            HexCoord::new(2, 2),
        ];
        let defects = DefectMap::from_cells([HexCoord::new(0, 0)]);
        let placement = replace_modules(&region, &defects, &modules, &preferred).unwrap();
        // Greedy may displace a neighbour too, but at least the module on
        // the fault must move, and every footprint must be fault-free.
        assert!(placement.modules_moved >= 1);
        for (m, o) in modules.iter().zip(&placement.origins) {
            for c in m.footprint(*o) {
                assert!(!defects.is_faulty(c));
            }
        }
    }
}
