//! Interstitial redundancy on *square*-electrode arrays — the ablation
//! behind the paper's choice of hexagonal electrodes.
//!
//! The paper adopts hexagonal electrodes ("this close-packed design is
//! expected to increase the effectiveness of droplet transportation") and
//! builds its DTMB patterns on 6-adjacency. This module constructs the
//! best analogous interstitial patterns on the square lattice's
//! 4-adjacency so the two geometries can be compared at equal guarantees:
//!
//! * [`SquarePattern::PerfectCode`] — the Lee-sphere perfect code
//!   (`x + 2y ≡ 0 mod 5`): every primary sees exactly 1 spare, every spare
//!   serves 4 primaries. `RR = 1/4` — already worse than hex DTMB(1,6)'s
//!   `1/6` for the same `s = 1` guarantee.
//! * [`SquarePattern::Stripes`] — alternating rows: `s = 2, p = 2`,
//!   `RR = 1`. Hex DTMB(2,6) gives the same `s = 2` at `RR = 1/3`.
//! * [`SquarePattern::Checkerboard`] — `s = 4, p = 4`, `RR = 1`; the
//!   square twin of hex DTMB(4,4).
//! * [`SquarePattern::Quarter`] — the naive port of hex DTMB(2,6)'s
//!   "both coordinates even" sublattice. On 4-adjacency it *fails*: cells
//!   with both coordinates odd have **zero** adjacent spares, so single
//!   faults on them are untolerable. This is microfluidic locality biting
//!   exactly as the paper warns.

use dmfb_graph::{hopcroft_karp, BipartiteGraph};
use dmfb_grid::{SquareCoord, SquareRegion};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Interstitial spare patterns on the square lattice.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum SquarePattern {
    /// Lee-sphere perfect code, `s = 1, p = 4`, `RR = 1/4`.
    PerfectCode,
    /// Alternating spare rows, `s = 2, p = 2`, `RR = 1`.
    Stripes,
    /// Checkerboard, `s = 4, p = 4`, `RR = 1`.
    Checkerboard,
    /// Naive density-1/4 sublattice (`x, y` both even); leaves the
    /// odd/odd cells unprotected — included as a cautionary ablation.
    Quarter,
}

impl fmt::Display for SquarePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SquarePattern::PerfectCode => write!(f, "square perfect-code (s=1)"),
            SquarePattern::Stripes => write!(f, "square stripes (s=2)"),
            SquarePattern::Checkerboard => write!(f, "square checkerboard (s=4)"),
            SquarePattern::Quarter => write!(f, "square quarter (defective)"),
        }
    }
}

impl SquarePattern {
    /// All four patterns.
    pub const ALL: [SquarePattern; 4] = [
        SquarePattern::PerfectCode,
        SquarePattern::Stripes,
        SquarePattern::Checkerboard,
        SquarePattern::Quarter,
    ];

    /// Whether lattice site `c` is a spare under this pattern.
    #[must_use]
    pub fn is_spare_site(self, c: SquareCoord) -> bool {
        match self {
            SquarePattern::PerfectCode => (c.x + 2 * c.y).rem_euclid(5) == 0,
            SquarePattern::Stripes => c.y.rem_euclid(2) == 0,
            SquarePattern::Checkerboard => (c.x + c.y).rem_euclid(2) == 0,
            SquarePattern::Quarter => c.x.rem_euclid(2) == 0 && c.y.rem_euclid(2) == 0,
        }
    }

    /// The guaranteed number of adjacent spares per primary on the
    /// *infinite* lattice — 0 for the defective quarter pattern.
    #[must_use]
    pub fn guaranteed_spares(self) -> usize {
        match self {
            SquarePattern::PerfectCode => 1,
            SquarePattern::Stripes => 2,
            SquarePattern::Checkerboard => 4,
            SquarePattern::Quarter => 0,
        }
    }

    /// The large-array redundancy ratio.
    #[must_use]
    pub fn redundancy_ratio_limit(self) -> f64 {
        match self {
            SquarePattern::PerfectCode => 0.25,
            SquarePattern::Stripes | SquarePattern::Checkerboard => 1.0,
            SquarePattern::Quarter => 1.0 / 3.0,
        }
    }

    /// `(min, max)` adjacent-spare count over the interior primaries of
    /// `region` — the square analogue of the hex degree audit, via the
    /// lattice-generic [`crate::scheme_audit`].
    #[must_use]
    pub fn audit(self, region: &SquareRegion) -> (usize, usize) {
        crate::scheme_audit(region, &self)
    }

    /// Whether a set of faulty cells is tolerable by local reconfiguration
    /// on this pattern over `region`: every faulty primary must be matched
    /// to a distinct adjacent fault-free spare (4-adjacency).
    ///
    /// This is the **slow reference oracle**, rebuilding the bipartite
    /// model per call; sweeps and Monte-Carlo runs go through the generic
    /// [`crate::TrialEvaluator`] instead (see
    /// `tests/scheme_props.rs` for the proptest equivalence between the
    /// two).
    #[must_use]
    pub fn is_reconfigurable(self, region: &SquareRegion, faulty: &[SquareCoord]) -> bool {
        let faulty_set: std::collections::BTreeSet<SquareCoord> = faulty.iter().copied().collect();
        let faulty_primaries: Vec<SquareCoord> = faulty
            .iter()
            .copied()
            .filter(|c| region.contains(*c) && !self.is_spare_site(*c))
            .collect();
        if faulty_primaries.is_empty() {
            return true;
        }
        let mut spares: Vec<SquareCoord> = Vec::new();
        let mut index: BTreeMap<SquareCoord, usize> = BTreeMap::new();
        let mut edges = Vec::new();
        for (a, &cell) in faulty_primaries.iter().enumerate() {
            let mut any = false;
            for n in cell.neighbors4() {
                if region.contains(n) && self.is_spare_site(n) && !faulty_set.contains(&n) {
                    let b = *index.entry(n).or_insert_with(|| {
                        spares.push(n);
                        spares.len() - 1
                    });
                    edges.push((a, b));
                    any = true;
                }
            }
            if !any {
                return false;
            }
        }
        let mut graph = BipartiteGraph::new(faulty_primaries.len(), spares.len());
        for (a, b) in edges {
            graph.add_edge(a, b);
        }
        hopcroft_karp(&graph).covers_all_left(&graph)
    }

    /// Counts of (primaries, spares) over `region`.
    #[must_use]
    pub fn counts(self, region: &SquareRegion) -> (usize, usize) {
        let spares = region.iter().filter(|c| self.is_spare_site(*c)).count();
        (region.len() - spares, spares)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_code_covers_every_primary_once() {
        let region = SquareRegion::rect(20, 20);
        let (min, max) = SquarePattern::PerfectCode.audit(&region);
        assert_eq!(
            (min, max),
            (1, 1),
            "perfect code: every primary sees 1 spare"
        );
        // RR approaches 1/4.
        let (p, s) = SquarePattern::PerfectCode.counts(&region);
        let rr = s as f64 / p as f64;
        assert!((rr - 0.25).abs() < 0.03, "rr {rr}");
    }

    #[test]
    fn stripes_and_checkerboard_degrees() {
        let region = SquareRegion::rect(16, 16);
        assert_eq!(SquarePattern::Stripes.audit(&region), (2, 2));
        assert_eq!(SquarePattern::Checkerboard.audit(&region), (4, 4));
    }

    #[test]
    fn quarter_pattern_leaves_holes() {
        // The naive port of the hex DTMB(2,6) sublattice fails on the
        // square lattice: odd/odd primaries have zero adjacent spares.
        let region = SquareRegion::rect(12, 12);
        let (min, max) = SquarePattern::Quarter.audit(&region);
        assert_eq!(min, 0, "odd/odd cells are unprotected");
        assert_eq!(max, 2);
        // And a single fault there is fatal.
        assert!(!SquarePattern::Quarter.is_reconfigurable(&region, &[SquareCoord::new(3, 3)]));
        // ...while the perfect code tolerates any single primary fault.
        assert!(SquarePattern::PerfectCode.is_reconfigurable(&region, &[SquareCoord::new(3, 3)]));
    }

    #[test]
    fn square_needs_more_area_than_hex_for_s1() {
        // The headline comparison: full single-spare coverage costs
        // RR = 1/4 on the square lattice vs 1/6 on the hexagonal lattice.
        use crate::dtmb::DtmbKind;
        assert!(
            SquarePattern::PerfectCode.redundancy_ratio_limit()
                > DtmbKind::Dtmb16.redundancy_ratio_limit() * 1.4
        );
    }

    #[test]
    fn reconfiguration_via_matching() {
        let region = SquareRegion::rect(10, 10);
        // Two primaries sharing their only spare on the perfect code: find
        // a spare at (x+2y)%5==0, take two of its primary neighbours.
        let spare = region
            .iter()
            .find(|c| {
                SquarePattern::PerfectCode.is_spare_site(*c)
                    && c.neighbors4().all(|n| region.contains(n))
            })
            .unwrap();
        let nbrs: Vec<SquareCoord> = spare.neighbors4().collect();
        // One fault: fine.
        assert!(SquarePattern::PerfectCode.is_reconfigurable(&region, &[nbrs[0]]));
        // Two faults contending for the same single spare: fatal (s = 1).
        assert!(!SquarePattern::PerfectCode.is_reconfigurable(&region, &[nbrs[0], nbrs[1]]));
        // Checkerboard absorbs both (s = 4).
        assert!(SquarePattern::Checkerboard.is_reconfigurable(&region, &[nbrs[0], nbrs[1]]));
    }

    #[test]
    fn spare_faults_alone_harmless() {
        let region = SquareRegion::rect(8, 8);
        let spares: Vec<SquareCoord> = region
            .iter()
            .filter(|c| SquarePattern::Stripes.is_spare_site(*c))
            .collect();
        assert!(SquarePattern::Stripes.is_reconfigurable(&region, &spares));
    }

    #[test]
    fn display_names() {
        for p in SquarePattern::ALL {
            assert!(!p.to_string().is_empty());
        }
    }
}
