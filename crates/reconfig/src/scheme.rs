//! The `RedundancyScheme` abstraction: every redundancy design as
//! assignment-under-adjacency-conflicts.
//!
//! The paper compares three families of redundancy designs — the hexagonal
//! interstitial `DTMB(s, p)` patterns, their square-lattice analogues, and
//! the boundary spare-row baseline with its shifted-replacement cascade.
//! All three reduce to the same combinatorial question: *can every faulty
//! replaceable unit be assigned a distinct live spare resource it
//! conflicts-free borders?*
//!
//! * For the interstitial schemes (hex and square) a **unit** is a primary
//!   cell, a **resource** is a spare cell, and adjacency is lattice
//!   adjacency.
//! * For the spare-row baseline a **unit** is one module row (faulty as
//!   soon as any of its cells is faulty), the **resources** are the spare
//!   rows, and every row can cascade into every spare row — a complete
//!   bipartite adjacency. A matching covering all faulty rows exists iff
//!   the number of distinct faulty rows does not exceed the spare rows,
//!   exactly [`SpareRowArray::shifted_replacement`]'s success condition.
//!
//! [`RedundancyScheme::compile`] lowers a scheme over a [`Topology`] into
//! a [`SchemeStructure`], the neutral form the incremental
//! [`crate::TrialEvaluator`] consumes — which is how square DTMB and
//! spare-row arrays ride the same bitset-matching/CRN-batched fast engine
//! as the hexagonal designs.

use crate::dtmb::DtmbKind;
use crate::shifted::SpareRowArray;
use crate::square_dtmb::SquarePattern;
use dmfb_grid::{Region, SquareCoord, SquareRegion, Topology};
use std::collections::BTreeMap;

/// The compiled assignment-under-conflicts structure of a redundancy
/// scheme over a concrete topology.
///
/// * A **unit** is a set of cells that must be replaced as a whole when
///   any member cell is faulty (a single primary cell for interstitial
///   schemes; a module row for the spare-row baseline).
/// * A **resource** is a set of cells that can absorb one faulty unit,
///   dying if any member cell is faulty. A resource with *no* member
///   cells is indestructible (spare rows: the legacy shifted-replacement
///   semantics never fault the spare rows themselves).
/// * The **adjacency** lists, per unit, which resources may replace it.
///
/// # Example
///
/// ```
/// use dmfb_reconfig::SchemeStructure;
/// use dmfb_grid::SquareCoord;
///
/// let mut s = SchemeStructure::new();
/// let u = s.add_unit([SquareCoord::new(0, 0)]);
/// let r = s.add_resource([SquareCoord::new(0, 1)]);
/// s.connect(u, r);
/// assert_eq!((s.unit_count(), s.resource_count(), s.edge_count()), (1, 1, 1));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SchemeStructure<C> {
    units: Vec<Vec<C>>,
    resources: Vec<Vec<C>>,
    adjacency: Vec<Vec<u32>>,
}

impl<C: Copy + Ord> SchemeStructure<C> {
    /// Creates an empty structure.
    #[must_use]
    pub fn new() -> Self {
        SchemeStructure {
            units: Vec::new(),
            resources: Vec::new(),
            adjacency: Vec::new(),
        }
    }

    /// Adds a replaceable unit made of `cells`; returns its index.
    pub fn add_unit<I: IntoIterator<Item = C>>(&mut self, cells: I) -> usize {
        self.units.push(cells.into_iter().collect());
        self.adjacency.push(Vec::new());
        self.units.len() - 1
    }

    /// Adds a spare resource made of `cells` (empty = indestructible);
    /// returns its index.
    pub fn add_resource<I: IntoIterator<Item = C>>(&mut self, cells: I) -> usize {
        self.resources.push(cells.into_iter().collect());
        self.resources.len() - 1
    }

    /// Declares that `resource` may replace `unit`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn connect(&mut self, unit: usize, resource: usize) {
        assert!(unit < self.units.len(), "unit index out of range");
        assert!(
            resource < self.resources.len(),
            "resource index out of range"
        );
        self.adjacency[unit].push(resource as u32);
    }

    /// Number of replaceable units.
    #[must_use]
    pub fn unit_count(&self) -> usize {
        self.units.len()
    }

    /// Number of spare resources.
    #[must_use]
    pub fn resource_count(&self) -> usize {
        self.resources.len()
    }

    /// Number of unit→resource adjacencies.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.adjacency.iter().map(Vec::len).sum()
    }

    /// The member cells of unit `i`.
    #[must_use]
    pub fn unit_cells(&self, i: usize) -> &[C] {
        &self.units[i]
    }

    /// The member cells of resource `j` (empty = indestructible).
    #[must_use]
    pub fn resource_cells(&self, j: usize) -> &[C] {
        &self.resources[j]
    }

    /// The candidate resource indices of unit `i`.
    #[must_use]
    pub fn adjacent_resources(&self, i: usize) -> &[u32] {
        &self.adjacency[i]
    }
}

/// A redundancy design instantiable over a topology `T`.
///
/// Implementors provide primary/spare classification and (via
/// [`RedundancyScheme::compile`]) the reconfiguration semantics as a
/// [`SchemeStructure`]. The default `compile` implements the interstitial
/// cell-level semantics shared by the hexagonal DTMB patterns and their
/// square analogues: each primary cell is a unit, each spare cell a
/// single-cell resource, with edges given by topology adjacency. Schemes
/// with coarser replacement granularity (the spare-row baseline) override
/// `compile`.
pub trait RedundancyScheme<T: Topology> {
    /// Human-readable scheme label for reports and bench artifacts.
    fn label(&self) -> String;

    /// Whether lattice cell `cell` is a spare site under this scheme.
    fn is_spare_cell(&self, topo: &T, cell: T::Coord) -> bool;

    /// Compiles the scheme over `topo` into the neutral structure the
    /// generic evaluator consumes.
    fn compile(&self, topo: &T) -> SchemeStructure<T::Coord> {
        let mut s = SchemeStructure::new();
        let mut resource_index: BTreeMap<T::Coord, usize> = BTreeMap::new();
        for c in topo.cells_iter() {
            if self.is_spare_cell(topo, c) {
                continue;
            }
            let unit = s.add_unit([c]);
            for n in topo.neighbors_of(c) {
                if !self.is_spare_cell(topo, n) {
                    continue;
                }
                let resource = match resource_index.get(&n) {
                    Some(&r) => r,
                    None => {
                        let r = s.add_resource([n]);
                        resource_index.insert(n, r);
                        r
                    }
                };
                s.connect(unit, resource);
            }
        }
        s
    }
}

/// The hexagonal interstitial patterns: primary/spare classification from
/// the published sublattice colourings, adjacency from 6-neighbour hex
/// adjacency. (Policy-scoped variants go through
/// [`crate::TrialEvaluator::new`], which filters units by
/// [`crate::ReconfigPolicy`].)
impl RedundancyScheme<Region> for DtmbKind {
    fn label(&self) -> String {
        self.to_string()
    }

    fn is_spare_cell(&self, _topo: &Region, cell: dmfb_grid::HexCoord) -> bool {
        self.is_spare_site(cell)
    }
}

/// The square-lattice interstitial analogues: same semantics on
/// 4-adjacency. This is what retires the bespoke matching code that used
/// to live beside [`SquarePattern::is_reconfigurable`] (kept as the slow
/// reference oracle for the equivalence proptests).
impl RedundancyScheme<SquareRegion> for SquarePattern {
    fn label(&self) -> String {
        self.to_string()
    }

    fn is_spare_cell(&self, _topo: &SquareRegion, cell: SquareCoord) -> bool {
        self.is_spare_site(cell)
    }
}

/// The boundary spare-row baseline, via its shift-plan semantics: module
/// rows are the replaceable units (a row is faulty as soon as any of its
/// cells is), the spare rows are indestructible resources, and the
/// shifting cascade lets any faulty row reach any spare row — a complete
/// bipartite adjacency. Matching feasibility is then exactly
/// `#distinct faulty rows ≤ #spare rows`, the success condition of
/// [`SpareRowArray::shifted_replacement`].
///
/// The expected topology is [`SpareRowArray::region`]; the compiled
/// structure depends only on the array's own dimensions, mirroring the
/// legacy oracle's behaviour of ignoring faults outside the module rows.
impl RedundancyScheme<SquareRegion> for SpareRowArray {
    fn label(&self) -> String {
        format!(
            "spare-rows ({}x{}+{})",
            self.width(),
            self.module_rows(),
            self.spare_rows()
        )
    }

    fn is_spare_cell(&self, _topo: &SquareRegion, cell: SquareCoord) -> bool {
        cell.y >= 0
            && (cell.y as u32) >= self.module_rows()
            && (cell.y as u32) < self.total_rows()
            && cell.x >= 0
            && (cell.x as u32) < self.width()
    }

    fn compile(&self, _topo: &SquareRegion) -> SchemeStructure<SquareCoord> {
        let mut s = SchemeStructure::new();
        let width = i32::try_from(self.width()).expect("width fits in i32");
        let spares: Vec<usize> = (0..self.spare_rows())
            .map(|_| s.add_resource(std::iter::empty()))
            .collect();
        for row in 0..self.module_rows() {
            let y = i32::try_from(row).expect("row fits in i32");
            let unit = s.add_unit((0..width).map(|x| SquareCoord::new(x, y)));
            for &r in &spares {
                s.connect(unit, r);
            }
        }
        s
    }
}

/// Audits a scheme over a topology: the `(min, max)` adjacent-spare count
/// over the *interior* primary cells — the generalisation of the paper's
/// Definition 1 degree check to any lattice. Returns `(0, 0)` when the
/// topology has no interior primaries.
///
/// This replaces the per-lattice audit duplicates: the square patterns'
/// audit is this function applied to 4-adjacency.
#[must_use]
pub fn scheme_audit<T: Topology>(topo: &T, scheme: &impl RedundancyScheme<T>) -> (usize, usize) {
    let mut min = usize::MAX;
    let mut max = 0usize;
    let mut any = false;
    for c in topo.cells_iter() {
        if scheme.is_spare_cell(topo, c) || !topo.is_interior_cell(c) {
            continue;
        }
        let k = topo
            .neighbors_of(c)
            .filter(|n| scheme.is_spare_cell(topo, *n))
            .count();
        min = min.min(k);
        max = max.max(k);
        any = true;
    }
    if any {
        (min, max)
    } else {
        (0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_dtmb_compiles_to_cell_level_structure() {
        let region = Region::parallelogram(10, 10);
        let kind = DtmbKind::Dtmb26A;
        let s = kind.compile(&region);
        let array = kind.instantiate(&region);
        assert_eq!(s.unit_count(), array.primary_count());
        // Every compiled resource is a real spare cell of the array.
        for j in 0..s.resource_count() {
            let cells = s.resource_cells(j);
            assert_eq!(cells.len(), 1);
            assert!(array.is_spare(cells[0]));
        }
        assert!(s.edge_count() > 0);
        assert_eq!(
            RedundancyScheme::<Region>::label(&kind),
            "DTMB(2,6)".to_string()
        );
    }

    #[test]
    fn square_pattern_compiles_with_four_adjacency() {
        let region = SquareRegion::rect(10, 10);
        let s = SquarePattern::Checkerboard.compile(&region);
        let (primaries, spares) = SquarePattern::Checkerboard.counts(&region);
        assert_eq!(s.unit_count(), primaries);
        // Checkerboard: every spare borders a primary, so all spares appear.
        assert_eq!(s.resource_count(), spares);
        // Interior primaries have exactly 4 candidate spares.
        let max_adj = (0..s.unit_count())
            .map(|i| s.adjacent_resources(i).len())
            .max()
            .unwrap();
        assert_eq!(max_adj, 4);
    }

    #[test]
    fn quarter_pattern_leaves_units_without_resources() {
        let region = SquareRegion::rect(8, 8);
        let s = SquarePattern::Quarter.compile(&region);
        // The odd/odd cells have no adjacent spare: isolated units exist.
        assert!((0..s.unit_count()).any(|i| s.adjacent_resources(i).is_empty()));
    }

    #[test]
    fn spare_rows_compile_to_complete_bipartite_rows() {
        let array = SpareRowArray::figure2_example();
        let s = array.compile(&array.region());
        assert_eq!(s.unit_count(), array.module_rows() as usize);
        assert_eq!(s.resource_count(), array.spare_rows() as usize);
        assert_eq!(
            s.edge_count(),
            (array.module_rows() * array.spare_rows()) as usize
        );
        // Units carry one cell per column; resources are indestructible.
        for i in 0..s.unit_count() {
            assert_eq!(s.unit_cells(i).len(), array.width() as usize);
        }
        for j in 0..s.resource_count() {
            assert!(s.resource_cells(j).is_empty());
        }
        assert!(array.label().contains("spare-rows"));
    }

    #[test]
    fn spare_row_cell_classification() {
        let array = SpareRowArray::figure2_example(); // 8 wide, 6 module rows + 1 spare
        let topo = array.region();
        assert!(!array.is_spare_cell(&topo, SquareCoord::new(0, 0)));
        assert!(array.is_spare_cell(&topo, SquareCoord::new(3, 6)));
        assert!(!array.is_spare_cell(&topo, SquareCoord::new(3, 7)));
        assert!(!array.is_spare_cell(&topo, SquareCoord::new(-1, 6)));
    }

    #[test]
    fn generic_audit_matches_hex_degree_guarantee() {
        for kind in DtmbKind::ALL {
            let region = Region::parallelogram(16, 16);
            let (min, max) = scheme_audit(&region, &kind);
            let (s, _) = kind.spec();
            assert_eq!((min, max), (s, s), "{kind}");
        }
    }
}
