//! Local reconfiguration via maximal bipartite matching (paper Section 6).
//!
//! "We develop a bipartite graph model to represent the relationship
//! between faulty and spare cells in the microfluidic array. ... nodes in A
//! represent the faulty primary cells ... while nodes in B denote the
//! fault-free spare cells. An edge exists from a node a in A to a node b in
//! B if and only if the faulty primary cell represented by a is physically
//! adjacent to the spare cell represented by b. ... If this maximal
//! matching covers all nodes in A, it implies that all faulty cells can be
//! replaced by their adjacent fault-free spare cells through local
//! reconfiguration. Otherwise, this microfluidic biochip cannot be
//! reconfigured."

use crate::array::DefectTolerantArray;
use dmfb_defects::DefectMap;
use dmfb_graph::{hall_violation, hopcroft_karp, BipartiteGraph};
use dmfb_grid::HexCoord;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Which primary cells must be functional for the chip to count as good.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub enum ReconfigPolicy {
    /// Every primary cell must be fault-free or replaced (the Figure 9
    /// yield experiments).
    #[default]
    AllPrimaries,
    /// Only the listed cells (e.g. the 108 cells used by the multiplexed
    /// bioassays in the Figure 13 case study) must be fault-free or
    /// replaced; faults on unused primaries are harmless.
    UsedCells(BTreeSet<HexCoord>),
}

impl ReconfigPolicy {
    /// Whether `cell` is within the policy's scope.
    #[must_use]
    pub fn requires(&self, cell: HexCoord) -> bool {
        match self {
            ReconfigPolicy::AllPrimaries => true,
            ReconfigPolicy::UsedCells(set) => set.contains(&cell),
        }
    }
}

/// A successful local reconfiguration: each faulty in-scope primary is
/// assigned a distinct adjacent fault-free spare.
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct ReconfigPlan {
    assignments: Vec<(HexCoord, HexCoord)>,
}

impl ReconfigPlan {
    /// Builds a plan from explicit `(faulty_primary, replacing_spare)`
    /// pairs, sorted by faulty cell for deterministic iteration order.
    ///
    /// This is the constructor used by engines that compute the matching
    /// elsewhere (e.g. [`crate::TrialEvaluator::reconfigure`], whose
    /// bitset matcher works on compiled unit/resource indices) and only
    /// need to surface the assignment as a plan. The caller is
    /// responsible for the pairs actually being a valid matching —
    /// distinct spares, each adjacent to its faulty cell.
    #[must_use]
    pub fn from_assignments<I: IntoIterator<Item = (HexCoord, HexCoord)>>(pairs: I) -> Self {
        let mut assignments: Vec<(HexCoord, HexCoord)> = pairs.into_iter().collect();
        assignments.sort_unstable();
        ReconfigPlan { assignments }
    }

    /// Number of replacements performed.
    #[must_use]
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// Whether no replacement was needed (fault-free chip).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// Iterates `(faulty_primary, replacing_spare)` pairs in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = (HexCoord, HexCoord)> + '_ {
        self.assignments.iter().copied()
    }

    /// Where the function of `cell` now lives: the assigned spare if the
    /// cell was replaced, otherwise the cell itself.
    #[must_use]
    pub fn remap(&self, cell: HexCoord) -> HexCoord {
        self.assignments
            .iter()
            .find(|(faulty, _)| *faulty == cell)
            .map_or(cell, |(_, spare)| *spare)
    }

    /// The spare cell assigned to `cell`, if any.
    #[must_use]
    pub fn replacement_for(&self, cell: HexCoord) -> Option<HexCoord> {
        self.assignments
            .iter()
            .find(|(faulty, _)| *faulty == cell)
            .map(|(_, spare)| *spare)
    }

    /// The spares consumed by this plan, in assignment order.
    pub fn spares_used(&self) -> impl Iterator<Item = HexCoord> + '_ {
        self.assignments.iter().map(|(_, s)| *s)
    }
}

/// Why local reconfiguration failed, with a deficiency witness.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ReconfigFailure {
    /// Faulty in-scope primaries that no matching could cover.
    pub unassigned: Vec<HexCoord>,
    /// A Hall-deficient set: these faulty cells jointly have fewer adjacent
    /// fault-free spares than members (empty only in degenerate cases).
    pub deficient_set: Vec<HexCoord>,
    /// The joint spare neighbourhood of `deficient_set`.
    pub available_spares: Vec<HexCoord>,
}

impl fmt::Display for ReconfigFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "local reconfiguration failed: {} faulty cell(s) unassigned [{}]; \
             {} faulty cell(s) [{}] compete for {} adjacent fault-free spare(s) [{}]",
            self.unassigned.len(),
            crate::format_cell_list(&self.unassigned),
            self.deficient_set.len(),
            crate::format_cell_list(&self.deficient_set),
            self.available_spares.len(),
            crate::format_cell_list(&self.available_spares),
        )
    }
}

impl std::error::Error for ReconfigFailure {}

/// Attempts local reconfiguration of `array` under `defects`.
///
/// Builds the paper's bipartite model restricted to the faulty primaries in
/// the policy's scope, computes a maximum matching (Hopcroft–Karp), and
/// either returns the replacement plan or a failure carrying a
/// Hall-deficiency witness.
///
/// # Errors
///
/// Returns [`ReconfigFailure`] when some in-scope faulty primary cannot be
/// assigned a distinct adjacent fault-free spare.
///
/// # Example
///
/// ```
/// use dmfb_reconfig::{attempt_reconfiguration, ReconfigPolicy};
/// use dmfb_reconfig::dtmb::DtmbKind;
/// use dmfb_defects::DefectMap;
/// use dmfb_grid::Region;
///
/// let array = DtmbKind::Dtmb26A.instantiate(&Region::parallelogram(8, 8));
/// let faulty = array.primaries().next().unwrap();
/// let defects = DefectMap::from_cells([faulty]);
/// let plan = attempt_reconfiguration(&array, &defects, &ReconfigPolicy::AllPrimaries)
///     .expect("single fault is tolerable");
/// assert_eq!(plan.len(), 1);
/// ```
pub fn attempt_reconfiguration(
    array: &DefectTolerantArray,
    defects: &DefectMap,
    policy: &ReconfigPolicy,
) -> Result<ReconfigPlan, ReconfigFailure> {
    // The faulty primary cells that matter (set A).
    let faulty: Vec<HexCoord> = defects
        .faulty_cells()
        .filter(|c| array.is_primary(*c) && policy.requires(*c))
        .collect();
    if faulty.is_empty() {
        return Ok(ReconfigPlan::default());
    }
    // The fault-free spares adjacent to any of them (set B).
    let mut spares: Vec<HexCoord> = Vec::new();
    let mut spare_index = std::collections::BTreeMap::new();
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for (ai, &cell) in faulty.iter().enumerate() {
        for spare in array.adjacent_spares(cell) {
            if defects.is_faulty(spare) {
                continue;
            }
            let bi = *spare_index.entry(spare).or_insert_with(|| {
                spares.push(spare);
                spares.len() - 1
            });
            edges.push((ai, bi));
        }
    }
    let mut graph = BipartiteGraph::new(faulty.len(), spares.len());
    for (a, b) in edges {
        graph.add_edge(a, b);
    }

    let matching = hopcroft_karp(&graph);
    if matching.covers_all_left(&graph) {
        let assignments = matching
            .pairs()
            .map(|(a, b)| (faulty[a], spares[b]))
            .collect();
        Ok(ReconfigPlan { assignments })
    } else {
        let witness = hall_violation(&graph).expect("uncovered left side implies deficiency");
        Err(ReconfigFailure {
            unassigned: matching
                .unmatched_left()
                .into_iter()
                .map(|a| faulty[a])
                .collect(),
            deficient_set: witness.left_set.into_iter().map(|a| faulty[a]).collect(),
            available_spares: witness
                .neighborhood
                .into_iter()
                .map(|b| spares[b])
                .collect(),
        })
    }
}

/// Fast reconfigurability test — the Monte-Carlo hot path. Equivalent to
/// `attempt_reconfiguration(..).is_ok()` but skips plan and witness
/// construction.
#[must_use]
pub fn is_reconfigurable(
    array: &DefectTolerantArray,
    defects: &DefectMap,
    policy: &ReconfigPolicy,
) -> bool {
    let faulty: Vec<HexCoord> = defects
        .faulty_cells()
        .filter(|c| array.is_primary(*c) && policy.requires(*c))
        .collect();
    if faulty.is_empty() {
        return true;
    }
    let mut spares: Vec<HexCoord> = Vec::new();
    let mut spare_index = std::collections::BTreeMap::new();
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for (ai, &cell) in faulty.iter().enumerate() {
        let mut any = false;
        for spare in array.adjacent_spares(cell) {
            if defects.is_faulty(spare) {
                continue;
            }
            let bi = *spare_index.entry(spare).or_insert_with(|| {
                spares.push(spare);
                spares.len() - 1
            });
            edges.push((ai, bi));
            any = true;
        }
        if !any {
            return false; // a faulty cell with no live spare can never match
        }
    }
    let mut graph = BipartiteGraph::new(faulty.len(), spares.len());
    for (a, b) in edges {
        graph.add_edge(a, b);
    }
    hopcroft_karp(&graph).covers_all_left(&graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtmb::DtmbKind;
    use dmfb_grid::Region;

    fn dtmb26_array() -> DefectTolerantArray {
        DtmbKind::Dtmb26A.instantiate(&Region::parallelogram(10, 10))
    }

    #[test]
    fn fault_free_chip_needs_no_plan() {
        let array = dtmb26_array();
        let plan =
            attempt_reconfiguration(&array, &DefectMap::new(), &ReconfigPolicy::AllPrimaries)
                .unwrap();
        assert!(plan.is_empty());
        assert!(is_reconfigurable(
            &array,
            &DefectMap::new(),
            &ReconfigPolicy::AllPrimaries
        ));
    }

    #[test]
    fn single_fault_replaced_by_adjacent_spare() {
        let array = dtmb26_array();
        // Interior primary with the full complement of spares.
        let cell = array
            .primaries()
            .find(|c| !array.region().is_boundary(*c).unwrap())
            .unwrap();
        let defects = DefectMap::from_cells([cell]);
        let plan =
            attempt_reconfiguration(&array, &defects, &ReconfigPolicy::AllPrimaries).unwrap();
        assert_eq!(plan.len(), 1);
        let (faulty, spare) = plan.iter().next().unwrap();
        assert_eq!(faulty, cell);
        assert!(cell.is_adjacent(spare), "replacement must be local");
        assert!(array.is_spare(spare));
        assert_eq!(plan.remap(cell), spare);
        assert_eq!(plan.replacement_for(cell), Some(spare));
        assert_eq!(plan.remap(HexCoord::new(1, 0)), HexCoord::new(1, 0));
    }

    #[test]
    fn faulty_spares_are_not_used() {
        let array = dtmb26_array();
        let cell = array
            .primaries()
            .find(|c| array.adjacent_spares(*c).count() == 2)
            .unwrap();
        let spares: Vec<HexCoord> = array.adjacent_spares(cell).collect();
        // Fail the primary and ALL of its adjacent spares.
        let mut cells = vec![cell];
        cells.extend(spares.iter().copied());
        let defects = DefectMap::from_cells(cells);
        let err =
            attempt_reconfiguration(&array, &defects, &ReconfigPolicy::AllPrimaries).unwrap_err();
        assert_eq!(err.unassigned, vec![cell]);
        assert!(err.deficient_set.contains(&cell));
        assert!(err.available_spares.is_empty());
        assert!(!is_reconfigurable(
            &array,
            &defects,
            &ReconfigPolicy::AllPrimaries
        ));
        assert!(err.to_string().contains("failed"));
    }

    #[test]
    fn contention_resolved_by_matching_when_possible() {
        // DTMB(4,4): a primary row between two spare rows. Two adjacent
        // faulty primaries share spares but each still has private ones.
        let array = DtmbKind::Dtmb44.instantiate(&Region::parallelogram(8, 8));
        let a = HexCoord::new(3, 3);
        let b = HexCoord::new(4, 3);
        assert!(array.is_primary(a) && array.is_primary(b));
        let defects = DefectMap::from_cells([a, b]);
        let plan =
            attempt_reconfiguration(&array, &defects, &ReconfigPolicy::AllPrimaries).unwrap();
        assert_eq!(plan.len(), 2);
        let s1 = plan.replacement_for(a).unwrap();
        let s2 = plan.replacement_for(b).unwrap();
        assert_ne!(s1, s2, "distinct spares");
        assert!(a.is_adjacent(s1) && b.is_adjacent(s2));
    }

    #[test]
    fn policy_scopes_which_faults_matter() {
        let array = dtmb26_array();
        let unused = array
            .primaries()
            .find(|c| !array.region().is_boundary(*c).unwrap())
            .unwrap();
        let defects = DefectMap::from_cells([unused]);
        // Under AllPrimaries the fault must be handled...
        let plan_all =
            attempt_reconfiguration(&array, &defects, &ReconfigPolicy::AllPrimaries).unwrap();
        assert_eq!(plan_all.len(), 1);
        // ...under a policy that does not use the cell, it is ignored.
        let policy = ReconfigPolicy::UsedCells(BTreeSet::new());
        let plan_none = attempt_reconfiguration(&array, &defects, &policy).unwrap();
        assert!(plan_none.is_empty());
        assert!(!policy.requires(unused));
    }

    #[test]
    fn spare_faults_alone_never_fail_the_chip() {
        let array = dtmb26_array();
        let spares: Vec<HexCoord> = array.spares().collect();
        let defects = DefectMap::from_cells(spares);
        assert!(is_reconfigurable(
            &array,
            &defects,
            &ReconfigPolicy::AllPrimaries
        ));
    }

    #[test]
    fn dtmb16_tolerates_one_fault_per_cluster_only() {
        let array = DtmbKind::Dtmb16.instantiate(&Region::parallelogram(14, 14));
        // Find an interior spare and its six surrounding primaries.
        let spare = array
            .spares()
            .find(|c| !array.region().is_boundary(*c).unwrap())
            .unwrap();
        let cluster: Vec<HexCoord> = array.adjacent_primaries(spare).collect();
        assert_eq!(cluster.len(), 6);
        // One faulty primary in the cluster: fine.
        let one = DefectMap::from_cells([cluster[0]]);
        assert!(is_reconfigurable(
            &array,
            &one,
            &ReconfigPolicy::AllPrimaries
        ));
        // Two faulty primaries in the same cluster: they share the single
        // spare, so reconfiguration must fail.
        let two = DefectMap::from_cells([cluster[0], cluster[1]]);
        let err = attempt_reconfiguration(&array, &two, &ReconfigPolicy::AllPrimaries).unwrap_err();
        assert_eq!(err.deficient_set.len(), 2);
        assert_eq!(err.available_spares.len(), 1);
    }

    #[test]
    fn plans_use_each_spare_at_most_once() {
        let array = DtmbKind::Dtmb44.instantiate(&Region::parallelogram(10, 10));
        let faulty: Vec<HexCoord> = array.primaries().take(8).collect();
        let defects = DefectMap::from_cells(faulty);
        if let Ok(plan) = attempt_reconfiguration(&array, &defects, &ReconfigPolicy::AllPrimaries) {
            let mut used: Vec<HexCoord> = plan.spares_used().collect();
            let before = used.len();
            used.sort();
            used.dedup();
            assert_eq!(used.len(), before, "spares must be distinct");
        }
    }
}
