//! Interstitial redundancy designs and reconfiguration engines.
//!
//! The heart of the paper: defect-tolerant microfluidic biochip designs
//! `DTMB(s, p)` place spare cells in the *interstitial sites* of a
//! hexagonal array so that each non-boundary primary cell is adjacent to
//! `s` spares and each spare is adjacent to `p` primaries (Definition 1).
//! A faulty primary is then replaced by a neighbouring spare — *local
//! reconfiguration* — with the assignment computed as a maximal bipartite
//! matching (paper Section 6, Figure 8).
//!
//! Modules:
//!
//! * [`dtmb`] — the four published designs (plus the alternative DTMB(2,6)
//!   variant of Figure 4(b)) as infinite lattice patterns instantiated over
//!   any region, with degree audits and redundancy ratios (Table 1).
//! * [`array`](mod@crate::array) — [`DefectTolerantArray`]: a region plus a role (primary /
//!   spare) per cell.
//! * [`local`] — matching-based local reconfiguration with success policies
//!   and Hall-violation failure witnesses.
//! * [`incremental`] — [`TrialEvaluator`]: the Monte-Carlo hot path, which
//!   precomputes the primary↔spare neighbour structure once per array and
//!   evaluates each trial (or a whole survival-probability grid per trial)
//!   with reusable bitset-matching buffers.
//! * [`shifted`] — the boundary spare-row baseline with its cascade of
//!   "shifted replacements" (Figure 2), including cost accounting.
//! * [`app_aware`] — the redundancy-free category-1 alternative: re-placing
//!   modules onto fault-free unused cells.
//!
//! # Example
//!
//! ```
//! use dmfb_reconfig::dtmb::DtmbKind;
//! use dmfb_grid::Region;
//!
//! let array = DtmbKind::Dtmb16.instantiate(&Region::parallelogram(14, 14));
//! let audit = array.audit().unwrap();
//! assert_eq!(audit.spares_per_interior_primary, (1, 1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod app_aware;
pub mod array;
pub mod dtmb;
pub mod incremental;
pub mod local;
pub mod shifted;
pub mod square_dtmb;

pub use array::{CellRole, DefectTolerantArray, DegreeAudit};
pub use incremental::{TrialEvaluator, TrialScratch};
pub use local::{attempt_reconfiguration, ReconfigFailure, ReconfigPlan, ReconfigPolicy};
