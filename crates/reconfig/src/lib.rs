//! Interstitial redundancy designs and reconfiguration engines.
//!
//! The heart of the paper: defect-tolerant microfluidic biochip designs
//! `DTMB(s, p)` place spare cells in the *interstitial sites* of a
//! hexagonal array so that each non-boundary primary cell is adjacent to
//! `s` spares and each spare is adjacent to `p` primaries (Definition 1).
//! A faulty primary is then replaced by a neighbouring spare — *local
//! reconfiguration* — with the assignment computed as a maximal bipartite
//! matching (paper Section 6, Figure 8).
//!
//! Modules:
//!
//! * [`dtmb`] — the four published designs (plus the alternative DTMB(2,6)
//!   variant of Figure 4(b)) as infinite lattice patterns instantiated over
//!   any region, with degree audits and redundancy ratios (Table 1).
//! * [`array`](mod@crate::array) — [`DefectTolerantArray`]: a region plus a role (primary /
//!   spare) per cell.
//! * [`local`] — matching-based local reconfiguration with success policies
//!   and Hall-violation failure witnesses.
//! * [`incremental`] — [`TrialEvaluator`]: the Monte-Carlo hot path, which
//!   precomputes the primary↔spare neighbour structure once per array and
//!   evaluates each trial (or a whole survival-probability grid per trial)
//!   with reusable bitset-matching buffers.
//! * [`block`](mod@crate::block) — the tiered bit-parallel trial engine:
//!   64 trials per word through sample → classify → match tiers
//!   ([`TrialBlock`]), byte-identical to the scalar path at any block
//!   width or thread count.
//! * [`scheme`] — the cross-cutting [`RedundancyScheme`] abstraction:
//!   every design (hex DTMB, square DTMB, spare rows) compiled into one
//!   assignment-under-adjacency-conflicts structure so all of them ride
//!   the same incremental fast engine.
//! * [`shifted`] — the boundary spare-row baseline with its cascade of
//!   "shifted replacements" (Figure 2), including cost accounting.
//! * [`app_aware`] — the redundancy-free category-1 alternative: re-placing
//!   modules onto fault-free unused cells.
//!
//! # Example
//!
//! ```
//! use dmfb_reconfig::dtmb::DtmbKind;
//! use dmfb_grid::Region;
//!
//! let array = DtmbKind::Dtmb16.instantiate(&Region::parallelogram(14, 14));
//! let audit = array.audit().unwrap();
//! assert_eq!(audit.spares_per_interior_primary, (1, 1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod app_aware;
pub mod array;
pub mod block;
pub mod dtmb;
pub mod incremental;
pub mod local;
pub mod scheme;
pub mod shifted;
pub mod square_dtmb;

pub use array::{CellRole, DefectTolerantArray, DegreeAudit};
pub use block::{BlockStats, TrialBlock};
pub use incremental::{TrialEvaluator, TrialScratch};
pub use local::{attempt_reconfiguration, ReconfigFailure, ReconfigPlan, ReconfigPolicy};
pub use scheme::{scheme_audit, RedundancyScheme, SchemeStructure};
pub use shifted::{ShiftFailure, ShiftPlan, SpareRowArray};
pub use square_dtmb::SquarePattern;

/// Formats the first few items of a list for error messages, eliding the
/// rest (`a, b, c, … 4 more`). Empty lists render as `none`.
pub(crate) fn format_cell_list<T: std::fmt::Display>(items: &[T]) -> String {
    use std::fmt::Write as _;
    const SHOWN: usize = 8;
    if items.is_empty() {
        return "none".to_string();
    }
    let mut out = String::new();
    for (i, item) in items.iter().take(SHOWN).enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{item}");
    }
    if items.len() > SHOWN {
        let _ = write!(out, ", … {} more", items.len() - SHOWN);
    }
    out
}
