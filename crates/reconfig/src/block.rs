//! The tiered bit-parallel trial engine: sample → classify → match, 64
//! trials per word.
//!
//! The scalar hot path ([`TrialEvaluator::survival_trial`]) evaluates one
//! trial at a time: draw a uniform per cell, aggregate to unit/resource
//! fault flags, run the bitset matcher. At realistic survival
//! probabilities most trials carry 0–2 faults and never needed a matching
//! at all — the matcher call is pure overhead. This module restructures
//! the path into three explicit tiers over a [`TrialBlock`] of up to 64
//! lanes (one trial per bit of a `u64` word):
//!
//! 1. **Sample** — a transposed [`BlockSampler`] draws one fault *word*
//!    per cell (bit `L` = lane `L`'s fault flag), bit-identical to the
//!    scalar per-trial streams for the same seeds.
//! 2. **Classify** — cell-fault words are OR-folded to per-unit and
//!    per-resource fault words through the evaluator's CSR structure;
//!    whole lanes retire without touching the matcher when they have no
//!    faulty unit, when their total fault popcount is within the
//!    placement-independent Hall bound
//!    ([`TrialEvaluator::guaranteed_tolerable_faults`], counted by a
//!    bit-sliced [`LaneCounter`]), or — in the other direction — when
//!    some faulty unit has every candidate resource dead (provably
//!    intolerable, the scalar engine's early-false).
//! 3. **Match** — only the residue lanes fall back to the per-trial
//!    bitset matcher, through the same [`TrialScratch::solve`] path as
//!    the scalar engine (Hall early-exit included).
//!
//! Because tier 1 replays the scalar RNG streams exactly and tiers 2–3
//! decide exactly the verdicts the scalar `solve` would have produced,
//! every block method is **byte-identical** to its scalar counterpart:
//! same seeds in, same verdicts out, at any block width and any thread
//! count.
//!
//! [`TrialScratch::solve`]: TrialEvaluator::scratch

use crate::incremental::{TrialEvaluator, TrialScratch};
use dmfb_defects::block::{fault_threshold, BlockSampler};
use dmfb_graph::words::{pack_ge, LaneCounter, LANES};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Largest exact fault count routed through the transposed
/// [`BlockSampler::exact_fault_words`] path. The sparse override list it
/// keeps per lane costs `O(k²)` per block versus the scalar loop's
/// `O(n)` identity reset per lane; stratified strata deep enough to
/// cross this bound are rare enough (probability-weighted) that the
/// scalar fallback is never the hot path.
const TRANSPOSED_FAULT_LIMIT: usize = 64;

/// Cumulative tier counters of a [`TrialBlock`] — how much work each
/// tier retired, for skip-rate reporting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BlockStats {
    /// Live lane-verdicts produced (one per trial, or per trial × grid
    /// point in grid mode).
    pub lanes: u64,
    /// Verdicts decided by the classifier tier alone (no matcher call).
    pub classified: u64,
    /// Verdicts that reached the residue matcher.
    pub matched: u64,
}

impl BlockStats {
    /// Fraction of verdicts the classifier retired before the matcher
    /// (`0.0` when nothing ran yet).
    #[must_use]
    pub fn skip_rate(&self) -> f64 {
        if self.lanes == 0 {
            0.0
        } else {
            self.classified as f64 / self.lanes as f64
        }
    }
}

/// Reusable per-worker scratch for the tiered block engine — the
/// word-parallel counterpart of [`TrialScratch`]. Create one per worker
/// thread via [`TrialEvaluator::block_scratch`]; any number of block
/// calls reuse its buffers allocation-free.
#[derive(Clone, Debug)]
pub struct TrialBlock {
    /// Transposed sampler (reseeded per 64-lane group).
    sampler: BlockSampler,
    /// Fault word per relevant cell for the current group.
    cell_words: Vec<u64>,
    /// OR-fold of member-cell fault words per unit.
    unit_words: Vec<u64>,
    /// OR-fold of member-cell fault words per resource (indestructible
    /// resources stay zero).
    res_words: Vec<u64>,
    /// Stored transposed mantissas, `[cell × LANES]`, grid mode only
    /// (sized lazily on first grid call).
    mantissa: Vec<u64>,
    /// Bit-sliced per-lane fault counter for the Hall tier.
    counter: LaneCounter,
    /// Hall bound usable by the counter tier (`None` when the structure
    /// has no units, a zero bound, or a bound beyond counter capacity —
    /// the other tiers already cover those cases).
    hall_bound: Option<u64>,
    /// Scalar scratch for the residue matcher tier.
    scratch: TrialScratch,
    stats: BlockStats,
}

impl TrialBlock {
    /// Cumulative tier counters since construction (or the last
    /// [`TrialBlock::reset_stats`]).
    #[must_use]
    pub fn stats(&self) -> BlockStats {
        self.stats
    }

    /// Zeroes the tier counters.
    pub fn reset_stats(&mut self) {
        self.stats = BlockStats::default();
    }

    /// Ensures the mantissa store holds `cells × LANES` words.
    fn ensure_mantissa(&mut self, cells: usize) {
        if self.mantissa.len() < cells * LANES {
            self.mantissa.resize(cells * LANES, 0);
        }
    }
}

impl<C: Copy + Ord> TrialEvaluator<C> {
    /// Allocates a block scratch sized for this evaluator — one per
    /// worker thread, reused across all of that worker's blocks.
    #[must_use]
    pub fn block_scratch(&self) -> TrialBlock {
        let bound = self.guaranteed_tolerable_faults();
        let usable = self.unit_count() > 0 && (1..=255).contains(&bound);
        TrialBlock {
            sampler: BlockSampler::new(&[]),
            cell_words: vec![0; self.cell_count()],
            unit_words: vec![0; self.unit_count()],
            res_words: vec![0; self.resource_count()],
            mantissa: Vec::new(),
            counter: LaneCounter::new(if usable { bound } else { 1 }),
            hall_bound: usable.then_some(bound as u64),
            scratch: self.scratch(),
            stats: BlockStats::default(),
        }
    }

    /// Survival-mode block trial: evaluates one trial per seed (64 per
    /// word group) at survival probability `p` and returns how many were
    /// tolerable. Byte-identical to running
    /// [`TrialEvaluator::survival_trial`] with
    /// `StdRng::seed_from_u64(seed)` for each seed, at any seed-slice
    /// length.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn survival_block(&self, p: f64, seeds: &[u64], block: &mut TrialBlock) -> u32 {
        let threshold = fault_threshold(p);
        let mut successes = 0u32;
        for group in seeds.chunks(LANES) {
            block.sampler.reseed(group);
            block
                .sampler
                .fill_fault_words(threshold, &mut block.cell_words);
            successes += self.decide_group(block).count_ones();
        }
        successes
    }

    /// Grid-mode block trial: evaluates one trial per seed against an
    /// entire ascending survival grid, adding each point's tolerable-lane
    /// count to `counts`. Byte-identical (in per-point totals) to running
    /// [`TrialEvaluator::survival_trial_grid`] per seed.
    ///
    /// One transposed draw per cell is shared across the grid (common
    /// random numbers), so per-lane tolerability is monotone along the
    /// grid; a lane found tolerable at point `j` is retired and counted
    /// tolerable for every point after `j` without re-evaluation.
    ///
    /// # Panics
    ///
    /// Panics if `ps` is not sorted ascending, lengths mismatch, or any
    /// `p` is outside `[0, 1]`.
    pub fn survival_grid_block(
        &self,
        ps: &[f64],
        seeds: &[u64],
        block: &mut TrialBlock,
        counts: &mut [u64],
    ) {
        assert_eq!(ps.len(), counts.len(), "grid and output lengths differ");
        assert!(
            ps.windows(2).all(|w| w[0] <= w[1]),
            "survival grid must be ascending"
        );
        let cells = self.cell_count();
        block.ensure_mantissa(cells);
        for group in seeds.chunks(LANES) {
            block.sampler.reseed(group);
            let live = block.sampler.live_mask();
            for cell in 0..cells {
                let column: &mut [u64; LANES] = (&mut block.mantissa
                    [cell * LANES..(cell + 1) * LANES])
                    .try_into()
                    .expect("mantissa store is sized for LANES per cell");
                block.sampler.mantissas(column);
            }
            // Ascending scan: tolerability is monotone in p under common
            // random numbers, so resolved lanes stay tolerable.
            let mut resolved = 0u64;
            for (&p, count) in ps.iter().zip(counts.iter_mut()) {
                if resolved != live {
                    let threshold = fault_threshold(p);
                    for (cell, word) in block.cell_words.iter_mut().enumerate() {
                        let column: &[u64; LANES] = block.mantissa
                            [cell * LANES..(cell + 1) * LANES]
                            .try_into()
                            .expect("mantissa store is sized for LANES per cell");
                        *word = pack_ge(column, threshold) & live;
                    }
                    resolved |= self.decide_group_masked(block, live & !resolved);
                }
                *count += u64::from(resolved.count_ones());
            }
        }
    }

    /// Exact-fault-count block trial: evaluates one trial per seed with
    /// exactly `faults` faulty cells and returns how many were tolerable.
    /// Byte-identical to running [`TrialEvaluator::exact_fault_trial`]
    /// per seed.
    ///
    /// Sampling rides the transposed path
    /// ([`BlockSampler::exact_fault_words`]): the Fisher–Yates swap
    /// indices for all lanes are drawn lock-step from the lane
    /// generators, skipping the scalar path's `O(n)` per-lane
    /// identity-permutation reset — the cost that used to dominate the
    /// stratified estimator's sampled strata. Above 64 faults
    /// (`TRANSPOSED_FAULT_LIMIT`) the sparse override list the
    /// transposed sampler tracks stops paying for itself, so deep strata
    /// fall back to the scalar per-lane loop; both branches stage
    /// identical fault words.
    ///
    /// # Panics
    ///
    /// Panics if `faults` exceeds the evaluator's relevant-cell count.
    pub fn exact_fault_block(&self, faults: usize, seeds: &[u64], block: &mut TrialBlock) -> u32 {
        let n = self.cell_count();
        assert!(
            faults <= n,
            "cannot inject {faults} faults into a {n}-cell structure"
        );
        let mut successes = 0u32;
        for group in seeds.chunks(LANES) {
            block.sampler.reseed(group); // keeps live_mask in step
            if faults <= TRANSPOSED_FAULT_LIMIT {
                block
                    .sampler
                    .exact_fault_words(n, faults, &mut block.cell_words);
            } else {
                block.cell_words.iter_mut().for_each(|w| *w = 0);
                for (lane, &seed) in group.iter().enumerate() {
                    let mut rng = StdRng::seed_from_u64(seed);
                    for (i, slot) in block.scratch.perm.iter_mut().enumerate() {
                        *slot = i as u32;
                    }
                    for i in 0..faults {
                        let j = rng.gen_range(i..n);
                        block.scratch.perm.swap(i, j);
                        block.cell_words[block.scratch.perm[i] as usize] |= 1u64 << lane;
                    }
                }
            }
            successes += self.decide_group(block).count_ones();
        }
        successes
    }

    /// Classifies and (for the residue) matches every live lane of the
    /// fault words currently staged in `block.cell_words`; returns the
    /// tolerable-lane mask.
    fn decide_group(&self, block: &mut TrialBlock) -> u64 {
        let live = block.sampler.live_mask();
        self.decide_group_masked(block, live)
    }

    /// [`Self::decide_group`] restricted to the lanes in `mask` (grid
    /// mode re-decides only unresolved lanes).
    fn decide_group_masked(&self, block: &mut TrialBlock, mask: u64) -> u64 {
        let (tolerable, intolerable) = self.classify_words(block);
        let undecided = mask & !tolerable & !intolerable;
        let verdicts = (tolerable & mask) | self.match_residue(block, undecided);
        block.stats.lanes += u64::from(mask.count_ones());
        block.stats.matched += u64::from(undecided.count_ones());
        block.stats.classified += u64::from((mask & !undecided).count_ones());
        verdicts
    }

    /// Tier 2: folds cell-fault words to unit/resource fault words
    /// through the CSR structure and returns the
    /// `(provably tolerable, provably intolerable)` lane masks.
    ///
    /// * tolerable — no faulty unit at all (the scalar `solve`'s empty
    ///   row set), or total cell-fault popcount within the Hall bound;
    /// * intolerable — some faulty unit whose candidate resources are
    ///   all dead (the scalar `solve`'s early `false`; units with no
    ///   candidates at all fold to the same verdict).
    fn classify_words(&self, block: &mut TrialBlock) -> (u64, u64) {
        for (i, word) in block.unit_words.iter_mut().enumerate() {
            *word = self
                .unit_members(i)
                .iter()
                .fold(0u64, |w, &c| w | block.cell_words[c as usize]);
        }
        for (j, word) in block.res_words.iter_mut().enumerate() {
            *word = self
                .res_members(j)
                .iter()
                .fold(0u64, |w, &c| w | block.cell_words[c as usize]);
        }
        let any_faulty_unit = block.unit_words.iter().fold(0u64, |w, &u| w | u);
        let mut tolerable = !any_faulty_unit;
        if let Some(bound) = block.hall_bound {
            block.counter.reset();
            for &word in &block.cell_words {
                block.counter.add(word);
            }
            tolerable |= block.counter.le_mask(bound);
        }
        let mut intolerable = 0u64;
        for (i, &unit_word) in block.unit_words.iter().enumerate() {
            let all_dead = self
                .adjacent(i)
                .iter()
                .fold(u64::MAX, |w, &r| w & block.res_words[r as usize]);
            intolerable |= unit_word & all_dead;
        }
        // The Hall bound guarantees the tiers cannot disagree; mask
        // defensively anyway so a verdict is never double-booked.
        debug_assert_eq!(tolerable & intolerable, 0, "classifier tiers disagree");
        (tolerable, intolerable & !tolerable)
    }

    /// Tier 3: runs the scalar matcher path for each lane in
    /// `undecided`, returning the mask of lanes it found tolerable.
    fn match_residue(&self, block: &mut TrialBlock, mut undecided: u64) -> u64 {
        let mut verdicts = 0u64;
        while undecided != 0 {
            let lane = undecided.trailing_zeros() as usize;
            undecided &= undecided - 1;
            for (flag, &word) in block.scratch.faulty_unit.iter_mut().zip(&block.unit_words) {
                *flag = (word >> lane) & 1 == 1;
            }
            for (flag, &word) in block.scratch.dead_res.iter_mut().zip(&block.res_words) {
                *flag = (word >> lane) & 1 == 1;
            }
            if self.solve(&mut block.scratch) {
                verdicts |= 1u64 << lane;
            }
        }
        verdicts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtmb::DtmbKind;
    use crate::local::ReconfigPolicy;
    use crate::shifted::SpareRowArray;
    use crate::square_dtmb::SquarePattern;
    use dmfb_grid::SquareRegion;

    fn hex_eval(n: usize) -> TrialEvaluator {
        let array = DtmbKind::Dtmb26A.with_primary_count(n);
        TrialEvaluator::new(&array, &ReconfigPolicy::AllPrimaries)
    }

    fn seeds(base: u64, n: usize) -> Vec<u64> {
        (0..n as u64)
            .map(|i| base.wrapping_add(i * 0x9E37))
            .collect()
    }

    #[test]
    fn survival_block_matches_scalar_verdicts() {
        let eval = hex_eval(80);
        let mut block = eval.block_scratch();
        let mut scratch = eval.scratch();
        for &p in &[0.0, 0.5, 0.9, 0.95, 0.99, 1.0] {
            for width in [1usize, 3, 64, 65, 150] {
                let s = seeds(0xC0FFEE ^ (width as u64), width);
                let got = eval.survival_block(p, &s, &mut block);
                let mut expected = 0u32;
                for &seed in &s {
                    let mut rng = StdRng::seed_from_u64(seed);
                    expected += u32::from(eval.survival_trial(p, &mut rng, &mut scratch));
                }
                assert_eq!(got, expected, "p={p} width={width}");
            }
        }
    }

    #[test]
    fn grid_block_matches_scalar_grid_counts() {
        let eval = hex_eval(60);
        let mut block = eval.block_scratch();
        let mut scratch = eval.scratch();
        let ps = [0.0, 0.5, 0.8, 0.9, 0.95, 0.99, 1.0];
        let s = seeds(0xBEEF, 130);
        let mut counts = vec![0u64; ps.len()];
        eval.survival_grid_block(&ps, &s, &mut block, &mut counts);
        let mut expected = vec![0u64; ps.len()];
        let mut out = [false; 7];
        for &seed in &s {
            let mut rng = StdRng::seed_from_u64(seed);
            eval.survival_trial_grid(&ps, &mut rng, &mut scratch, &mut out);
            for (e, &o) in expected.iter_mut().zip(&out) {
                *e += u64::from(o);
            }
        }
        assert_eq!(counts, expected);
    }

    #[test]
    fn exact_fault_block_matches_scalar() {
        let eval = hex_eval(50);
        let mut block = eval.block_scratch();
        let mut scratch = eval.scratch();
        for k in [0usize, 1, 3, 8, 20, eval.cell_count()] {
            let s = seeds(0xAB00 + k as u64, 90);
            let got = eval.exact_fault_block(k, &s, &mut block);
            let mut expected = 0u32;
            for &seed in &s {
                let mut rng = StdRng::seed_from_u64(seed);
                expected += u32::from(eval.exact_fault_trial(k, &mut rng, &mut scratch));
            }
            assert_eq!(got, expected, "k={k}");
        }
    }

    #[test]
    fn all_three_schemes_agree_with_scalar() {
        let region = SquareRegion::rect(10, 10);
        let mut evals: Vec<TrialEvaluator<dmfb_grid::SquareCoord>> = SquarePattern::ALL
            .iter()
            .map(|p| TrialEvaluator::for_scheme(&region, p))
            .collect();
        let rows = SpareRowArray::figure2_example();
        evals.push(TrialEvaluator::for_scheme(&rows.region(), &rows));
        for (idx, eval) in evals.iter().enumerate() {
            let mut block = eval.block_scratch();
            let mut scratch = eval.scratch();
            for &p in &[0.8, 0.95, 0.995] {
                let s = seeds(0xD00D + idx as u64, 96);
                let got = eval.survival_block(p, &s, &mut block);
                let mut expected = 0u32;
                for &seed in &s {
                    let mut rng = StdRng::seed_from_u64(seed);
                    expected += u32::from(eval.survival_trial(p, &mut rng, &mut scratch));
                }
                assert_eq!(got, expected, "scheme={idx} p={p}");
            }
        }
    }

    #[test]
    fn block_width_does_not_change_totals() {
        let eval = hex_eval(70);
        let mut block = eval.block_scratch();
        let s = seeds(0xFEED, 200);
        let whole = eval.survival_block(0.97, &s, &mut block);
        for chunk in [1usize, 7, 64, 128] {
            let split: u32 = s
                .chunks(chunk)
                .map(|c| eval.survival_block(0.97, c, &mut block))
                .sum();
            assert_eq!(split, whole, "chunk={chunk}");
        }
    }

    #[test]
    fn classifier_skip_rate_is_high_at_high_survival() {
        // Measured regimes on DTMB(2,6) @ 120 primaries (Hall bound 2):
        // ~76% of lanes retire without a matcher call at p = 0.99 and
        // ~95% at p = 0.995; guard against regressions below those tiers.
        let eval = hex_eval(120);
        let mut block = eval.block_scratch();
        let s = seeds(0x99, 2048);
        let _ = eval.survival_block(0.99, &s, &mut block);
        let stats = block.stats();
        assert_eq!(stats.lanes, 2048);
        assert_eq!(stats.classified + stats.matched, stats.lanes);
        assert!(
            stats.skip_rate() > 0.7,
            "classifier should retire >70% of lanes at p=0.99, got {}",
            stats.skip_rate()
        );
        block.reset_stats();
        let _ = eval.survival_block(0.995, &s, &mut block);
        assert!(
            block.stats().skip_rate() > 0.9,
            "classifier should retire >90% of lanes at p=0.995, got {}",
            block.stats().skip_rate()
        );
    }

    #[test]
    fn empty_seed_slice_is_a_no_op() {
        let eval = hex_eval(30);
        let mut block = eval.block_scratch();
        assert_eq!(eval.survival_block(0.9, &[], &mut block), 0);
        assert_eq!(eval.exact_fault_block(2, &[], &mut block), 0);
        let mut counts = [0u64; 2];
        eval.survival_grid_block(&[0.5, 0.9], &[], &mut block, &mut counts);
        assert_eq!(counts, [0, 0]);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn grid_block_rejects_unsorted_grid() {
        let eval = hex_eval(20);
        let mut block = eval.block_scratch();
        let mut counts = [0u64; 2];
        eval.survival_grid_block(&[0.9, 0.5], &[1], &mut block, &mut counts);
    }

    #[test]
    #[should_panic(expected = "cannot inject")]
    fn exact_block_rejects_overfull() {
        let eval = hex_eval(20);
        let mut block = eval.block_scratch();
        let _ = eval.exact_fault_block(eval.cell_count() + 1, &[1], &mut block);
    }
}
