//! Defect-tolerant arrays: regions with a primary/spare role per cell.

use crate::dtmb::DtmbKind;
use dmfb_grid::{CellMap, GridError, HexCoord, Region};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The role of a cell in a defect-tolerant microfluidic array.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum CellRole {
    /// A working cell used (or usable) by bioassays.
    Primary,
    /// An interstitial spare that can functionally replace an adjacent
    /// faulty primary via local reconfiguration.
    Spare,
}

/// A microfluidic array whose cells are partitioned into primary and spare
/// cells — the object the paper calls `DTMB(s, p)` when the spares follow
/// one of the interstitial patterns of Figures 3–6.
///
/// # Example
///
/// ```
/// use dmfb_reconfig::dtmb::DtmbKind;
/// use dmfb_grid::Region;
///
/// let array = DtmbKind::Dtmb26A.instantiate(&Region::parallelogram(10, 10));
/// assert_eq!(array.primary_count() + array.spare_count(), 100);
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct DefectTolerantArray {
    region: Region,
    roles: CellMap<CellRole>,
    kind: Option<DtmbKind>,
}

impl fmt::Debug for DefectTolerantArray {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DefectTolerantArray({:?}, {} primary + {} spare)",
            self.kind,
            self.primary_count(),
            self.spare_count()
        )
    }
}

impl DefectTolerantArray {
    /// Builds an array from an explicit role map. Prefer
    /// [`DtmbKind::instantiate`] for the published patterns.
    ///
    /// # Panics
    ///
    /// Panics if `roles` does not cover exactly the cells of `region`.
    #[must_use]
    pub fn from_roles(region: Region, roles: CellMap<CellRole>, kind: Option<DtmbKind>) -> Self {
        assert_eq!(
            roles.len(),
            region.len(),
            "role map must cover the region exactly"
        );
        for c in region.iter() {
            assert!(roles.contains(c), "cell {c} missing from role map");
        }
        DefectTolerantArray {
            region,
            roles,
            kind,
        }
    }

    /// An array with no redundancy at all: every cell is primary. This is
    /// the paper's baseline (`Y = pⁿ`) and the model of the first fabricated
    /// multiplexed-diagnostics chip.
    #[must_use]
    pub fn without_redundancy(region: Region) -> Self {
        let roles = CellMap::from_region_with(&region, |_| CellRole::Primary);
        DefectTolerantArray {
            region,
            roles,
            kind: None,
        }
    }

    /// The underlying cell region.
    #[must_use]
    pub fn region(&self) -> &Region {
        &self.region
    }

    /// The DTMB pattern this array was instantiated from, if any.
    #[must_use]
    pub fn kind(&self) -> Option<DtmbKind> {
        self.kind
    }

    /// The role of `cell`.
    ///
    /// # Errors
    ///
    /// [`GridError::CellNotInRegion`] if the cell is not part of the array.
    pub fn role(&self, cell: HexCoord) -> Result<CellRole, GridError> {
        self.roles
            .get(cell)
            .copied()
            .ok_or(GridError::CellNotInRegion(cell))
    }

    /// Whether `cell` is a spare (false for primaries *and* for cells
    /// outside the array).
    #[must_use]
    pub fn is_spare(&self, cell: HexCoord) -> bool {
        matches!(self.roles.get(cell), Some(CellRole::Spare))
    }

    /// Whether `cell` is a primary (false outside the array).
    #[must_use]
    pub fn is_primary(&self, cell: HexCoord) -> bool {
        matches!(self.roles.get(cell), Some(CellRole::Primary))
    }

    /// Iterates the primary cells in sorted order.
    pub fn primaries(&self) -> impl Iterator<Item = HexCoord> + '_ {
        self.roles.cells_where(|r| *r == CellRole::Primary)
    }

    /// Iterates the spare cells in sorted order.
    pub fn spares(&self) -> impl Iterator<Item = HexCoord> + '_ {
        self.roles.cells_where(|r| *r == CellRole::Spare)
    }

    /// Number of primary cells (`n` in the paper).
    #[must_use]
    pub fn primary_count(&self) -> usize {
        self.primaries().count()
    }

    /// Number of spare cells.
    #[must_use]
    pub fn spare_count(&self) -> usize {
        self.spares().count()
    }

    /// Total number of cells (`N = n + spares`).
    #[must_use]
    pub fn total_cells(&self) -> usize {
        self.region.len()
    }

    /// The redundancy ratio `RR` — Definition 2: spares / primaries.
    /// Returns 0 for an array without primaries.
    #[must_use]
    pub fn redundancy_ratio(&self) -> f64 {
        let n = self.primary_count();
        if n == 0 {
            0.0
        } else {
            self.spare_count() as f64 / n as f64
        }
    }

    /// The spare cells adjacent to `cell` (its replacement candidates).
    pub fn adjacent_spares(&self, cell: HexCoord) -> impl Iterator<Item = HexCoord> + '_ {
        self.region.neighbors_in(cell).filter(|n| self.is_spare(*n))
    }

    /// The primary cells adjacent to `cell`.
    pub fn adjacent_primaries(&self, cell: HexCoord) -> impl Iterator<Item = HexCoord> + '_ {
        self.region
            .neighbors_in(cell)
            .filter(|n| self.is_primary(*n))
    }

    /// Audits the array against Definition 1, returning the observed
    /// degree ranges.
    ///
    /// # Errors
    ///
    /// Returns [`GridError::CellNotInRegion`] only if the array is
    /// internally inconsistent (cannot happen through public constructors).
    pub fn audit(&self) -> Result<DegreeAudit, GridError> {
        let mut spares_min = usize::MAX;
        let mut spares_max = 0usize;
        let mut interior_primaries = 0usize;
        for c in self.primaries() {
            if self.region.is_boundary(c)? {
                continue;
            }
            interior_primaries += 1;
            let k = self.adjacent_spares(c).count();
            spares_min = spares_min.min(k);
            spares_max = spares_max.max(k);
        }
        let mut prim_min = usize::MAX;
        let mut prim_max = 0usize;
        let mut interior_spares = 0usize;
        for c in self.spares() {
            if self.region.is_boundary(c)? {
                continue;
            }
            interior_spares += 1;
            let k = self.adjacent_primaries(c).count();
            prim_min = prim_min.min(k);
            prim_max = prim_max.max(k);
        }
        Ok(DegreeAudit {
            interior_primaries,
            interior_spares,
            spares_per_interior_primary: if interior_primaries == 0 {
                (0, 0)
            } else {
                (spares_min, spares_max)
            },
            primaries_per_interior_spare: if interior_spares == 0 {
                (0, 0)
            } else {
                (prim_min, prim_max)
            },
        })
    }
}

/// The observed adjacency degrees of an array, checked against the
/// `DTMB(s, p)` definition. Boundary cells are excluded, exactly as the
/// paper's Definition 1 does ("each *non-boundary* primary cell").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DegreeAudit {
    /// Number of non-boundary primary cells.
    pub interior_primaries: usize,
    /// Number of non-boundary spare cells.
    pub interior_spares: usize,
    /// `(min, max)` spare-neighbour count over non-boundary primaries; a
    /// DTMB(s, p) array must have `min == max == s`.
    pub spares_per_interior_primary: (usize, usize),
    /// `(min, max)` primary-neighbour count over non-boundary spares; a
    /// DTMB(s, p) array must have `min == max == p`.
    pub primaries_per_interior_spare: (usize, usize),
}

impl DegreeAudit {
    /// Whether the audit matches an exact `DTMB(s, p)` degree guarantee.
    #[must_use]
    pub fn matches(&self, s: usize, p: usize) -> bool {
        (self.interior_primaries == 0 || self.spares_per_interior_primary == (s, s))
            && (self.interior_spares == 0 || self.primaries_per_interior_spare == (p, p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn without_redundancy_all_primary() {
        let array = DefectTolerantArray::without_redundancy(Region::parallelogram(5, 5));
        assert_eq!(array.primary_count(), 25);
        assert_eq!(array.spare_count(), 0);
        assert_eq!(array.redundancy_ratio(), 0.0);
        assert!(array.kind().is_none());
        assert!(array.is_primary(HexCoord::new(2, 2)));
        assert!(!array.is_spare(HexCoord::new(2, 2)));
        assert!(!array.is_primary(HexCoord::new(50, 50)));
    }

    #[test]
    fn from_roles_validates_coverage() {
        let region = Region::parallelogram(2, 1);
        let mut roles = CellMap::new();
        roles.insert(HexCoord::new(0, 0), CellRole::Primary);
        roles.insert(HexCoord::new(1, 0), CellRole::Spare);
        let array = DefectTolerantArray::from_roles(region, roles, None);
        assert_eq!(array.primary_count(), 1);
        assert_eq!(array.spare_count(), 1);
        assert_eq!(array.redundancy_ratio(), 1.0);
    }

    #[test]
    #[should_panic(expected = "cover the region")]
    fn from_roles_rejects_partial_maps() {
        let region = Region::parallelogram(2, 1);
        let mut roles = CellMap::new();
        roles.insert(HexCoord::new(0, 0), CellRole::Primary);
        let _ = DefectTolerantArray::from_roles(region, roles, None);
    }

    #[test]
    fn role_query_errors_outside() {
        let array = DefectTolerantArray::without_redundancy(Region::parallelogram(2, 2));
        assert!(array.role(HexCoord::new(9, 9)).is_err());
        assert_eq!(array.role(HexCoord::new(0, 0)).unwrap(), CellRole::Primary);
    }

    #[test]
    fn audit_of_plain_array() {
        let array = DefectTolerantArray::without_redundancy(Region::parallelogram(6, 6));
        let audit = array.audit().unwrap();
        assert!(audit.interior_primaries > 0);
        assert_eq!(audit.interior_spares, 0);
        assert_eq!(audit.spares_per_interior_primary, (0, 0));
        assert!(audit.matches(0, 0));
        assert!(!audit.matches(1, 6));
    }
}
