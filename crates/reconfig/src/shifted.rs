//! The boundary spare-row baseline and its "shifted replacement" cascade
//! (paper Figure 2).
//!
//! This is the redundancy scheme that works for processor arrays and FPGAs
//! but is defeated by *microfluidic locality*: a droplet can only move to
//! physically adjacent cells, so a spare in a boundary row can replace a
//! distant faulty cell only through a chain of replacements — each faulty
//! cell replaced by an adjacent fault-free cell, which is in turn replaced
//! by one of its neighbours, and so on until the spare row is reached. Any
//! module between the fault and the spare row gets reconfigured even if it
//! is fault-free. This module implements the scheme on a square-electrode
//! array to quantify exactly that cost.

use dmfb_grid::{SquareCoord, SquareRegion};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A microfluidic module occupying a horizontal band of rows (as in
/// Figure 2's Modules 1–3).
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct ModuleBand {
    /// Human-readable module name (e.g. "Module 3" or "mixer").
    pub name: String,
    /// Number of array rows the module occupies.
    pub rows: u32,
}

/// A square array of `width` columns whose rows are assigned to modules,
/// with `spare_rows` unassigned rows at the bottom (adjacent to the last
/// module).
///
/// Row 0 is the *top*; the spare rows sit below the last module, matching
/// the Figure 2 layout where shifting propagates toward the spare row.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct SpareRowArray {
    width: u32,
    bands: Vec<ModuleBand>,
    spare_rows: u32,
}

/// The outcome of a successful shifted replacement.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct ShiftPlan {
    /// For every original row index, the row it now occupies.
    pub row_remap: Vec<u32>,
    /// Names of the modules whose cells moved (including fault-free ones
    /// dragged along by the cascade — the cost the paper criticises).
    pub modules_reconfigured: Vec<String>,
    /// Total number of cells whose physical position changed.
    pub cells_remapped: usize,
}

/// Why shifted replacement failed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ShiftFailure {
    /// Distinct faulty rows that needed bypassing.
    pub faulty_rows: Vec<u32>,
    /// Spare rows available.
    pub spare_rows: u32,
}

impl fmt::Display for ShiftFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shifted replacement failed: {} faulty row(s) (rows {}) but only {} spare row(s)",
            self.faulty_rows.len(),
            crate::format_cell_list(&self.faulty_rows),
            self.spare_rows
        )
    }
}

impl std::error::Error for ShiftFailure {}

impl SpareRowArray {
    /// Creates an array of `width` columns from top-to-bottom module bands
    /// plus `spare_rows` spare rows at the bottom.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0` or no module rows exist.
    #[must_use]
    pub fn new(width: u32, bands: Vec<ModuleBand>, spare_rows: u32) -> Self {
        assert!(width > 0, "array must have at least one column");
        assert!(
            bands.iter().map(|b| b.rows).sum::<u32>() > 0,
            "array must have at least one module row"
        );
        SpareRowArray {
            width,
            bands,
            spare_rows,
        }
    }

    /// The Figure 2 example: three modules of two rows each over one spare
    /// row, eight columns wide.
    #[must_use]
    pub fn figure2_example() -> Self {
        SpareRowArray::new(
            8,
            vec![
                ModuleBand {
                    name: "Module 3".into(),
                    rows: 2,
                },
                ModuleBand {
                    name: "Module 2".into(),
                    rows: 2,
                },
                ModuleBand {
                    name: "Module 1".into(),
                    rows: 2,
                },
            ],
            1,
        )
    }

    /// Number of columns.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Number of module (non-spare) rows.
    #[must_use]
    pub fn module_rows(&self) -> u32 {
        self.bands.iter().map(|b| b.rows).sum()
    }

    /// Total rows including spares.
    #[must_use]
    pub fn total_rows(&self) -> u32 {
        self.module_rows() + self.spare_rows
    }

    /// Number of spare rows at the bottom of the array.
    #[must_use]
    pub fn spare_rows(&self) -> u32 {
        self.spare_rows
    }

    /// The array's footprint as a square-lattice region (module rows plus
    /// spare rows) — the [`dmfb_grid::Topology`] this scheme is compiled
    /// over.
    #[must_use]
    pub fn region(&self) -> SquareRegion {
        SquareRegion::rect(self.width, self.total_rows())
    }

    /// The module band index owning `row`, or `None` for spare rows.
    #[must_use]
    pub fn band_of_row(&self, row: u32) -> Option<usize> {
        let mut start = 0;
        for (i, b) in self.bands.iter().enumerate() {
            if row < start + b.rows {
                return Some(i);
            }
            start += b.rows;
        }
        None
    }

    /// Performs shifted replacement around the given faulty cells.
    ///
    /// Every row containing a fault is vacated; rows below it (towards the
    /// spare rows) shift down to absorb the displacement. Succeeds iff the
    /// number of distinct faulty module rows does not exceed the number of
    /// spare rows.
    ///
    /// # Errors
    ///
    /// [`ShiftFailure`] when there are more faulty rows than spare rows.
    pub fn shifted_replacement(&self, faults: &[SquareCoord]) -> Result<ShiftPlan, ShiftFailure> {
        let module_rows = self.module_rows();
        let faulty_rows: BTreeSet<u32> = faults
            .iter()
            .filter(|c| {
                c.x >= 0 && (c.x as u32) < self.width && c.y >= 0 && (c.y as u32) < module_rows
            })
            .map(|c| c.y as u32)
            .collect();
        if faulty_rows.len() as u32 > self.spare_rows {
            return Err(ShiftFailure {
                faulty_rows: faulty_rows.into_iter().collect(),
                spare_rows: self.spare_rows,
            });
        }
        // Assign each non-faulty module row to the next free physical row,
        // skipping faulty rows; displaced rows spill into the spare rows.
        let mut row_remap = Vec::with_capacity(module_rows as usize);
        let mut next_free = 0u32;
        for row in 0..module_rows {
            if faulty_rows.contains(&row) {
                // The faulty row's cells are relocated like the rest of its
                // band; it simply no longer maps to itself.
                while faulty_rows.contains(&next_free) {
                    next_free += 1;
                }
                row_remap.push(next_free);
                next_free += 1;
            } else {
                while faulty_rows.contains(&next_free) {
                    next_free += 1;
                }
                row_remap.push(next_free);
                next_free += 1;
            }
        }
        let mut modules_reconfigured: Vec<String> = Vec::new();
        let mut cells_remapped = 0usize;
        for (i, band) in self.bands.iter().enumerate() {
            let start: u32 = self.bands[..i].iter().map(|b| b.rows).sum();
            let moved = (start..start + band.rows).any(|r| row_remap[r as usize] != r);
            if moved {
                modules_reconfigured.push(band.name.clone());
                cells_remapped += (band.rows * self.width) as usize;
            }
        }
        Ok(ShiftPlan {
            row_remap,
            modules_reconfigured,
            cells_remapped,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_fault_in_module1_moves_only_module1() {
        // Module 1 is the band adjacent to the spare row (rows 4-5).
        let array = SpareRowArray::figure2_example();
        let plan = array
            .shifted_replacement(&[SquareCoord::new(3, 4)])
            .unwrap();
        assert_eq!(plan.modules_reconfigured, vec!["Module 1".to_string()]);
        assert_eq!(plan.cells_remapped, 16); // 2 rows x 8 columns

        // Rows 0..=3 unchanged; rows 4,5 shifted down by one.
        assert_eq!(&plan.row_remap[..4], &[0, 1, 2, 3]);
        assert_eq!(&plan.row_remap[4..], &[5, 6]);
    }

    #[test]
    fn figure2_fault_in_module3_drags_fault_free_modules() {
        // Module 3 is farthest from the spare row (rows 0-1); bypassing its
        // faulty row reconfigures Modules 2 and 1 even though fault-free —
        // exactly the paper's criticism.
        let array = SpareRowArray::figure2_example();
        let plan = array
            .shifted_replacement(&[SquareCoord::new(0, 1)])
            .unwrap();
        assert!(plan.modules_reconfigured.contains(&"Module 3".to_string()));
        assert!(plan.modules_reconfigured.contains(&"Module 2".to_string()));
        assert!(plan.modules_reconfigured.contains(&"Module 1".to_string()));
        assert_eq!(plan.cells_remapped, 48);
    }

    #[test]
    fn two_faulty_rows_exceed_single_spare_row() {
        let array = SpareRowArray::figure2_example();
        let err = array
            .shifted_replacement(&[SquareCoord::new(0, 0), SquareCoord::new(0, 3)])
            .unwrap_err();
        assert_eq!(err.faulty_rows, vec![0, 3]);
        assert_eq!(err.spare_rows, 1);
        assert!(err.to_string().contains("spare row"));
    }

    #[test]
    fn same_row_faults_count_once() {
        let array = SpareRowArray::figure2_example();
        let plan = array
            .shifted_replacement(&[SquareCoord::new(0, 2), SquareCoord::new(7, 2)])
            .unwrap();
        // Row 2 is in Module 2; Modules 2 and 1 reconfigure.
        assert_eq!(
            plan.modules_reconfigured,
            vec!["Module 2".to_string(), "Module 1".to_string()]
        );
    }

    #[test]
    fn fault_free_is_identity() {
        let array = SpareRowArray::figure2_example();
        let plan = array.shifted_replacement(&[]).unwrap();
        assert!(plan.modules_reconfigured.is_empty());
        assert_eq!(plan.cells_remapped, 0);
        assert_eq!(plan.row_remap, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn faults_outside_module_rows_ignored() {
        let array = SpareRowArray::figure2_example();
        // Spare row fault (y=6) and out-of-array fault are harmless.
        let plan = array
            .shifted_replacement(&[SquareCoord::new(0, 6), SquareCoord::new(-3, 2)])
            .unwrap();
        assert!(plan.modules_reconfigured.is_empty());
    }

    #[test]
    fn more_spare_rows_tolerate_more_faulty_rows() {
        let array = SpareRowArray::new(
            4,
            vec![ModuleBand {
                name: "M".into(),
                rows: 5,
            }],
            2,
        );
        assert!(array
            .shifted_replacement(&[SquareCoord::new(0, 0), SquareCoord::new(0, 2)])
            .is_ok());
        assert!(array
            .shifted_replacement(&[
                SquareCoord::new(0, 0),
                SquareCoord::new(0, 2),
                SquareCoord::new(0, 4)
            ])
            .is_err());
        assert_eq!(array.total_rows(), 7);
        assert_eq!(array.band_of_row(4), Some(0));
        assert_eq!(array.band_of_row(5), None);
        assert_eq!(array.width(), 4);
    }
}
