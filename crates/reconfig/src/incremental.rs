//! Incremental Monte-Carlo trial evaluation.
//!
//! The naive hot path rebuilds the world once per trial: inject a
//! [`DefectMap`] (a `BTreeMap` per chip), re-derive which spares border
//! which faulty primaries by walking the hex lattice, allocate a fresh
//! adjacency-list graph, and run a fresh matcher. Every piece of that
//! except the random fault draw is *identical across trials* of the same
//! array.
//!
//! [`TrialEvaluator`] hoists the invariant part out of the loop. Built
//! once per `(array, policy)`, it stores the in-scope primaries, the
//! spares that could ever matter, and the primary→spare adjacency in CSR
//! form. A trial then only (a) draws one uniform per relevant cell,
//! (b) writes fault flags into reusable buffers, and (c) runs the bitset
//! Hopcroft–Karp from `dmfb-graph` over a reusable [`BitsetGraph`] — no
//! maps, no lattice walks, no allocations after warm-up.
//!
//! The evaluator also answers a whole survival-probability **grid** per
//! trial ([`TrialEvaluator::survival_trial_grid`]): with common random
//! numbers (cell survives at `p` iff its uniform `u < p`), the fault sets
//! are nested along the grid, tolerability is monotone in `p`, and a
//! binary search finds the tolerability threshold in `O(log k)` matcher
//! calls — one Monte-Carlo pass serves an entire yield curve.

use crate::array::DefectTolerantArray;
use crate::local::ReconfigPolicy;
use dmfb_defects::DefectMap;
use dmfb_graph::{BitsetGraph, BitsetMatcher};
use dmfb_grid::HexCoord;
use rand::rngs::StdRng;
use rand::Rng;

/// Precomputed matching structure for one `(array, policy)` pair, reused
/// across all Monte-Carlo trials.
///
/// All methods take `&self`; per-trial mutable state lives in a
/// [`TrialScratch`] so one evaluator can be shared across worker threads
/// (hand each worker its own scratch from [`TrialEvaluator::scratch`]).
///
/// # Example
///
/// ```
/// use dmfb_reconfig::dtmb::DtmbKind;
/// use dmfb_reconfig::{ReconfigPolicy, TrialEvaluator};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let array = DtmbKind::Dtmb26A.with_primary_count(60);
/// let eval = TrialEvaluator::new(&array, &ReconfigPolicy::AllPrimaries);
/// let mut scratch = eval.scratch();
/// let mut rng = StdRng::seed_from_u64(7);
/// // One trial at 95% cell survival.
/// let tolerable = eval.survival_trial(0.95, &mut rng, &mut scratch);
/// // High survival on a protected array almost always reconfigures.
/// let _ = tolerable;
/// ```
#[derive(Clone, Debug)]
pub struct TrialEvaluator {
    /// In-scope primary cells (primary role ∧ required by the policy), in
    /// region iteration order.
    primaries: Vec<HexCoord>,
    /// Spares adjacent to at least one in-scope primary, sorted.
    spares: Vec<HexCoord>,
    /// CSR offsets into `adj_spares`, length `primaries.len() + 1`.
    adj_offsets: Vec<u32>,
    /// Concatenated adjacent-spare indices per primary.
    adj_spares: Vec<u32>,
}

/// Reusable per-trial buffers for a [`TrialEvaluator`]. Create one per
/// worker thread via [`TrialEvaluator::scratch`].
#[derive(Clone, Debug)]
pub struct TrialScratch {
    /// Uniform draw per in-scope primary (grid mode).
    u_primary: Vec<f64>,
    /// Uniform draw per relevant spare (grid mode).
    u_spare: Vec<f64>,
    faulty_primary: Vec<bool>,
    faulty_spare: Vec<bool>,
    /// Faulty primaries of the current trial (indices into `primaries`).
    rows: Vec<u32>,
    /// Edge list of the current trial's compacted graph.
    edges: Vec<(u32, u32)>,
    /// Generation-stamped spare→column compaction (avoids clearing).
    col_of_spare: Vec<u32>,
    col_gen: Vec<u32>,
    generation: u32,
    graph: BitsetGraph,
    matcher: BitsetMatcher,
}

impl TrialEvaluator {
    /// Builds the evaluator for `array` under `policy`. Cost is one pass
    /// over the array — amortised over every subsequent trial.
    #[must_use]
    pub fn new(array: &DefectTolerantArray, policy: &ReconfigPolicy) -> Self {
        let primaries: Vec<HexCoord> = array.primaries().filter(|c| policy.requires(*c)).collect();
        // Collect and index the spares that border any in-scope primary.
        let mut spares: Vec<HexCoord> = primaries
            .iter()
            .flat_map(|&c| array.adjacent_spares(c))
            .collect();
        spares.sort();
        spares.dedup();
        let spare_index =
            |s: HexCoord| -> u32 { spares.binary_search(&s).expect("spare was collected") as u32 };
        let mut adj_offsets = Vec::with_capacity(primaries.len() + 1);
        let mut adj_spares = Vec::new();
        adj_offsets.push(0u32);
        for &c in &primaries {
            for s in array.adjacent_spares(c) {
                adj_spares.push(spare_index(s));
            }
            adj_offsets.push(adj_spares.len() as u32);
        }
        TrialEvaluator {
            primaries,
            spares,
            adj_offsets,
            adj_spares,
        }
    }

    /// Number of in-scope primary cells.
    #[must_use]
    pub fn primary_count(&self) -> usize {
        self.primaries.len()
    }

    /// Number of spares that can ever participate in a matching.
    #[must_use]
    pub fn spare_count(&self) -> usize {
        self.spares.len()
    }

    /// Number of primary→spare adjacencies in the precomputed structure.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.adj_spares.len()
    }

    /// Allocates a scratch sized for this evaluator. One per worker
    /// thread; reused across all of that worker's trials.
    #[must_use]
    pub fn scratch(&self) -> TrialScratch {
        TrialScratch {
            u_primary: vec![0.0; self.primaries.len()],
            u_spare: vec![0.0; self.spares.len()],
            faulty_primary: vec![false; self.primaries.len()],
            faulty_spare: vec![false; self.spares.len()],
            rows: Vec::with_capacity(self.primaries.len()),
            edges: Vec::with_capacity(self.adj_spares.len()),
            col_of_spare: vec![0; self.spares.len()],
            col_gen: vec![0; self.spares.len()],
            generation: 0,
            graph: BitsetGraph::new(0, 0),
            matcher: BitsetMatcher::new(),
        }
    }

    /// Adjacent spare indices of in-scope primary `i`.
    fn adjacent(&self, i: usize) -> &[u32] {
        &self.adj_spares[self.adj_offsets[i] as usize..self.adj_offsets[i + 1] as usize]
    }

    /// Decides tolerability for the fault flags currently staged in
    /// `scratch.faulty_primary` / `scratch.faulty_spare`.
    fn solve(&self, scratch: &mut TrialScratch) -> bool {
        scratch.rows.clear();
        scratch.edges.clear();
        scratch.generation = scratch.generation.wrapping_add(1);
        if scratch.generation == 0 {
            // u32 wrap-around: stamps from 2^32 solves ago would alias the
            // fresh counter, so invalidate them all and restart at 1.
            scratch.col_gen.iter_mut().for_each(|g| *g = 0);
            scratch.generation = 1;
        }
        let generation = scratch.generation;
        let mut cols = 0u32;
        for (i, &faulty) in scratch.faulty_primary.iter().enumerate() {
            if !faulty {
                continue;
            }
            let row = scratch.rows.len() as u32;
            let mut any = false;
            for &s in self.adjacent(i) {
                if scratch.faulty_spare[s as usize] {
                    continue;
                }
                let col = if scratch.col_gen[s as usize] == generation {
                    scratch.col_of_spare[s as usize]
                } else {
                    scratch.col_gen[s as usize] = generation;
                    scratch.col_of_spare[s as usize] = cols;
                    cols += 1;
                    cols - 1
                };
                scratch.edges.push((row, col));
                any = true;
            }
            if !any {
                // A faulty cell with no live spare can never be matched.
                return false;
            }
            scratch.rows.push(i as u32);
        }
        if scratch.rows.is_empty() {
            return true;
        }
        scratch.graph.reset(scratch.rows.len(), cols as usize);
        for &(a, b) in &scratch.edges {
            scratch.graph.add_edge(a as usize, b as usize);
        }
        scratch.matcher.covers_all_left(&scratch.graph)
    }

    /// Runs one survival-mode trial: every relevant cell fails
    /// independently with probability `1 − p`; returns whether the
    /// resulting chip is tolerable via local reconfiguration.
    ///
    /// The verdict has exactly the same distribution as building a
    /// [`DefectMap`] with `Bernoulli::from_survival(p)` and calling
    /// [`crate::local::is_reconfigurable`]: cells outside the evaluator's
    /// structure (out-of-scope primaries, spares bordering none of them)
    /// cannot change the answer, so their draws are skipped.
    pub fn survival_trial(&self, p: f64, rng: &mut StdRng, scratch: &mut TrialScratch) -> bool {
        for f in scratch.faulty_primary.iter_mut() {
            *f = rng.gen::<f64>() >= p;
        }
        for f in scratch.faulty_spare.iter_mut() {
            *f = rng.gen::<f64>() >= p;
        }
        self.solve(scratch)
    }

    /// Runs one trial against an **entire ascending survival grid**,
    /// writing `out[j] = tolerable at ps[j]` for every grid point.
    ///
    /// One uniform is drawn per relevant cell and shared across the grid
    /// (common random numbers): a cell survives at `p` iff `u < p`, so
    /// fault sets shrink as `p` grows and tolerability is monotone along
    /// the grid. The threshold index is located by binary search —
    /// `O(log k)` matcher calls instead of `k`.
    ///
    /// # Panics
    ///
    /// Panics if `ps` is not sorted ascending or lengths mismatch.
    pub fn survival_trial_grid(
        &self,
        ps: &[f64],
        rng: &mut StdRng,
        scratch: &mut TrialScratch,
        out: &mut [bool],
    ) {
        assert_eq!(ps.len(), out.len(), "grid and output lengths differ");
        assert!(
            ps.windows(2).all(|w| w[0] <= w[1]),
            "survival grid must be ascending"
        );
        for u in scratch.u_primary.iter_mut() {
            *u = rng.gen();
        }
        for u in scratch.u_spare.iter_mut() {
            *u = rng.gen();
        }
        // Binary search the smallest grid index that is tolerable.
        let mut lo = 0usize; // smallest index possibly tolerable
        let mut hi = ps.len(); // everything >= hi known tolerable
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let p = ps[mid];
            for (f, &u) in scratch.faulty_primary.iter_mut().zip(&scratch.u_primary) {
                *f = u >= p;
            }
            for (f, &u) in scratch.faulty_spare.iter_mut().zip(&scratch.u_spare) {
                *f = u >= p;
            }
            if self.solve(scratch) {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        for (j, o) in out.iter_mut().enumerate() {
            *o = j >= lo;
        }
    }

    /// Evaluates an explicit defect map. Same verdict as
    /// [`crate::local::is_reconfigurable`] on the evaluator's array and
    /// policy — used by the equivalence tests and by callers that already
    /// hold a map but want the incremental engine's speed.
    pub fn evaluate_defects(&self, defects: &DefectMap, scratch: &mut TrialScratch) -> bool {
        for (f, &c) in scratch.faulty_primary.iter_mut().zip(&self.primaries) {
            *f = defects.is_faulty(c);
        }
        for (f, &s) in scratch.faulty_spare.iter_mut().zip(&self.spares) {
            *f = defects.is_faulty(s);
        }
        self.solve(scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtmb::DtmbKind;
    use crate::local;
    use rand::SeedableRng;

    fn evaluator(kind: DtmbKind, n: usize) -> (DefectTolerantArray, TrialEvaluator) {
        let array = kind.with_primary_count(n);
        let eval = TrialEvaluator::new(&array, &ReconfigPolicy::AllPrimaries);
        (array, eval)
    }

    #[test]
    fn structure_mirrors_array() {
        let (array, eval) = evaluator(DtmbKind::Dtmb26A, 80);
        assert_eq!(eval.primary_count(), array.primary_count());
        assert!(eval.spare_count() <= array.spare_count());
        assert!(eval.edge_count() > 0);
    }

    #[test]
    fn fault_free_chip_is_tolerable() {
        let (_, eval) = evaluator(DtmbKind::Dtmb44, 40);
        let mut scratch = eval.scratch();
        assert!(eval.evaluate_defects(&DefectMap::new(), &mut scratch));
    }

    #[test]
    fn agrees_with_local_engine_on_random_maps() {
        use rand::seq::SliceRandom;
        for kind in DtmbKind::ALL {
            let array = kind.with_primary_count(60);
            let eval = TrialEvaluator::new(&array, &ReconfigPolicy::AllPrimaries);
            let mut scratch = eval.scratch();
            let cells: Vec<HexCoord> = array.region().iter().collect();
            let mut rng = StdRng::seed_from_u64(0xD7);
            for faults in [0usize, 1, 3, 8, 20, 40] {
                for _ in 0..20 {
                    let mut pick = cells.clone();
                    pick.shuffle(&mut rng);
                    let defects = DefectMap::from_cells(pick.into_iter().take(faults));
                    let expected =
                        local::is_reconfigurable(&array, &defects, &ReconfigPolicy::AllPrimaries);
                    let got = eval.evaluate_defects(&defects, &mut scratch);
                    assert_eq!(got, expected, "{kind} faults={faults}");
                }
            }
        }
    }

    #[test]
    fn survival_extremes() {
        let (_, eval) = evaluator(DtmbKind::Dtmb26A, 60);
        let mut scratch = eval.scratch();
        let mut rng = StdRng::seed_from_u64(3);
        assert!(eval.survival_trial(1.0, &mut rng, &mut scratch));
        assert!(!eval.survival_trial(0.0, &mut rng, &mut scratch));
    }

    #[test]
    fn grid_trials_are_monotone_and_match_threshold() {
        let (_, eval) = evaluator(DtmbKind::Dtmb36, 80);
        let mut scratch = eval.scratch();
        let ps = [0.0, 0.5, 0.8, 0.9, 0.95, 0.99, 1.0];
        let mut out = [false; 7];
        for seed in 0..50 {
            let mut rng = StdRng::seed_from_u64(seed);
            eval.survival_trial_grid(&ps, &mut rng, &mut scratch, &mut out);
            // Monotone: once tolerable, stays tolerable.
            for w in out.windows(2) {
                assert!(w[1] || !w[0], "tolerability must be monotone: {out:?}");
            }
            // p = 1 has no faults at all.
            assert!(out[6]);
        }
    }

    #[test]
    fn policy_scoping_is_respected() {
        use std::collections::BTreeSet;
        let array = DtmbKind::Dtmb26A.with_primary_count(50);
        // Empty scope: nothing is required, chips always pass.
        let eval = TrialEvaluator::new(&array, &ReconfigPolicy::UsedCells(BTreeSet::new()));
        assert_eq!(eval.primary_count(), 0);
        let mut scratch = eval.scratch();
        let all: Vec<HexCoord> = array.region().iter().collect();
        assert!(eval.evaluate_defects(&DefectMap::from_cells(all), &mut scratch));
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn grid_must_be_sorted() {
        let (_, eval) = evaluator(DtmbKind::Dtmb44, 20);
        let mut scratch = eval.scratch();
        let mut rng = StdRng::seed_from_u64(1);
        let mut out = [false; 2];
        eval.survival_trial_grid(&[0.9, 0.5], &mut rng, &mut scratch, &mut out);
    }
}
