//! Incremental Monte-Carlo trial evaluation, generic over the redundancy
//! scheme.
//!
//! The naive hot path rebuilds the world once per trial: inject a
//! [`DefectMap`] (a `BTreeMap` per chip), re-derive which spares border
//! which faulty primaries by walking the lattice, allocate a fresh
//! adjacency-list graph, and run a fresh matcher. Every piece of that
//! except the random fault draw is *identical across trials* of the same
//! array.
//!
//! [`TrialEvaluator`] hoists the invariant part out of the loop. Built
//! once per scheme instance — from a hex `(array, policy)` pair via
//! [`TrialEvaluator::new`], or from **any** [`RedundancyScheme`] over any
//! [`Topology`] via [`TrialEvaluator::for_scheme`] —
//! it stores the compiled [`SchemeStructure`] in CSR form: the relevant
//! cells, the replaceable *units* (primary cells, or module rows for the
//! spare-row baseline), the spare *resources*, and the unit→resource
//! adjacency. A trial then only (a) draws one uniform per relevant cell,
//! (b) aggregates them into per-unit/per-resource fault flags, and
//! (c) runs the bitset Hopcroft–Karp from `dmfb-graph` over a reusable
//! [`BitsetGraph`] — no maps, no lattice walks, no allocations after
//! warm-up.
//!
//! The evaluator also answers a whole survival-probability **grid** per
//! trial ([`TrialEvaluator::survival_trial_grid`]): with common random
//! numbers (a cell survives at `p` iff its uniform `u < p`), the fault
//! sets are nested along the grid, tolerability is monotone in `p`, and a
//! binary search finds the tolerability threshold in `O(log k)` matcher
//! calls — one Monte-Carlo pass serves an entire yield curve, for every
//! scheme alike.

use crate::array::DefectTolerantArray;
use crate::local::{ReconfigPlan, ReconfigPolicy};
use crate::scheme::{RedundancyScheme, SchemeStructure};
use dmfb_defects::DefectMap;
use dmfb_graph::{BitsetGraph, BitsetMatcher};
use dmfb_grid::{HexCoord, Topology};
use rand::rngs::StdRng;
use rand::Rng;

/// Precomputed matching structure for one scheme instance, reused across
/// all Monte-Carlo trials.
///
/// All methods take `&self`; per-trial mutable state lives in a
/// [`TrialScratch`] so one evaluator can be shared across worker threads
/// (hand each worker its own scratch from [`TrialEvaluator::scratch`]).
///
/// # Example
///
/// ```
/// use dmfb_reconfig::dtmb::DtmbKind;
/// use dmfb_reconfig::{ReconfigPolicy, TrialEvaluator};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let array = DtmbKind::Dtmb26A.with_primary_count(60);
/// let eval = TrialEvaluator::new(&array, &ReconfigPolicy::AllPrimaries);
/// let mut scratch = eval.scratch();
/// let mut rng = StdRng::seed_from_u64(7);
/// // One trial at 95% cell survival.
/// let tolerable = eval.survival_trial(0.95, &mut rng, &mut scratch);
/// // High survival on a protected array almost always reconfigures.
/// let _ = tolerable;
/// ```
///
/// The same engine runs non-hex schemes:
///
/// ```
/// use dmfb_grid::SquareRegion;
/// use dmfb_reconfig::{RedundancyScheme, SquarePattern, TrialEvaluator};
///
/// let region = SquareRegion::rect(12, 12);
/// let eval = TrialEvaluator::for_scheme(&region, &SquarePattern::Stripes);
/// assert!(eval.unit_count() > 0);
/// ```
#[derive(Clone, Debug)]
pub struct TrialEvaluator<C = HexCoord> {
    /// Distinct relevant cells, sorted; index space for fault draws.
    pub(crate) cells: Vec<C>,
    /// CSR offsets into `unit_cells`, length `unit_count + 1`.
    pub(crate) unit_offsets: Vec<u32>,
    /// Concatenated member-cell indices per unit.
    pub(crate) unit_cells: Vec<u32>,
    /// CSR offsets into `res_cells`, length `resource_count + 1`.
    pub(crate) res_offsets: Vec<u32>,
    /// Concatenated member-cell indices per resource (an empty slice means
    /// the resource is indestructible).
    pub(crate) res_cells: Vec<u32>,
    /// CSR offsets into `adj_res`, length `unit_count + 1`.
    pub(crate) adj_offsets: Vec<u32>,
    /// Concatenated candidate-resource indices per unit.
    pub(crate) adj_res: Vec<u32>,
}

/// Reusable per-trial buffers for a [`TrialEvaluator`]. Create one per
/// worker thread via [`TrialEvaluator::scratch`].
#[derive(Clone, Debug)]
pub struct TrialScratch {
    /// Uniform draw per relevant cell (grid and survival modes).
    pub(crate) u_cell: Vec<f64>,
    /// Max member-cell uniform per unit: the unit is faulty at survival
    /// `p` iff this is `>= p`.
    pub(crate) unit_u: Vec<f64>,
    /// Max member-cell uniform per resource (`-1.0` for indestructible
    /// resources, which never fail).
    pub(crate) res_u: Vec<f64>,
    pub(crate) faulty_unit: Vec<bool>,
    pub(crate) dead_res: Vec<bool>,
    /// Faulty units of the current trial (indices into the unit space).
    pub(crate) rows: Vec<u32>,
    /// Edge list of the current trial's compacted graph.
    pub(crate) edges: Vec<(u32, u32)>,
    /// Generation-stamped resource→column compaction (avoids clearing).
    pub(crate) col_of_res: Vec<u32>,
    pub(crate) col_gen: Vec<u32>,
    pub(crate) generation: u32,
    /// Inverse of `col_of_res` for the current trial: the resource index
    /// behind each compacted column (needed to read assignments back).
    pub(crate) res_of_col: Vec<u32>,
    /// Cell-index permutation buffer for exact-`k` fault sampling
    /// ([`TrialEvaluator::exact_fault_trial`]); reset to the identity at
    /// the start of every such trial so results never depend on which
    /// trials a worker ran before.
    pub(crate) perm: Vec<u32>,
    pub(crate) graph: BitsetGraph,
    pub(crate) matcher: BitsetMatcher,
}

impl TrialEvaluator<HexCoord> {
    /// Builds the evaluator for a hexagonal DTMB `array` under `policy`.
    /// Cost is one pass over the array — amortised over every subsequent
    /// trial. Units are the in-scope primaries; resources are the spares
    /// bordering at least one of them.
    #[must_use]
    pub fn new(array: &DefectTolerantArray, policy: &ReconfigPolicy) -> Self {
        let mut s = SchemeStructure::new();
        let mut res_index = std::collections::BTreeMap::new();
        for c in array.primaries().filter(|c| policy.requires(*c)) {
            let unit = s.add_unit([c]);
            for spare in array.adjacent_spares(c) {
                let resource = match res_index.get(&spare) {
                    Some(&r) => r,
                    None => {
                        let r = s.add_resource([spare]);
                        res_index.insert(spare, r);
                        r
                    }
                };
                s.connect(unit, resource);
            }
        }
        TrialEvaluator::from_structure(&s)
    }

    /// Evaluates `defects` and, when the chip is tolerable, returns the
    /// concrete [`ReconfigPlan`] behind the verdict — the per-trial
    /// assignment consumers like the operational-yield engine need to
    /// remap chip resources onto spares. Distribution-identical to
    /// [`crate::local::attempt_reconfiguration`] succeeding (both read a
    /// maximum matching of the same bipartite model), but runs through the
    /// evaluator's reusable buffers.
    ///
    /// # Panics
    ///
    /// Panics if the evaluator was built from a structure with multi-cell
    /// units or resources (hex evaluators from [`TrialEvaluator::new`] and
    /// DTMB [`RedundancyScheme`]s are always cell-level).
    pub fn reconfigure(
        &self,
        defects: &DefectMap,
        scratch: &mut TrialScratch,
    ) -> Option<ReconfigPlan> {
        let pairs = self.evaluate_defects_assignment(defects, scratch)?;
        Some(ReconfigPlan::from_assignments(pairs.into_iter().map(
            |(u, r)| {
                let unit = self.unit_members(u);
                let res = self.res_members(r);
                assert!(
                    unit.len() == 1 && res.len() == 1,
                    "reconfigure requires a cell-level scheme structure"
                );
                (self.cells[unit[0] as usize], self.cells[res[0] as usize])
            },
        )))
    }
}

impl<C: Copy + Ord> TrialEvaluator<C> {
    /// Builds the evaluator for any scheme over any topology — the one
    /// fast engine behind hex DTMB, square DTMB and spare-row sweeps.
    #[must_use]
    pub fn for_scheme<T>(topo: &T, scheme: &impl RedundancyScheme<T>) -> Self
    where
        T: Topology<Coord = C>,
    {
        TrialEvaluator::from_structure(&scheme.compile(topo))
    }

    /// Compiles a [`SchemeStructure`] into CSR form.
    #[must_use]
    pub fn from_structure(structure: &SchemeStructure<C>) -> Self {
        let mut cells: Vec<C> = (0..structure.unit_count())
            .flat_map(|i| structure.unit_cells(i).iter().copied())
            .chain(
                (0..structure.resource_count())
                    .flat_map(|j| structure.resource_cells(j).iter().copied()),
            )
            .collect();
        cells.sort_unstable();
        cells.dedup();
        let cell_index =
            |c: &C| -> u32 { cells.binary_search(c).expect("cell was collected") as u32 };
        let mut unit_offsets = Vec::with_capacity(structure.unit_count() + 1);
        let mut unit_cells = Vec::new();
        unit_offsets.push(0u32);
        for i in 0..structure.unit_count() {
            unit_cells.extend(structure.unit_cells(i).iter().map(&cell_index));
            unit_offsets.push(unit_cells.len() as u32);
        }
        let mut res_offsets = Vec::with_capacity(structure.resource_count() + 1);
        let mut res_cells = Vec::new();
        res_offsets.push(0u32);
        for j in 0..structure.resource_count() {
            res_cells.extend(structure.resource_cells(j).iter().map(&cell_index));
            res_offsets.push(res_cells.len() as u32);
        }
        let mut adj_offsets = Vec::with_capacity(structure.unit_count() + 1);
        let mut adj_res = Vec::new();
        adj_offsets.push(0u32);
        for i in 0..structure.unit_count() {
            adj_res.extend_from_slice(structure.adjacent_resources(i));
            adj_offsets.push(adj_res.len() as u32);
        }
        TrialEvaluator {
            cells,
            unit_offsets,
            unit_cells,
            res_offsets,
            res_cells,
            adj_offsets,
            adj_res,
        }
    }

    /// Number of replaceable units (for cell-level schemes: the in-scope
    /// primary cells).
    #[must_use]
    pub fn unit_count(&self) -> usize {
        self.unit_offsets.len() - 1
    }

    /// Number of spare resources that can ever participate in a matching.
    #[must_use]
    pub fn resource_count(&self) -> usize {
        self.res_offsets.len() - 1
    }

    /// Number of in-scope primary cells — hex-flavoured alias of
    /// [`TrialEvaluator::unit_count`].
    #[must_use]
    pub fn primary_count(&self) -> usize {
        self.unit_count()
    }

    /// Number of relevant spares — hex-flavoured alias of
    /// [`TrialEvaluator::resource_count`].
    #[must_use]
    pub fn spare_count(&self) -> usize {
        self.resource_count()
    }

    /// Number of distinct cells whose fault state the evaluator samples.
    #[must_use]
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Number of unit→resource adjacencies in the precomputed structure.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.adj_res.len()
    }

    /// Largest fault count that is **provably** tolerable on this
    /// structure, placement-independent: any fault set of at most this
    /// many cells can always be reconfigured.
    ///
    /// The bound is Hall-theoretic. Let `d_min` be the minimum number of
    /// candidate resources over all units. For any fault set `F` with
    /// `|F| ≤ d_min` (unit and resource member cells being disjoint), the
    /// faulty units `A` and dead resources `R` satisfy `|A| + |R| ≤ d_min`,
    /// and every subset `B ⊆ A` has `|N(B) \ R| ≥ d_min − |R| ≥ |B|` — so
    /// Hall's condition holds and a full matching exists. Degenerate
    /// cases: no units at all means *every* fault set is tolerable (the
    /// cell count is returned); a unit sharing a member cell with a
    /// resource voids the disjointness argument and the bound collapses
    /// to 0 (none of the shipped schemes do this).
    ///
    /// The defect-count-stratified estimator uses this to resolve
    /// low-count strata exactly instead of sampling them.
    #[must_use]
    pub fn guaranteed_tolerable_faults(&self) -> usize {
        if self.unit_count() == 0 {
            return self.cells.len();
        }
        let mut in_unit = vec![false; self.cells.len()];
        for &c in &self.unit_cells {
            in_unit[c as usize] = true;
        }
        if self.res_cells.iter().any(|&c| in_unit[c as usize]) {
            return 0;
        }
        (0..self.unit_count())
            .map(|i| self.adjacent(i).len())
            .min()
            .unwrap_or(0)
    }

    /// Allocates a scratch sized for this evaluator. One per worker
    /// thread; reused across all of that worker's trials.
    #[must_use]
    pub fn scratch(&self) -> TrialScratch {
        TrialScratch {
            u_cell: vec![0.0; self.cells.len()],
            unit_u: vec![0.0; self.unit_count()],
            res_u: vec![0.0; self.resource_count()],
            faulty_unit: vec![false; self.unit_count()],
            dead_res: vec![false; self.resource_count()],
            rows: Vec::with_capacity(self.unit_count()),
            edges: Vec::with_capacity(self.adj_res.len()),
            col_of_res: vec![0; self.resource_count()],
            col_gen: vec![0; self.resource_count()],
            generation: 0,
            res_of_col: Vec::with_capacity(self.resource_count()),
            perm: (0..self.cells.len() as u32).collect(),
            graph: BitsetGraph::new(0, 0),
            matcher: BitsetMatcher::new(),
        }
    }

    /// Member-cell indices of unit `i`.
    pub(crate) fn unit_members(&self, i: usize) -> &[u32] {
        &self.unit_cells[self.unit_offsets[i] as usize..self.unit_offsets[i + 1] as usize]
    }

    /// Member-cell indices of resource `j`.
    pub(crate) fn res_members(&self, j: usize) -> &[u32] {
        &self.res_cells[self.res_offsets[j] as usize..self.res_offsets[j + 1] as usize]
    }

    /// Candidate resource indices of unit `i`.
    pub(crate) fn adjacent(&self, i: usize) -> &[u32] {
        &self.adj_res[self.adj_offsets[i] as usize..self.adj_offsets[i + 1] as usize]
    }

    /// Folds the per-cell uniforms in `scratch.u_cell` into per-unit and
    /// per-resource maxima, so thresholding against any survival `p` is
    /// `O(units + resources)`.
    fn aggregate_uniforms(&self, scratch: &mut TrialScratch) {
        for i in 0..self.unit_count() {
            scratch.unit_u[i] = self
                .unit_members(i)
                .iter()
                .map(|&c| scratch.u_cell[c as usize])
                .fold(f64::NEG_INFINITY, f64::max);
        }
        for j in 0..self.resource_count() {
            // Indestructible resources (no member cells) aggregate to -1,
            // which never reaches any survival threshold in [0, 1].
            scratch.res_u[j] = self
                .res_members(j)
                .iter()
                .map(|&c| scratch.u_cell[c as usize])
                .fold(-1.0, f64::max);
        }
    }

    /// Stages fault flags for survival probability `p` from the aggregated
    /// uniforms (a cell fails iff its uniform `u >= p`).
    fn threshold(&self, p: f64, scratch: &mut TrialScratch) {
        for (f, &u) in scratch.faulty_unit.iter_mut().zip(&scratch.unit_u) {
            *f = u >= p;
        }
        for (d, &u) in scratch.dead_res.iter_mut().zip(&scratch.res_u) {
            *d = u >= p;
        }
    }

    /// Decides tolerability for the fault flags currently staged in
    /// `scratch.faulty_unit` / `scratch.dead_res`.
    pub(crate) fn solve(&self, scratch: &mut TrialScratch) -> bool {
        scratch.rows.clear();
        scratch.edges.clear();
        scratch.res_of_col.clear();
        scratch.generation = scratch.generation.wrapping_add(1);
        if scratch.generation == 0 {
            // u32 wrap-around: stamps from 2^32 solves ago would alias the
            // fresh counter, so invalidate them all and restart at 1.
            scratch.col_gen.iter_mut().for_each(|g| *g = 0);
            scratch.generation = 1;
        }
        let generation = scratch.generation;
        let mut cols = 0u32;
        for (i, &faulty) in scratch.faulty_unit.iter().enumerate() {
            if !faulty {
                continue;
            }
            let row = scratch.rows.len() as u32;
            let mut any = false;
            for &r in self.adjacent(i) {
                if scratch.dead_res[r as usize] {
                    continue;
                }
                let col = if scratch.col_gen[r as usize] == generation {
                    scratch.col_of_res[r as usize]
                } else {
                    scratch.col_gen[r as usize] = generation;
                    scratch.col_of_res[r as usize] = cols;
                    scratch.res_of_col.push(r);
                    cols += 1;
                    cols - 1
                };
                scratch.edges.push((row, col));
                any = true;
            }
            if !any {
                // A faulty unit with no live resource can never be matched.
                return false;
            }
            scratch.rows.push(i as u32);
        }
        if scratch.rows.is_empty() {
            return true;
        }
        scratch.graph.reset(scratch.rows.len(), cols as usize);
        for &(a, b) in &scratch.edges {
            scratch.graph.add_edge(a as usize, b as usize);
        }
        scratch.matcher.covers_all_left(&scratch.graph)
    }

    /// Runs one survival-mode trial: every relevant cell fails
    /// independently with probability `1 − p`; returns whether the
    /// resulting chip is tolerable under the scheme's reconfiguration
    /// semantics.
    ///
    /// For hex arrays the verdict has exactly the same distribution as
    /// building a [`DefectMap`] with `Bernoulli::from_survival(p)` and
    /// calling [`crate::local::is_reconfigurable`]: cells outside the
    /// evaluator's structure (out-of-scope primaries, spares bordering
    /// none of them) cannot change the answer, so their draws are skipped.
    pub fn survival_trial(&self, p: f64, rng: &mut StdRng, scratch: &mut TrialScratch) -> bool {
        for u in scratch.u_cell.iter_mut() {
            *u = rng.gen();
        }
        self.aggregate_uniforms(scratch);
        self.threshold(p, scratch);
        self.solve(scratch)
    }

    /// Runs one trial against an **entire ascending survival grid**,
    /// writing `out[j] = tolerable at ps[j]` for every grid point.
    ///
    /// One uniform is drawn per relevant cell and shared across the grid
    /// (common random numbers): a cell survives at `p` iff `u < p`, so
    /// fault sets shrink as `p` grows and tolerability is monotone along
    /// the grid. The threshold index is located by binary search —
    /// `O(log k)` matcher calls instead of `k`.
    ///
    /// # Panics
    ///
    /// Panics if `ps` is not sorted ascending or lengths mismatch.
    pub fn survival_trial_grid(
        &self,
        ps: &[f64],
        rng: &mut StdRng,
        scratch: &mut TrialScratch,
        out: &mut [bool],
    ) {
        assert_eq!(ps.len(), out.len(), "grid and output lengths differ");
        assert!(
            ps.windows(2).all(|w| w[0] <= w[1]),
            "survival grid must be ascending"
        );
        for u in scratch.u_cell.iter_mut() {
            *u = rng.gen();
        }
        self.aggregate_uniforms(scratch);
        // Binary search the smallest grid index that is tolerable.
        let mut lo = 0usize; // smallest index possibly tolerable
        let mut hi = ps.len(); // everything >= hi known tolerable
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            self.threshold(ps[mid], scratch);
            if self.solve(scratch) {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        for (j, o) in out.iter_mut().enumerate() {
            *o = j >= lo;
        }
    }

    /// Runs one **exact-fault-count** trial: exactly `faults` of the
    /// evaluator's relevant cells fail, chosen uniformly without
    /// replacement; returns whether the resulting chip is tolerable.
    ///
    /// This is the per-stratum sampler behind the defect-count-stratified
    /// rare-event estimator: conditioning on `K = k` failures turns the
    /// survival probability into `Σₖ P(K=k)·P(survive | K=k)`, and this
    /// method samples the conditional term. The verdict distribution
    /// matches `ExactCount::inject_in` over the evaluator's cell set,
    /// but the placement is drawn by a partial Fisher–Yates shuffle over
    /// a reusable scratch permutation — no per-trial allocation. The
    /// permutation is reset to the identity each call, so results depend
    /// only on the RNG state, never on scratch history (thread-count
    /// invariance).
    ///
    /// # Panics
    ///
    /// Panics if `faults` exceeds the evaluator's relevant-cell count.
    pub fn exact_fault_trial(
        &self,
        faults: usize,
        rng: &mut StdRng,
        scratch: &mut TrialScratch,
    ) -> bool {
        let n = self.cells.len();
        assert!(
            faults <= n,
            "cannot inject {faults} faults into a {n}-cell structure"
        );
        for (i, slot) in scratch.perm.iter_mut().enumerate() {
            *slot = i as u32;
        }
        for u in scratch.u_cell.iter_mut() {
            *u = 0.0;
        }
        for i in 0..faults {
            let j = rng.gen_range(i..n);
            scratch.perm.swap(i, j);
            scratch.u_cell[scratch.perm[i] as usize] = 1.0;
        }
        self.stage_marked_cells(scratch);
        self.solve(scratch)
    }

    /// Evaluates an explicit defect map. For hex arrays this gives the
    /// same verdict as [`crate::local::is_reconfigurable`] on the
    /// evaluator's array and policy — used by the equivalence tests and by
    /// callers that already hold a map but want the incremental engine's
    /// speed.
    pub fn evaluate_defects(&self, defects: &DefectMap<C>, scratch: &mut TrialScratch) -> bool {
        self.stage_cell_faults(scratch, |c| defects.is_faulty(c));
        self.solve(scratch)
    }

    /// Evaluates an explicit faulty-cell list (cells outside the
    /// evaluator's structure are ignored, mirroring the legacy oracles).
    pub fn evaluate_faulty_cells(&self, faulty: &[C], scratch: &mut TrialScratch) -> bool {
        let mut sorted: Vec<C> = faulty.to_vec();
        sorted.sort_unstable();
        self.stage_cell_faults(scratch, |c| sorted.binary_search(&c).is_ok());
        self.solve(scratch)
    }

    /// Like [`TrialEvaluator::evaluate_defects`], but on success returns
    /// the **assignment** the matcher found: one `(unit, resource)` index
    /// pair per faulty unit, in ascending unit order. `None` means the
    /// fault set is not tolerable. Map the indices back to lattice cells
    /// with [`TrialEvaluator::unit_coords`] /
    /// [`TrialEvaluator::resource_coords`], or — for hexagonal cell-level
    /// evaluators — use [`TrialEvaluator::reconfigure`] to get a
    /// [`ReconfigPlan`] directly.
    pub fn evaluate_defects_assignment(
        &self,
        defects: &DefectMap<C>,
        scratch: &mut TrialScratch,
    ) -> Option<Vec<(usize, usize)>> {
        self.stage_cell_faults(scratch, |c| defects.is_faulty(c));
        self.solve_assignment(scratch)
    }

    /// Assignment-returning variant of
    /// [`TrialEvaluator::evaluate_faulty_cells`].
    pub fn evaluate_faulty_cells_assignment(
        &self,
        faulty: &[C],
        scratch: &mut TrialScratch,
    ) -> Option<Vec<(usize, usize)>> {
        let mut sorted: Vec<C> = faulty.to_vec();
        sorted.sort_unstable();
        self.stage_cell_faults(scratch, |c| sorted.binary_search(&c).is_ok());
        self.solve_assignment(scratch)
    }

    /// Runs the matcher on the staged fault flags and reads the assignment
    /// back through the trial's row/column compaction tables.
    fn solve_assignment(&self, scratch: &mut TrialScratch) -> Option<Vec<(usize, usize)>> {
        if !self.solve(scratch) {
            return None;
        }
        if scratch.rows.is_empty() {
            // Fault-free (or out-of-scope) trial: `solve` succeeded without
            // consulting the matcher, whose pairs may be stale.
            return Some(Vec::new());
        }
        let mut pairs: Vec<(usize, usize)> = scratch
            .matcher
            .left_pairs()
            .map(|(row, col)| (scratch.rows[row] as usize, scratch.res_of_col[col] as usize))
            .collect();
        pairs.sort_unstable();
        Some(pairs)
    }

    /// The lattice cells making up unit `i` (one cell for interstitial
    /// schemes; a whole module row for the spare-row baseline).
    pub fn unit_coords(&self, i: usize) -> impl Iterator<Item = C> + '_ {
        self.unit_members(i).iter().map(|&c| self.cells[c as usize])
    }

    /// The lattice cells making up resource `j` (empty for indestructible
    /// resources such as legacy spare rows).
    pub fn resource_coords(&self, j: usize) -> impl Iterator<Item = C> + '_ {
        self.res_members(j).iter().map(|&c| self.cells[c as usize])
    }

    /// Member-cell count of each unit, in unit order.
    pub fn unit_cell_counts(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.unit_count()).map(|i| self.unit_members(i).len())
    }

    /// Member-cell count of each resource, in resource order (zero for
    /// indestructible resources).
    pub fn resource_cell_counts(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.resource_count()).map(|j| self.res_members(j).len())
    }

    /// Whether any lattice cell belongs to two different units. The
    /// shipped schemes all keep units disjoint (each primary cell or
    /// module row belongs to exactly one unit), which is what makes the
    /// exact survival bounds below valid.
    fn units_overlap(&self) -> bool {
        let mut seen = vec![false; self.cells.len()];
        for &c in &self.unit_cells {
            if seen[c as usize] {
                return true;
            }
            seen[c as usize] = true;
        }
        false
    }

    /// **Exact** upper bound on the survival yield at cell-survival
    /// probability `p`, computed without sampling.
    ///
    /// A trial survives only if every faulty unit is matched to a
    /// distinct spare resource, so Hall's condition gives the necessary
    /// count bound `#faulty units ≤ resource_count`. Units have disjoint
    /// member-cell sets on every shipped scheme, so unit faults are
    /// independent `Bernoulli(1 − p^|unit|)` variables and the bound is
    /// the Poisson-binomial tail `P(X ≤ resource_count)`, evaluated by a
    /// truncated convolution in `O(units × resources)`.
    ///
    /// The design-space search uses this to prune candidates whose bound
    /// already falls below the target yield before spending any trials.
    /// Degenerate cases: with no units every trial survives (bound 1);
    /// if units ever shared cells the independence argument would break,
    /// so the bound degrades to the vacuous 1.
    #[must_use]
    pub fn survival_upper_bound(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        if self.unit_count() == 0 {
            return 1.0;
        }
        if self.units_overlap() {
            return 1.0;
        }
        let cap = self.resource_count();
        // dist[k] = P(exactly k faulty units among those processed), for
        // k ≤ cap; mass beyond cap is dropped (it only ever leaves the
        // survivable region, so the retained sum is exactly P(X ≤ cap)).
        let mut dist = vec![0.0f64; cap + 1];
        dist[0] = 1.0;
        let mut filled = 0usize;
        for size in self.unit_cell_counts() {
            let q = 1.0 - p.powi(i32::try_from(size).expect("unit size fits i32"));
            filled = (filled + 1).min(cap);
            for k in (0..=filled).rev() {
                let stay = dist[k] * (1.0 - q);
                let rise = if k > 0 { dist[k - 1] * q } else { 0.0 };
                dist[k] = stay + rise;
            }
        }
        dist.iter().sum::<f64>().min(1.0)
    }

    /// **Exact** lower bound on the survival yield at cell-survival
    /// probability `p`: any fault set of at most
    /// [`TrialEvaluator::guaranteed_tolerable_faults`] cells is
    /// reconfigurable regardless of placement, so the chip survives at
    /// least whenever the binomial fault count stays under that bound —
    /// `P(Binomial(cell_count, 1 − p) ≤ g)`, summed in log space for
    /// numerical stability on large arrays.
    #[must_use]
    pub fn survival_lower_bound(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        let n = self.cell_count();
        let g = self.guaranteed_tolerable_faults();
        if g >= n {
            return 1.0;
        }
        if p == 0.0 {
            return 0.0;
        }
        if p == 1.0 {
            return 1.0;
        }
        let (ln_p, ln_q) = (p.ln(), (1.0 - p).ln());
        let mut ln_choose = 0.0f64; // ln C(n, 0)
        let mut total = 0.0f64;
        for k in 0..=g {
            if k > 0 {
                ln_choose += ((n - k + 1) as f64).ln() - (k as f64).ln();
            }
            total += (ln_choose + k as f64 * ln_q + (n - k) as f64 * ln_p).exp();
        }
        total.min(1.0)
    }

    /// Stages per-unit/per-resource fault flags from a per-cell fault
    /// predicate.
    fn stage_cell_faults(&self, scratch: &mut TrialScratch, mut is_faulty: impl FnMut(C) -> bool) {
        for (u, &c) in scratch.u_cell.iter_mut().zip(&self.cells) {
            *u = if is_faulty(c) { 1.0 } else { 0.0 };
        }
        self.stage_marked_cells(scratch);
    }

    /// Folds the 0/1 fault markers currently in `scratch.u_cell` into the
    /// per-unit/per-resource fault flags.
    fn stage_marked_cells(&self, scratch: &mut TrialScratch) {
        for i in 0..self.unit_count() {
            scratch.faulty_unit[i] = self
                .unit_members(i)
                .iter()
                .any(|&c| scratch.u_cell[c as usize] == 1.0);
        }
        for j in 0..self.resource_count() {
            scratch.dead_res[j] = self
                .res_members(j)
                .iter()
                .any(|&c| scratch.u_cell[c as usize] == 1.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtmb::DtmbKind;
    use crate::local;
    use rand::SeedableRng;

    fn evaluator(kind: DtmbKind, n: usize) -> (DefectTolerantArray, TrialEvaluator) {
        let array = kind.with_primary_count(n);
        let eval = TrialEvaluator::new(&array, &ReconfigPolicy::AllPrimaries);
        (array, eval)
    }

    #[test]
    fn structure_mirrors_array() {
        let (array, eval) = evaluator(DtmbKind::Dtmb26A, 80);
        assert_eq!(eval.primary_count(), array.primary_count());
        assert!(eval.spare_count() <= array.spare_count());
        assert!(eval.edge_count() > 0);
        assert_eq!(eval.cell_count(), eval.primary_count() + eval.spare_count());
    }

    #[test]
    fn fault_free_chip_is_tolerable() {
        let (_, eval) = evaluator(DtmbKind::Dtmb44, 40);
        let mut scratch = eval.scratch();
        assert!(eval.evaluate_defects(&DefectMap::new(), &mut scratch));
    }

    #[test]
    fn agrees_with_local_engine_on_random_maps() {
        use rand::seq::SliceRandom;
        for kind in DtmbKind::ALL {
            let array = kind.with_primary_count(60);
            let eval = TrialEvaluator::new(&array, &ReconfigPolicy::AllPrimaries);
            let mut scratch = eval.scratch();
            let cells: Vec<HexCoord> = array.region().iter().collect();
            let mut rng = StdRng::seed_from_u64(0xD7);
            for faults in [0usize, 1, 3, 8, 20, 40] {
                for _ in 0..20 {
                    let mut pick = cells.clone();
                    pick.shuffle(&mut rng);
                    let defects = DefectMap::from_cells(pick.into_iter().take(faults));
                    let expected =
                        local::is_reconfigurable(&array, &defects, &ReconfigPolicy::AllPrimaries);
                    let got = eval.evaluate_defects(&defects, &mut scratch);
                    assert_eq!(got, expected, "{kind} faults={faults}");
                }
            }
        }
    }

    #[test]
    fn survival_extremes() {
        let (_, eval) = evaluator(DtmbKind::Dtmb26A, 60);
        let mut scratch = eval.scratch();
        let mut rng = StdRng::seed_from_u64(3);
        assert!(eval.survival_trial(1.0, &mut rng, &mut scratch));
        assert!(!eval.survival_trial(0.0, &mut rng, &mut scratch));
    }

    #[test]
    fn grid_trials_are_monotone_and_match_threshold() {
        let (_, eval) = evaluator(DtmbKind::Dtmb36, 80);
        let mut scratch = eval.scratch();
        let ps = [0.0, 0.5, 0.8, 0.9, 0.95, 0.99, 1.0];
        let mut out = [false; 7];
        for seed in 0..50 {
            let mut rng = StdRng::seed_from_u64(seed);
            eval.survival_trial_grid(&ps, &mut rng, &mut scratch, &mut out);
            // Monotone: once tolerable, stays tolerable.
            for w in out.windows(2) {
                assert!(w[1] || !w[0], "tolerability must be monotone: {out:?}");
            }
            // p = 1 has no faults at all.
            assert!(out[6]);
        }
    }

    #[test]
    fn policy_scoping_is_respected() {
        use std::collections::BTreeSet;
        let array = DtmbKind::Dtmb26A.with_primary_count(50);
        // Empty scope: nothing is required, chips always pass.
        let eval = TrialEvaluator::new(&array, &ReconfigPolicy::UsedCells(BTreeSet::new()));
        assert_eq!(eval.primary_count(), 0);
        let mut scratch = eval.scratch();
        let all: Vec<HexCoord> = array.region().iter().collect();
        assert!(eval.evaluate_defects(&DefectMap::from_cells(all), &mut scratch));
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn grid_must_be_sorted() {
        let (_, eval) = evaluator(DtmbKind::Dtmb44, 20);
        let mut scratch = eval.scratch();
        let mut rng = StdRng::seed_from_u64(1);
        let mut out = [false; 2];
        eval.survival_trial_grid(&[0.9, 0.5], &mut rng, &mut scratch, &mut out);
    }

    #[test]
    fn exact_fault_trials_hit_extremes_and_match_oracle_rates() {
        let (_, eval) = evaluator(DtmbKind::Dtmb26A, 60);
        let mut scratch = eval.scratch();
        let n = eval.cell_count();
        let mut rng = StdRng::seed_from_u64(0xEF);
        // Zero faults always tolerable; every cell faulty never is (the
        // structure has required units).
        assert!(eval.exact_fault_trial(0, &mut rng, &mut scratch));
        assert!(!eval.exact_fault_trial(n, &mut rng, &mut scratch));
        // The per-k success rate must match evaluate_faulty_cells over
        // ExactCount-style draws (same distribution, different streams).
        use rand::seq::SliceRandom;
        for k in [1usize, 3, 6] {
            let trials = 400;
            let mut fast = 0u32;
            for _ in 0..trials {
                fast += u32::from(eval.exact_fault_trial(k, &mut rng, &mut scratch));
            }
            // Reference: shuffle the evaluator's cell universe directly.
            let universe: Vec<HexCoord> = (0..eval.unit_count())
                .flat_map(|i| eval.unit_coords(i))
                .chain((0..eval.resource_count()).flat_map(|j| eval.resource_coords(j)))
                .collect();
            let mut slow = 0u32;
            for _ in 0..trials {
                let mut pick = universe.clone();
                pick.shuffle(&mut rng);
                pick.truncate(k);
                slow += u32::from(eval.evaluate_faulty_cells(&pick, &mut scratch));
            }
            let (f, s) = (f64::from(fast) / 400.0, f64::from(slow) / 400.0);
            assert!((f - s).abs() < 0.12, "k={k}: fast {f} vs slow {s}");
        }
    }

    #[test]
    fn exact_fault_trial_is_scratch_history_independent() {
        // The same RNG state must produce the same verdict regardless of
        // what the scratch was used for before.
        let (_, eval) = evaluator(DtmbKind::Dtmb36, 50);
        let mut fresh = eval.scratch();
        let mut used = eval.scratch();
        let mut rng_warm = StdRng::seed_from_u64(1);
        for k in [0usize, 2, 9, 5] {
            let _ = eval.exact_fault_trial(k, &mut rng_warm, &mut used);
        }
        for seed in 0..20 {
            let mut a = StdRng::seed_from_u64(seed);
            let mut b = StdRng::seed_from_u64(seed);
            assert_eq!(
                eval.exact_fault_trial(4, &mut a, &mut fresh),
                eval.exact_fault_trial(4, &mut b, &mut used),
                "seed={seed}"
            );
        }
    }

    #[test]
    fn guaranteed_tolerable_bound_is_sound() {
        use crate::square_dtmb::SquarePattern;
        use dmfb_grid::SquareRegion;
        // Every scheme: any fault set of size <= bound must be tolerable.
        let check = |eval: &TrialEvaluator<dmfb_grid::SquareCoord>, label: &str| {
            let bound = eval.guaranteed_tolerable_faults();
            let mut scratch = eval.scratch();
            let mut rng = StdRng::seed_from_u64(0xB0);
            for k in 0..=bound.min(eval.cell_count()) {
                for _ in 0..200 {
                    assert!(
                        eval.exact_fault_trial(k, &mut rng, &mut scratch),
                        "{label}: {k} faults must be tolerable (bound {bound})"
                    );
                }
            }
        };
        let region = SquareRegion::rect(8, 8);
        for pattern in SquarePattern::ALL {
            let eval = TrialEvaluator::for_scheme(&region, &pattern);
            check(&eval, &format!("{pattern}"));
        }
        // Hex DTMB designs through the policy constructor.
        for kind in DtmbKind::ALL {
            let (_, eval) = evaluator(kind, 60);
            let bound = eval.guaranteed_tolerable_faults();
            let mut scratch = eval.scratch();
            let mut rng = StdRng::seed_from_u64(0xB1);
            for k in 0..=bound {
                for _ in 0..200 {
                    assert!(
                        eval.exact_fault_trial(k, &mut rng, &mut scratch),
                        "{kind}: {k} faults must be tolerable (bound {bound})"
                    );
                }
            }
            assert!(bound >= 1, "{kind}: every primary borders a spare");
        }
        // No units at all: everything is tolerable.
        use std::collections::BTreeSet;
        let array = DtmbKind::Dtmb26A.with_primary_count(30);
        let empty = TrialEvaluator::new(&array, &ReconfigPolicy::UsedCells(BTreeSet::new()));
        assert_eq!(empty.guaranteed_tolerable_faults(), empty.cell_count());
    }

    #[test]
    #[should_panic(expected = "cannot inject")]
    fn exact_fault_trial_rejects_overfull() {
        let (_, eval) = evaluator(DtmbKind::Dtmb44, 20);
        let mut scratch = eval.scratch();
        let mut rng = StdRng::seed_from_u64(1);
        let _ = eval.exact_fault_trial(eval.cell_count() + 1, &mut rng, &mut scratch);
    }

    #[test]
    fn square_pattern_through_generic_engine() {
        use crate::square_dtmb::SquarePattern;
        use dmfb_grid::{SquareCoord, SquareRegion};
        let region = SquareRegion::rect(10, 10);
        for pattern in SquarePattern::ALL {
            let eval = TrialEvaluator::for_scheme(&region, &pattern);
            let mut scratch = eval.scratch();
            // Fault-free passes; the whole-array fault only passes when
            // there is nothing required (never here).
            assert!(eval.evaluate_faulty_cells(&[], &mut scratch), "{pattern}");
            let all: Vec<SquareCoord> = region.iter().collect();
            assert!(!eval.evaluate_faulty_cells(&all, &mut scratch), "{pattern}");
            // Single-fault verdicts match the legacy oracle everywhere.
            for c in region.iter() {
                assert_eq!(
                    eval.evaluate_faulty_cells(&[c], &mut scratch),
                    pattern.is_reconfigurable(&region, &[c]),
                    "{pattern} fault at {c}"
                );
            }
        }
    }

    #[test]
    fn reconfigure_returns_valid_plans() {
        use rand::seq::SliceRandom;
        let array = DtmbKind::Dtmb26A.with_primary_count(80);
        let eval = TrialEvaluator::new(&array, &ReconfigPolicy::AllPrimaries);
        let mut scratch = eval.scratch();
        let cells: Vec<HexCoord> = array.region().iter().collect();
        let mut rng = StdRng::seed_from_u64(0xA55A);
        for faults in [0usize, 1, 4, 12, 30] {
            for _ in 0..15 {
                let mut pick = cells.clone();
                pick.shuffle(&mut rng);
                let defects = DefectMap::from_cells(pick.into_iter().take(faults));
                let plan = eval.reconfigure(&defects, &mut scratch);
                assert_eq!(
                    plan.is_some(),
                    local::is_reconfigurable(&array, &defects, &ReconfigPolicy::AllPrimaries),
                    "verdict must match the reference engine"
                );
                let Some(plan) = plan else { continue };
                // Every faulty primary is assigned; assignments are local,
                // land on live spares, and use each spare once.
                let faulty: Vec<HexCoord> = defects
                    .faulty_cells()
                    .filter(|c| array.is_primary(*c))
                    .collect();
                assert_eq!(plan.len(), faulty.len());
                let mut used: Vec<HexCoord> = Vec::new();
                for (cell, spare) in plan.iter() {
                    assert!(faulty.contains(&cell));
                    assert!(cell.is_adjacent(spare), "{cell} -> {spare} not local");
                    assert!(array.is_spare(spare));
                    assert!(!defects.is_faulty(spare), "dead spare used");
                    used.push(spare);
                }
                used.sort();
                used.dedup();
                assert_eq!(used.len(), plan.len(), "spares must be distinct");
            }
        }
    }

    #[test]
    fn assignment_indices_map_back_to_cells() {
        let (array, eval) = evaluator(DtmbKind::Dtmb44, 40);
        let mut scratch = eval.scratch();
        let faulty: Vec<HexCoord> = array.primaries().take(3).collect();
        let pairs = eval
            .evaluate_faulty_cells_assignment(&faulty, &mut scratch)
            .expect("three scattered faults are tolerable on DTMB(4,4)");
        assert_eq!(pairs.len(), 3);
        for (u, r) in pairs {
            let unit: Vec<HexCoord> = eval.unit_coords(u).collect();
            let res: Vec<HexCoord> = eval.resource_coords(r).collect();
            assert_eq!(unit.len(), 1);
            assert_eq!(res.len(), 1);
            assert!(faulty.contains(&unit[0]));
            assert!(unit[0].is_adjacent(res[0]));
        }
        // Fault-free: an empty assignment, not a stale one.
        assert_eq!(
            eval.evaluate_defects_assignment(&DefectMap::new(), &mut scratch),
            Some(Vec::new())
        );
    }

    #[test]
    fn spare_row_assignments_use_indestructible_resources() {
        use crate::shifted::SpareRowArray;
        use dmfb_grid::SquareCoord;
        let array = SpareRowArray::figure2_example();
        let eval = TrialEvaluator::for_scheme(&array.region(), &array);
        let mut scratch = eval.scratch();
        let pairs = eval
            .evaluate_faulty_cells_assignment(&[SquareCoord::new(3, 4)], &mut scratch)
            .expect("one faulty row fits the spare row");
        assert_eq!(pairs.len(), 1);
        let (u, r) = pairs[0];
        assert_eq!(eval.unit_coords(u).count(), array.width() as usize);
        assert_eq!(
            eval.resource_coords(r).count(),
            0,
            "spare rows are indestructible"
        );
    }

    #[test]
    fn spare_rows_through_generic_engine() {
        use crate::shifted::SpareRowArray;
        use dmfb_grid::SquareCoord;
        let array = SpareRowArray::figure2_example();
        let eval = TrialEvaluator::for_scheme(&array.region(), &array);
        assert_eq!(eval.unit_count(), 6);
        assert_eq!(eval.resource_count(), 1);
        let mut scratch = eval.scratch();
        // One faulty row: tolerable via the single spare row.
        assert!(eval.evaluate_faulty_cells(&[SquareCoord::new(3, 4)], &mut scratch));
        // Two distinct faulty rows exceed the spare row.
        assert!(!eval.evaluate_faulty_cells(
            &[SquareCoord::new(0, 0), SquareCoord::new(0, 3)],
            &mut scratch
        ));
        // Same-row faults count once.
        assert!(eval.evaluate_faulty_cells(
            &[SquareCoord::new(0, 2), SquareCoord::new(7, 2)],
            &mut scratch
        ));
        // Spare-row faults are ignored (legacy semantics).
        assert!(eval.evaluate_faulty_cells(&[SquareCoord::new(0, 6)], &mut scratch));
    }
}
