//! Property-based tests for the yield models.

use dmfb_reconfig::dtmb::DtmbKind;
use dmfb_reconfig::ReconfigPolicy;
use dmfb_yield::{analytical, effective_yield, tolerance_profile, MonteCarloYield};
use proptest::prelude::*;

fn arb_kind() -> impl Strategy<Value = DtmbKind> {
    prop::sample::select(DtmbKind::ALL.to_vec())
}

proptest! {
    /// The analytical models are monotone in p and properly bounded.
    #[test]
    fn analytical_models_bounded_and_monotone(p in 0.0f64..1.0, n in 1usize..300) {
        let y0 = analytical::no_redundancy_yield(p, n);
        let y1 = analytical::dtmb16_yield(p, n);
        prop_assert!((0.0..=1.0).contains(&y0));
        prop_assert!((0.0..=1.0).contains(&y1));
        prop_assert!(y1 >= y0 - 1e-12, "redundancy can only help");
        let p2 = (p + 0.01).min(1.0);
        prop_assert!(analytical::dtmb16_yield(p2, n) >= y1 - 1e-12);
        prop_assert!(analytical::no_redundancy_yield(p2, n) >= y0 - 1e-12);
    }

    /// The cluster yield equals the explicit binomial expression.
    #[test]
    fn cluster_yield_matches_binomial(p in 0.0f64..=1.0) {
        let direct = analytical::dtmb16_cluster_yield(p);
        let via_cdf = analytical::at_most_k_failures(p, 7, 1);
        prop_assert!((direct - via_cdf).abs() < 1e-12);
    }

    /// Effective yield never exceeds raw yield and scales linearly.
    #[test]
    fn effective_yield_contracts(y in 0.0f64..=1.0, rr in 0.0f64..3.0) {
        let ey = effective_yield(y, rr);
        prop_assert!(ey <= y + 1e-15);
        prop_assert!(ey >= 0.0);
        prop_assert!((effective_yield(y / 2.0, rr) - ey / 2.0).abs() < 1e-12);
    }

}

// Monte-Carlo-backed properties are orders of magnitude more expensive per
// case than the closed-form ones; a dozen cases is still a meaningful
// search while keeping the suite fast.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Monte-Carlo estimates are bounded, reproducible, and respect the
    /// spare-count upper bound.
    #[test]
    fn mc_estimates_well_behaved(kind in arb_kind(), seed in 0u64..100) {
        let n = 40;
        let p = 0.92;
        let est = MonteCarloYield::new(kind.with_primary_count(n), ReconfigPolicy::AllPrimaries);
        let a = est.estimate_survival(p, 400, seed);
        let b = est.estimate_survival(p, 400, seed);
        prop_assert_eq!(a, b);
        prop_assert!((0.0..=1.0).contains(&a.point()));
        let bound = analytical::spare_count_upper_bound(
            p,
            est.array().primary_count(),
            est.array().spare_count(),
        );
        prop_assert!(a.point() <= bound + 0.05, "{kind}: {} vs bound {bound}", a.point());
    }

    /// Tolerance profiles: survival is non-increasing and agrees with the
    /// direct exact-fault estimator at m = 1.
    #[test]
    fn profile_survival_consistent(kind in arb_kind(), seed in 0u64..50) {
        let array = kind.with_primary_count(36);
        let policy = ReconfigPolicy::AllPrimaries;
        let profile = tolerance_profile(&array, &policy, 400, seed);
        for m in 0..10 {
            prop_assert!(profile.survival(m) + 1e-12 >= profile.survival(m + 1));
        }
        let direct = MonteCarloYield::new(array, policy)
            .estimate_exact_faults(1, 400, seed ^ 0xF00D)
            .point();
        prop_assert!((profile.survival(1) - direct).abs() < 0.12);
    }
}
