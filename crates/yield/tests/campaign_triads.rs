//! NA-0090-style happy-path / hostile / replay triads for every built-in
//! campaign.
//!
//! Pattern (qsl-protocol remote fault-injection plan): the happy path
//! rehearses the scenario and must emit expected (`ok`) markers only; the
//! live run injects the scripted damage and must flag hostile markers;
//! the replay test asserts byte-identical marker streams and verdict
//! tables across reruns and across `--threads 1` vs `0`.

use dmfb_yield::campaign::{named_campaign, CampaignRunner, NAMED_CAMPAIGNS};
use dmfb_yield::operational::AssayPanel;

const SEED: u64 = 0x2005_0090;
const TRIALS: u32 = 24;

fn runner(threads: usize) -> CampaignRunner {
    CampaignRunner::ivd(AssayPanel::StandardIvd).with_threads(threads)
}

fn happy_path(name: &str) {
    let scenario = named_campaign(name).expect("built-in");
    let runner = runner(1);
    let dry = runner.rehearse(&scenario, SEED);
    assert_eq!(dry.hostile_count(), 0, "{name}: rehearsal must not damage");
    assert!(dry.final_map().is_fault_free());
    let markers = dry.markers();
    assert_eq!(markers.lines().count(), scenario.steps().len());
    for (idx, line) in markers.lines().enumerate() {
        assert!(
            line.starts_with(&format!("marker step={idx} k={}", SEED + idx as u64)),
            "{name}: marker {idx} must carry k = seed + idx: {line}"
        );
        assert!(line.contains(" injected=0 "), "{name}: {line}");
        assert!(
            line.ends_with(" ok"),
            "{name}: happy path must be ok-only: {line}"
        );
    }
}

fn hostile_markers(name: &str) {
    let scenario = named_campaign(name).expect("built-in");
    let runner = runner(1);
    let live = scenario.execute(runner.region(), SEED);
    assert!(
        live.hostile_count() > 0,
        "{name}: live run must damage the chip"
    );
    assert!(live.markers().lines().any(|l| l.ends_with(" hostile")));
    // Cumulative fault counts in the markers are non-decreasing and match
    // the per-step maps.
    let mut last = 0usize;
    for rec in &live.steps {
        assert!(rec.map.fault_count() >= last);
        assert_eq!(rec.hostile(), rec.injected > 0);
        last = rec.map.fault_count();
    }
    // The happy path and the live run agree on keys and labels, differing
    // only in damage — that is what makes the marker streams comparable.
    let dry = scenario.rehearse(runner.region(), SEED);
    for (a, b) in dry.steps.iter().zip(live.steps.iter()) {
        assert_eq!(a.k, b.k);
        assert_eq!(a.action.label(), b.action.label());
    }
}

fn determinism_replay(name: &str) {
    let scenario = named_campaign(name).expect("built-in");
    let first = runner(1).run(&scenario, 0.99, TRIALS, SEED);
    let rerun = runner(1).run(&scenario, 0.99, TRIALS, SEED);
    assert_eq!(
        first.markers(),
        rerun.markers(),
        "{name}: rerun must replay markers byte-identically"
    );
    assert_eq!(first.table(), rerun.table(), "{name}: rerun verdicts");
    let parallel = runner(0).run(&scenario, 0.99, TRIALS, SEED);
    assert_eq!(
        first.markers(),
        parallel.markers(),
        "{name}: threads 1 vs 0 markers"
    );
    assert_eq!(
        first.table(),
        parallel.table(),
        "{name}: threads 1 vs 0 verdicts"
    );
    // A different seed must not replay the same damage.
    let other = named_campaign(name)
        .unwrap()
        .execute(runner(1).region(), SEED + 1);
    assert_ne!(first.markers(), other.markers(), "{name}: seed matters");
}

macro_rules! triad {
    ($happy:ident, $hostile:ident, $replay:ident, $name:literal) => {
        #[test]
        fn $happy() {
            happy_path($name);
        }

        #[test]
        fn $hostile() {
            hostile_markers($name);
        }

        #[test]
        fn $replay() {
            determinism_replay($name);
        }
    };
}

triad!(
    edge_column_wipeout_happy_path_has_ok_markers_only,
    edge_column_wipeout_emits_hostile_markers,
    edge_column_wipeout_determinism_replay,
    "edge-column-wipeout"
);

triad!(
    reservoir_cluster_happy_path_has_ok_markers_only,
    reservoir_cluster_emits_hostile_markers,
    reservoir_cluster_determinism_replay,
    "reservoir-cluster"
);

triad!(
    wear_trajectory_happy_path_has_ok_markers_only,
    wear_trajectory_emits_hostile_markers,
    wear_trajectory_determinism_replay,
    "wear-trajectory"
);

triad!(
    parametric_drift_happy_path_has_ok_markers_only,
    parametric_drift_emits_hostile_markers,
    parametric_drift_determinism_replay,
    "parametric-drift"
);

#[test]
fn every_built_in_campaign_is_covered_by_a_triad() {
    // If a future PR adds a campaign, this fails until its triad exists.
    let covered = [
        "edge-column-wipeout",
        "reservoir-cluster",
        "wear-trajectory",
        "parametric-drift",
    ];
    let names: Vec<&str> = NAMED_CAMPAIGNS.iter().map(|c| c.name).collect();
    assert_eq!(names, covered);
}
