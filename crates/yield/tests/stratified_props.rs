//! Property-based tests for the defect-count-stratified rare-event
//! estimator: equivalence with the naive Monte-Carlo estimator within
//! confidence bounds, truncation-error control, and determinism.

use dmfb_grid::SquareRegion;
use dmfb_reconfig::dtmb::DtmbKind;
use dmfb_reconfig::{ReconfigPolicy, SquarePattern};
use dmfb_sim::stratified::plan_strata;
use dmfb_sim::StratifiedConfig;
use dmfb_yield::{analytical, MonteCarloYield, SchemeYield};
use proptest::prelude::*;

fn arb_pattern() -> impl Strategy<Value = SquarePattern> {
    prop::sample::select(vec![
        SquarePattern::PerfectCode,
        SquarePattern::Stripes,
        SquarePattern::Checkerboard,
    ])
}

proptest! {
    /// The strata planner always captures at least `1 − tolerance` of the
    /// binomial mass (given room), reports the residue exactly, and keeps
    /// a contiguous ascending defect-count window.
    #[test]
    fn planner_truncation_error_is_within_tolerance(
        n in 1usize..600,
        q in 0.0f64..=1.0,
        tol_exp in 1u32..9,
    ) {
        let tolerance = 10f64.powi(-(tol_exp as i32));
        let config = StratifiedConfig {
            tolerance,
            // Ample room: the planner must stop on tolerance, not the cap.
            max_strata: n + 1,
            ..StratifiedConfig::default()
        };
        let (plans, truncated) = plan_strata(n, q, &config);
        let mass: f64 = plans.iter().map(|s| s.weight).sum();
        prop_assert!(truncated <= tolerance + 1e-12, "truncated {truncated} > {tolerance}");
        prop_assert!((1.0 - mass - truncated).abs() < 1e-9);
        prop_assert!(plans.windows(2).all(|w| w[1].faults == w[0].faults + 1));
        prop_assert!(plans.iter().all(|s| s.faults <= n && s.weight >= 0.0));
    }
}

// Monte-Carlo-backed properties are expensive per case; a dozen cases is
// still a meaningful search while keeping the suite fast.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Stratified ≡ naive on small square arrays: the two estimators
    /// target the same quantity, so their difference must sit inside the
    /// combined confidence bounds (plus the declared truncation budget).
    #[test]
    fn stratified_matches_naive_within_ci_bounds(
        pattern in arb_pattern(),
        side in 6u32..12,
        p in 0.85f64..0.999,
        seed in 0u64..50,
    ) {
        let est = SchemeYield::from_scheme(&SquareRegion::rect(side, side), &pattern);
        let naive = est.estimate_survival(p, 4_000, seed);
        let strat =
            est.estimate_survival_stratified(p, 4_000, seed ^ 0xA5A5, &StratifiedConfig::default());
        let slack = 4.0 * (strat.std_error() + naive.margin95() / 1.96)
            + strat.truncated_mass
            + 5e-3;
        prop_assert!(
            (naive.point() - strat.point).abs() < slack,
            "{pattern} side={side} p={p}: naive {} vs stratified {} (slack {slack})",
            naive.point(),
            strat.point
        );
        prop_assert!(strat.trials <= 4_000 + strat.strata.len() as u64);
        prop_assert!((0.0..=1.0).contains(&strat.point));
        prop_assert!(strat.variance >= 0.0);
    }

    /// The stratified point estimate underestimates the truth by at most
    /// the truncated mass: against the exact spare-row closed form, the
    /// signed error must respect `-(CI) <= exact - point <= CI + truncated`.
    #[test]
    fn truncation_bias_is_one_sided_and_bounded(
        p in 0.9f64..=0.999,
        tol_exp in 3u32..8,
        seed in 0u64..30,
    ) {
        use dmfb_reconfig::shifted::{ModuleBand, SpareRowArray};
        let (width, rows, spares) = (6u32, 5u32, 1u32);
        let array = SpareRowArray::new(
            width,
            vec![ModuleBand { name: "M".into(), rows }],
            spares,
        );
        let est = SchemeYield::from_scheme(&array.region(), &array);
        let tolerance = 10f64.powi(-(tol_exp as i32));
        let config = StratifiedConfig { tolerance, ..StratifiedConfig::default() };
        let strat = est.estimate_survival_stratified(p, 5_000, seed, &config);
        // The generic spare-row scheme models spare rows as
        // indestructible, so the exact yield is the binomial tail over
        // the module rows alone (row survival p^width).
        let exact =
            analytical::at_most_k_failures(p.powi(width as i32), rows as usize, spares as usize);
        let noise = 5.0 * strat.std_error() + 5e-3;
        // Sampling noise swings both ways; truncation only downward.
        prop_assert!(
            exact - strat.point <= strat.truncated_mass + noise,
            "point {} exact {exact} truncated {}",
            strat.point,
            strat.truncated_mass
        );
        prop_assert!(
            strat.point - exact <= noise,
            "stratified may not overshoot: point {} exact {exact}",
            strat.point
        );
        prop_assert!(strat.truncated_mass <= tolerance + 1e-12);
    }

    /// Determinism and thread invariance: the estimate is a pure function
    /// of `(budget, seed)` on every engine front-end.
    #[test]
    fn stratified_is_deterministic_and_thread_invariant(
        kind in prop::sample::select(DtmbKind::ALL.to_vec()),
        seed in 0u64..40,
    ) {
        let mc = MonteCarloYield::new(kind.with_primary_count(40), ReconfigPolicy::AllPrimaries);
        let config = StratifiedConfig::default();
        let a = mc.estimate_survival_stratified(0.995, 1_000, seed, &config);
        let b = mc.estimate_survival_stratified(0.995, 1_000, seed, &config);
        prop_assert_eq!(&a, &b);
        for threads in [0usize, 3] {
            let par = mc
                .clone()
                .with_threads(threads)
                .estimate_survival_stratified(0.995, 1_000, seed, &config);
            prop_assert_eq!(&par, &a, "threads={}", threads);
        }
    }

    /// In the rare-event regime the stratified estimator's effective
    /// sample count beats its actual trial spend by at least an order of
    /// magnitude (the deterministic defect-free stratum carries the mass).
    #[test]
    fn rare_event_speedup_is_at_least_10x(seed in 0u64..20) {
        let mc = MonteCarloYield::new(
            DtmbKind::Dtmb26A.with_primary_count(60),
            ReconfigPolicy::AllPrimaries,
        );
        let strat =
            mc.estimate_survival_stratified(0.999, 1_000, seed, &StratifiedConfig::default());
        prop_assert!(
            strat.effective_trials() >= 10.0 * strat.trials as f64,
            "effective {} vs spent {}",
            strat.effective_trials(),
            strat.trials
        );
    }
}
