//! Property-based tests for the operational-yield engine: the three-tier
//! ordering on random defect maps, and thread-count determinism.

use dmfb_defects::DefectMap;
use dmfb_grid::HexCoord;
use dmfb_yield::operational::{AssayPanel, OperationalYield};
use proptest::prelude::*;
use std::sync::OnceLock;

/// One shared engine: construction walks the 343-cell case-study chip, so
/// building it per proptest case would dominate the suite.
fn engine() -> &'static OperationalYield {
    static ENGINE: OnceLock<OperationalYield> = OnceLock::new();
    ENGINE.get_or_init(|| OperationalYield::ivd(AssayPanel::StandardIvd))
}

fn chip_cells() -> &'static [HexCoord] {
    static CELLS: OnceLock<Vec<HexCoord>> = OnceLock::new();
    CELLS.get_or_init(|| engine().chip().array.region().iter().collect())
}

/// A random fault set over the whole case-study array (primaries, spares
/// and unused cells alike), biased across the interesting size range.
fn arb_fault_set() -> impl Strategy<Value = Vec<HexCoord>> {
    let n = chip_cells().len();
    prop::collection::vec(0..n, 0..60)
        .prop_map(|idx| idx.into_iter().map(|i| chip_cells()[i]).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Per chip instance the tiers are nested: an operational chip is
    /// reconfigurable, a reconfigurable chip satisfies the raw-survivor
    /// bound (every faulty assay cell keeps a live adjacent spare), and a
    /// raw-good chip is trivially reconfigurable. Over any trial set this
    /// forces operational yield ≤ reconfigured yield ≤ the raw-survivor
    /// bound, with raw yield below reconfigured as well.
    #[test]
    fn tiers_are_nested_on_random_defect_maps(faults in arb_fault_set()) {
        let v = engine().evaluate_map(&DefectMap::from_cells(faults));
        prop_assert!(!v.operational || v.reconfigured, "operational ⇒ reconfigured");
        prop_assert!(!v.reconfigured || v.survivor_bound, "reconfigured ⇒ survivor bound");
        prop_assert!(!v.raw || v.reconfigured, "raw ⇒ reconfigured");
    }
}

proptest! {
    // Monte-Carlo cases are expensive (hundreds of matching + routing
    // trials each); a handful still covers the seed/grid space.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Estimates are reproducible in `(trials, seed)` and identical for
    /// any thread count, and the estimate-level ordering holds.
    #[test]
    fn estimates_thread_invariant_and_ordered(seed in 0u64..1000, p in 0.9f64..1.0) {
        let eng = engine();
        let one = eng.clone().with_threads(1).estimate(p, 120, seed);
        for threads in [0usize, 2, 3] {
            let other = eng.clone().with_threads(threads).estimate(p, 120, seed);
            prop_assert_eq!(other, one, "threads={}", threads);
        }
        prop_assert!(one.operational.successes() <= one.reconfigured.successes());
        prop_assert!(one.raw.successes() <= one.reconfigured.successes());
    }
}

#[test]
fn survivor_bound_upper_bounds_reconfigured_yield_on_a_sweep() {
    // Count the bound explicitly over a fixed trial set: the estimate-level
    // sandwich the proptest establishes per trial, demonstrated end to end.
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let eng = engine();
    let cells = chip_cells();
    let mut rng = StdRng::seed_from_u64(99);
    let trials = 150;
    let p = 0.94;
    let (mut raw, mut bound, mut rec, mut op) = (0u32, 0u32, 0u32, 0u32);
    for _ in 0..trials {
        let faults: Vec<HexCoord> = cells
            .iter()
            .filter(|_| rng.gen::<f64>() >= p)
            .copied()
            .collect();
        let v = eng.evaluate_map(&DefectMap::from_cells(faults));
        raw += u32::from(v.raw);
        bound += u32::from(v.survivor_bound);
        rec += u32::from(v.reconfigured);
        op += u32::from(v.operational);
    }
    assert!(op <= rec, "operational {op} > reconfigured {rec}");
    assert!(rec <= bound, "reconfigured {rec} > survivor bound {bound}");
    assert!(raw <= rec, "raw {raw} > reconfigured {rec}");
    assert!(rec > raw, "at p=0.94 reconfiguration must rescue chips");
}
