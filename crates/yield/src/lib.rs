//! Yield estimation for defect-tolerant DMFB designs.
//!
//! Implements the paper's Section 6 in full:
//!
//! * [`analytical`] — closed forms: the no-redundancy baseline `Y = pⁿ`,
//!   the DTMB(1,6) cluster model `Y = (p⁷ + 7p⁶(1−p))^(n/6)` (paper
//!   Figure 7), and binomial helpers.
//! * [`monte_carlo`] — the matching-based Monte-Carlo estimator used for
//!   DTMB(2,6), DTMB(3,6) and DTMB(4,4) (Figure 9), in both the
//!   survival-probability mode and the exact-`m`-failures mode used by the
//!   Figure 13 case study.
//! * [`effective`] — the paper's *effective yield* metric
//!   `EY = Y·n/N = Y/(1+RR)` that trades yield against array area
//!   (Figure 10), with crossover detection between designs.
//! * [`scheme_yield`] — [`SchemeYield`]: the same fast Monte-Carlo engine
//!   generic over the redundancy scheme (hex DTMB, square DTMB,
//!   spare-row), so the paper's cross-scheme comparisons are one sweep.
//! * [`operational`] — [`OperationalYield`]: the Section 7 case study's
//!   third tier. Per trial, the defect map and the reconfiguration
//!   assignment are pushed through the bioassay router/scheduler to ask
//!   whether the *reconfigured* chip still runs the multiplexed IVD panel
//!   in budget — raw, reconfigured and operational yield side by side.
//! * [`sweep`] — parameter sweeps producing the curves behind each figure.
//!
//! Two orthogonal extensions ride on every engine above: the
//! **defect-count-stratified rare-event estimator**
//! (`estimate_survival_stratified` on [`SchemeYield`],
//! [`MonteCarloYield`] and [`OperationalYield`]), which conditions on the
//! binomial defect count so the high-survival regime no longer wastes
//! trials on defect-free chips, and **arbitrary defect samplers**
//! (`estimate_with_defects` / `estimate_with`), which let the clustered
//! wafer-defect model from `dmfb-defects` drive any scheme.
//!
//! # Example
//!
//! ```
//! use dmfb_yield::analytical;
//!
//! // Paper Section 7: without redundancy, a 108-cell chip yields only
//! // ~0.3378 even at 99% cell survival.
//! let y = analytical::no_redundancy_yield(0.99, 108);
//! assert!((y - 0.3378).abs() < 5e-4);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod analytical;
pub mod campaign;
pub mod effective;
pub mod monte_carlo;
pub mod operational;
pub mod profile;
pub mod scheme_yield;
pub mod sweep;

pub use campaign::{
    named_campaign, CampaignReport, CampaignRunner, NamedCampaign, StepVerdict, NAMED_CAMPAIGNS,
};
pub use effective::effective_yield;
pub use monte_carlo::{MonteCarloYield, YieldPoint};
pub use operational::{
    AssayPanel, OperationalEstimate, OperationalYield, StratifiedOperationalEstimate, TrialVerdict,
};
pub use profile::{tolerance_profile, ToleranceProfile};
pub use scheme_yield::{SchemeYield, StratifiedPoint, DEFAULT_BLOCK_TRIALS};
pub use sweep::YieldCurve;
