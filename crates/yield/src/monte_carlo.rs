//! Matching-based Monte-Carlo yield estimation (paper Section 6, Figures 9
//! and 13).
//!
//! "During each run of the simulation, the cells in the microfluidic array,
//! including both primary and spare cells, are randomly chosen to fail with
//! probability p [defect probability q]. We then check if these defects can
//! be tolerated via local reconfiguration based on the interstitial spare
//! cells. This checking procedure is based on a graph matching approach."

use crate::scheme_yield::SchemeYield;
use dmfb_defects::injection::{Bernoulli, ExactCount, InjectionModel};
use dmfb_reconfig::{local, DefectTolerantArray, ReconfigPolicy, TrialEvaluator};
use dmfb_sim::{parallel_map, BernoulliEstimate, MonteCarlo};
use serde::{Deserialize, Serialize};

/// One `(parameter, yield)` sample of a yield curve, with its Monte-Carlo
/// confidence bounds.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct YieldPoint {
    /// The swept parameter: survival probability `p` (Figure 9) or fault
    /// count `m` (Figure 13).
    pub x: f64,
    /// Estimated yield at `x`.
    pub y: f64,
    /// 95% Wilson interval around `y`.
    pub ci95: (f64, f64),
    /// Trials behind the estimate.
    pub trials: u64,
}

impl YieldPoint {
    /// Builds a point from a Bernoulli estimate at swept parameter `x`.
    #[must_use]
    pub fn from_estimate(x: f64, est: &BernoulliEstimate) -> Self {
        YieldPoint {
            x,
            y: est.point(),
            ci95: est.wilson95(),
            trials: est.trials(),
        }
    }
}

/// Splits a worker budget between sweep grid points (outer) and trials
/// within a point (inner) so no cores idle when the grid is shorter than
/// the thread count (`0` = one worker per available core). Shared by the
/// hex front-end and the scheme-generic engine so the orchestration
/// policy cannot drift between them; results are never affected because
/// every estimate is thread-count-invariant by construction.
pub(crate) fn sweep_thread_split(threads: usize, points: usize) -> (usize, usize) {
    let total = if threads == 0 {
        dmfb_sim::auto_threads()
    } else {
        threads
    };
    let outer = total.min(points.max(1));
    let inner = (total / outer.max(1)).max(1);
    (outer, inner)
}

/// Monte-Carlo yield estimator for a defect-tolerant array under a success
/// policy.
///
/// # Example
///
/// ```
/// use dmfb_reconfig::dtmb::DtmbKind;
/// use dmfb_reconfig::ReconfigPolicy;
/// use dmfb_yield::MonteCarloYield;
///
/// let array = DtmbKind::Dtmb44.with_primary_count(50);
/// let est = MonteCarloYield::new(array, ReconfigPolicy::AllPrimaries)
///     .estimate_survival(0.95, 2_000, 7);
/// assert!(est.point() > 0.5);
/// ```
#[derive(Clone, Debug)]
pub struct MonteCarloYield {
    array: DefectTolerantArray,
    policy: ReconfigPolicy,
    threads: usize,
    /// Engine selection forwarded to the fast engine: `None` = auto
    /// block width, `Some(0)` = scalar, `Some(n)` = blocks of `n`.
    block_trials: Option<usize>,
}

impl MonteCarloYield {
    /// Creates an estimator for `array` under `policy`, defaulting to
    /// single-threaded execution.
    #[must_use]
    pub fn new(array: DefectTolerantArray, policy: ReconfigPolicy) -> Self {
        MonteCarloYield {
            array,
            policy,
            threads: 1,
            block_trials: None,
        }
    }

    /// Distributes trials across `threads` worker threads (`0` = one
    /// worker per available core). Results are identical regardless of
    /// thread count.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Selects the fast engine's trial engine (see
    /// [`SchemeYield::with_block_trials`]): `None` = auto block width,
    /// `Some(0)` = scalar, `Some(n)` = blocks of `n` trials. Estimates
    /// are byte-identical either way; only throughput changes.
    #[must_use]
    pub fn with_block_trials(mut self, block_trials: Option<usize>) -> Self {
        self.block_trials = block_trials;
        self
    }

    /// The array under evaluation.
    #[must_use]
    pub fn array(&self) -> &DefectTolerantArray {
        &self.array
    }

    /// Estimates yield when every cell (primary and spare alike) survives
    /// independently with probability `p` — the Figure 9 experiment.
    #[must_use]
    pub fn estimate_survival(&self, p: f64, trials: u32, seed: u64) -> BernoulliEstimate {
        let model = Bernoulli::from_survival(p);
        self.estimate_with(&model, trials, seed)
    }

    /// Estimates yield with exactly `m` random cell failures per chip — the
    /// Figure 13 experiment.
    #[must_use]
    pub fn estimate_exact_faults(&self, m: usize, trials: u32, seed: u64) -> BernoulliEstimate {
        let model = ExactCount::new(m);
        self.estimate_with(&model, trials, seed)
    }

    /// Estimates yield under an arbitrary injection model (e.g. the
    /// clustered-spot ablation).
    #[must_use]
    pub fn estimate_with(
        &self,
        model: &(impl InjectionModel + Sync),
        trials: u32,
        seed: u64,
    ) -> BernoulliEstimate {
        let mc = MonteCarlo::new(trials, seed);
        let region = self.array.region();
        let trial = |rng: &mut rand::rngs::StdRng| {
            let defects = model.inject(region, rng);
            local::is_reconfigurable(&self.array, &defects, &self.policy)
        };
        mc.run_parallel(self.threads, trial)
    }

    /// The scheme-generic fast engine for this array and policy: the
    /// neighbour structure precomputed once, trials running through
    /// reusable bitset matching buffers.
    fn fast_engine(&self) -> SchemeYield {
        let label = self
            .array
            .kind()
            .map_or("no-redundancy".to_string(), |k| k.to_string());
        SchemeYield::from_evaluator(label, TrialEvaluator::new(&self.array, &self.policy))
            .with_threads(self.threads)
            .with_block_trials(self.block_trials)
    }

    /// Estimates survival-mode yield with the incremental
    /// [`TrialEvaluator`] engine (via the scheme-generic [`SchemeYield`]):
    /// the array's neighbour structure is precomputed once and every trial
    /// runs through reusable bitset matching buffers — no per-trial graph
    /// or defect-map construction.
    ///
    /// The estimate is drawn from the same distribution as
    /// [`MonteCarloYield::estimate_survival`] but from an independent
    /// random stream (the fast engine draws one uniform per relevant cell
    /// instead of sampling defect causes), so the two agree statistically,
    /// not bit-for-bit. Within this engine, results are deterministic in
    /// `(trials, seed)` and independent of thread count.
    #[must_use]
    pub fn estimate_survival_fast(&self, p: f64, trials: u32, seed: u64) -> BernoulliEstimate {
        self.fast_engine().estimate_survival(p, trials, seed)
    }

    /// Estimates survival-mode yield with the defect-count-stratified
    /// rare-event estimator (via the scheme-generic
    /// [`SchemeYield::estimate_survival_stratified`]): the survival
    /// probability is written as `Σₖ P(K=k)·P(survive | K=k)` and only
    /// the uncertain strata are sampled — at `p ≥ 0.999` this reaches a
    /// naive-MC confidence interval with an order of magnitude fewer
    /// array evaluations. Deterministic in `(budget, seed)` and
    /// independent of thread count.
    #[must_use]
    pub fn estimate_survival_stratified(
        &self,
        p: f64,
        budget: u32,
        seed: u64,
        config: &dmfb_sim::StratifiedConfig,
    ) -> dmfb_sim::StratifiedEstimate {
        self.fast_engine()
            .estimate_survival_stratified(p, budget, seed, config)
    }

    /// Estimates yield under an arbitrary defect sampler through the
    /// **fast engine** (via [`SchemeYield::estimate_with_defects`]): the
    /// evaluator's precompiled structure and reusable matching buffers,
    /// with only the defect draw per trial — the clustered-defect path
    /// for hex arrays, an order of magnitude faster than routing the
    /// sampler through the legacy per-trial rebuild of
    /// [`MonteCarloYield::estimate_with`]. Faults outside the evaluator's
    /// structure cannot change the verdict and are ignored.
    #[must_use]
    pub fn estimate_with_defects(
        &self,
        trials: u32,
        seed: u64,
        sample: impl Fn(&mut rand::rngs::StdRng) -> dmfb_defects::DefectMap + Sync,
    ) -> BernoulliEstimate {
        self.fast_engine()
            .estimate_with_defects(trials, seed, sample)
    }

    /// Sweeps survival probabilities through the stratified estimator,
    /// one independent experiment per grid point (see
    /// [`SchemeYield::sweep_survival_stratified`]).
    #[must_use]
    pub fn sweep_survival_stratified(
        &self,
        ps: &[f64],
        budget: u32,
        seed: u64,
        config: &dmfb_sim::StratifiedConfig,
    ) -> Vec<crate::scheme_yield::StratifiedPoint> {
        self.fast_engine()
            .sweep_survival_stratified(ps, budget, seed, config)
    }

    /// Sweeps an **ascending** survival grid in one batched Monte-Carlo
    /// pass: each trial draws a single random chip (common random numbers
    /// across the grid) and reports tolerability at every `p` at once,
    /// via the monotone threshold search in
    /// [`TrialEvaluator::survival_trial_grid`].
    ///
    /// Compared with [`MonteCarloYield::sweep_survival`], which runs an
    /// independent experiment per grid point, this shares every trial
    /// across the whole curve, and the common random numbers make the
    /// curve monotone in `p` trial-by-trial (no sampling wiggles between
    /// adjacent points). Results are byte-identical for any thread count.
    ///
    /// # Panics
    ///
    /// Panics if `ps` is not sorted ascending.
    #[must_use]
    pub fn sweep_survival_batched(&self, ps: &[f64], trials: u32, seed: u64) -> Vec<YieldPoint> {
        self.fast_engine().sweep_survival_batched(ps, trials, seed)
    }

    /// Sweeps survival probabilities into a list of [`YieldPoint`]s.
    ///
    /// Grid points are distributed across the configured worker threads
    /// (via `sweep_thread_split`), and any leftover parallelism runs
    /// inside each point's trial loop; per-point results are identical to
    /// a fully sequential sweep because every point is seeded by its grid
    /// index alone.
    #[must_use]
    pub fn sweep_survival(&self, ps: &[f64], trials: u32, seed: u64) -> Vec<YieldPoint> {
        let (outer, inner) = sweep_thread_split(self.threads, ps.len());
        let point = self.clone().with_threads(inner);
        parallel_map(outer, ps, |i, &p| {
            let est = point.estimate_survival(p, trials, seed.wrapping_add(i as u64));
            YieldPoint::from_estimate(p, &est)
        })
    }

    /// Sweeps exact fault counts into a list of [`YieldPoint`]s, with the
    /// same orchestration as [`MonteCarloYield::sweep_survival`].
    #[must_use]
    pub fn sweep_exact_faults(&self, ms: &[usize], trials: u32, seed: u64) -> Vec<YieldPoint> {
        let (outer, inner) = sweep_thread_split(self.threads, ms.len());
        let point = self.clone().with_threads(inner);
        parallel_map(outer, ms, |i, &m| {
            let est = point.estimate_exact_faults(m, trials, seed.wrapping_add(i as u64));
            YieldPoint::from_estimate(m as f64, &est)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytical;
    use dmfb_reconfig::dtmb::DtmbKind;

    const TRIALS: u32 = 3_000;

    fn estimator(kind: DtmbKind, n: usize) -> MonteCarloYield {
        MonteCarloYield::new(kind.with_primary_count(n), ReconfigPolicy::AllPrimaries)
    }

    #[test]
    fn perfect_survival_always_yields() {
        let est = estimator(DtmbKind::Dtmb26A, 60).estimate_survival(1.0, 200, 1);
        assert_eq!(est.point(), 1.0);
    }

    #[test]
    fn zero_survival_never_yields() {
        let est = estimator(DtmbKind::Dtmb26A, 60).estimate_survival(0.0, 200, 1);
        assert_eq!(est.point(), 0.0);
    }

    #[test]
    fn zero_faults_always_yield() {
        let est = estimator(DtmbKind::Dtmb36, 60).estimate_exact_faults(0, 100, 3);
        assert_eq!(est.point(), 1.0);
    }

    #[test]
    fn mc_matches_analytical_for_dtmb16() {
        // The DTMB(1,6) analytical model should agree with MC within a few
        // points (boundary effects make MC slightly optimistic because
        // boundary clusters are smaller).
        let n = 120;
        let mc = estimator(DtmbKind::Dtmb16, n);
        for &p in &[0.95, 0.98] {
            let est = mc.estimate_survival(p, 6_000, 11);
            let analytic = analytical::dtmb16_yield(p, n);
            assert!(
                (est.point() - analytic).abs() < 0.05,
                "p={p}: mc {} vs analytic {analytic}",
                est.point()
            );
        }
    }

    #[test]
    fn redundancy_order_matches_figure9() {
        // At fixed n and p, higher redundancy yields more.
        let p = 0.93;
        let n = 100;
        let y26 = estimator(DtmbKind::Dtmb26A, n)
            .estimate_survival(p, TRIALS, 5)
            .point();
        let y36 = estimator(DtmbKind::Dtmb36, n)
            .estimate_survival(p, TRIALS, 5)
            .point();
        let y44 = estimator(DtmbKind::Dtmb44, n)
            .estimate_survival(p, TRIALS, 5)
            .point();
        assert!(y44 >= y36 - 0.02, "44 {y44} vs 36 {y36}");
        assert!(y36 >= y26 - 0.02, "36 {y36} vs 26 {y26}");
        let baseline = analytical::no_redundancy_yield(p, n);
        assert!(y26 > baseline + 0.1);
    }

    #[test]
    fn yield_monotone_in_fault_count() {
        let mc = estimator(DtmbKind::Dtmb26A, 100);
        let pts = mc.sweep_exact_faults(&[0, 5, 15, 40], 1_500, 9);
        for w in pts.windows(2) {
            assert!(
                w[1].y <= w[0].y + 0.03,
                "yield should not increase with faults: {pts:?}"
            );
        }
    }

    #[test]
    fn parallel_estimate_reproducible() {
        let mc = estimator(DtmbKind::Dtmb44, 60);
        let a = mc.estimate_survival(0.95, 1_000, 17);
        let b = mc
            .clone()
            .with_threads(4)
            .estimate_survival(0.95, 1_000, 17);
        assert_eq!(a, b);
    }

    #[test]
    fn fast_engine_agrees_statistically_with_reference() {
        // Same distribution, independent streams: the two engines must
        // land within a few points of each other at moderate trial counts.
        for kind in [DtmbKind::Dtmb26A, DtmbKind::Dtmb44] {
            let mc = estimator(kind, 100);
            for &p in &[0.92, 0.97] {
                let slow = mc.estimate_survival(p, 4_000, 13).point();
                let fast = mc.estimate_survival_fast(p, 4_000, 13).point();
                assert!(
                    (slow - fast).abs() < 0.04,
                    "{kind} p={p}: slow {slow} vs fast {fast}"
                );
            }
        }
    }

    #[test]
    fn fast_engine_is_thread_invariant() {
        let mc = estimator(DtmbKind::Dtmb36, 80);
        let seq = mc.estimate_survival_fast(0.94, 2_000, 29);
        for threads in [0, 2, 5] {
            let par = mc
                .clone()
                .with_threads(threads)
                .estimate_survival_fast(0.94, 2_000, 29);
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn batched_sweep_matches_per_point_sweep() {
        let mc = estimator(DtmbKind::Dtmb26A, 100);
        let ps = [0.90, 0.94, 0.98, 1.0];
        let per_point = mc.sweep_survival(&ps, 4_000, 31);
        let batched = mc.sweep_survival_batched(&ps, 4_000, 31);
        assert_eq!(batched.len(), ps.len());
        for (a, b) in per_point.iter().zip(&batched) {
            assert_eq!(a.x, b.x);
            assert!(
                (a.y - b.y).abs() < 0.04,
                "x={}: per-point {} vs batched {}",
                a.x,
                a.y,
                b.y
            );
        }
        // Common random numbers make the batched curve monotone in p.
        for w in batched.windows(2) {
            assert!(w[1].y >= w[0].y, "batched curve must be monotone");
        }
        assert_eq!(batched.last().unwrap().y, 1.0, "p=1 never fails");
    }

    #[test]
    fn batched_sweep_is_byte_identical_across_thread_counts() {
        let mc = estimator(DtmbKind::Dtmb44, 60);
        let ps = [0.85, 0.92, 0.99];
        let seq = mc.sweep_survival_batched(&ps, 1_000, 47);
        for threads in [0, 3, 8] {
            let par = mc
                .clone()
                .with_threads(threads)
                .sweep_survival_batched(&ps, 1_000, 47);
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn sweep_points_carry_ci() {
        let mc = estimator(DtmbKind::Dtmb44, 60);
        let pts = mc.sweep_survival(&[0.9, 0.95], 500, 23);
        assert_eq!(pts.len(), 2);
        for pt in pts {
            assert!(pt.ci95.0 <= pt.y && pt.y <= pt.ci95.1);
            assert_eq!(pt.trials, 500);
        }
    }
}
