//! Operational (assay-aware) yield: the paper's three-tier story.
//!
//! The manufacturing-yield machinery in this crate answers "*can the chip
//! be reconfigured?*". The paper's case study (Section 7) asks one
//! question more: after reconfiguration, does the chip still **run the
//! multiplexed in-vitro-diagnostics bioassay** — every dispenser, mixer
//! and detector remapped onto a live cell, every droplet route intact
//! around the faults, the whole protocol finishing within its timing
//! budget? A chip can be matching-feasible and operationally dead.
//!
//! [`OperationalYield`] reports all three tiers side by side, per
//! Monte-Carlo trial on the same random chip:
//!
//! 1. **raw** — no in-scope (assay) cell is faulty at all: the
//!    no-reconfiguration baseline;
//! 2. **reconfigured** — every faulty assay cell gets a distinct adjacent
//!    live spare (bipartite matching, via
//!    [`TrialEvaluator::reconfigure`]);
//! 3. **operational** — the reconfigured chip's remapped resources still
//!    schedule the assay panel within budget
//!    ([`FeasibilityChecker`]).
//!
//! Per trial, operational ⟹ reconfigured ⟸ raw, so the estimates always
//! satisfy `operational ≤ reconfigured` and `raw ≤ reconfigured` — the
//! ordering the property tests pin down. Estimates ride the deterministic
//! parallel tally engine of `dmfb-sim`: results depend only on
//! `(trials, seed)`, never on thread count, and sweeps share each trial's
//! random chip across the whole survival grid (common random numbers).
//!
//! # Example
//!
//! ```
//! use dmfb_yield::operational::{AssayPanel, OperationalYield};
//!
//! let engine = OperationalYield::ivd(AssayPanel::StandardIvd);
//! let e = engine.estimate(0.95, 60, 7);
//! assert!(e.operational.point() <= e.reconfigured.point());
//! assert!(e.raw.point() <= e.reconfigured.point());
//! ```

use crate::monte_carlo::YieldPoint;
use crate::scheme_yield::DEFAULT_BLOCK_TRIALS;
use dmfb_bioassay::feasibility::{FeasibilityChecker, TimingBudget};
use dmfb_bioassay::layout::{ivd_dtmb26_chip, used_cells_policy};
use dmfb_bioassay::{ChipDescription, MultiplexedIvd};
use dmfb_defects::block::{fault_threshold, BlockSampler};
use dmfb_defects::operational::MtbfModel;
use dmfb_defects::DefectMap;
use dmfb_graph::words::{pack_ge, LANES};
use dmfb_grid::HexCoord;
use dmfb_reconfig::{ReconfigPolicy, TrialEvaluator, TrialScratch};
use dmfb_sim::{
    BernoulliEstimate, MonteCarlo, StratifiedConfig, StratifiedEstimate, StratifiedMonteCarlo,
};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::BTreeMap;
use std::collections::BTreeSet;

/// Which assay workload the operational check runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AssayPanel {
    /// The paper's Figure 11 configuration: two samples × two reagents,
    /// four concurrent measurements ([`MultiplexedIvd::standard_panel`]).
    StandardIvd,
    /// The extended eight-measurement panel covering all four metabolites
    /// ([`MultiplexedIvd::full_metabolic_panel`]).
    FullMetabolic,
}

impl AssayPanel {
    /// Both panels, in CLI listing order.
    pub const ALL: [AssayPanel; 2] = [AssayPanel::StandardIvd, AssayPanel::FullMetabolic];

    /// The CLI tag for this panel (`--assay <label>`).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            AssayPanel::StandardIvd => "ivd-panel",
            AssayPanel::FullMetabolic => "metabolic-panel",
        }
    }

    /// Builds the panel's request batch.
    ///
    /// # Example
    ///
    /// ```
    /// use dmfb_yield::operational::AssayPanel;
    ///
    /// assert_eq!(AssayPanel::StandardIvd.batch().requests.len(), 4);
    /// assert_eq!(AssayPanel::FullMetabolic.batch().requests.len(), 8);
    /// ```
    #[must_use]
    pub fn batch(&self) -> MultiplexedIvd {
        match self {
            AssayPanel::StandardIvd => MultiplexedIvd::standard_panel(),
            AssayPanel::FullMetabolic => MultiplexedIvd::full_metabolic_panel(),
        }
    }
}

impl std::fmt::Display for AssayPanel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for AssayPanel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        AssayPanel::ALL
            .into_iter()
            .find(|p| p.label() == s)
            .ok_or_else(|| format!("unknown assay '{s}' (valid: ivd-panel, metabolic-panel)"))
    }
}

/// Default timing slack for the relative budget: the reconfigured chip may
/// spend up to 50% more protocol time than the fault-free chip before it
/// counts as operationally dead.
pub const DEFAULT_SLACK: f64 = 1.5;

/// In-service wear configuration: an MTBF model plus the service horizon
/// after which the chip is evaluated.
#[derive(Clone, Copy, Debug, PartialEq)]
struct Wear {
    model: MtbfModel,
    horizon_hours: f64,
}

/// The three-tier verdict for one explicit chip instance.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TrialVerdict {
    /// No in-scope (assay) cell is faulty: good without reconfiguration.
    pub raw: bool,
    /// Necessary condition for reconfigurability: every faulty in-scope
    /// cell has at least one live adjacent spare (the singleton Hall
    /// bound). `reconfigured` implies this.
    pub survivor_bound: bool,
    /// A full primary→spare matching covers the faulty in-scope cells.
    pub reconfigured: bool,
    /// The reconfigured chip still schedules the assay panel in budget.
    pub operational: bool,
}

/// One `(p, raw, reconfigured, operational)` estimate row.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OperationalEstimate {
    /// The cell-survival probability evaluated.
    pub p: f64,
    /// Tier 1: yield without any reconfiguration.
    pub raw: BernoulliEstimate,
    /// Tier 2: yield with local reconfiguration (matching feasibility).
    pub reconfigured: BernoulliEstimate,
    /// Tier 3: yield with reconfiguration *and* assay-level feasibility.
    pub operational: BernoulliEstimate,
}

impl OperationalEstimate {
    /// The operational tier as a plottable [`YieldPoint`].
    #[must_use]
    pub fn operational_point(&self) -> YieldPoint {
        YieldPoint::from_estimate(self.p, &self.operational)
    }
}

/// The three-tier estimate from the defect-count-stratified rare-event
/// estimator: one [`StratifiedEstimate`] per tier, all drawn from the same
/// shared per-stratum trial placements.
#[derive(Clone, Debug, PartialEq)]
pub struct StratifiedOperationalEstimate {
    /// The cell-survival probability evaluated.
    pub p: f64,
    /// Tier 1: yield without any reconfiguration.
    pub raw: StratifiedEstimate,
    /// Tier 2: yield with local reconfiguration (matching feasibility).
    pub reconfigured: StratifiedEstimate,
    /// Tier 3: yield with reconfiguration *and* assay-level feasibility.
    pub operational: StratifiedEstimate,
}

/// Monte-Carlo estimator of raw, reconfigured and operational yield on one
/// chip description — the engine behind `dmfb yield --assay`.
///
/// # Example
///
/// ```
/// use dmfb_yield::operational::{AssayPanel, OperationalYield};
/// use dmfb_defects::DefectMap;
///
/// let engine = OperationalYield::ivd(AssayPanel::StandardIvd);
/// // A fault-free chip passes all three tiers.
/// let v = engine.evaluate_map(&DefectMap::new());
/// assert!(v.raw && v.reconfigured && v.operational);
/// ```
#[derive(Clone, Debug)]
pub struct OperationalYield {
    checker: FeasibilityChecker,
    evaluator: TrialEvaluator<HexCoord>,
    /// The in-scope cells whose faults matter (the assay cells).
    scope: BTreeSet<HexCoord>,
    /// All array cells in deterministic order — the fault-draw index space
    /// (faults *outside* the scope still block droplet routes).
    cells: Vec<HexCoord>,
    /// Whether the fault-free chip meets the budget (the shortcut verdict
    /// for fault-free trials).
    clean_feasible: bool,
    wear: Option<Wear>,
    threads: usize,
    /// Engine selection for the Bernoulli sweep path: `None` = auto
    /// (block engine at [`DEFAULT_BLOCK_TRIALS`]), `Some(0)` = scalar,
    /// `Some(n)` = block engine with `n`-trial batches.
    block_trials: Option<usize>,
}

impl OperationalYield {
    /// The paper's case study: the DTMB(2,6) in-vitro-diagnostics chip
    /// (252 primaries + 91 spares, 108 assay cells) running `panel` under
    /// the used-cells policy and the [`DEFAULT_SLACK`] relative budget.
    #[must_use]
    pub fn ivd(panel: AssayPanel) -> Self {
        let chip = ivd_dtmb26_chip();
        let batch = panel.batch();
        let budget = TimingBudget::with_slack(&chip, &batch, DEFAULT_SLACK)
            .expect("the case-study chip runs its own panels");
        OperationalYield::new(chip, batch, budget)
    }

    /// Builds an engine for an arbitrary chip description and batch. The
    /// reconfiguration scope is the chip's `assay_cells` (the used-cells
    /// policy of the paper's case study).
    #[must_use]
    pub fn new(chip: ChipDescription, batch: MultiplexedIvd, budget: TimingBudget) -> Self {
        let policy: ReconfigPolicy = used_cells_policy(&chip);
        let evaluator = TrialEvaluator::new(&chip.array, &policy);
        let scope: BTreeSet<HexCoord> = chip.assay_cells.iter().collect();
        let cells: Vec<HexCoord> = chip.array.region().iter().collect();
        let checker = FeasibilityChecker::new(chip, batch, budget);
        let clean_feasible = checker.is_feasible(&DefectMap::new(), None);
        OperationalYield {
            checker,
            evaluator,
            scope,
            cells,
            clean_feasible,
            wear: None,
            threads: 1,
            block_trials: None,
        }
    }

    /// Distributes trials across `threads` worker threads (`0` = one
    /// worker per available core). Results are identical regardless of
    /// thread count.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Selects the trial engine for [`OperationalYield::sweep`] and
    /// [`OperationalYield::estimate`]: `None` (the default) auto-selects
    /// the word-parallel block engine at [`DEFAULT_BLOCK_TRIALS`] trials
    /// per batch, `Some(0)` forces the scalar per-trial engine, and
    /// `Some(n)` runs the block engine with `n`-trial batches. Engines
    /// and batch widths are byte-identical; the stratified and
    /// defect-sampler paths always run scalar.
    #[must_use]
    pub fn with_block_trials(mut self, block_trials: Option<usize>) -> Self {
        self.block_trials = block_trials;
        self
    }

    /// The batch width the sweep path should run at, or `None` for the
    /// scalar engine.
    fn block_width(&self) -> Option<usize> {
        match self.block_trials {
            Some(0) => None,
            Some(n) => Some(n),
            None => Some(DEFAULT_BLOCK_TRIALS),
        }
    }

    /// Adds in-service wear on top of the manufacturing fault draw: each
    /// trial also samples `model`'s dielectric-breakdown failures over
    /// `horizon_hours` of operation and folds them into the chip's defect
    /// map — the chip is evaluated *as fielded*, not as fabricated.
    #[must_use]
    pub fn with_wear(mut self, model: MtbfModel, horizon_hours: f64) -> Self {
        self.wear = Some(Wear {
            model,
            horizon_hours,
        });
        self
    }

    /// The chip under evaluation.
    #[must_use]
    pub fn chip(&self) -> &ChipDescription {
        self.checker.chip()
    }

    /// The timing budget the operational tier enforces.
    #[must_use]
    pub fn budget(&self) -> TimingBudget {
        self.checker.budget()
    }

    /// Evaluates one explicit chip instance through all three tiers (plus
    /// the survivor bound the property tests sandwich `reconfigured`
    /// against). Allocates its own scratch; the Monte-Carlo paths reuse
    /// per-worker scratches instead.
    #[must_use]
    pub fn evaluate_map(&self, defects: &DefectMap) -> TrialVerdict {
        let mut scratch = self.evaluator.scratch();
        self.verdict(defects, &mut scratch)
    }

    /// The three-tier verdict for `defects`, using caller-owned scratch.
    fn verdict(&self, defects: &DefectMap, scratch: &mut TrialScratch) -> TrialVerdict {
        let array = &self.checker.chip().array;
        let mut raw = true;
        let mut survivor_bound = true;
        for cell in defects.faulty_cells() {
            if !self.scope.contains(&cell) {
                continue;
            }
            raw = false;
            if !array.adjacent_spares(cell).any(|s| !defects.is_faulty(s)) {
                survivor_bound = false;
                break;
            }
        }
        let plan = if survivor_bound {
            self.evaluator.reconfigure(defects, scratch)
        } else {
            // A faulty cell with no live spare can never be matched.
            None
        };
        let reconfigured = plan.is_some();
        let operational = match &plan {
            None => false,
            Some(_) if defects.is_fault_free() => self.clean_feasible,
            Some(plan) => self.checker.is_feasible(defects, Some(plan)),
        };
        TrialVerdict {
            raw,
            survivor_bound,
            reconfigured,
            operational,
        }
    }

    /// One trial against an ascending survival grid: a single uniform per
    /// cell is shared across every `p` (common random numbers), then each
    /// grid point's chip instance runs through the three tiers. Slots
    /// `3j..3j+3` of `out` receive `(raw, reconfigured, operational)` for
    /// `ps[j]`.
    fn trial_grid(&self, ps: &[f64], rng: &mut StdRng, state: &mut TrialState, out: &mut [bool]) {
        for u in state.uniforms.iter_mut() {
            *u = rng.gen();
        }
        let wear_map = self.wear.as_ref().map(|w| {
            w.model
                .inject_service_faults(self.checker.chip().array.region(), w.horizon_hours, rng)
        });
        for (j, &p) in ps.iter().enumerate() {
            let mut defects = DefectMap::from_cells(
                self.cells
                    .iter()
                    .zip(&state.uniforms)
                    .filter(|(_, &u)| u >= p)
                    .map(|(&c, _)| c),
            );
            if let Some(wear) = &wear_map {
                defects = defects.merged(wear);
            }
            let v = self.verdict(&defects, &mut state.scratch);
            out[3 * j] = v.raw;
            out[3 * j + 1] = v.reconfigured;
            out[3 * j + 2] = v.operational;
        }
    }

    /// Precomputes the word-parallel sweep geometry: where the in-scope
    /// assay cells sit in the fault-draw index space, and (per scope
    /// cell, CSR-packed) where their adjacent spares sit — so the block
    /// engine can evaluate the raw tier and the survivor bound on whole
    /// fault words without touching a [`DefectMap`].
    fn block_plan(&self) -> BlockPlan {
        let index_of: BTreeMap<HexCoord, u32> = self
            .cells
            .iter()
            .enumerate()
            .map(|(i, &c)| (c, i as u32))
            .collect();
        let array = &self.checker.chip().array;
        let mut scope_idx = Vec::new();
        let mut adj_offsets = vec![0u32];
        let mut adj_idx = Vec::new();
        for (i, cell) in self.cells.iter().enumerate() {
            if !self.scope.contains(cell) {
                continue;
            }
            scope_idx.push(i as u32);
            for s in array.adjacent_spares(*cell) {
                adj_idx.push(index_of[&s]);
            }
            adj_offsets.push(u32::try_from(adj_idx.len()).expect("adjacency fits u32"));
        }
        BlockPlan {
            scope_idx,
            adj_offsets,
            adj_idx,
            index_of,
        }
    }

    /// One batch of up-to-64-lane trial groups against the ascending
    /// grid. Per 64-lane group the sampler draws every cell's mantissa
    /// column once (common random numbers across the grid), the wear
    /// model (if any) continues each lane's stream exactly where the
    /// scalar engine would, and each grid point is then decided in three
    /// word-parallel tiers:
    ///
    /// 1. **fault-free lanes** — no fault anywhere: raw, reconfigured
    ///    and (iff the clean chip meets budget) operational, no matcher
    ///    or router invoked;
    /// 2. **survivor-bound failures** — some in-scope faulty cell has
    ///    every adjacent spare faulty: all three tiers false, decided by
    ///    an AND-fold over the spare columns;
    /// 3. **residue lanes** — faults present, survivor bound holds: the
    ///    defect map is rebuilt from the lane's bit column and runs the
    ///    scalar verdict (matcher + assay feasibility). The raw tier is
    ///    always counted word-parallel (`!scope_fault`).
    fn sweep_block(
        &self,
        plan: &BlockPlan,
        ps: &[f64],
        seeds: &[u64],
        state: &mut BlockState,
        out: &mut [u64],
    ) {
        let n = self.cells.len();
        for chunk in seeds.chunks(LANES) {
            state.sampler.reseed(chunk);
            let live = state.sampler.live_mask();
            for i in 0..n {
                let col: &mut [u64; LANES] = (&mut state.mantissa[i * LANES..(i + 1) * LANES])
                    .try_into()
                    .expect("column is LANES wide");
                state.sampler.mantissas(col);
            }
            state.wear_maps.clear();
            state.wear_words.iter_mut().for_each(|w| *w = 0);
            if let Some(w) = &self.wear {
                for lane in 0..chunk.len() {
                    let mut rng = state.sampler.resume_lane(lane);
                    let map = w.model.inject_service_faults(
                        self.checker.chip().array.region(),
                        w.horizon_hours,
                        &mut rng,
                    );
                    for cell in map.faulty_cells() {
                        state.wear_words[plan.index_of[&cell] as usize] |= 1u64 << lane;
                    }
                    state.wear_maps.push(map);
                }
            }
            for (j, &p) in ps.iter().enumerate() {
                let threshold = fault_threshold(p);
                let mut fault_any = 0u64;
                for i in 0..n {
                    let col: &[u64; LANES] = (&state.mantissa[i * LANES..(i + 1) * LANES])
                        .try_into()
                        .expect("column is LANES wide");
                    let mfg = pack_ge(col, threshold) & live;
                    state.mfg_words[i] = mfg;
                    let all = mfg | state.wear_words[i];
                    state.all_words[i] = all;
                    fault_any |= all;
                }
                let mut scope_fault = 0u64;
                let mut survivor_fail = 0u64;
                for (k, &sc) in plan.scope_idx.iter().enumerate() {
                    let w = state.all_words[sc as usize];
                    scope_fault |= w;
                    let spares = &plan.adj_idx
                        [plan.adj_offsets[k] as usize..plan.adj_offsets[k + 1] as usize];
                    // All-ones when the scope cell has no adjacent spare:
                    // any fault there is then an automatic bound failure,
                    // matching the scalar `any()` over an empty iterator.
                    let all_dead = spares
                        .iter()
                        .fold(u64::MAX, |acc, &s| acc & state.all_words[s as usize]);
                    survivor_fail |= w & all_dead;
                }
                let fault_free = live & !fault_any;
                let raw = live & !scope_fault;
                out[3 * j] += u64::from(raw.count_ones());
                out[3 * j + 1] += u64::from(fault_free.count_ones());
                if self.clean_feasible {
                    out[3 * j + 2] += u64::from(fault_free.count_ones());
                }
                let mut gray = live & fault_any & !survivor_fail;
                while gray != 0 {
                    let lane = gray.trailing_zeros() as usize;
                    gray &= gray - 1;
                    let bit = 1u64 << lane;
                    let mut defects = DefectMap::from_cells(
                        (0..n)
                            .filter(|&i| state.mfg_words[i] & bit != 0)
                            .map(|i| self.cells[i]),
                    );
                    if let Some(wear) = state.wear_maps.get(lane) {
                        defects = defects.merged(wear);
                    }
                    let v = self.verdict(&defects, &mut state.scratch);
                    debug_assert_eq!(
                        v.raw,
                        raw & bit != 0,
                        "word-parallel raw tier disagrees with the scalar verdict"
                    );
                    debug_assert!(v.survivor_bound, "survivor prefilter missed a failing lane");
                    out[3 * j + 1] += u64::from(v.reconfigured);
                    out[3 * j + 2] += u64::from(v.operational);
                }
            }
        }
    }

    /// Estimates all three tiers at survival probability `p`. Thread-count
    /// invariant; depends only on `(trials, seed)`.
    #[must_use]
    pub fn estimate(&self, p: f64, trials: u32, seed: u64) -> OperationalEstimate {
        self.sweep(&[p], trials, seed)
            .pop()
            .expect("one grid point in, one estimate out")
    }

    /// Estimates all three tiers under an **arbitrary defect sampler** —
    /// the hook the clustered wafer-defect model rides: `sample` draws one
    /// chip instance's defect map per trial (all randomness from the
    /// provided RNG). The reported `p` is [`f64::NAN`] because no single
    /// survival probability parameterises the model. In-service wear, when
    /// configured, is drawn after the manufacturing sample, as in the
    /// Bernoulli paths. Thread-count invariant; depends only on
    /// `(trials, seed)`. Always runs the scalar engine — an arbitrary
    /// sampler's draw stream cannot be transposed into lanes.
    #[must_use]
    pub fn estimate_with(
        &self,
        trials: u32,
        seed: u64,
        sample: impl Fn(&mut StdRng) -> DefectMap + Sync,
    ) -> OperationalEstimate {
        let estimates = MonteCarlo::new(trials, seed).tally_parallel(
            self.threads,
            3,
            || self.evaluator.scratch(),
            |rng, scratch, out| {
                let mut defects = sample(rng);
                if let Some(w) = &self.wear {
                    defects = defects.merged(&w.model.inject_service_faults(
                        self.checker.chip().array.region(),
                        w.horizon_hours,
                        rng,
                    ));
                }
                let v = self.verdict(&defects, scratch);
                out[0] = v.raw;
                out[1] = v.reconfigured;
                out[2] = v.operational;
            },
        );
        OperationalEstimate {
            p: f64::NAN,
            raw: estimates[0],
            reconfigured: estimates[1],
            operational: estimates[2],
        }
    }

    /// Estimates all three tiers with the **defect-count-stratified**
    /// rare-event estimator: the chip's fault count `K` is binomial over
    /// all array cells, so each tier's yield decomposes as
    /// `Σₖ P(K=k)·P(tier | K=k)`; every stratum places exactly `k` faults
    /// uniformly and pushes the same random chip through all three tiers.
    /// The assay pipeline makes each trial expensive, which is precisely
    /// where skipping the defect-free bulk pays the most.
    ///
    /// Thread-count invariant; depends only on `(budget, seed)`. Always
    /// runs the scalar engine: the strata already skip the defect-free
    /// bulk, which is where the block tiers earn their keep.
    ///
    /// # Panics
    ///
    /// Panics if in-service wear is configured (stratification conditions
    /// on the *manufacturing* defect count alone) or `p` is outside
    /// `[0, 1]`.
    #[must_use]
    pub fn estimate_stratified(
        &self,
        p: f64,
        budget: u32,
        seed: u64,
        config: &StratifiedConfig,
    ) -> StratifiedOperationalEstimate {
        assert!(
            self.wear.is_none(),
            "stratified estimation conditions on the manufacturing defect count; \
             in-service wear is not supported"
        );
        assert!(
            (0.0..=1.0).contains(&p),
            "survival probability must be in [0, 1], got {p}"
        );
        let cells = &self.cells;
        let mut tiers = StratifiedMonteCarlo::new(cells.len(), budget, seed)
            .with_threads(self.threads)
            .with_config(*config)
            .estimate_multi(
                1.0 - p,
                3,
                || StratifiedState {
                    perm: (0..cells.len() as u32).collect(),
                    scratch: self.evaluator.scratch(),
                },
                |k, rng, state, out| {
                    // Exactly-k placement over all array cells: partial
                    // Fisher–Yates on an identity-reset index buffer, so
                    // the draw never depends on scratch history.
                    for (i, slot) in state.perm.iter_mut().enumerate() {
                        *slot = i as u32;
                    }
                    for i in 0..k {
                        let j = rng.gen_range(i..cells.len());
                        state.perm.swap(i, j);
                    }
                    let defects =
                        DefectMap::from_cells(state.perm[..k].iter().map(|&i| cells[i as usize]));
                    let v = self.verdict(&defects, &mut state.scratch);
                    out[0] = v.raw;
                    out[1] = v.reconfigured;
                    out[2] = v.operational;
                },
            );
        let operational = tiers.pop().expect("three outcomes");
        let reconfigured = tiers.pop().expect("three outcomes");
        let raw = tiers.pop().expect("three outcomes");
        StratifiedOperationalEstimate {
            p,
            raw,
            reconfigured,
            operational,
        }
    }

    /// Sweeps an **ascending** survival grid in one batched Monte-Carlo
    /// pass: each trial draws one random chip and reports all three tiers
    /// at every `p` (common random numbers across the grid). Results are
    /// byte-identical for any thread count, and for any engine or batch
    /// width selected via [`OperationalYield::with_block_trials`].
    ///
    /// # Panics
    ///
    /// Panics if `ps` is not sorted ascending.
    #[must_use]
    pub fn sweep(&self, ps: &[f64], trials: u32, seed: u64) -> Vec<OperationalEstimate> {
        assert!(
            ps.windows(2).all(|w| w[0] <= w[1]),
            "survival grid must be ascending"
        );
        let mc = MonteCarlo::new(trials, seed);
        let estimates = match self.block_width() {
            Some(width) => {
                let plan = self.block_plan();
                mc.tally_blocks_with(
                    self.threads,
                    width,
                    3 * ps.len(),
                    || BlockState {
                        sampler: BlockSampler::new(&[]),
                        mantissa: vec![0; self.cells.len() * LANES],
                        mfg_words: vec![0; self.cells.len()],
                        all_words: vec![0; self.cells.len()],
                        wear_words: vec![0; self.cells.len()],
                        wear_maps: Vec::new(),
                        scratch: self.evaluator.scratch(),
                    },
                    |seeds, state, out| self.sweep_block(&plan, ps, seeds, state, out),
                )
            }
            None => mc.tally_parallel(
                self.threads,
                3 * ps.len(),
                || TrialState {
                    uniforms: vec![0.0; self.cells.len()],
                    scratch: self.evaluator.scratch(),
                },
                |rng, state, out| self.trial_grid(ps, rng, state, out),
            ),
        };
        ps.iter()
            .enumerate()
            .map(|(j, &p)| OperationalEstimate {
                p,
                raw: estimates[3 * j],
                reconfigured: estimates[3 * j + 1],
                operational: estimates[3 * j + 2],
            })
            .collect()
    }
}

/// Per-worker trial buffers: the per-cell uniform draw plus the matcher
/// scratch.
struct TrialState {
    uniforms: Vec<f64>,
    scratch: TrialScratch,
}

/// Word-parallel sweep geometry, precomputed once per sweep. All indices
/// are positions in the fault-draw cell order (`OperationalYield::cells`).
struct BlockPlan {
    /// Positions of the in-scope assay cells.
    scope_idx: Vec<u32>,
    /// CSR offsets into `adj_idx`, aligned with `scope_idx`.
    adj_offsets: Vec<u32>,
    /// Each scope cell's adjacent-spare positions, CSR-packed.
    adj_idx: Vec<u32>,
    /// `cells[i] → i`, for folding wear maps into lane bit columns.
    index_of: BTreeMap<HexCoord, u32>,
}

/// Per-worker buffers for the block engine: the lock-step sampler, the
/// per-cell mantissa columns shared across the grid, the per-cell
/// manufacturing/wear/combined fault words, the per-lane wear maps (for
/// residue-lane defect-map reconstruction) and the matcher scratch.
struct BlockState {
    sampler: BlockSampler,
    mantissa: Vec<u64>,
    mfg_words: Vec<u64>,
    all_words: Vec<u64>,
    wear_words: Vec<u64>,
    wear_maps: Vec<DefectMap>,
    scratch: TrialScratch,
}

/// Per-worker buffers for the stratified path: the exact-`k` placement
/// permutation plus the matcher scratch.
struct StratifiedState {
    perm: Vec<u32>,
    scratch: TrialScratch,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> OperationalYield {
        OperationalYield::ivd(AssayPanel::StandardIvd)
    }

    #[test]
    fn panel_metadata_round_trips() {
        for p in AssayPanel::ALL {
            assert_eq!(p.label().parse::<AssayPanel>().unwrap(), p);
            assert_eq!(p.to_string(), p.label());
            assert!(!p.batch().requests.is_empty());
        }
        assert!("nope".parse::<AssayPanel>().is_err());
    }

    #[test]
    fn extremes() {
        let eng = engine();
        let perfect = eng.estimate(1.0, 100, 1);
        assert_eq!(perfect.raw.point(), 1.0);
        assert_eq!(perfect.reconfigured.point(), 1.0);
        assert_eq!(perfect.operational.point(), 1.0);
        let dead = eng.estimate(0.0, 50, 1);
        assert_eq!(dead.raw.point(), 0.0);
        assert_eq!(dead.reconfigured.point(), 0.0);
        assert_eq!(dead.operational.point(), 0.0);
    }

    #[test]
    fn tier_ordering_holds_at_moderate_survival() {
        let eng = engine();
        let e = eng.estimate(0.95, 400, 9);
        assert!(e.operational.successes() <= e.reconfigured.successes());
        assert!(e.raw.successes() <= e.reconfigured.successes());
        // The paper's story: reconfiguration rescues far more chips than
        // survive raw at p = 0.95 (raw ≈ 0.95^108 ≈ 0.004).
        assert!(e.reconfigured.point() > e.raw.point() + 0.3);
    }

    #[test]
    fn estimates_are_thread_invariant() {
        let eng = engine();
        let seq = eng.estimate(0.96, 300, 21);
        for threads in [0, 2, 5] {
            let par = eng.clone().with_threads(threads).estimate(0.96, 300, 21);
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn sweep_shares_trials_and_is_monotone_per_tier() {
        let eng = engine();
        let ps = [0.93, 0.97, 1.0];
        let rows = eng.sweep(&ps, 300, 5);
        assert_eq!(rows.len(), 3);
        for w in rows.windows(2) {
            // Common random numbers: each tier's fault sets shrink as p
            // grows, and raw/reconfigured are monotone in the fault set.
            assert!(w[1].raw.successes() >= w[0].raw.successes());
            assert!(w[1].reconfigured.successes() >= w[0].reconfigured.successes());
        }
        for r in &rows {
            assert!(r.operational.successes() <= r.reconfigured.successes());
        }
        assert_eq!(rows.last().unwrap().operational.point(), 1.0);
        // Single-point estimate is the sweep's column.
        let single = eng.estimate(0.93, 300, 5);
        assert_eq!(single, rows[0]);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn sweep_rejects_unsorted_grids() {
        let _ = engine().sweep(&[0.9, 0.5], 10, 1);
    }

    #[test]
    fn wear_only_reduces_yield() {
        let eng = engine();
        let base = eng.estimate(0.97, 200, 13);
        let worn = eng
            .clone()
            .with_wear(MtbfModel::new(2_000.0, 1.0), 1_000.0)
            .estimate(0.97, 200, 13);
        assert!(worn.operational.successes() <= base.operational.successes());
        assert!(worn.reconfigured.successes() <= base.reconfigured.successes());
        assert!(worn.raw.successes() <= base.raw.successes());
    }

    #[test]
    fn stratified_tiers_keep_their_ordering() {
        let eng = engine();
        let e = eng.estimate_stratified(0.999, 400, 11, &StratifiedConfig::default());
        assert!(e.operational.point <= e.reconfigured.point + 1e-12);
        assert!(e.raw.point <= e.reconfigured.point + 1e-12);
        // All tiers share one allocation, so the spent trials agree.
        assert_eq!(e.raw.trials, e.operational.trials);
        // The raw tier varies with fault placement for every k >= 1, so
        // no structural bound applies: all non-unique strata are sampled
        // and the honest (smoothed) variance is strictly positive.
        assert!(e.raw.variance > 0.0);
        assert!(e.operational.variance > 0.0);
        // The defect-free stratum still dominates at p = 0.999, so the
        // estimator cannot do *worse* than naive sampling would.
        assert!(
            e.reconfigured.effective_trials() >= 0.5 * e.reconfigured.trials as f64,
            "effective {} vs spent {}",
            e.reconfigured.effective_trials(),
            e.reconfigured.trials
        );
    }

    #[test]
    fn stratified_agrees_with_naive_tiers() {
        let eng = engine();
        let p = 0.99;
        let naive = eng.estimate(p, 800, 19);
        let strat = eng.estimate_stratified(p, 800, 19, &StratifiedConfig::default());
        for (name, n, s) in [
            ("raw", &naive.raw, &strat.raw),
            ("reconfigured", &naive.reconfigured, &strat.reconfigured),
            ("operational", &naive.operational, &strat.operational),
        ] {
            let slack = 4.0 * (s.std_error() + n.margin95() / 1.96) + s.truncated_mass + 0.01;
            assert!(
                (n.point() - s.point).abs() < slack,
                "{name}: naive {} vs stratified {}",
                n.point(),
                s.point
            );
        }
    }

    #[test]
    fn stratified_is_thread_invariant() {
        let eng = engine();
        let seq = eng.estimate_stratified(0.995, 300, 23, &StratifiedConfig::default());
        for threads in [0, 3] {
            let par = eng.clone().with_threads(threads).estimate_stratified(
                0.995,
                300,
                23,
                &StratifiedConfig::default(),
            );
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    #[should_panic(expected = "wear is not supported")]
    fn stratified_rejects_wear() {
        let eng = engine().with_wear(MtbfModel::new(2_000.0, 1.0), 100.0);
        let _ = eng.estimate_stratified(0.99, 100, 1, &StratifiedConfig::default());
    }

    #[test]
    fn defect_sampler_hook_runs_the_three_tiers() {
        use dmfb_defects::injection::{Bernoulli, InjectionModel};
        let eng = engine();
        let region = eng.chip().array.region().clone();
        let model = Bernoulli::from_survival(0.97);
        let e = eng.estimate_with(300, 7, |rng| model.inject(&region, rng));
        assert!(e.p.is_nan(), "no single p parameterises a sampler");
        assert!(e.operational.successes() <= e.reconfigured.successes());
        assert!(e.raw.successes() <= e.reconfigured.successes());
        // Matches the Bernoulli engine statistically.
        let direct = eng.estimate(0.97, 300, 7);
        assert!(
            (e.reconfigured.point() - direct.reconfigured.point()).abs() < 0.1,
            "{} vs {}",
            e.reconfigured.point(),
            direct.reconfigured.point()
        );
        // Thread invariance.
        let par = eng
            .clone()
            .with_threads(4)
            .estimate_with(300, 7, |rng| model.inject(&region, rng));
        assert_eq!(par.reconfigured, e.reconfigured);
        assert_eq!(par.operational, e.operational);
    }

    #[test]
    fn verdict_on_explicit_single_fault() {
        let eng = engine();
        let mixer_cell = eng.chip().mixers[0].rendezvous();
        let v = eng.evaluate_map(&DefectMap::from_cells([mixer_cell]));
        assert!(!v.raw, "an assay-cell fault kills the raw tier");
        assert!(v.survivor_bound && v.reconfigured);
        assert!(v.operational, "one fault reconfigures and still schedules");
    }

    #[test]
    fn operational_point_conversion() {
        let e = engine().estimate(1.0, 10, 1);
        let pt = e.operational_point();
        assert_eq!(pt.x, 1.0);
        assert_eq!(pt.y, 1.0);
        assert_eq!(pt.trials, 10);
    }

    #[test]
    fn block_engine_is_byte_identical_to_scalar() {
        let eng = engine();
        let ps = [0.93, 0.97, 1.0];
        let scalar = eng.clone().with_block_trials(Some(0)).sweep(&ps, 200, 5);
        for block_trials in [None, Some(1), Some(64), Some(150)] {
            let block = eng
                .clone()
                .with_block_trials(block_trials)
                .sweep(&ps, 200, 5);
            assert_eq!(block, scalar, "block_trials={block_trials:?}");
        }
        // Thread invariance holds inside the block engine too.
        let threaded = eng
            .clone()
            .with_block_trials(Some(64))
            .with_threads(3)
            .sweep(&ps, 200, 5);
        assert_eq!(threaded, scalar);
    }

    #[test]
    fn block_engine_matches_scalar_under_wear() {
        // Wear draws must continue each lane's stream exactly where the
        // scalar engine's per-trial RNG left it after the cell uniforms.
        let eng = engine().with_wear(MtbfModel::new(2_000.0, 1.0), 1_000.0);
        let ps = [0.94, 0.99];
        let scalar = eng.clone().with_block_trials(Some(0)).sweep(&ps, 150, 3);
        for block_trials in [None, Some(33), Some(64)] {
            let block = eng
                .clone()
                .with_block_trials(block_trials)
                .sweep(&ps, 150, 3);
            assert_eq!(block, scalar, "block_trials={block_trials:?}");
        }
    }

    #[test]
    fn wear_trial_rng_keeps_grid_deterministic() {
        // The wear draw happens once per trial, after the uniforms; the
        // sweep must stay identical to single-point estimates per column.
        let eng = engine().with_wear(MtbfModel::new(5_000.0, 1.0), 500.0);
        let ps = [0.94, 0.99];
        let rows = eng.sweep(&ps, 150, 3);
        for (j, &p) in ps.iter().enumerate() {
            assert_eq!(rows[j], eng.estimate(p, 150, 3), "p={p}");
        }
    }
}
