//! Scheme-generic Monte-Carlo yield estimation.
//!
//! [`SchemeYield`] is the yield engine behind *every* redundancy design:
//! it owns a compiled [`TrialEvaluator`] (hex DTMB, square DTMB or
//! spare-row — anything implementing [`RedundancyScheme`]) and runs the
//! incremental bitset-matching fast path through the deterministic
//! parallel Monte-Carlo machinery of `dmfb-sim`. Estimates depend only on
//! `(trials, seed)`, never on thread count, and the batched sweep shares
//! common random numbers across the whole survival grid so each curve is
//! monotone trial-by-trial.
//!
//! The hexagonal [`MonteCarloYield`](crate::MonteCarloYield) front-end
//! delegates its `estimate_survival_fast` / `sweep_survival_batched`
//! methods here; non-hex schemes use this type directly (as the CLI
//! `--scheme` flag does).

use crate::monte_carlo::YieldPoint;
use dmfb_defects::DefectMap;
use dmfb_grid::{HexCoord, Topology};
use dmfb_reconfig::{RedundancyScheme, TrialEvaluator};
use dmfb_sim::{
    parallel_map, BernoulliEstimate, MonteCarlo, StratifiedConfig, StratifiedEstimate,
    StratifiedMonteCarlo,
};
use rand::rngs::StdRng;

/// One `(parameter, stratified estimate)` sample of a yield curve — the
/// rare-event counterpart of [`YieldPoint`], carrying the variance,
/// truncation and effective-trial bookkeeping of the stratified estimator.
#[derive(Clone, Debug, PartialEq)]
pub struct StratifiedPoint {
    /// The swept survival probability `p`.
    pub x: f64,
    /// The stratified estimate at `x`.
    pub estimate: StratifiedEstimate,
}

impl StratifiedPoint {
    /// Collapses the stratified bookkeeping into a plottable
    /// [`YieldPoint`] (the CI is the stratified normal-approximation
    /// interval, the trial count the trials actually spent).
    #[must_use]
    pub fn to_yield_point(&self) -> YieldPoint {
        YieldPoint {
            x: self.x,
            y: self.estimate.point,
            ci95: self.estimate.ci95(),
            trials: self.estimate.trials,
        }
    }
}

/// Default block width (trials per [`MonteCarlo::run_blocks_with`] seed
/// group) when the engine is left on auto — a few word groups per block
/// keeps the per-block seed-derivation overhead negligible without
/// starving the thread scheduler of blocks.
pub const DEFAULT_BLOCK_TRIALS: usize = 256;

/// Monte-Carlo yield estimator generic over the redundancy scheme.
///
/// # Example
///
/// ```
/// use dmfb_grid::SquareRegion;
/// use dmfb_reconfig::SquarePattern;
/// use dmfb_yield::SchemeYield;
///
/// let region = SquareRegion::rect(12, 12);
/// let est = SchemeYield::from_scheme(&region, &SquarePattern::Checkerboard);
/// let y = est.estimate_survival(0.95, 2_000, 7);
/// assert!(y.point() > 0.5);
/// ```
#[derive(Clone, Debug)]
pub struct SchemeYield<C: Copy + Ord = HexCoord> {
    label: String,
    evaluator: TrialEvaluator<C>,
    threads: usize,
    /// `None` = auto ([`DEFAULT_BLOCK_TRIALS`]); `Some(0)` = scalar
    /// engine; `Some(n)` = block engine with width `n`.
    block_trials: Option<usize>,
}

impl<C: Copy + Ord + Send + Sync> SchemeYield<C> {
    /// Compiles `scheme` over `topo` into the fast evaluator. Defaults to
    /// single-threaded execution; see [`SchemeYield::with_threads`].
    #[must_use]
    pub fn from_scheme<T>(topo: &T, scheme: &impl RedundancyScheme<T>) -> Self
    where
        T: Topology<Coord = C>,
    {
        SchemeYield {
            label: scheme.label(),
            evaluator: TrialEvaluator::for_scheme(topo, scheme),
            threads: 1,
            block_trials: None,
        }
    }

    /// Wraps an already-built evaluator (the hex front-end's path, where
    /// the evaluator carries a reconfiguration policy).
    #[must_use]
    pub fn from_evaluator(label: impl Into<String>, evaluator: TrialEvaluator<C>) -> Self {
        SchemeYield {
            label: label.into(),
            evaluator,
            threads: 1,
            block_trials: None,
        }
    }

    /// Distributes trials across `threads` worker threads (`0` = one
    /// worker per available core). Results are identical regardless of
    /// thread count.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Selects the trial engine: `None` leaves the word-parallel block
    /// engine on auto ([`DEFAULT_BLOCK_TRIALS`] trials per block),
    /// `Some(0)` forces the scalar per-trial engine, and `Some(n)` runs
    /// blocks of `n` trials. The choice never changes any estimate — the
    /// block engine is byte-identical to the scalar one at every width —
    /// only how fast it is computed.
    #[must_use]
    pub fn with_block_trials(mut self, block_trials: Option<usize>) -> Self {
        self.block_trials = block_trials;
        self
    }

    /// The effective block width: `None` means the scalar engine.
    fn block_width(&self) -> Option<usize> {
        match self.block_trials {
            Some(0) => None,
            Some(n) => Some(n),
            None => Some(DEFAULT_BLOCK_TRIALS),
        }
    }

    /// The scheme label (used in reports and bench artifacts).
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The compiled evaluator.
    #[must_use]
    pub fn evaluator(&self) -> &TrialEvaluator<C> {
        &self.evaluator
    }

    /// Evaluates one explicit fault set and, when it is tolerable, returns
    /// the **assignment** behind the verdict — one `(unit, resource)`
    /// index pair per faulty unit — instead of a bare bool. `None` means
    /// the chip cannot be reconfigured. Map indices to lattice cells with
    /// [`TrialEvaluator::unit_coords`] / [`TrialEvaluator::resource_coords`].
    ///
    /// # Example
    ///
    /// ```
    /// use dmfb_grid::{SquareCoord, SquareRegion};
    /// use dmfb_reconfig::SquarePattern;
    /// use dmfb_yield::SchemeYield;
    ///
    /// let est = SchemeYield::from_scheme(&SquareRegion::rect(8, 8), &SquarePattern::Checkerboard);
    /// let pairs = est
    ///     .assignment(&[SquareCoord::new(1, 0)])
    ///     .expect("one fault on a checkerboard is tolerable");
    /// assert_eq!(pairs.len(), 1);
    /// ```
    #[must_use]
    pub fn assignment(&self, faulty: &[C]) -> Option<Vec<(usize, usize)>> {
        let mut scratch = self.evaluator.scratch();
        self.evaluator
            .evaluate_faulty_cells_assignment(faulty, &mut scratch)
    }

    /// Estimates yield when every relevant cell survives independently
    /// with probability `p`. On the (default) block engine, trials run 64
    /// per word through the tiered sample → classify → match pipeline of
    /// [`dmfb_reconfig::block`]; on the scalar engine
    /// ([`SchemeYield::with_block_trials`]`(Some(0))`), one at a time
    /// through [`TrialEvaluator::survival_trial`]. Both give byte-identical
    /// estimates for any thread count.
    #[must_use]
    pub fn estimate_survival(&self, p: f64, trials: u32, seed: u64) -> BernoulliEstimate {
        let mc = MonteCarlo::new(trials, seed);
        match self.block_width() {
            Some(width) => mc.run_blocks_with(
                self.threads,
                width,
                || self.evaluator.block_scratch(),
                |seeds, block| self.evaluator.survival_block(p, seeds, block),
            ),
            None => mc.run_parallel_with(
                self.threads,
                || self.evaluator.scratch(),
                |rng, scratch| self.evaluator.survival_trial(p, rng, scratch),
            ),
        }
    }

    /// Estimates yield with the **defect-count-stratified** rare-event
    /// estimator: the survival probability is decomposed as
    /// `Σₖ P(K=k)·P(survive | K=k)` over the evaluator's relevant cells,
    /// each stratum sampled with exactly `k` faults via
    /// [`TrialEvaluator::exact_fault_trial`], trials allocated by Neyman
    /// weights after a pilot pass, and negligible strata truncated below
    /// `config.tolerance`.
    ///
    /// At high survival (`p ≥ 0.999`) this reaches the same confidence
    /// interval as [`SchemeYield::estimate_survival`] with an order of
    /// magnitude fewer array evaluations, because the defect-free
    /// stratum — the overwhelming bulk of the probability mass — is
    /// resolved exactly without sampling. `budget` bounds the total
    /// trials spent; the estimate reports how many were actually used and
    /// the naive-equivalent effective count
    /// ([`StratifiedEstimate::effective_trials`]). Deterministic in
    /// `(budget, seed)` and independent of thread count.
    #[must_use]
    pub fn estimate_survival_stratified(
        &self,
        p: f64,
        budget: u32,
        seed: u64,
        config: &StratifiedConfig,
    ) -> StratifiedEstimate {
        assert!(
            (0.0..=1.0).contains(&p),
            "survival probability must be in [0, 1], got {p}"
        );
        let strat = StratifiedMonteCarlo::new(self.evaluator.cell_count(), budget, seed)
            .with_threads(self.threads)
            .with_config(*config)
            // Hall-type structural bound: strata at or below it are
            // provably tolerable and resolve exactly instead of being
            // sampled — the k = 1 stratum usually carries most of the
            // non-defect-free mass at p → 1.
            .with_proven_tolerable(self.evaluator.guaranteed_tolerable_faults());
        match self.block_width() {
            Some(width) => strat.estimate_block(
                1.0 - p,
                width,
                || self.evaluator.block_scratch(),
                |k, seeds, block| self.evaluator.exact_fault_block(k, seeds, block),
            ),
            None => strat.estimate(
                1.0 - p,
                || self.evaluator.scratch(),
                |k, rng, scratch| self.evaluator.exact_fault_trial(k, rng, scratch),
            ),
        }
    }

    /// Sweeps survival probabilities through the stratified estimator,
    /// one independent stratified experiment per grid point (seeded by
    /// the point index; `budget` trials each), parallelised over points
    /// like [`SchemeYield::sweep_survival`]. Per-point results are
    /// identical to a sequential sweep for any thread count.
    #[must_use]
    pub fn sweep_survival_stratified(
        &self,
        ps: &[f64],
        budget: u32,
        seed: u64,
        config: &StratifiedConfig,
    ) -> Vec<StratifiedPoint> {
        let (outer, inner) = crate::monte_carlo::sweep_thread_split(self.threads, ps.len());
        let point = self.clone().with_threads(inner);
        parallel_map(outer, ps, |i, &p| StratifiedPoint {
            x: p,
            estimate: point.estimate_survival_stratified(
                p,
                budget,
                seed.wrapping_add(i as u64),
                config,
            ),
        })
    }

    /// Estimates yield under an arbitrary defect sampler — the hook the
    /// clustered-defect model rides through every scheme: `sample` draws
    /// one chip instance's defect map per trial (all randomness from the
    /// provided RNG), and the evaluator decides tolerability. Results are
    /// deterministic in `(trials, seed)` and independent of thread count.
    ///
    /// Always runs the scalar engine: an arbitrary sampler's draw stream
    /// cannot be transposed into fault words without changing it, so
    /// [`SchemeYield::with_block_trials`] has no effect here.
    #[must_use]
    pub fn estimate_with_defects(
        &self,
        trials: u32,
        seed: u64,
        sample: impl Fn(&mut StdRng) -> DefectMap<C> + Sync,
    ) -> BernoulliEstimate {
        MonteCarlo::new(trials, seed).run_parallel_with(
            self.threads,
            || self.evaluator.scratch(),
            |rng, scratch| {
                let defects = sample(rng);
                self.evaluator.evaluate_defects(&defects, scratch)
            },
        )
    }

    /// Sweeps an **ascending** survival grid in one batched Monte-Carlo
    /// pass: each trial draws a single random chip (common random numbers
    /// across the grid) and reports tolerability at every `p` at once via
    /// the monotone threshold search in
    /// [`TrialEvaluator::survival_trial_grid`]. Results are byte-identical
    /// for any thread count.
    ///
    /// # Panics
    ///
    /// Panics if `ps` is not sorted ascending.
    #[must_use]
    pub fn sweep_survival_batched(&self, ps: &[f64], trials: u32, seed: u64) -> Vec<YieldPoint> {
        let mc = MonteCarlo::new(trials, seed);
        let estimates = match self.block_width() {
            Some(width) => mc.tally_blocks_with(
                self.threads,
                width,
                ps.len(),
                || self.evaluator.block_scratch(),
                |seeds, block, counts| {
                    self.evaluator.survival_grid_block(ps, seeds, block, counts);
                },
            ),
            None => mc.tally_parallel(
                self.threads,
                ps.len(),
                || self.evaluator.scratch(),
                |rng, scratch, out| self.evaluator.survival_trial_grid(ps, rng, scratch, out),
            ),
        };
        ps.iter()
            .zip(estimates)
            .map(|(&p, est)| YieldPoint::from_estimate(p, &est))
            .collect()
    }

    /// Sweeps survival probabilities with an **independent** experiment
    /// per grid point (each point seeded by its index), parallelised over
    /// points with leftover workers running inside each point's trial
    /// loop (the same `sweep_thread_split` policy as the hex front-end).
    /// Per-point results are identical to a sequential sweep.
    #[must_use]
    pub fn sweep_survival(&self, ps: &[f64], trials: u32, seed: u64) -> Vec<YieldPoint> {
        let (outer, inner) = crate::monte_carlo::sweep_thread_split(self.threads, ps.len());
        let point = self.clone().with_threads(inner);
        parallel_map(outer, ps, |i, &p| {
            let est = point.estimate_survival(p, trials, seed.wrapping_add(i as u64));
            YieldPoint::from_estimate(p, &est)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmfb_grid::SquareRegion;
    use dmfb_reconfig::shifted::{ModuleBand, SpareRowArray};
    use dmfb_reconfig::SquarePattern;

    fn square(pattern: SquarePattern) -> SchemeYield<dmfb_grid::SquareCoord> {
        SchemeYield::from_scheme(&SquareRegion::rect(10, 10), &pattern)
    }

    fn spare_rows() -> SchemeYield<dmfb_grid::SquareCoord> {
        let array = SpareRowArray::new(
            8,
            vec![ModuleBand {
                name: "M".into(),
                rows: 6,
            }],
            2,
        );
        SchemeYield::from_scheme(&array.region(), &array)
    }

    #[test]
    fn extremes_for_every_scheme() {
        for est in [
            square(SquarePattern::PerfectCode),
            square(SquarePattern::Checkerboard),
            spare_rows(),
        ] {
            assert_eq!(est.estimate_survival(1.0, 200, 1).point(), 1.0);
            assert!(est.estimate_survival(0.0, 200, 1).point() < 1.0);
        }
        // Zero survival with the quarter pattern is always fatal (odd/odd
        // cells have no spare at all).
        assert_eq!(
            square(SquarePattern::Quarter)
                .estimate_survival(0.0, 200, 1)
                .point(),
            0.0
        );
    }

    #[test]
    fn redundancy_order_on_the_square_lattice() {
        // More spares per primary tolerate more faults: checkerboard
        // (s = 4) beats stripes (s = 2) beats perfect code (s = 1).
        let p = 0.93;
        let y1 = square(SquarePattern::PerfectCode)
            .estimate_survival(p, 3_000, 5)
            .point();
        let y2 = square(SquarePattern::Stripes)
            .estimate_survival(p, 3_000, 5)
            .point();
        let y4 = square(SquarePattern::Checkerboard)
            .estimate_survival(p, 3_000, 5)
            .point();
        assert!(y4 >= y2 - 0.02, "checkerboard {y4} vs stripes {y2}");
        assert!(y2 >= y1 - 0.02, "stripes {y2} vs perfect-code {y1}");
    }

    #[test]
    fn batched_sweep_is_monotone_and_thread_invariant() {
        let ps = [0.85, 0.92, 0.97, 1.0];
        for est in [square(SquarePattern::Stripes), spare_rows()] {
            let seq = est.sweep_survival_batched(&ps, 1_000, 47);
            for w in seq.windows(2) {
                assert!(w[1].y >= w[0].y, "batched curve must be monotone");
            }
            assert_eq!(seq.last().unwrap().y, 1.0, "p = 1 never fails");
            for threads in [0, 2, 5] {
                let par = est
                    .clone()
                    .with_threads(threads)
                    .sweep_survival_batched(&ps, 1_000, 47);
                assert_eq!(par, seq, "threads={threads}");
            }
        }
    }

    #[test]
    fn block_engine_is_byte_identical_to_scalar() {
        let ps = [0.85, 0.92, 0.97, 1.0];
        for est in [
            square(SquarePattern::PerfectCode),
            square(SquarePattern::Checkerboard),
            square(SquarePattern::Stripes),
            spare_rows(),
        ] {
            let scalar = est.clone().with_block_trials(Some(0));
            let survival = scalar.estimate_survival(0.95, 1_500, 11);
            let sweep = scalar.sweep_survival_batched(&ps, 800, 3);
            let strat =
                scalar.estimate_survival_stratified(0.995, 1_200, 7, &StratifiedConfig::default());
            // None = auto (the default engine) plus explicit widths that
            // split trials across partial and multiple 64-lane groups.
            for block_trials in [None, Some(1), Some(64), Some(333)] {
                let block = est.clone().with_block_trials(block_trials);
                assert_eq!(
                    block.estimate_survival(0.95, 1_500, 11),
                    survival,
                    "survival, block_trials={block_trials:?}"
                );
                assert_eq!(
                    block.sweep_survival_batched(&ps, 800, 3),
                    sweep,
                    "sweep, block_trials={block_trials:?}"
                );
                assert_eq!(
                    block.estimate_survival_stratified(
                        0.995,
                        1_200,
                        7,
                        &StratifiedConfig::default()
                    ),
                    strat,
                    "stratified, block_trials={block_trials:?}"
                );
            }
        }
    }

    #[test]
    fn per_point_sweep_matches_batched_statistically() {
        let est = square(SquarePattern::Checkerboard);
        let ps = [0.90, 0.96];
        let a = est.sweep_survival(&ps, 4_000, 9);
        let b = est.sweep_survival_batched(&ps, 4_000, 9);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.x, y.x);
            assert!((x.y - y.y).abs() < 0.04, "{} vs {}", x.y, y.y);
        }
    }

    #[test]
    fn spare_row_yield_matches_closed_form() {
        // P(tolerable) = P(#faulty rows <= spares); rows fail
        // independently with probability 1 - p^width. With one band of r
        // rows and s spares this is a binomial tail — check against it.
        let width = 6u32;
        let rows = 5u32;
        let spares = 1u32;
        let array = SpareRowArray::new(
            width,
            vec![ModuleBand {
                name: "M".into(),
                rows,
            }],
            spares,
        );
        let est = SchemeYield::from_scheme(&array.region(), &array);
        let p: f64 = 0.97;
        let row_ok = p.powi(width as i32);
        let mut expected = 0.0;
        for k in 0..=spares {
            let comb = match k {
                0 => 1.0,
                1 => f64::from(rows),
                _ => unreachable!("spares = 1"),
            };
            expected += comb * (1.0 - row_ok).powi(k as i32) * row_ok.powi((rows - k) as i32);
        }
        let got = est.estimate_survival(p, 20_000, 3).point();
        assert!(
            (got - expected).abs() < 0.02,
            "mc {got} vs closed {expected}"
        );
    }

    #[test]
    fn assignment_exposes_the_matching_behind_the_verdict() {
        use dmfb_grid::SquareCoord;
        let est = spare_rows();
        // One faulty cell faults its whole module row; the assignment maps
        // that row onto one of the two indestructible spare rows.
        let pairs = est.assignment(&[SquareCoord::new(2, 1)]).unwrap();
        assert_eq!(pairs.len(), 1);
        let (unit, resource) = pairs[0];
        let row: Vec<SquareCoord> = est.evaluator().unit_coords(unit).collect();
        assert!(row.contains(&SquareCoord::new(2, 1)));
        assert_eq!(est.evaluator().resource_coords(resource).count(), 0);
        // Exceeding the spare rows: no assignment exists.
        assert!(est
            .assignment(&[
                SquareCoord::new(0, 0),
                SquareCoord::new(0, 1),
                SquareCoord::new(0, 2),
            ])
            .is_none());
        // Fault-free: an empty assignment, not a stale one.
        assert_eq!(est.assignment(&[]), Some(Vec::new()));
    }

    #[test]
    fn stratified_matches_spare_row_closed_form() {
        use crate::analytical;
        let est = spare_rows();
        let p: f64 = 0.995;
        let strat = est.estimate_survival_stratified(p, 6_000, 3, &StratifiedConfig::default());
        // The fixture: width 8, 6 module rows, 2 *indestructible* spare
        // rows — the exact yield is the binomial tail over module rows.
        let exact = analytical::at_most_k_failures(p.powi(8), 6, 2);
        assert!(
            (strat.point - exact).abs() < 4.0 * strat.std_error() + strat.truncated_mass + 2e-3,
            "stratified {} vs closed form {exact} (σ {})",
            strat.point,
            strat.std_error()
        );
        assert!(strat.trials <= 6_000 + strat.strata.len() as u64);
    }

    #[test]
    fn stratified_extremes_resolve_exactly() {
        let est = square(SquarePattern::Checkerboard);
        let perfect = est.estimate_survival_stratified(1.0, 100, 1, &StratifiedConfig::default());
        assert_eq!(perfect.point, 1.0);
        assert_eq!(perfect.variance, 0.0);
        assert_eq!(perfect.trials, 1, "p = 1 is one deterministic stratum");
        let dead = est.estimate_survival_stratified(0.0, 100, 1, &StratifiedConfig::default());
        assert_eq!(dead.point, 0.0);
        assert_eq!(dead.trials, 1);
    }

    #[test]
    fn stratified_is_thread_invariant() {
        let est = square(SquarePattern::Stripes);
        let config = StratifiedConfig::default();
        let seq = est.estimate_survival_stratified(0.97, 2_000, 13, &config);
        for threads in [0, 2, 5] {
            let par = est
                .clone()
                .with_threads(threads)
                .estimate_survival_stratified(0.97, 2_000, 13, &config);
            assert_eq!(par, seq, "threads={threads}");
        }
        let sweep_seq = est.sweep_survival_stratified(&[0.95, 0.99], 800, 7, &config);
        for threads in [0, 3] {
            let par = est.clone().with_threads(threads).sweep_survival_stratified(
                &[0.95, 0.99],
                800,
                7,
                &config,
            );
            assert_eq!(par, sweep_seq, "threads={threads}");
        }
    }

    #[test]
    fn stratified_beats_naive_effective_trials_in_the_rare_regime() {
        // At p = 0.999 almost every naive trial lands on a defect-free
        // chip; the stratified estimator must turn its budget into an
        // order of magnitude more effective samples.
        let est = square(SquarePattern::Checkerboard);
        let strat = est.estimate_survival_stratified(0.999, 2_000, 5, &StratifiedConfig::default());
        assert!(
            strat.effective_trials() >= 10.0 * strat.trials as f64,
            "effective {} vs spent {}",
            strat.effective_trials(),
            strat.trials
        );
        let pt = StratifiedPoint {
            x: 0.999,
            estimate: strat.clone(),
        }
        .to_yield_point();
        assert_eq!(pt.y, strat.point);
        assert_eq!(pt.trials, strat.trials);
    }

    #[test]
    fn defect_sampler_hook_matches_bernoulli_engine() {
        use dmfb_defects::injection::Bernoulli;
        use dmfb_grid::SquareRegion;
        let region = SquareRegion::rect(10, 10);
        let est = SchemeYield::from_scheme(&region, &SquarePattern::Checkerboard);
        let model = Bernoulli::from_survival(0.93);
        let via_sampler = est.estimate_with_defects(4_000, 9, |rng| model.inject_in(&region, rng));
        let direct = est.estimate_survival(0.93, 4_000, 9);
        assert!(
            (via_sampler.point() - direct.point()).abs() < 0.04,
            "{} vs {}",
            via_sampler.point(),
            direct.point()
        );
        // Thread invariance of the sampler path.
        let par = est
            .clone()
            .with_threads(4)
            .estimate_with_defects(4_000, 9, |rng| model.inject_in(&region, rng));
        assert_eq!(par, via_sampler);
    }

    #[test]
    fn label_flows_through() {
        assert!(square(SquarePattern::Stripes).label().contains("stripes"));
        assert!(spare_rows().label().contains("spare-rows"));
    }
}
