//! Closed-form yield models (paper Section 6, Figure 7).

/// Yield of an `n`-cell array with no redundancy: every cell must survive,
/// so `Y = pⁿ`.
///
/// This is both the Figure 7 baseline and the paper's Section 7 headline:
/// the first fabricated multiplexed-diagnostics chip has 108 assay cells
/// and therefore yields only `0.99¹⁰⁸ ≈ 0.3378` at 99% cell survival.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
#[must_use]
pub fn no_redundancy_yield(p: f64, n: usize) -> f64 {
    assert_probability(p);
    p.powi(i32::try_from(n).expect("cell count fits i32"))
}

/// Yield of one DTMB(1,6) cluster — one spare surrounded by six primaries:
/// the cluster survives iff at most one of its seven cells fails, i.e.
/// `Yc = p⁷ + 7·p⁶·(1 − p)`.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
#[must_use]
pub fn dtmb16_cluster_yield(p: f64) -> f64 {
    assert_probability(p);
    p.powi(7) + 7.0 * p.powi(6) * (1.0 - p)
}

/// Analytical yield of a DTMB(1,6) array with `n` primary cells, viewed as
/// `n/6` independent clusters: `Y = Yc^(n/6)`.
///
/// The paper notes the division into clusters is approximate for finite
/// arrays ("A biochip with n primary cells can be approximately divided
/// into n/6 clusters"); the Monte-Carlo estimator quantifies the gap.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
#[must_use]
pub fn dtmb16_yield(p: f64, primaries: usize) -> f64 {
    assert_probability(p);
    dtmb16_cluster_yield(p).powf(primaries as f64 / 6.0)
}

/// Probability that at most `k` of `n` independent cells fail when each
/// fails with probability `q = 1 − p` (binomial CDF). Useful for k-of-n
/// redundancy bounds.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
#[must_use]
pub fn at_most_k_failures(p: f64, n: usize, k: usize) -> f64 {
    assert_probability(p);
    let q = 1.0 - p;
    let mut sum = 0.0;
    for i in 0..=k.min(n) {
        sum += binomial(n, i) * q.powi(i as i32) * p.powi((n - i) as i32);
    }
    sum.min(1.0)
}

/// Upper bound on the yield of any DTMB(s, p) array with `n` primaries and
/// `m` spares: the chip certainly dies once more than `m` cells fail.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
#[must_use]
pub fn spare_count_upper_bound(p: f64, primaries: usize, spares: usize) -> f64 {
    at_most_k_failures(p, primaries + spares, spares)
}

/// Independent-repair approximation for a DTMB(s, ·) design: a primary
/// cell is lost only if it fails *and* all `s` of its adjacent spares fail,
/// so `Y ≈ (1 − q^(s+1))ⁿ` with `q = 1 − p`.
///
/// The approximation ignores spare contention (two faulty primaries
/// fighting over a shared spare), so it sits *above* the Monte-Carlo truth
/// for the (·, 6) designs where each spare serves six primaries; the gap
/// is a direct measurement of how much contention costs. For DTMB(1,6)
/// this coincides with treating each primary's cluster independently.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
#[must_use]
pub fn independent_repair_yield(p: f64, primaries: usize, spares_per_primary: usize) -> f64 {
    assert_probability(p);
    let q = 1.0 - p;
    (1.0 - q.powi(spares_per_primary as i32 + 1))
        .powi(i32::try_from(primaries).expect("cell count fits i32"))
}

/// Closed-form yield of the boundary spare-row baseline (paper Figure 2)
/// on a `width`-column array with `module_rows` working rows and
/// `spare_rows` spare rows.
///
/// Shifted replacement tolerates a chip iff the number of faulty module
/// rows does not exceed the number of *fault-free* spare rows. With i.i.d.
/// cell survival `p`, each row survives with `p_row = p^width`
/// independently, so the yield is
/// `Σ_{i,j : i ≤ spare_rows − j} P(i faulty module rows) · P(j faulty spare rows)`.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]` or `width == 0`.
#[must_use]
pub fn spare_row_yield(p: f64, width: usize, module_rows: usize, spare_rows: usize) -> f64 {
    assert_probability(p);
    assert!(width > 0, "array must have at least one column");
    let p_row = p.powi(i32::try_from(width).expect("width fits i32"));
    let q_row = 1.0 - p_row;
    let prob_faulty =
        |n: usize, k: usize| binomial(n, k) * q_row.powi(k as i32) * p_row.powi((n - k) as i32);
    let mut yield_total = 0.0;
    for j in 0..=spare_rows {
        let healthy_spares = spare_rows - j;
        let p_j = prob_faulty(spare_rows, j);
        for i in 0..=healthy_spares.min(module_rows) {
            yield_total += p_j * prob_faulty(module_rows, i);
        }
    }
    yield_total.min(1.0)
}

/// Binomial coefficient as `f64` (exact for the modest sizes used here).
#[must_use]
pub fn binomial(n: usize, k: usize) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut num = 1.0f64;
    for i in 0..k {
        num = num * (n - i) as f64 / (i + 1) as f64;
    }
    num
}

fn assert_probability(p: f64) {
    assert!(
        (0.0..=1.0).contains(&p),
        "survival probability must be in [0, 1], got {p}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_section7_headline_number() {
        // "It is only 0.3378 even if the survival probability of a single
        // cell is as high as 0.99" for the 108-cell chip.
        let y = no_redundancy_yield(0.99, 108);
        assert!((y - 0.3378).abs() < 5e-4, "got {y}");
    }

    #[test]
    fn cluster_yield_closed_form_samples() {
        // p = 0.95: 0.95^7 + 7*0.95^6*0.05
        let y = dtmb16_cluster_yield(0.95);
        let expected = 0.95f64.powi(7) + 7.0 * 0.95f64.powi(6) * 0.05;
        assert!((y - expected).abs() < 1e-15);
        assert!((dtmb16_cluster_yield(1.0) - 1.0).abs() < 1e-15);
        assert_eq!(dtmb16_cluster_yield(0.0), 0.0);
    }

    #[test]
    fn dtmb16_beats_no_redundancy() {
        for &p in &[0.90, 0.95, 0.99] {
            for &n in &[60usize, 120, 240] {
                assert!(
                    dtmb16_yield(p, n) > no_redundancy_yield(p, n),
                    "p={p}, n={n}"
                );
            }
        }
    }

    #[test]
    fn figure7_sample_point() {
        // p = 0.95, n = 100: Yc ≈ 0.9556, Y ≈ 0.9556^(100/6) ≈ 0.469.
        let y = dtmb16_yield(0.95, 100);
        assert!((y - 0.469).abs() < 5e-3, "got {y}");
    }

    #[test]
    fn yield_monotone_in_p_and_decreasing_in_n() {
        assert!(dtmb16_yield(0.96, 120) > dtmb16_yield(0.94, 120));
        assert!(dtmb16_yield(0.95, 60) > dtmb16_yield(0.95, 240));
        assert!(no_redundancy_yield(0.96, 120) > no_redundancy_yield(0.94, 120));
    }

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(5, 0), 1.0);
        assert_eq!(binomial(5, 5), 1.0);
        assert_eq!(binomial(5, 2), 10.0);
        assert_eq!(binomial(10, 3), 120.0);
        assert_eq!(binomial(3, 4), 0.0);
    }

    #[test]
    fn binomial_cdf_limits() {
        assert!((at_most_k_failures(0.9, 10, 10) - 1.0).abs() < 1e-12);
        let none = at_most_k_failures(0.9, 10, 0);
        assert!((none - 0.9f64.powi(10)).abs() < 1e-12);
        // CDF is monotone in k.
        for k in 0..10 {
            assert!(at_most_k_failures(0.9, 10, k) <= at_most_k_failures(0.9, 10, k + 1) + 1e-15);
        }
    }

    #[test]
    fn upper_bound_dominates_cluster_model() {
        // The spare-count bound ignores locality, so it must be >= the
        // exact DTMB(1,6) yield (n primaries, n/6 spares).
        for &p in &[0.90, 0.95, 0.99] {
            let n = 120;
            let bound = spare_count_upper_bound(p, n, n / 6);
            assert!(bound >= dtmb16_yield(p, n) - 1e-12, "p={p}");
        }
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn rejects_bad_probability() {
        let _ = no_redundancy_yield(1.2, 10);
    }

    #[test]
    fn spare_row_yield_properties() {
        // No spare rows: the chip must be entirely fault-free.
        let none = spare_row_yield(0.95, 8, 6, 0);
        assert!((none - 0.95f64.powi(48)).abs() < 1e-12);
        // Perfect cells: always yields.
        assert!((spare_row_yield(1.0, 8, 6, 1) - 1.0).abs() < 1e-12);
        // More spare rows never hurt.
        for k in 0..3 {
            assert!(spare_row_yield(0.95, 8, 6, k + 1) >= spare_row_yield(0.95, 8, 6, k) - 1e-12);
        }
        // At equal overhead, interstitial DTMB beats the spare-row scheme:
        // 48 primaries + 1 spare row of 8 cells (RR = 1/6) vs DTMB(1,6).
        let baseline = spare_row_yield(0.95, 8, 6, 1);
        let interstitial = dtmb16_yield(0.95, 48);
        assert!(
            interstitial > baseline,
            "DTMB(1,6) {interstitial} must beat spare-row {baseline} at equal RR"
        );
    }

    #[test]
    fn independent_repair_brackets_sensibly() {
        // s = 0 degenerates to the no-redundancy power law.
        for &p in &[0.9, 0.95, 0.99] {
            assert!(
                (independent_repair_yield(p, 50, 0) - no_redundancy_yield(p, 50)).abs() < 1e-12
            );
        }
        // More spares per primary never hurts.
        for s in 0..4 {
            assert!(
                independent_repair_yield(0.95, 100, s + 1)
                    >= independent_repair_yield(0.95, 100, s)
            );
        }
        // And it beats the exact DTMB(1,6) model (which adds the spare's
        // own failure and cluster contention).
        for &p in &[0.90, 0.95, 0.99] {
            assert!(independent_repair_yield(p, 120, 1) >= dtmb16_yield(p, 120) - 1e-12);
        }
    }
}
