//! Effective yield (paper Section 6, Figure 10).
//!
//! "Adding more redundant cells increases the array area and thereby
//! manufacturing cost. To measure yield enhancement relative to the
//! increased array size, we define the effective yield EY as
//! `EY = Y·(n/N) = Y/(1+RR)` where n is the number of primary cells, and N
//! is the total number of cells in the microfluidic array."

use dmfb_reconfig::DefectTolerantArray;

/// Effective yield from a raw yield and a redundancy ratio:
/// `EY = Y / (1 + RR)`.
///
/// # Panics
///
/// Panics if `yield_value` is outside `[0, 1]` or `rr` is negative.
#[must_use]
pub fn effective_yield(yield_value: f64, rr: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&yield_value),
        "yield must be in [0, 1], got {yield_value}"
    );
    assert!(rr >= 0.0, "redundancy ratio must be non-negative, got {rr}");
    yield_value / (1.0 + rr)
}

/// Effective yield using an array's exact finite-size cell counts:
/// `EY = Y · n / N`.
///
/// # Panics
///
/// Panics if `yield_value` is outside `[0, 1]` or the array has no cells.
#[must_use]
pub fn effective_yield_of(array: &DefectTolerantArray, yield_value: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&yield_value),
        "yield must be in [0, 1], got {yield_value}"
    );
    let n = array.primary_count();
    let total = array.total_cells();
    assert!(total > 0, "array has no cells");
    yield_value * n as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmfb_grid::Region;
    use dmfb_reconfig::dtmb::DtmbKind;

    #[test]
    fn formula_matches_definition() {
        // RR = 1/3 → EY = Y * 3/4.
        assert!((effective_yield(0.8, 1.0 / 3.0) - 0.6).abs() < 1e-12);
        // No redundancy → EY = Y.
        assert_eq!(effective_yield(0.7, 0.0), 0.7);
    }

    #[test]
    fn array_form_equals_ratio_form() {
        let array = DtmbKind::Dtmb26A.instantiate(&Region::parallelogram(20, 20));
        let y = 0.9;
        let via_counts = effective_yield_of(&array, y);
        let via_rr = effective_yield(y, array.redundancy_ratio());
        assert!((via_counts - via_rr).abs() < 1e-12);
    }

    #[test]
    fn higher_redundancy_penalised_more() {
        let y = 1.0;
        let ey: Vec<f64> = DtmbKind::TABLE1
            .iter()
            .map(|k| effective_yield(y, k.redundancy_ratio_limit()))
            .collect();
        // At perfect yield, lower redundancy always wins on EY.
        for w in ey.windows(2) {
            assert!(w[0] > w[1]);
        }
        // DTMB(4,4) halves the effective yield.
        assert!((ey[3] - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "yield must be in [0, 1]")]
    fn rejects_bad_yield() {
        let _ = effective_yield(1.1, 0.5);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_rr() {
        let _ = effective_yield(0.5, -0.1);
    }
}
