//! Fault-tolerance profiles: how many faults until the first
//! unreconfigurable one?
//!
//! Figure 13 asks "what fraction of chips survive exactly `m` random
//! faults?" — the complementary question for a fab is "how many faults
//! does a chip absorb before it dies?". This module estimates the
//! distribution of that random variable `T` by Monte-Carlo: per trial,
//! shuffle all cells into a random failure order and binary-search the
//! longest reconfigurable prefix (reconfigurability is monotone in the
//! fault set, so prefix feasibility is monotone and binary search is
//! sound).

use dmfb_defects::DefectMap;
use dmfb_grid::HexCoord;
use dmfb_reconfig::{local, DefectTolerantArray, ReconfigPolicy};
use dmfb_sim::{SeedSequence, Summary};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// The estimated distribution of the maximum tolerable fault count.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ToleranceProfile {
    /// Streaming statistics of `T` (mean, stddev, min, max).
    pub stats: Summary,
    /// `histogram[t]` = number of trials whose chip died at fault `t + 1`
    /// (i.e. tolerated exactly `t`).
    pub histogram: Vec<u32>,
    /// Number of Monte-Carlo trials.
    pub trials: u32,
}

impl ToleranceProfile {
    /// Empirical `P(T >= m)`: the fraction of chips that tolerate at least
    /// `m` faults. `P(T >= 0) = 1` by definition.
    #[must_use]
    pub fn survival(&self, m: usize) -> f64 {
        if self.trials == 0 {
            return 0.0;
        }
        let surviving: u32 = self
            .histogram
            .iter()
            .enumerate()
            .filter(|(t, _)| *t >= m)
            .map(|(_, c)| *c)
            .sum();
        f64::from(surviving) / f64::from(self.trials)
    }

    /// The largest `m` with `P(T >= m) >= level` — e.g.
    /// `quantile_at_least(0.90)` answers the paper's "up to how many
    /// faults is yield at least 0.90?".
    #[must_use]
    pub fn quantile_at_least(&self, level: f64) -> usize {
        let mut m = 0;
        while self.survival(m + 1) >= level && m < self.histogram.len() {
            m += 1;
        }
        m
    }
}

/// Estimates the tolerance profile of `array` under `policy`.
///
/// # Panics
///
/// Panics if the array is empty.
#[must_use]
pub fn tolerance_profile(
    array: &DefectTolerantArray,
    policy: &ReconfigPolicy,
    trials: u32,
    seed: u64,
) -> ToleranceProfile {
    let cells: Vec<HexCoord> = array.region().iter().collect();
    assert!(!cells.is_empty(), "array has no cells");
    let mut stats = Summary::new();
    let mut histogram = vec![0u32; cells.len() + 1];

    for trial_seed in SeedSequence::new(seed).take(trials as usize) {
        let mut rng = StdRng::seed_from_u64(trial_seed);
        let mut order = cells.clone();
        order.shuffle(&mut rng);

        // Binary search the longest reconfigurable prefix.
        let feasible = |k: usize| {
            let defects = DefectMap::from_cells(order[..k].iter().copied());
            local::is_reconfigurable(array, &defects, policy)
        };
        let (mut lo, mut hi) = (0usize, order.len());
        // Invariant: feasible(lo), !feasible(hi) — unless everything is
        // tolerable (possible under UsedCells policies).
        if feasible(hi) {
            stats.push(hi as f64);
            histogram[hi] += 1;
            continue;
        }
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if feasible(mid) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        stats.push(lo as f64);
        histogram[lo] += 1;
    }

    ToleranceProfile {
        stats,
        histogram,
        trials,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmfb_reconfig::dtmb::DtmbKind;

    #[test]
    fn profile_basics_dtmb26() {
        let array = DtmbKind::Dtmb26A.with_primary_count(60);
        let profile = tolerance_profile(&array, &ReconfigPolicy::AllPrimaries, 300, 7);
        assert_eq!(profile.trials, 300);
        assert_eq!(
            profile.histogram.iter().map(|c| u64::from(*c)).sum::<u64>(),
            300
        );
        // Every chip tolerates at least one fault (each primary has 2
        // spares, and a single spare fault is harmless).
        assert!(profile.stats.min() >= 1.0);
        assert_eq!(profile.survival(0), 1.0);
        // Survival is non-increasing in m.
        for m in 0..20 {
            assert!(profile.survival(m) >= profile.survival(m + 1) - 1e-12);
        }
    }

    #[test]
    fn profile_consistent_with_exact_fault_yield() {
        // P(T >= m) from the profile must track the Figure 13 estimator.
        use crate::monte_carlo::MonteCarloYield;
        let array = DtmbKind::Dtmb26A.with_primary_count(60);
        let policy = ReconfigPolicy::AllPrimaries;
        let profile = tolerance_profile(&array, &policy, 2_000, 11);
        let mc = MonteCarloYield::new(array, policy);
        for m in [2usize, 5, 10] {
            let direct = mc.estimate_exact_faults(m, 2_000, 13).point();
            let via_profile = profile.survival(m);
            assert!(
                (direct - via_profile).abs() < 0.06,
                "m={m}: direct {direct} vs profile {via_profile}"
            );
        }
    }

    #[test]
    fn higher_redundancy_tolerates_more() {
        let lo = tolerance_profile(
            &DtmbKind::Dtmb16.with_primary_count(60),
            &ReconfigPolicy::AllPrimaries,
            300,
            3,
        );
        let hi = tolerance_profile(
            &DtmbKind::Dtmb44.with_primary_count(60),
            &ReconfigPolicy::AllPrimaries,
            300,
            3,
        );
        assert!(hi.stats.mean() > lo.stats.mean());
        assert!(hi.quantile_at_least(0.9) >= lo.quantile_at_least(0.9));
    }

    #[test]
    fn no_redundancy_dies_on_first_primary_fault() {
        let array = DefectTolerantArray::without_redundancy(dmfb_grid::Region::parallelogram(6, 6));
        let profile = tolerance_profile(&array, &ReconfigPolicy::AllPrimaries, 200, 5);
        // With every cell primary, the first fault is always fatal.
        assert_eq!(profile.stats.max(), 0.0);
        assert_eq!(profile.quantile_at_least(0.9), 0);
    }
}
