//! Campaign evaluation: scripted adversarial scenarios pushed through the
//! three-tier yield pipeline.
//!
//! A [`Scenario`] compiles into a
//! deterministic trajectory of cumulative [`DefectMap`]s (see
//! `dmfb_defects::scenario`). This module feeds each trajectory step to
//! [`OperationalYield`] twice:
//!
//! * **deterministically** — [`OperationalYield::evaluate_map`] on the
//!   targeted damage alone: *is this exact wounded chip still
//!   reconfigurable, and does it still run the assay in budget?*
//! * **statistically** — [`OperationalYield::estimate_with`] under the
//!   targeted damage merged with i.i.d. Bernoulli background defects:
//!   *what fraction of manufactured chips survive this attack?* Every
//!   step reuses the same `(trials, seed)`, so the background draws are
//!   common random numbers across steps and the three survival curves
//!   degrade monotonically as the scripted damage accumulates.
//!
//! Both paths are byte-identical across thread counts (the scalar
//! `estimate_with` sampler is thread-invariant by construction), which is
//! what lets the CLI's `campaign-replay` gate compare whole reports.

use crate::operational::{AssayPanel, OperationalEstimate, OperationalYield, TrialVerdict};
use dmfb_defects::injection::{Bernoulli, InjectionModel};
use dmfb_defects::scenario::{Scenario, Trajectory};
use dmfb_defects::DefectMap;
use dmfb_grid::Region;

/// A built-in campaign: name, one-line summary, and its DSL script.
#[derive(Clone, Copy, Debug)]
pub struct NamedCampaign {
    /// CLI-facing campaign name.
    pub name: &'static str,
    /// One-line description for listings.
    pub summary: &'static str,
    /// The scenario DSL source (parses by construction; tests enforce it).
    pub script: &'static str,
}

/// The built-in campaigns shipped with `dmfb campaign`.
///
/// Coordinates reference the DTMB(2,6) IVD case-study chip: its dispenser
/// (reservoir) ports sit at axial `(0, 1)`, `(0, 17)`, `(7, 1)` and
/// `(7, 13)`, so `reservoir-cluster` blasts the neighbourhoods a real
/// fluidic failure would hit first.
pub const NAMED_CAMPAIGNS: &[NamedCampaign] = &[
    NamedCampaign {
        name: "edge-column-wipeout",
        summary: "a salvo of point strikes, then a process excursion kills the west columns",
        script: "\
scenario edge-column-wipeout
step calm
step salvo 24
step wipe-column 0
step wipe-column 1
",
    },
    NamedCampaign {
        name: "reservoir-cluster",
        summary: "clustered blasts centred on the IVD chip's dispenser ports",
        script: "\
scenario reservoir-cluster
step calm
step cluster 0 1 radius 2 peak 0.9
step cluster 0 17 radius 2 peak 0.9
step cluster 7 13 radius 1 peak 0.8
",
    },
    NamedCampaign {
        name: "wear-trajectory",
        summary: "in-service dielectric wear accrued over three service intervals",
        script: "\
scenario wear-trajectory
step calm
step wear mtbf 40000 stress 1 hours 1000
step wear mtbf 40000 stress 2 hours 1000
step wear mtbf 40000 stress 4 hours 2000
",
    },
    NamedCampaign {
        name: "parametric-drift",
        summary: "geometry drift widening until deviations punch through tolerance",
        script: "\
scenario parametric-drift
step calm
step drift sigma 0.04 tolerance 0.1
step drift sigma 0.05 tolerance 0.1
",
    },
];

/// Looks up a built-in campaign script by name and parses it.
#[must_use]
pub fn named_campaign(name: &str) -> Option<Scenario> {
    NAMED_CAMPAIGNS.iter().find(|c| c.name == name).map(|c| {
        Scenario::parse(c.script).expect("built-in campaign scripts parse by construction")
    })
}

/// The deterministic and statistical verdicts for one campaign step.
#[derive(Clone, Debug)]
pub struct StepVerdict {
    /// 0-based step index (matches the trajectory's marker `step=`).
    pub idx: usize,
    /// Verdict on the targeted damage alone — the exact wounded chip.
    pub deterministic: TrialVerdict,
    /// Three-tier survival under targeted damage + Bernoulli background.
    pub estimate: OperationalEstimate,
}

/// One evaluated campaign: the damage trajectory plus per-step verdicts.
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// Background cell-survival probability of the statistical tier.
    pub p: f64,
    /// Monte-Carlo trials per step.
    pub trials: u32,
    /// The compiled damage trajectory (markers, cumulative maps).
    pub trajectory: Trajectory,
    /// Per-step verdicts, one per trajectory step.
    pub steps: Vec<StepVerdict>,
}

impl CampaignReport {
    /// The newline-terminated NA-0090 marker stream of the trajectory.
    #[must_use]
    pub fn markers(&self) -> String {
        self.trajectory.markers()
    }

    /// Cumulative targeted damage after the final step.
    #[must_use]
    pub fn final_map(&self) -> DefectMap {
        self.trajectory.final_map()
    }

    /// The per-step verdict table as CSV (header + one line per step).
    /// This is the byte string the golden-file and replay gates compare,
    /// so its format is stable.
    #[must_use]
    pub fn table(&self) -> String {
        fn yn(b: bool) -> &'static str {
            if b {
                "yes"
            } else {
                "no"
            }
        }
        let mut out = String::from("step,action,faults,reconf,op,raw,reconfigured,operational\n");
        for (v, rec) in self.steps.iter().zip(self.trajectory.steps.iter()) {
            out.push_str(&format!(
                "{},{},{},{},{},{:.6},{:.6},{:.6}\n",
                v.idx,
                rec.action.label(),
                rec.map.fault_count(),
                yn(v.deterministic.reconfigured),
                yn(v.deterministic.operational),
                v.estimate.raw.point(),
                v.estimate.reconfigured.point(),
                v.estimate.operational.point(),
            ));
        }
        out
    }
}

/// Runs scenarios against the IVD case-study chip through both verdict
/// paths. Construction cost (chip + evaluator) is paid once per runner.
#[derive(Clone, Debug)]
pub struct CampaignRunner {
    engine: OperationalYield,
    region: Region,
}

impl CampaignRunner {
    /// A runner over the paper's DTMB(2,6) IVD case-study chip running
    /// `panel`.
    #[must_use]
    pub fn ivd(panel: AssayPanel) -> Self {
        let engine = OperationalYield::ivd(panel);
        let region = engine.chip().array.region().clone();
        CampaignRunner { engine, region }
    }

    /// Sets the worker-thread count of the statistical tier (`0` = one
    /// per available core). Results are byte-identical for any value.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.engine = self.engine.with_threads(threads);
        self
    }

    /// The chip region scenarios execute against (primaries + spares).
    #[must_use]
    pub fn region(&self) -> &Region {
        &self.region
    }

    /// The underlying three-tier engine.
    #[must_use]
    pub fn engine(&self) -> &OperationalYield {
        &self.engine
    }

    /// Dry-runs `scenario` (no damage, `ok` markers only) — the happy
    /// path of the NA-0090 triads.
    #[must_use]
    pub fn rehearse(&self, scenario: &Scenario, seed: u64) -> Trajectory {
        scenario.rehearse(&self.region, seed)
    }

    /// Executes `scenario` live and evaluates every step: deterministic
    /// verdict on the targeted damage, plus three-tier survival under
    /// background survival probability `p` with `trials` Monte-Carlo
    /// trials per step (common random numbers across steps).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]` (the CLI validates first).
    #[must_use]
    pub fn run(&self, scenario: &Scenario, p: f64, trials: u32, seed: u64) -> CampaignReport {
        assert!((0.0..=1.0).contains(&p), "survival p={p} out of [0, 1]");
        let trajectory = scenario.execute(&self.region, seed);
        let background = Bernoulli::from_survival(p);
        let steps = trajectory
            .steps
            .iter()
            .map(|rec| {
                let deterministic = self.engine.evaluate_map(&rec.map);
                let estimate = self.engine.estimate_with(trials, seed, |rng| {
                    background.inject(&self.region, rng).merged(&rec.map)
                });
                StepVerdict {
                    idx: rec.idx,
                    deterministic,
                    estimate,
                }
            })
            .collect();
        CampaignReport {
            p,
            trials,
            trajectory,
            steps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn built_in_campaigns_parse_and_match_their_names() {
        assert!(NAMED_CAMPAIGNS.len() >= 3, "at least three named campaigns");
        for c in NAMED_CAMPAIGNS {
            let s = named_campaign(c.name).expect("lookup succeeds");
            assert_eq!(s.name(), c.name, "script header matches listing name");
            assert!(s.steps().len() >= 2);
        }
        assert!(named_campaign("no-such-campaign").is_none());
    }

    #[test]
    fn report_is_deterministic_and_thread_invariant() {
        let scenario = named_campaign("edge-column-wipeout").unwrap();
        let a = CampaignRunner::ivd(AssayPanel::StandardIvd)
            .with_threads(1)
            .run(&scenario, 0.99, 64, 7);
        let b = CampaignRunner::ivd(AssayPanel::StandardIvd)
            .with_threads(3)
            .run(&scenario, 0.99, 64, 7);
        assert_eq!(a.markers(), b.markers());
        assert_eq!(a.table(), b.table());
    }

    #[test]
    fn survival_degrades_monotonically_along_the_trajectory() {
        // Common random numbers: each step reuses the same background
        // draws, and the targeted map only grows, so every tier's success
        // count is non-increasing.
        let scenario = named_campaign("reservoir-cluster").unwrap();
        let report = CampaignRunner::ivd(AssayPanel::StandardIvd)
            .with_threads(1)
            .run(&scenario, 0.99, 64, 11);
        for pair in report.steps.windows(2) {
            assert!(
                pair[1].estimate.operational.successes()
                    <= pair[0].estimate.operational.successes()
            );
            assert!(
                pair[1].estimate.reconfigured.successes()
                    <= pair[0].estimate.reconfigured.successes()
            );
            assert!(pair[1].estimate.raw.successes() <= pair[0].estimate.raw.successes());
        }
    }

    #[test]
    fn table_has_one_line_per_step_plus_header() {
        let scenario = named_campaign("parametric-drift").unwrap();
        let report = CampaignRunner::ivd(AssayPanel::StandardIvd)
            .with_threads(1)
            .run(&scenario, 0.995, 32, 3);
        let table = report.table();
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), scenario.steps().len() + 1);
        assert!(lines[0].starts_with("step,action,"));
    }
}
