//! Yield curves and crossover analysis.
//!
//! Figure 10's conclusion is about *crossovers*: "a microfluidic structure
//! with the higher level of redundancy, such as DTMB(4,4), is suitable for
//! small values of p. On the other hand, a lower level of redundancy, such
//! as DTMB(1,6) or DTMB(2,6), should be used when p is relatively high."
//! [`YieldCurve::crossover_with`] locates those switch-over points.

use crate::monte_carlo::YieldPoint;
use serde::{Deserialize, Serialize};

/// A named yield (or effective-yield) curve over a swept parameter.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct YieldCurve {
    /// Curve label, e.g. `"DTMB(2,6)"`.
    pub label: String,
    /// Samples in ascending `x` order.
    pub points: Vec<YieldPoint>,
}

impl YieldCurve {
    /// Creates a curve; points are sorted by `x`.
    #[must_use]
    pub fn new(label: impl Into<String>, mut points: Vec<YieldPoint>) -> Self {
        points.sort_by(|a, b| a.x.total_cmp(&b.x));
        YieldCurve {
            label: label.into(),
            points,
        }
    }

    /// Applies a transformation to every `y` (and its CI), e.g. the
    /// `1/(1+RR)` effective-yield scaling.
    #[must_use]
    pub fn map_y(&self, f: impl Fn(f64) -> f64) -> YieldCurve {
        YieldCurve {
            label: self.label.clone(),
            points: self
                .points
                .iter()
                .map(|p| YieldPoint {
                    x: p.x,
                    y: f(p.y),
                    ci95: (f(p.ci95.0), f(p.ci95.1)),
                    trials: p.trials,
                })
                .collect(),
        }
    }

    /// Linear interpolation of the curve at `x`; clamps outside the domain.
    /// Returns `None` for an empty curve.
    #[must_use]
    pub fn interpolate(&self, x: f64) -> Option<f64> {
        let first = self.points.first()?;
        let last = self.points.last()?;
        if x <= first.x {
            return Some(first.y);
        }
        if x >= last.x {
            return Some(last.y);
        }
        for w in self.points.windows(2) {
            if w[0].x <= x && x <= w[1].x {
                let t = (x - w[0].x) / (w[1].x - w[0].x);
                return Some(w[0].y + t * (w[1].y - w[0].y));
            }
        }
        None
    }

    /// Finds the `x` positions where this curve and `other` cross, by sign
    /// change of their difference on the common grid (linear between
    /// samples). Tangential touches are not reported.
    #[must_use]
    pub fn crossover_with(&self, other: &YieldCurve) -> Vec<f64> {
        let mut xs: Vec<f64> = self
            .points
            .iter()
            .chain(other.points.iter())
            .map(|p| p.x)
            .collect();
        xs.sort_by(f64::total_cmp);
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        let mut crossings = Vec::new();
        let mut prev: Option<(f64, f64)> = None;
        for &x in &xs {
            let (Some(a), Some(b)) = (self.interpolate(x), other.interpolate(x)) else {
                continue;
            };
            let d = a - b;
            if let Some((px, pd)) = prev {
                if pd * d < 0.0 {
                    // Linear root between px and x.
                    let t = pd / (pd - d);
                    crossings.push(px + t * (x - px));
                }
            }
            prev = Some((x, d));
        }
        crossings
    }

    /// The largest `x` whose yield is still at least `threshold`, assuming
    /// the curve is non-increasing (Figure 13 usage: "For up to 35 faults,
    /// the redundant design can provide a yield of at least 0.90").
    #[must_use]
    pub fn last_x_at_least(&self, threshold: f64) -> Option<f64> {
        self.points
            .iter()
            .rev()
            .find(|p| p.y >= threshold)
            .map(|p| p.x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(x: f64, y: f64) -> YieldPoint {
        YieldPoint {
            x,
            y,
            ci95: (y, y),
            trials: 1,
        }
    }

    #[test]
    fn sorted_on_construction() {
        let c = YieldCurve::new("c", vec![pt(2.0, 0.5), pt(1.0, 0.9)]);
        assert!(c.points[0].x < c.points[1].x);
    }

    #[test]
    fn interpolation_clamps_and_blends() {
        let c = YieldCurve::new("c", vec![pt(0.0, 0.0), pt(1.0, 1.0)]);
        assert_eq!(c.interpolate(-1.0), Some(0.0));
        assert_eq!(c.interpolate(2.0), Some(1.0));
        assert!((c.interpolate(0.25).unwrap() - 0.25).abs() < 1e-12);
        assert!(YieldCurve::new("e", vec![]).interpolate(0.5).is_none());
    }

    #[test]
    fn crossover_detected() {
        // a falls, b rises; they cross at x = 0.5.
        let a = YieldCurve::new("a", vec![pt(0.0, 1.0), pt(1.0, 0.0)]);
        let b = YieldCurve::new("b", vec![pt(0.0, 0.0), pt(1.0, 1.0)]);
        let xs = a.crossover_with(&b);
        assert_eq!(xs.len(), 1);
        assert!((xs[0] - 0.5).abs() < 1e-12);
        // No crossing when one dominates.
        let c = YieldCurve::new("c", vec![pt(0.0, 2.0), pt(1.0, 2.0)]);
        assert!(a.crossover_with(&c).is_empty());
    }

    #[test]
    fn map_y_scales() {
        let c = YieldCurve::new("c", vec![pt(0.0, 0.8)]);
        let e = c.map_y(|y| y / 2.0);
        assert!((e.points[0].y - 0.4).abs() < 1e-12);
        assert_eq!(e.label, "c");
    }

    #[test]
    fn last_x_threshold() {
        let c = YieldCurve::new(
            "c",
            vec![pt(0.0, 1.0), pt(10.0, 0.95), pt(20.0, 0.91), pt(30.0, 0.80)],
        );
        assert_eq!(c.last_x_at_least(0.90), Some(20.0));
        assert_eq!(c.last_x_at_least(0.99), Some(0.0));
        assert_eq!(c.last_x_at_least(1.1), None);
    }
}
