//! Online reconfiguration under *operational* faults.
//!
//! The paper classifies faults as "either manufacturing or operational"
//! (Section 2, citing its refs [10, 11] on concurrent testing), and the
//! platform's headline property is *dynamic* reconfigurability: "groups of
//! cells in a microfluidic array can be reconfigured to change their
//! functionality during the concurrent execution of a set of bioassays."
//! This module exercises exactly that: cells may fail *between assays of a
//! running protocol*, and the chip re-plans its local reconfiguration and
//! droplet routes on the fly instead of aborting.

use crate::assay::{AssayOutcome, MultiplexedIvd};
use crate::chip::ChipDescription;
use crate::schedule::{ExecError, Executor};
use dmfb_defects::{CatastrophicDefect, DefectCause, DefectMap};
use dmfb_grid::HexCoord;
use dmfb_reconfig::{attempt_reconfiguration, ReconfigPolicy};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A cell failure that strikes while the protocol is running.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct OperationalFault {
    /// The fault manifests just before the assay with this index starts.
    pub before_assay: usize,
    /// The failing cell.
    pub cell: HexCoord,
}

/// The result of an online run.
#[derive(Clone, Debug)]
pub struct OnlineReport {
    /// Per-assay outcomes in request order.
    pub outcomes: Vec<AssayOutcome>,
    /// How many times the reconfiguration plan was recomputed because a
    /// new fault appeared.
    pub replans: usize,
    /// Operational faults that were absorbed by re-planning.
    pub faults_absorbed: usize,
}

/// Executes a protocol while absorbing operational faults by re-planning
/// local reconfiguration between assays.
#[derive(Clone, Debug)]
pub struct OnlineExecutor {
    chip: ChipDescription,
    initial_defects: DefectMap,
    policy: ReconfigPolicy,
}

impl OnlineExecutor {
    /// Creates an online executor over `chip` with its manufacturing
    /// defect state and a success policy for re-planning.
    #[must_use]
    pub fn new(chip: ChipDescription, initial_defects: DefectMap, policy: ReconfigPolicy) -> Self {
        OnlineExecutor {
            chip,
            initial_defects,
            policy,
        }
    }

    /// Runs `batch`, injecting `events` at their assay boundaries. Each
    /// new fault triggers a re-plan; if the chip can still satisfy the
    /// policy, execution continues on the updated plan.
    ///
    /// # Errors
    ///
    /// Propagates [`ExecError`] when a fault cannot be absorbed (no
    /// matching, dead resource, severed route).
    pub fn run(
        &self,
        batch: &MultiplexedIvd,
        events: &[OperationalFault],
        rng: &mut impl Rng,
    ) -> Result<OnlineReport, ExecError> {
        let mut defects = self.initial_defects.clone();
        let mut plan = attempt_reconfiguration(&self.chip.array, &defects, &self.policy).map_err(
            |failure| ExecError::FaultyResource {
                resource: "initial reconfiguration".into(),
                cell: failure
                    .unassigned
                    .first()
                    .copied()
                    .unwrap_or(HexCoord::ORIGIN),
            },
        )?;
        let mut outcomes = Vec::with_capacity(batch.requests.len());
        let mut replans = 0usize;
        let mut absorbed = 0usize;
        let mut clock_offset = 0.0f64;

        for (i, request) in batch.requests.iter().enumerate() {
            // Apply the operational faults scheduled before this assay.
            let mut changed = false;
            for event in events.iter().filter(|e| e.before_assay == i) {
                if !defects.is_faulty(event.cell) {
                    defects.mark(
                        event.cell,
                        DefectCause::Catastrophic(CatastrophicDefect::DielectricBreakdown),
                    );
                    changed = true;
                }
            }
            if changed {
                plan = attempt_reconfiguration(&self.chip.array, &defects, &self.policy).map_err(
                    |failure| ExecError::FaultyResource {
                        resource: format!("online re-plan before assay {i}"),
                        cell: failure
                            .unassigned
                            .first()
                            .copied()
                            .unwrap_or(HexCoord::ORIGIN),
                    },
                )?;
                replans += 1;
                absorbed += events.iter().filter(|e| e.before_assay == i).count();
            }

            // Execute this single assay on the current chip state.
            let single = MultiplexedIvd {
                requests: vec![request.clone()],
            };
            let exec = Executor::new(self.chip.clone(), defects.clone(), Some(plan.clone()));
            let mut result = exec.run(&single, rng)?;
            let mut outcome = result.pop().expect("one outcome per request");
            outcome.completion_time_s += clock_offset;
            clock_offset = outcome.completion_time_s;
            outcomes.push(outcome);
        }

        Ok(OnlineReport {
            outcomes,
            replans,
            faults_absorbed: absorbed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{ivd_dtmb26_chip, used_cells_policy};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(77)
    }

    #[test]
    fn no_events_matches_offline_behaviour() {
        let chip = ivd_dtmb26_chip();
        let policy = used_cells_policy(&chip);
        let online = OnlineExecutor::new(chip, DefectMap::new(), policy);
        let report = online
            .run(&MultiplexedIvd::standard_panel(), &[], &mut rng())
            .unwrap();
        assert_eq!(report.outcomes.len(), 4);
        assert_eq!(report.replans, 0);
        assert_eq!(report.faults_absorbed, 0);
        // Completion times accumulate monotonically.
        for w in report.outcomes.windows(2) {
            assert!(w[1].completion_time_s >= w[0].completion_time_s);
        }
    }

    #[test]
    fn mixer_failure_mid_protocol_is_absorbed() {
        let chip = ivd_dtmb26_chip();
        let mixer_cell = chip.mixers[0].rendezvous();
        let policy = used_cells_policy(&chip);
        let online = OnlineExecutor::new(chip, DefectMap::new(), policy);
        // mixer1 dies after the first assay; assays 2 (mixer1 again, via
        // SAMPLE2) must run on the replacement spare.
        let events = [OperationalFault {
            before_assay: 2,
            cell: mixer_cell,
        }];
        let report = online
            .run(&MultiplexedIvd::standard_panel(), &events, &mut rng())
            .unwrap();
        assert_eq!(report.outcomes.len(), 4);
        assert_eq!(report.replans, 1);
        assert_eq!(report.faults_absorbed, 1);
    }

    #[test]
    fn unabsorbable_failure_aborts_with_context() {
        let chip = ivd_dtmb26_chip();
        let mixer_cell = chip.mixers[0].rendezvous();
        let spares: Vec<HexCoord> = chip.array.adjacent_spares(mixer_cell).collect();
        let policy = used_cells_policy(&chip);
        // Kill the mixer AND all its spares mid-run.
        let mut events = vec![OperationalFault {
            before_assay: 2,
            cell: mixer_cell,
        }];
        events.extend(spares.into_iter().map(|cell| OperationalFault {
            before_assay: 2,
            cell,
        }));
        let online = OnlineExecutor::new(chip, DefectMap::new(), policy);
        let err = online
            .run(&MultiplexedIvd::standard_panel(), &events, &mut rng())
            .unwrap_err();
        assert!(err.to_string().contains("re-plan"), "{err}");
    }

    #[test]
    fn duplicate_events_do_not_double_count() {
        let chip = ivd_dtmb26_chip();
        let cell = chip
            .assay_cells
            .iter()
            .find(|c| {
                // Not a resource cell: keep the run alive.
                chip.mixers.iter().all(|m| !m.cells.contains(c))
                    && chip.detectors.iter().all(|d| d.cell != *c)
                    && chip.dispensers.iter().all(|d| d.cell != *c)
            })
            .unwrap();
        let policy = used_cells_policy(&chip);
        let online = OnlineExecutor::new(chip, DefectMap::new(), policy);
        let events = [
            OperationalFault {
                before_assay: 1,
                cell,
            },
            OperationalFault {
                before_assay: 3,
                cell, // already faulty: no re-plan needed
            },
        ];
        let report = online
            .run(&MultiplexedIvd::standard_panel(), &events, &mut rng())
            .unwrap();
        assert_eq!(report.replans, 1);
    }
}
