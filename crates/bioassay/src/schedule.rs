//! Protocol execution: dispensing, transport, mixing, detection.
//!
//! The executor runs a [`MultiplexedIvd`] batch on a chip with a given
//! fault state and (optionally) a local reconfiguration plan. Logical
//! resource cells are remapped through the plan — a mixer or detector whose
//! cell was replaced by a spare physically operates on that spare — and
//! droplet transport routes around catastrophic faults. Timing follows the
//! electrowetting actuation model plus mixer and detector dwell times, with
//! per-resource reservation for concurrency.

use crate::assay::{AssayOutcome, MultiplexedIvd};
use crate::chip::ChipDescription;
use crate::droplet::ElectrowettingModel;
use crate::kinetics::{
    absorbance_545nm, CalibrationCurve, Photodiode, DROPLET_PATH_CM, QUINONEIMINE_EPSILON,
};
use crate::router::Router;
use dmfb_defects::DefectMap;
use dmfb_grid::HexCoord;
use dmfb_reconfig::ReconfigPlan;
use rand::Rng;
use std::collections::BTreeMap;
use std::fmt;

/// Why a protocol could not be executed.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum ExecError {
    /// A request referenced an unknown dispenser label.
    UnknownPort(String),
    /// A request referenced an unknown mixer name.
    UnknownMixer(String),
    /// A request referenced a detector index that does not exist.
    UnknownDetector(usize),
    /// A required cell is faulty and not covered by the reconfiguration
    /// plan.
    FaultyResource {
        /// Description of the resource ("mixer mixer1", "detector 0", ...).
        resource: String,
        /// The faulty physical cell.
        cell: HexCoord,
    },
    /// No droplet route exists between two required cells.
    Unroutable {
        /// Source cell.
        from: HexCoord,
        /// Destination cell.
        to: HexCoord,
    },
    /// The actuation voltage is below the electrowetting threshold.
    VoltageTooLow,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::UnknownPort(l) => write!(f, "unknown dispenser port '{l}'"),
            ExecError::UnknownMixer(m) => write!(f, "unknown mixer '{m}'"),
            ExecError::UnknownDetector(i) => write!(f, "unknown detector index {i}"),
            ExecError::FaultyResource { resource, cell } => {
                write!(
                    f,
                    "{resource} sits on faulty cell {cell} with no replacement"
                )
            }
            ExecError::Unroutable { from, to } => {
                write!(f, "no droplet route from {from} to {to}")
            }
            ExecError::VoltageTooLow => write!(f, "control voltage below actuation threshold"),
        }
    }
}

impl std::error::Error for ExecError {}

/// One scheduled assay operation: the physical cells it runs on (after
/// reconfiguration remapping), its transport cost, and its timing under
/// per-resource reservation.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ScheduledOp {
    /// Index into the batch's request list.
    pub request_index: usize,
    /// Physical cell the sample droplet is dispensed on.
    pub sample_cell: HexCoord,
    /// Physical cell the reagent droplet is dispensed on.
    pub reagent_cell: HexCoord,
    /// Physical rendezvous cell where the droplets merge and mix.
    pub rendezvous: HexCoord,
    /// Physical optical-detection cell.
    pub detector_cell: HexCoord,
    /// Droplet moves spent on the three transports.
    pub transport_moves: usize,
    /// When the operation's resources all become free, seconds.
    pub start_s: f64,
    /// Reaction window (mixing + transport to detector + integration), s.
    pub reaction_s: f64,
    /// Completion time within the protocol, seconds.
    pub completion_s: f64,
}

/// A complete feasible schedule for one protocol batch — the proof that
/// every requested assay can claim live resources and routes on this chip
/// instance, and the timing the feasibility check compares against its
/// budget.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct ProtocolSchedule {
    /// Scheduled operations in request order.
    pub ops: Vec<ScheduledOp>,
}

impl ProtocolSchedule {
    /// Protocol makespan: the latest completion time, or `0.0` for an
    /// empty batch.
    #[must_use]
    pub fn makespan_s(&self) -> f64 {
        self.ops.iter().map(|o| o.completion_s).fold(0.0, f64::max)
    }

    /// Total droplet moves across all operations.
    #[must_use]
    pub fn total_moves(&self) -> usize {
        self.ops.iter().map(|o| o.transport_moves).sum()
    }
}

/// Plans a batch on a chip instance without running any chemistry: checks
/// that every referenced resource exists and (after remapping through
/// `plan`) sits on a live cell, routes the three transports of each assay
/// around catastrophic faults, and serialises operations that share
/// dispensers, mixers or detectors.
///
/// This is the scheduling core shared by [`Executor::run`] (which layers
/// reaction chemistry on top) and the operational-yield feasibility check
/// in [`crate::feasibility`] (which only needs the verdict and the
/// makespan).
///
/// # Errors
///
/// Returns the first [`ExecError`] that makes the batch unexecutable.
///
/// # Example
///
/// ```
/// use dmfb_bioassay::layout::fabricated_ivd_chip;
/// use dmfb_bioassay::schedule::plan_protocol;
/// use dmfb_bioassay::droplet::ElectrowettingModel;
/// use dmfb_bioassay::MultiplexedIvd;
/// use dmfb_defects::DefectMap;
///
/// let chip = fabricated_ivd_chip();
/// let schedule = plan_protocol(
///     &chip,
///     &DefectMap::new(),
///     None,
///     &ElectrowettingModel::default(),
///     &MultiplexedIvd::standard_panel(),
/// )
/// .expect("fault-free chip schedules its own protocol");
/// assert_eq!(schedule.ops.len(), 4);
/// assert!(schedule.makespan_s() > 0.0);
/// ```
pub fn plan_protocol(
    chip: &ChipDescription,
    defects: &DefectMap,
    plan: Option<&ReconfigPlan>,
    actuation: &ElectrowettingModel,
    batch: &MultiplexedIvd,
) -> Result<ProtocolSchedule, ExecError> {
    /// Reservation key of one shared resource. Borrowing the names from
    /// the batch (and building error labels lazily) keeps the per-request
    /// success path allocation-free — this function now runs once per
    /// Monte-Carlo trial per grid point in the operational-yield engine.
    #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
    enum ResourceKey<'a> {
        Port(&'a str),
        Mixer(&'a str),
        Detector(usize),
    }

    fn require_usable(
        defects: &DefectMap,
        plan: Option<&ReconfigPlan>,
        resource: impl FnOnce() -> String,
        logical: HexCoord,
    ) -> Result<HexCoord, ExecError> {
        let cell = match plan {
            Some(p) => p.remap(logical),
            None => logical,
        };
        if defects.is_faulty(cell) {
            return Err(ExecError::FaultyResource {
                resource: resource(),
                cell,
            });
        }
        Ok(cell)
    }

    let step_ms = actuation.step_time_ms().ok_or(ExecError::VoltageTooLow)?;
    let router = Router::new(chip.array.region(), defects);
    // Resource reservation clocks, seconds.
    let mut free_at: BTreeMap<ResourceKey, f64> = BTreeMap::new();
    let mut ops = Vec::with_capacity(batch.requests.len());

    for (request_index, req) in batch.requests.iter().enumerate() {
        let sample = chip
            .dispenser(&req.sample_port)
            .ok_or_else(|| ExecError::UnknownPort(req.sample_port.clone()))?;
        let reagent = chip
            .dispenser(&req.reagent_port)
            .ok_or_else(|| ExecError::UnknownPort(req.reagent_port.clone()))?;
        let mixer = chip
            .mixer(&req.mixer)
            .ok_or_else(|| ExecError::UnknownMixer(req.mixer.clone()))?;
        let detector = chip
            .detectors
            .get(req.detector)
            .ok_or(ExecError::UnknownDetector(req.detector))?;

        // Resolve physical cells through the reconfiguration plan.
        let dispenser = || "dispenser".to_string();
        let mixer_label = || format!("mixer {}", mixer.name);
        let sample_cell = require_usable(defects, plan, dispenser, sample.cell)?;
        let reagent_cell = require_usable(defects, plan, dispenser, reagent.cell)?;
        let rendezvous = require_usable(defects, plan, mixer_label, mixer.rendezvous())?;
        for &c in &mixer.cells {
            require_usable(defects, plan, mixer_label, c)?;
        }
        let detector_cell = require_usable(
            defects,
            plan,
            || format!("detector {}", req.detector),
            detector.cell,
        )?;

        // Plan the three transports.
        let route = |from: HexCoord, to: HexCoord| {
            router
                .route(from, to, &[])
                .ok_or(ExecError::Unroutable { from, to })
        };
        let sample_route = route(sample_cell, rendezvous)?;
        let reagent_route = route(reagent_cell, rendezvous)?;
        let detect_route = route(rendezvous, detector_cell)?;
        let moves = (sample_route.len() - 1) + (reagent_route.len() - 1) + (detect_route.len() - 1);

        // Timing: start when all four resources are free.
        let keys = [
            ResourceKey::Port(req.sample_port.as_str()),
            ResourceKey::Port(req.reagent_port.as_str()),
            ResourceKey::Mixer(req.mixer.as_str()),
            ResourceKey::Detector(req.detector),
        ];
        let ready = keys
            .iter()
            .map(|k| free_at.get(k).copied().unwrap_or(0.0))
            .fold(0.0f64, f64::max);
        let transport_s = moves as f64 * step_ms / 1e3;
        let detect_s = f64::from(detector.integration_ms) / 1e3;
        let reaction_s =
            mixer.mix_time_s() + (detect_route.len() - 1) as f64 * step_ms / 1e3 + detect_s;
        let completion = ready + transport_s + mixer.mix_time_s() + detect_s;
        for k in keys {
            free_at.insert(k, completion);
        }

        ops.push(ScheduledOp {
            request_index,
            sample_cell,
            reagent_cell,
            rendezvous,
            detector_cell,
            transport_moves: moves,
            start_s: ready,
            reaction_s,
            completion_s: completion,
        });
    }
    Ok(ProtocolSchedule { ops })
}

/// Executes assay protocols on one chip instance.
#[derive(Clone, Debug)]
pub struct Executor {
    chip: ChipDescription,
    defects: DefectMap,
    plan: Option<ReconfigPlan>,
    actuation: ElectrowettingModel,
    photodiode: Photodiode,
}

impl Executor {
    /// Creates an executor for `chip` with the given true fault state and
    /// optional reconfiguration plan.
    #[must_use]
    pub fn new(chip: ChipDescription, defects: DefectMap, plan: Option<ReconfigPlan>) -> Self {
        Executor {
            chip,
            defects,
            plan,
            actuation: ElectrowettingModel::default(),
            photodiode: Photodiode::default(),
        }
    }

    /// Overrides the electrowetting actuation model.
    #[must_use]
    pub fn with_actuation(mut self, actuation: ElectrowettingModel) -> Self {
        self.actuation = actuation;
        self
    }

    /// Overrides the photodiode noise model.
    #[must_use]
    pub fn with_photodiode(mut self, photodiode: Photodiode) -> Self {
        self.photodiode = photodiode;
        self
    }

    /// Plans the batch's schedule — resource resolution, routing, timing —
    /// without running any chemistry. See [`plan_protocol`].
    ///
    /// # Errors
    ///
    /// Returns the first [`ExecError`] that makes the batch unexecutable.
    pub fn plan_schedule(&self, batch: &MultiplexedIvd) -> Result<ProtocolSchedule, ExecError> {
        plan_protocol(
            &self.chip,
            &self.defects,
            self.plan.as_ref(),
            &self.actuation,
            batch,
        )
    }

    /// Runs the batch, drawing per-patient analyte concentrations uniformly
    /// from the physiological range and measuring them through the full
    /// droplet protocol. Returns per-assay outcomes in request order.
    ///
    /// # Errors
    ///
    /// Any [`ExecError`] aborts the whole batch — a chip that cannot run
    /// its protocol is a dead chip, which is exactly what the yield
    /// analysis counts.
    pub fn run(
        &self,
        batch: &MultiplexedIvd,
        rng: &mut impl Rng,
    ) -> Result<Vec<AssayOutcome>, ExecError> {
        let schedule = self.plan_schedule(batch)?;
        let mut outcomes = Vec::with_capacity(schedule.ops.len());

        for op in &schedule.ops {
            let req = &batch.requests[op.request_index];
            // The lookups cannot fail: `plan_schedule` resolved them.
            let sample = self.chip.dispenser(&req.sample_port).expect("scheduled");
            let reagent = self.chip.dispenser(&req.reagent_port).expect("scheduled");

            // Chemistry: draw the patient's true concentration, run the
            // cascade for the actual reaction window, read absorbance.
            let (lo, hi) = req.analyte.physiological_range_mm();
            let truth = rng.gen_range(lo..=hi);
            let sample_conc = sample.contents.concentration(req.analyte.species());
            let true_in_droplet = if sample_conc > 0.0 {
                sample_conc
            } else {
                truth
            };
            // Merging sample and reagent droplets halves the concentration.
            let diluted = true_in_droplet * sample.droplet_volume_nl
                / (sample.droplet_volume_nl + reagent.droplet_volume_nl);
            let kinetics = req.analyte.kinetics();
            let state = kinetics.integrate(diluted, op.reaction_s, 0.05);
            let clean_absorbance =
                absorbance_545nm(state.quinoneimine_mm, DROPLET_PATH_CM, QUINONEIMINE_EPSILON);
            let absorbance = self.photodiode.measure(clean_absorbance, rng);
            // The instrument calibrates against diluted standards with the
            // same reaction window, then corrects for dilution.
            let dilution =
                sample.droplet_volume_nl / (sample.droplet_volume_nl + reagent.droplet_volume_nl);
            let standards: Vec<f64> = req
                .analyte
                .calibration_standards_mm()
                .iter()
                .map(|c| c * dilution)
                .collect();
            let curve = CalibrationCurve::build(&kinetics, &standards, op.reaction_s);
            let measured = curve.concentration(absorbance) / dilution;

            outcomes.push(AssayOutcome {
                request: req.clone(),
                true_concentration_mm: true_in_droplet,
                measured_concentration_mm: measured,
                absorbance,
                transport_moves: op.transport_moves,
                completion_time_s: op.completion_s,
            });
        }
        Ok(outcomes)
    }

    /// Convenience: whether the batch can run at all on this chip instance
    /// (resources live, routes exist), without doing the chemistry.
    #[must_use]
    pub fn is_executable(&self, batch: &MultiplexedIvd) -> bool {
        let mut rng = rand::rngs::mock::StepRng::new(0, 1);
        self.run(batch, &mut rng).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout;
    use dmfb_defects::{CatastrophicDefect, DefectCause};
    use dmfb_reconfig::{attempt_reconfiguration, ReconfigPolicy};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1234)
    }

    #[test]
    fn clean_chip_runs_standard_panel() {
        let chip = layout::fabricated_ivd_chip();
        let exec = Executor::new(chip, DefectMap::new(), None);
        let outcomes = exec
            .run(&MultiplexedIvd::standard_panel(), &mut rng())
            .unwrap();
        assert_eq!(outcomes.len(), 4);
        for o in &outcomes {
            assert!(o.transport_moves > 0);
            assert!(o.completion_time_s > 0.0);
            assert!(o.absorbance >= 0.0);
            assert!(
                o.relative_error() < 0.25,
                "assay {:?} err {}",
                o.request.analyte,
                o.relative_error()
            );
        }
        // Shared resources serialise: completion times strictly increase
        // for assays sharing a mixer.
        assert!(outcomes[2].completion_time_s > outcomes[0].completion_time_s);
    }

    #[test]
    fn fault_on_mixer_kills_unprotected_chip() {
        let chip = layout::fabricated_ivd_chip();
        let mixer_cell = chip.mixers[0].rendezvous();
        let defects = DefectMap::from_cells([mixer_cell]);
        let exec = Executor::new(chip, defects, None);
        let err = exec
            .run(&MultiplexedIvd::standard_panel(), &mut rng())
            .unwrap_err();
        assert!(matches!(err, ExecError::FaultyResource { .. }));
    }

    #[test]
    fn reconfiguration_rescues_faulty_mixer() {
        let chip = layout::ivd_dtmb26_chip();
        let mixer_cell = chip.mixers[0].rendezvous();
        let mut defects = DefectMap::from_cells([mixer_cell]);
        defects.close_shorts();
        let plan = attempt_reconfiguration(
            &chip.array,
            &defects,
            &ReconfigPolicy::UsedCells(chip.assay_cells.iter().collect()),
        )
        .expect("single fault is tolerable on DTMB(2,6)");
        let exec = Executor::new(chip, defects, Some(plan));
        let outcomes = exec
            .run(&MultiplexedIvd::standard_panel(), &mut rng())
            .unwrap();
        assert_eq!(outcomes.len(), 4);
    }

    #[test]
    fn detour_increases_transport_cost() {
        let chip = layout::fabricated_ivd_chip();
        let clean = Executor::new(chip.clone(), DefectMap::new(), None);
        let base: usize = clean
            .run(&MultiplexedIvd::standard_panel(), &mut rng())
            .unwrap()
            .iter()
            .map(|o| o.transport_moves)
            .sum();
        // Block a cell on the likely straight route between SAMPLE1 and
        // mixer1 (not a resource cell) and re-run.
        let s = chip.dispenser("SAMPLE1").unwrap().cell;
        let m = chip.mixers[0].rendezvous();
        let line = s.line_to(m);
        let obstacle = line[line.len() / 2];
        let mut defects = DefectMap::new();
        defects.mark(
            obstacle,
            DefectCause::Catastrophic(CatastrophicDefect::OpenConnection),
        );
        let detoured = Executor::new(chip, defects, None);
        if let Ok(outcomes) = detoured.run(&MultiplexedIvd::standard_panel(), &mut rng()) {
            let with_detour: usize = outcomes.iter().map(|o| o.transport_moves).sum();
            assert!(with_detour >= base);
        }
    }

    #[test]
    fn unknown_resources_are_reported() {
        let chip = layout::fabricated_ivd_chip();
        let exec = Executor::new(chip, DefectMap::new(), None);
        let mut batch = MultiplexedIvd::standard_panel();
        batch.requests[0].sample_port = "NOPE".into();
        assert!(matches!(
            exec.run(&batch, &mut rng()).unwrap_err(),
            ExecError::UnknownPort(_)
        ));
        let mut batch = MultiplexedIvd::standard_panel();
        batch.requests[0].mixer = "NOPE".into();
        assert!(matches!(
            exec.run(&batch, &mut rng()).unwrap_err(),
            ExecError::UnknownMixer(_)
        ));
        let mut batch = MultiplexedIvd::standard_panel();
        batch.requests[0].detector = 99;
        assert!(matches!(
            exec.run(&batch, &mut rng()).unwrap_err(),
            ExecError::UnknownDetector(99)
        ));
    }

    #[test]
    fn low_voltage_cannot_execute() {
        let chip = layout::fabricated_ivd_chip();
        let exec = Executor::new(chip, DefectMap::new(), None)
            .with_actuation(ElectrowettingModel::with_voltage(5.0, 1_000.0));
        assert!(matches!(
            exec.run(&MultiplexedIvd::standard_panel(), &mut rng()),
            Err(ExecError::VoltageTooLow)
        ));
    }

    #[test]
    fn is_executable_smoke() {
        let chip = layout::fabricated_ivd_chip();
        let exec = Executor::new(chip, DefectMap::new(), None);
        assert!(exec.is_executable(&MultiplexedIvd::standard_panel()));
    }

    #[test]
    fn full_panel_runs_on_dtmb26_chip() {
        let chip = layout::ivd_dtmb26_chip();
        let exec = Executor::new(chip, DefectMap::new(), None);
        let outcomes = exec
            .run(&MultiplexedIvd::full_metabolic_panel(), &mut rng())
            .unwrap();
        assert_eq!(outcomes.len(), 8);
    }

    #[test]
    fn error_messages_display() {
        let e = ExecError::Unroutable {
            from: HexCoord::new(0, 0),
            to: HexCoord::new(1, 1),
        };
        assert!(e.to_string().contains("no droplet route"));
        assert!(ExecError::VoltageTooLow.to_string().contains("voltage"));
    }
}
