//! Trinder-reaction kinetics and colorimetric detection.
//!
//! The glucose assay is based on Trinder's reaction (paper Section 7):
//!
//! ```text
//! glucose + O2 + H2O --glucose oxidase--> gluconic acid + H2O2
//! 2 H2O2 + 4-AAP + TOPS --peroxidase--> quinoneimine + 4 H2O
//! ```
//!
//! The violet quinoneimine absorbs at 545 nm; absorbance read by a green
//! LED + photodiode tracks its concentration (Beer–Lambert), from which the
//! analyte concentration is estimated. Lactate, glutamate and pyruvate
//! assays follow the same oxidase/peroxidase scheme with different enzyme
//! parameters.
//!
//! We model the cascade with two Michaelis–Menten stages integrated by an
//! explicit Euler scheme, which is plenty for the millimolar ranges and
//! second-scale horizons of clinical assays.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Two-stage Michaelis–Menten cascade parameters.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct TrinderKinetics {
    /// Stage-1 (oxidase) max rate, mM/s.
    pub vmax1_mm_s: f64,
    /// Stage-1 Michaelis constant, mM.
    pub km1_mm: f64,
    /// Stage-2 (peroxidase) max rate, mM/s.
    pub vmax2_mm_s: f64,
    /// Stage-2 Michaelis constant, mM.
    pub km2_mm: f64,
}

impl TrinderKinetics {
    /// Creates a kinetics parameter set.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is non-positive or non-finite.
    #[must_use]
    pub fn new(vmax1_mm_s: f64, km1_mm: f64, vmax2_mm_s: f64, km2_mm: f64) -> Self {
        for v in [vmax1_mm_s, km1_mm, vmax2_mm_s, km2_mm] {
            assert!(
                v.is_finite() && v > 0.0,
                "kinetic parameters must be positive"
            );
        }
        TrinderKinetics {
            vmax1_mm_s,
            km1_mm,
            vmax2_mm_s,
            km2_mm,
        }
    }

    /// Integrates the cascade from an initial analyte concentration (mM)
    /// over `duration_s` seconds with step `dt_s`, returning the final
    /// state.
    ///
    /// # Panics
    ///
    /// Panics if `dt_s <= 0` or `duration_s < 0` or the concentration is
    /// negative.
    #[must_use]
    pub fn integrate(&self, analyte_mm: f64, duration_s: f64, dt_s: f64) -> CascadeState {
        assert!(dt_s > 0.0, "time step must be positive");
        assert!(duration_s >= 0.0, "duration must be non-negative");
        assert!(analyte_mm >= 0.0, "concentration must be non-negative");
        let mut state = CascadeState {
            analyte_mm,
            peroxide_mm: 0.0,
            quinoneimine_mm: 0.0,
            time_s: 0.0,
        };
        let steps = (duration_s / dt_s).ceil() as u64;
        for _ in 0..steps {
            let dt = dt_s.min(duration_s - state.time_s);
            if dt <= 0.0 {
                break;
            }
            let v1 = self.vmax1_mm_s * state.analyte_mm / (self.km1_mm + state.analyte_mm);
            let v2 = self.vmax2_mm_s * state.peroxide_mm / (self.km2_mm + state.peroxide_mm);
            let d_analyte = -v1 * dt;
            let d_quinone = v2 * dt;
            state.analyte_mm = (state.analyte_mm + d_analyte).max(0.0);
            state.peroxide_mm = (state.peroxide_mm + (v1 - v2) * dt).max(0.0);
            state.quinoneimine_mm += d_quinone;
            state.time_s += dt;
        }
        state
    }
}

/// The state of the enzymatic cascade at a point in time.
#[derive(Clone, Copy, PartialEq, Debug, Default, Serialize, Deserialize)]
pub struct CascadeState {
    /// Remaining analyte (glucose etc.), mM.
    pub analyte_mm: f64,
    /// Intermediate hydrogen peroxide, mM.
    pub peroxide_mm: f64,
    /// Coloured quinoneimine product, mM.
    pub quinoneimine_mm: f64,
    /// Elapsed reaction time, s.
    pub time_s: f64,
}

/// Beer–Lambert absorbance of quinoneimine at 545 nm.
///
/// `A = ε · c · l` with `ε` in 1/(mM·cm), `c` in mM, `l` in cm.
#[must_use]
pub fn absorbance_545nm(quinoneimine_mm: f64, path_length_cm: f64, epsilon: f64) -> f64 {
    quinoneimine_mm * path_length_cm * epsilon
}

/// Molar absorptivity of quinoneimine at 545 nm, 1/(mM·cm) (literature
/// value for Trinder chromogens is ~ 13–36 /mM/cm; we use a mid value).
pub const QUINONEIMINE_EPSILON: f64 = 26.0;

/// Optical path length through the sandwiched droplet (the plate gap),
/// ~300 µm.
pub const DROPLET_PATH_CM: f64 = 0.03;

/// LED + photodiode measurement with additive Gaussian noise on the
/// absorbance reading.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct Photodiode {
    /// Standard deviation of the absorbance reading noise.
    pub noise_sd: f64,
}

impl Default for Photodiode {
    fn default() -> Self {
        Photodiode { noise_sd: 0.002 }
    }
}

impl Photodiode {
    /// One noisy absorbance measurement.
    pub fn measure(&self, absorbance: f64, rng: &mut impl Rng) -> f64 {
        // Box–Muller standard normal.
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (absorbance + self.noise_sd * z).max(0.0)
    }
}

/// A calibration curve mapping measured absorbance to analyte
/// concentration, built from known standards — how a clinical instrument
/// actually reports concentrations.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct CalibrationCurve {
    /// `(absorbance, concentration)` pairs sorted by absorbance.
    points: Vec<(f64, f64)>,
}

impl CalibrationCurve {
    /// Builds the curve by simulating the assay protocol on standard
    /// concentrations.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two standards are supplied.
    #[must_use]
    pub fn build(kinetics: &TrinderKinetics, standards_mm: &[f64], reaction_time_s: f64) -> Self {
        assert!(standards_mm.len() >= 2, "need at least two standards");
        let mut points: Vec<(f64, f64)> = standards_mm
            .iter()
            .map(|&c| {
                let state = kinetics.integrate(c, reaction_time_s, 0.05);
                let a =
                    absorbance_545nm(state.quinoneimine_mm, DROPLET_PATH_CM, QUINONEIMINE_EPSILON);
                (a, c)
            })
            .collect();
        points.sort_by(|x, y| x.0.total_cmp(&y.0));
        CalibrationCurve { points }
    }

    /// Estimates concentration from a measured absorbance by piecewise
    /// linear interpolation (clamped to the calibrated range).
    #[must_use]
    pub fn concentration(&self, absorbance: f64) -> f64 {
        let first = self.points.first().expect("non-empty by construction");
        let last = self.points.last().expect("non-empty by construction");
        if absorbance <= first.0 {
            return first.1;
        }
        if absorbance >= last.0 {
            return last.1;
        }
        for w in self.points.windows(2) {
            if w[0].0 <= absorbance && absorbance <= w[1].0 {
                let span = w[1].0 - w[0].0;
                if span <= 0.0 {
                    return w[0].1;
                }
                let t = (absorbance - w[0].0) / span;
                return w[0].1 + t * (w[1].1 - w[0].1);
            }
        }
        last.1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn glucose_kinetics() -> TrinderKinetics {
        TrinderKinetics::new(0.08, 6.0, 0.3, 1.0)
    }

    #[test]
    fn cascade_converts_analyte_to_product() {
        let k = glucose_kinetics();
        let s = k.integrate(5.0, 60.0, 0.01);
        assert!(s.analyte_mm < 5.0);
        assert!(s.quinoneimine_mm > 0.0);
        // Mass-ish balance: product + intermediate <= consumed analyte (1:1
        // stoichiometry in this reduced model), allowing Euler error.
        let consumed = 5.0 - s.analyte_mm;
        assert!(s.quinoneimine_mm + s.peroxide_mm <= consumed + 1e-6);
        assert!((s.time_s - 60.0).abs() < 0.02);
    }

    #[test]
    fn zero_analyte_produces_no_colour() {
        let s = glucose_kinetics().integrate(0.0, 30.0, 0.01);
        assert_eq!(s.quinoneimine_mm, 0.0);
    }

    #[test]
    fn more_analyte_more_colour() {
        let k = glucose_kinetics();
        let lo = k.integrate(2.0, 30.0, 0.01).quinoneimine_mm;
        let hi = k.integrate(10.0, 30.0, 0.01).quinoneimine_mm;
        assert!(hi > lo);
    }

    #[test]
    fn absorbance_is_linear_in_product() {
        let a1 = absorbance_545nm(1.0, DROPLET_PATH_CM, QUINONEIMINE_EPSILON);
        let a2 = absorbance_545nm(2.0, DROPLET_PATH_CM, QUINONEIMINE_EPSILON);
        assert!((a2 - 2.0 * a1).abs() < 1e-12);
    }

    #[test]
    fn photodiode_noise_is_centred() {
        let pd = Photodiode { noise_sd: 0.01 };
        let mut rng = StdRng::seed_from_u64(1);
        let n = 5_000;
        let mean: f64 = (0..n).map(|_| pd.measure(0.5, &mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.001, "mean {mean}");
        // Never negative.
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(pd.measure(0.0, &mut rng) >= 0.0);
        }
    }

    #[test]
    fn calibration_roundtrip() {
        let k = glucose_kinetics();
        let curve = CalibrationCurve::build(&k, &[0.0, 2.0, 5.0, 10.0, 20.0], 45.0);
        // A fresh "patient" concentration inside the range round-trips.
        for truth in [1.0, 4.0, 8.0, 15.0] {
            let state = k.integrate(truth, 45.0, 0.05);
            let a = absorbance_545nm(state.quinoneimine_mm, DROPLET_PATH_CM, QUINONEIMINE_EPSILON);
            let est = curve.concentration(a);
            assert!(
                (est - truth).abs() / truth < 0.15,
                "truth {truth} vs est {est}"
            );
        }
        // Clamping outside the calibrated range.
        assert_eq!(curve.concentration(-1.0), 0.0);
        assert_eq!(curve.concentration(1e9), 20.0);
    }

    #[test]
    #[should_panic(expected = "at least two standards")]
    fn calibration_needs_standards() {
        let _ = CalibrationCurve::build(&glucose_kinetics(), &[1.0], 30.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn kinetics_rejects_nonpositive() {
        let _ = TrinderKinetics::new(0.0, 1.0, 1.0, 1.0);
    }
}
