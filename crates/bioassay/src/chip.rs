//! Chip-level functional resources: dispensers, mixers, detectors.

use crate::droplet::Mixture;
use dmfb_grid::{HexCoord, Region};
use dmfb_reconfig::DefectTolerantArray;
use serde::{Deserialize, Serialize};

/// A droplet source at the array edge holding a sample or reagent.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Dispenser {
    /// Port label, e.g. `"SAMPLE1"` or `"REAGENT2"`.
    pub label: String,
    /// The cell where dispensed droplets appear.
    pub cell: HexCoord,
    /// What the port dispenses.
    pub contents: Mixture,
    /// Volume of one dispensed droplet, nL.
    pub droplet_volume_nl: f64,
}

/// A mixer: a small group of cells a merged droplet is shuttled around to
/// mix its contents.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Mixer {
    /// Mixer name.
    pub name: String,
    /// The cells the mixing loop uses (first cell is the rendezvous point).
    pub cells: Vec<HexCoord>,
    /// Mixing duration in seconds.
    pub mix_time_s_x1000: u32,
}

impl Mixer {
    /// The rendezvous cell where droplets merge.
    ///
    /// # Panics
    ///
    /// Panics if the mixer has no cells.
    #[must_use]
    pub fn rendezvous(&self) -> HexCoord {
        *self.cells.first().expect("mixer has at least one cell")
    }

    /// Mixing duration in seconds.
    #[must_use]
    pub fn mix_time_s(&self) -> f64 {
        f64::from(self.mix_time_s_x1000) / 1000.0
    }
}

/// An optical detection site (transparent electrode over a photodiode).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Detector {
    /// The transparent electrode cell.
    pub cell: HexCoord,
    /// Measurement integration time in milliseconds.
    pub integration_ms: u32,
}

/// A complete biochip description: the (defect-tolerant) array plus the
/// functional resources the protocol uses, and the set of primary cells the
/// bioassays rely on (the paper's "cells used in assays").
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct ChipDescription {
    /// The electrode array with its primary/spare roles.
    pub array: DefectTolerantArray,
    /// Sample/reagent ports.
    pub dispensers: Vec<Dispenser>,
    /// Mixing sites.
    pub mixers: Vec<Mixer>,
    /// Optical detection sites.
    pub detectors: Vec<Detector>,
    /// The primary cells the assays actually use; faults outside this set
    /// are harmless under the used-cells reconfiguration policy.
    pub assay_cells: Region,
}

impl ChipDescription {
    /// Looks up a dispenser by label.
    #[must_use]
    pub fn dispenser(&self, label: &str) -> Option<&Dispenser> {
        self.dispensers.iter().find(|d| d.label == label)
    }

    /// Looks up a mixer by name.
    #[must_use]
    pub fn mixer(&self, name: &str) -> Option<&Mixer> {
        self.mixers.iter().find(|m| m.name == name)
    }

    /// The *physical* chip obtained by pushing every resource through a
    /// reconfiguration plan: dispensers, mixers, detectors and assay cells
    /// whose logical cell was replaced now sit on the replacing spare.
    ///
    /// The result intentionally breaks the *logical* layout invariant that
    /// [`ChipDescription::validate`] checks (resources on primary cells) —
    /// that is the point of reconfiguration. Use it to inspect or render
    /// where the protocol will physically run; the executor and the
    /// feasibility check perform the same remapping internally.
    ///
    /// # Example
    ///
    /// ```
    /// use dmfb_bioassay::layout::ivd_dtmb26_chip;
    /// use dmfb_defects::DefectMap;
    /// use dmfb_reconfig::{attempt_reconfiguration, ReconfigPolicy};
    ///
    /// let chip = ivd_dtmb26_chip();
    /// let faulty = chip.mixers[0].rendezvous();
    /// let defects = DefectMap::from_cells([faulty]);
    /// let plan = attempt_reconfiguration(
    ///     &chip.array,
    ///     &defects,
    ///     &ReconfigPolicy::UsedCells(chip.assay_cells.iter().collect()),
    /// )
    /// .unwrap();
    /// let physical = chip.remapped(&plan);
    /// // The faulty mixer cell moved onto its assigned spare...
    /// assert_ne!(physical.mixers[0].rendezvous(), faulty);
    /// // ...and untouched resources stayed put.
    /// assert_eq!(physical.detectors, chip.detectors);
    /// ```
    #[must_use]
    pub fn remapped(&self, plan: &dmfb_reconfig::ReconfigPlan) -> ChipDescription {
        let mut chip = self.clone();
        for d in &mut chip.dispensers {
            d.cell = plan.remap(d.cell);
        }
        for m in &mut chip.mixers {
            for c in &mut m.cells {
                *c = plan.remap(*c);
            }
        }
        for det in &mut chip.detectors {
            det.cell = plan.remap(det.cell);
        }
        chip.assay_cells = self.assay_cells.iter().map(|c| plan.remap(c)).collect();
        chip
    }

    /// Validates the *physical* side of the layout against a fault state:
    /// every resource cell is inside the array and fault-free. This is the
    /// counterpart of [`ChipDescription::validate`] for chips produced by
    /// [`ChipDescription::remapped`], where resources may legitimately sit
    /// on spare cells.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first unusable resource.
    pub fn validate_physical(&self, defects: &dmfb_defects::DefectMap) -> Result<(), String> {
        let region = self.array.region();
        let check = |what: String, cell: HexCoord| -> Result<(), String> {
            if !region.contains(cell) {
                return Err(format!("{what} cell {cell} outside array"));
            }
            if defects.is_faulty(cell) {
                return Err(format!("{what} cell {cell} is faulty"));
            }
            Ok(())
        };
        for d in &self.dispensers {
            check(format!("dispenser {}", d.label), d.cell)?;
        }
        for m in &self.mixers {
            for &c in &m.cells {
                check(format!("mixer {}", m.name), c)?;
            }
        }
        for (i, det) in self.detectors.iter().enumerate() {
            check(format!("detector {i}"), det.cell)?;
        }
        Ok(())
    }

    /// Validates internal consistency: all referenced cells exist in the
    /// array, resources sit on primary cells, and assay cells are primary.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first inconsistency.
    pub fn validate(&self) -> Result<(), String> {
        let region = self.array.region();
        for d in &self.dispensers {
            if !region.contains(d.cell) {
                return Err(format!(
                    "dispenser {} cell {} outside array",
                    d.label, d.cell
                ));
            }
        }
        for m in &self.mixers {
            if m.cells.is_empty() {
                return Err(format!("mixer {} has no cells", m.name));
            }
            for &c in &m.cells {
                if !self.array.is_primary(c) {
                    return Err(format!("mixer {} cell {c} is not a primary cell", m.name));
                }
            }
        }
        for det in &self.detectors {
            if !self.array.is_primary(det.cell) {
                return Err(format!("detector cell {} is not a primary cell", det.cell));
            }
        }
        for c in self.assay_cells.iter() {
            if !self.array.is_primary(c) {
                return Err(format!("assay cell {c} is not a primary cell"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmfb_grid::Region;

    fn tiny_chip() -> ChipDescription {
        let region = Region::parallelogram(4, 4);
        let array = DefectTolerantArray::without_redundancy(region.clone());
        ChipDescription {
            array,
            dispensers: vec![Dispenser {
                label: "SAMPLE1".into(),
                cell: HexCoord::new(0, 0),
                contents: Mixture::single("glucose", 5.0),
                droplet_volume_nl: 50.0,
            }],
            mixers: vec![Mixer {
                name: "mix0".into(),
                cells: vec![HexCoord::new(1, 1), HexCoord::new(2, 1)],
                mix_time_s_x1000: 2_000,
            }],
            detectors: vec![Detector {
                cell: HexCoord::new(3, 3),
                integration_ms: 500,
            }],
            assay_cells: region,
        }
    }

    #[test]
    fn lookups() {
        let chip = tiny_chip();
        assert!(chip.dispenser("SAMPLE1").is_some());
        assert!(chip.dispenser("nope").is_none());
        assert_eq!(
            chip.mixer("mix0").unwrap().rendezvous(),
            HexCoord::new(1, 1)
        );
        assert!((chip.mixer("mix0").unwrap().mix_time_s() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn validation_accepts_consistent_chip() {
        assert!(tiny_chip().validate().is_ok());
    }

    #[test]
    fn remapped_chip_validates_physically() {
        use dmfb_defects::DefectMap;
        use dmfb_reconfig::ReconfigPlan;
        let chip = crate::layout::ivd_dtmb26_chip();
        let faulty = chip.mixers[0].rendezvous();
        let spare = chip
            .array
            .adjacent_spares(faulty)
            .next()
            .expect("assay cells have spares");
        let defects = DefectMap::from_cells([faulty]);
        // Logical chip fails the physical check (mixer on a faulty cell)...
        let err = chip.validate_physical(&defects).unwrap_err();
        assert!(err.contains("mixer") && err.contains("faulty"), "{err}");
        // ...while the remapped chip passes it, with the mixer on the spare.
        let plan = ReconfigPlan::from_assignments([(faulty, spare)]);
        let physical = chip.remapped(&plan);
        physical.validate_physical(&defects).expect("remap is live");
        assert_eq!(physical.mixers[0].rendezvous(), spare);
        assert!(physical.assay_cells.contains(spare));
        assert!(!physical.assay_cells.contains(faulty));
    }

    #[test]
    fn validate_physical_names_the_offending_resource() {
        use dmfb_defects::DefectMap;
        let chip = tiny_chip();
        assert!(chip.validate_physical(&DefectMap::new()).is_ok());
        let dead_detector = DefectMap::from_cells([chip.detectors[0].cell]);
        let err = chip.validate_physical(&dead_detector).unwrap_err();
        assert!(err.contains("detector 0"), "{err}");
        let dead_port = DefectMap::from_cells([chip.dispensers[0].cell]);
        let err = chip.validate_physical(&dead_port).unwrap_err();
        assert!(err.contains("dispenser SAMPLE1"), "{err}");
        let mut off_array = tiny_chip();
        off_array.detectors[0].cell = HexCoord::new(99, 99);
        let err = off_array.validate_physical(&DefectMap::new()).unwrap_err();
        assert!(err.contains("outside array"), "{err}");
    }

    #[test]
    fn validation_catches_out_of_array_resources() {
        let mut chip = tiny_chip();
        chip.detectors[0].cell = HexCoord::new(99, 99);
        let err = chip.validate().unwrap_err();
        assert!(err.contains("detector"));

        let mut chip = tiny_chip();
        chip.dispensers[0].cell = HexCoord::new(99, 99);
        assert!(chip.validate().unwrap_err().contains("dispenser"));

        let mut chip = tiny_chip();
        chip.mixers[0].cells.clear();
        assert!(chip.validate().unwrap_err().contains("no cells"));
    }
}
