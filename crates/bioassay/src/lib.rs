//! Bioassay execution on digital microfluidic biochips.
//!
//! The paper's Section 7 evaluates the defect-tolerant design on a real
//! workload: **multiplexed in-vitro diagnostics** — colorimetric
//! enzyme-kinetic assays (Trinder's reaction) measuring glucose, lactate,
//! glutamate and pyruvate in human physiological fluids. This crate builds
//! that workload end to end:
//!
//! * [`droplet`] — droplets and the electrowetting transport model.
//! * [`chip`] — functional resources: dispensing ports, mixers, optical
//!   detectors, and the chip description tying them to the array.
//! * [`router`] — BFS droplet routing around faulty cells with fluidic
//!   (droplet non-interference) constraints.
//! * [`schedule`] — a discrete-time executor running concurrent assay
//!   operations on the array.
//! * [`kinetics`] — Trinder-reaction kinetics: two-stage Michaelis–Menten
//!   enzyme cascade, Beer–Lambert absorbance at 545 nm, photodiode noise,
//!   and concentration estimation with a calibration curve.
//! * [`assay`] — the assay protocol library (glucose, lactate, glutamate,
//!   pyruvate) and the multiplexed in-vitro diagnostics protocol.
//! * [`layout`] — the fabricated-chip layout (108 assay cells, no spares)
//!   and its DTMB(2,6) mapping with 252 primary and 91 spare cells
//!   (Figure 12(a)).
//! * [`feasibility`] — the operational question: does a *reconfigured*
//!   chip still schedule the protocol within its timing budget? This is
//!   what the operational-yield engine in `dmfb-yield` asks per
//!   Monte-Carlo trial.
//! * [`online`] — online reconfiguration when cells fail mid-protocol.
//!
//! # Example
//!
//! ```
//! use dmfb_bioassay::layout::ivd_dtmb26_chip;
//!
//! let chip = ivd_dtmb26_chip();
//! assert_eq!(chip.array.primary_count(), 252);
//! assert_eq!(chip.array.spare_count(), 91);
//! assert_eq!(chip.assay_cells.len(), 108);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod assay;
pub mod chip;
pub mod dilution;
pub mod droplet;
pub mod feasibility;
pub mod kinetics;
pub mod layout;
pub mod online;
pub mod router;
pub mod schedule;

pub use assay::{Analyte, AssayOutcome, MultiplexedIvd};
pub use chip::ChipDescription;
pub use droplet::Droplet;
pub use feasibility::{FeasibilityChecker, Infeasibility, TimingBudget};
pub use schedule::{plan_protocol, ProtocolSchedule, ScheduledOp};
