//! Droplet routing around faulty cells with fluidic constraints.
//!
//! Droplets move only between adjacent electrodes (microfluidic locality),
//! cannot enter catastrophically faulty cells, and independent droplets
//! must keep one empty cell between each other or they merge accidentally —
//! the *static fluidic constraint*. The router plans shortest paths under
//! these rules with breadth-first search.

use dmfb_defects::{DefectCause, DefectMap};
use dmfb_grid::{HexCoord, Region};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A path router over one chip's region and fault state.
///
/// # Example
///
/// ```
/// use dmfb_bioassay::router::Router;
/// use dmfb_defects::DefectMap;
/// use dmfb_grid::{HexCoord, Region};
///
/// let region = Region::parallelogram(5, 5);
/// let router = Router::new(&region, &DefectMap::new());
/// let path = router
///     .route(HexCoord::new(0, 0), HexCoord::new(4, 4), &[])
///     .unwrap();
/// assert_eq!(path.first(), Some(&HexCoord::new(0, 0)));
/// assert_eq!(path.last(), Some(&HexCoord::new(4, 4)));
/// ```
#[derive(Clone, Debug)]
pub struct Router {
    region: Region,
    blocked: BTreeSet<HexCoord>,
}

impl Router {
    /// Creates a router that avoids the catastrophically faulty cells of
    /// `defects`. Parametric faults do not block transport (droplets still
    /// move over them; detection is the test subsystem's business).
    #[must_use]
    pub fn new(region: &Region, defects: &DefectMap) -> Self {
        let blocked = defects
            .iter()
            .filter(|(_, cause)| matches!(cause, DefectCause::Catastrophic(_)))
            .map(|(c, _)| c)
            .collect();
        Router {
            region: region.clone(),
            blocked,
        }
    }

    /// Whether `cell` is routable (inside the region and not blocked).
    #[must_use]
    pub fn is_routable(&self, cell: HexCoord) -> bool {
        self.region.contains(cell) && !self.blocked.contains(&cell)
    }

    /// Shortest path from `from` to `to` avoiding blocked cells and keeping
    /// fluidic spacing from `other_droplets` (no cell of the path may be
    /// adjacent to or on top of another droplet, except the endpoints when
    /// they coincide with a merge target).
    ///
    /// Returns `None` when no route exists.
    #[must_use]
    pub fn route(
        &self,
        from: HexCoord,
        to: HexCoord,
        other_droplets: &[HexCoord],
    ) -> Option<Vec<HexCoord>> {
        if !self.is_routable(from) || !self.is_routable(to) {
            return None;
        }
        let forbidden: BTreeSet<HexCoord> = other_droplets
            .iter()
            .flat_map(|&d| std::iter::once(d).chain(d.neighbors()))
            .filter(|c| *c != to && *c != from)
            .collect();
        if from == to {
            return Some(vec![from]);
        }
        let mut prev: BTreeMap<HexCoord, HexCoord> = BTreeMap::new();
        let mut queue = VecDeque::new();
        prev.insert(from, from);
        queue.push_back(from);
        while let Some(c) = queue.pop_front() {
            for n in c.neighbors() {
                if !self.is_routable(n) || forbidden.contains(&n) || prev.contains_key(&n) {
                    continue;
                }
                prev.insert(n, c);
                if n == to {
                    let mut path = vec![to];
                    let mut cur = to;
                    while cur != from {
                        cur = prev[&cur];
                        path.push(cur);
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(n);
            }
        }
        None
    }

    /// Number of droplet moves along the route between two cells, if
    /// routable. Convenience for timing models.
    #[must_use]
    pub fn route_length(&self, from: HexCoord, to: HexCoord) -> Option<usize> {
        self.route(from, to, &[]).map(|p| p.len() - 1)
    }
}

/// Checks the static fluidic constraint over a set of parked droplets: no
/// two may be on the same or adjacent cells. Returns the first offending
/// pair.
#[must_use]
pub fn spacing_violation(droplets: &[HexCoord]) -> Option<(HexCoord, HexCoord)> {
    for (i, &a) in droplets.iter().enumerate() {
        for &b in &droplets[i + 1..] {
            if a == b || a.is_adjacent(b) {
                return Some((a, b));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmfb_defects::{CatastrophicDefect, DefectCause, ParametricDefect};

    fn breakdown() -> DefectCause {
        DefectCause::Catastrophic(CatastrophicDefect::DielectricBreakdown)
    }

    #[test]
    fn shortest_path_on_clean_chip() {
        let region = Region::parallelogram(6, 6);
        let router = Router::new(&region, &DefectMap::new());
        let from = HexCoord::new(0, 0);
        let to = HexCoord::new(5, 0);
        let path = router.route(from, to, &[]).unwrap();
        assert_eq!(path.len() as u32, from.distance(to) + 1);
        for w in path.windows(2) {
            assert!(w[0].is_adjacent(w[1]));
        }
        assert_eq!(router.route_length(from, to), Some(5));
    }

    #[test]
    fn routes_detour_around_faults() {
        let region = Region::parallelogram(5, 3);
        // Wall of faults across the middle column except the top row.
        let mut defects = DefectMap::new();
        defects.mark(HexCoord::new(2, 1), breakdown());
        defects.mark(HexCoord::new(2, 2), breakdown());
        let router = Router::new(&region, &defects);
        let from = HexCoord::new(0, 1);
        let to = HexCoord::new(4, 1);
        let path = router.route(from, to, &[]).unwrap();
        assert!(path.len() as u32 > from.distance(to) + 1, "must detour");
        for c in &path {
            assert!(!defects.is_faulty(*c));
        }
    }

    #[test]
    fn parametric_faults_do_not_block() {
        let region = Region::parallelogram(3, 1);
        let mut defects = DefectMap::new();
        defects.mark(
            HexCoord::new(1, 0),
            DefectCause::Parametric(ParametricDefect::PlateGap, 0.5),
        );
        let router = Router::new(&region, &defects);
        assert!(router
            .route(HexCoord::new(0, 0), HexCoord::new(2, 0), &[])
            .is_some());
    }

    #[test]
    fn blocked_endpoints_unroutable() {
        let region = Region::parallelogram(3, 3);
        let mut defects = DefectMap::new();
        defects.mark(HexCoord::new(0, 0), breakdown());
        let router = Router::new(&region, &defects);
        assert!(router
            .route(HexCoord::new(0, 0), HexCoord::new(2, 2), &[])
            .is_none());
        assert!(router
            .route(HexCoord::new(2, 2), HexCoord::new(0, 0), &[])
            .is_none());
        assert!(!router.is_routable(HexCoord::new(0, 0)));
        assert!(!router.is_routable(HexCoord::new(9, 9)));
    }

    #[test]
    fn fully_walled_target_unroutable() {
        let region = Region::hexagon(HexCoord::ORIGIN, 2);
        let mut defects = DefectMap::new();
        for c in HexCoord::ORIGIN.ring(1) {
            defects.mark(c, breakdown());
        }
        let router = Router::new(&region, &defects);
        assert!(router
            .route(HexCoord::new(2, 0), HexCoord::ORIGIN, &[])
            .is_none());
    }

    #[test]
    fn routes_respect_droplet_spacing() {
        let region = Region::parallelogram(7, 5);
        let router = Router::new(&region, &DefectMap::new());
        let parked = HexCoord::new(3, 2);
        let path = router
            .route(HexCoord::new(0, 2), HexCoord::new(6, 2), &[parked])
            .unwrap();
        for c in &path {
            assert!(*c != parked && !c.is_adjacent(parked), "cell {c} too close");
        }
    }

    #[test]
    fn spacing_halo_can_sever_small_arrays() {
        // On a narrow array the halo of a parked droplet cuts the region:
        // there must be NO route rather than a constraint-violating one.
        let region = Region::parallelogram(5, 3);
        let router = Router::new(&region, &DefectMap::new());
        assert!(router
            .route(
                HexCoord::new(0, 1),
                HexCoord::new(4, 1),
                &[HexCoord::new(2, 1)]
            )
            .is_none());
    }

    #[test]
    fn spacing_violation_detection() {
        assert!(spacing_violation(&[HexCoord::new(0, 0), HexCoord::new(1, 0)]).is_some());
        assert!(spacing_violation(&[HexCoord::new(0, 0), HexCoord::new(0, 0)]).is_some());
        assert!(spacing_violation(&[HexCoord::new(0, 0), HexCoord::new(3, 0)]).is_none());
        assert!(spacing_violation(&[]).is_none());
    }

    #[test]
    fn same_cell_route_is_trivial() {
        let region = Region::parallelogram(2, 2);
        let router = Router::new(&region, &DefectMap::new());
        let c = HexCoord::new(1, 1);
        assert_eq!(router.route(c, c, &[]), Some(vec![c]));
    }
}
