//! Concrete chip layouts for the multiplexed in-vitro diagnostics case
//! study (paper Section 7, Figures 11 and 12).

use crate::chip::{ChipDescription, Detector, Dispenser, Mixer};
use crate::droplet::Mixture;
use dmfb_grid::{HexCoord, Region};
use dmfb_reconfig::dtmb::DtmbKind;
use dmfb_reconfig::{DefectTolerantArray, ReconfigPolicy};

/// Number of cells used by the bioassays on the fabricated chip.
pub const ASSAY_CELLS: usize = 108;
/// Primary cells of the DTMB(2,6) redesign (Figure 12(a)).
pub const DTMB26_PRIMARIES: usize = 252;
/// Spare cells of the DTMB(2,6) redesign (Figure 12(a)).
pub const DTMB26_SPARES: usize = 91;

fn standard_ports(cells: [HexCoord; 4]) -> Vec<Dispenser> {
    let [s1, s2, r1, r2] = cells;
    vec![
        Dispenser {
            label: "SAMPLE1".into(),
            cell: s1,
            contents: Mixture::new(),
            droplet_volume_nl: 50.0,
        },
        Dispenser {
            label: "SAMPLE2".into(),
            cell: s2,
            contents: Mixture::new(),
            droplet_volume_nl: 50.0,
        },
        Dispenser {
            label: "REAGENT1".into(),
            cell: r1,
            contents: Mixture::single("glucose_oxidase", 2.0),
            droplet_volume_nl: 50.0,
        },
        Dispenser {
            label: "REAGENT2".into(),
            cell: r2,
            contents: Mixture::single("lactate_oxidase", 2.0),
            droplet_volume_nl: 50.0,
        },
    ]
}

/// The first fabricated multiplexed-diagnostics biochip: 108 cells, *no*
/// spares ("only cells used for the bioassays were fabricated; no spare
/// cells were included in the array"). Its yield at p = 0.99 is only
/// `0.99¹⁰⁸ ≈ 0.3378`.
///
/// The physical chip uses square electrodes; we lay the same 108-cell
/// topology out on the hexagonal lattice (a 12 × 9 offset rectangle) so the
/// rest of the toolchain applies uniformly. Adjacency is a superset of the
/// square chip's, which only makes routing easier, never changes the yield
/// analysis (yield depends on cell count alone for a chip without spares).
#[must_use]
pub fn fabricated_ivd_chip() -> ChipDescription {
    let region = Region::rectangle(12, 9);
    debug_assert_eq!(region.len(), ASSAY_CELLS);
    let array = DefectTolerantArray::without_redundancy(region.clone());
    ChipDescription {
        array,
        dispensers: standard_ports([
            HexCoord::new(0, 0),
            HexCoord::new(11, 0),
            HexCoord::new(-4, 8),
            HexCoord::new(7, 8),
        ]),
        mixers: vec![
            Mixer {
                name: "mixer1".into(),
                cells: vec![
                    HexCoord::new(-1, 4),
                    HexCoord::new(0, 4),
                    HexCoord::new(-1, 5),
                ],
                mix_time_s_x1000: 60_000,
            },
            Mixer {
                name: "mixer2".into(),
                cells: vec![
                    HexCoord::new(3, 4),
                    HexCoord::new(4, 4),
                    HexCoord::new(3, 5),
                ],
                mix_time_s_x1000: 60_000,
            },
        ],
        detectors: vec![
            Detector {
                cell: HexCoord::new(1, 2),
                integration_ms: 500,
            },
            Detector {
                cell: HexCoord::new(5, 6),
                integration_ms: 500,
            },
        ],
        assay_cells: region,
    }
}

/// The defect-tolerant redesign of Figure 12(a): the fabricated chip's
/// topology mapped onto a DTMB(2,6) array with 252 primary and 91 spare
/// cells, of which 108 primaries are used by the assays.
#[must_use]
pub fn ivd_dtmb26_chip() -> ChipDescription {
    let array = DtmbKind::Dtmb26A.with_exact_counts(DTMB26_PRIMARIES, DTMB26_SPARES);
    // The 108 assay cells: the first 108 primaries in deterministic order
    // (mirroring the original chip's working area mapped into the array).
    let assay_cells: Region = array.primaries().take(ASSAY_CELLS).collect();
    ChipDescription {
        array,
        dispensers: standard_ports([
            HexCoord::new(0, 1),
            HexCoord::new(0, 17),
            HexCoord::new(7, 1),
            HexCoord::new(7, 13),
        ]),
        mixers: vec![
            Mixer {
                name: "mixer1".into(),
                cells: vec![
                    HexCoord::new(3, 3),
                    HexCoord::new(3, 4),
                    HexCoord::new(4, 3),
                ],
                mix_time_s_x1000: 60_000,
            },
            Mixer {
                name: "mixer2".into(),
                cells: vec![
                    HexCoord::new(5, 7),
                    HexCoord::new(5, 8),
                    HexCoord::new(6, 7),
                ],
                mix_time_s_x1000: 60_000,
            },
        ],
        detectors: vec![
            Detector {
                cell: HexCoord::new(1, 9),
                integration_ms: 500,
            },
            Detector {
                cell: HexCoord::new(5, 13),
                integration_ms: 500,
            },
        ],
        assay_cells,
    }
}

/// The reconfiguration policy matching the case study: only the assay
/// cells must be functional; faults on unused primaries are harmless.
#[must_use]
pub fn used_cells_policy(chip: &ChipDescription) -> ReconfigPolicy {
    ReconfigPolicy::UsedCells(chip.assay_cells.iter().collect())
}

/// An alternative mapping of the 108 assay cells onto the same DTMB(2,6)
/// array that *minimises spare contention*: cells are picked greedily so
/// that each spare protects as few used cells as possible.
///
/// The paper does not publish its exact used-cell placement; the
/// contiguous block of [`ivd_dtmb26_chip`] maximises spare sharing (up to
/// six used cells per spare) while this spread placement minimises it.
/// Together they bracket the achievable Figure 13 curve and quantify how
/// much of the paper's "yield ≥ 0.90 up to 35 faults" is a placement
/// effect.
#[must_use]
pub fn ivd_dtmb26_spread_assay_cells() -> (dmfb_reconfig::DefectTolerantArray, Region) {
    let array = DtmbKind::Dtmb26A.with_exact_counts(DTMB26_PRIMARIES, DTMB26_SPARES);
    let mut usage: std::collections::BTreeMap<HexCoord, u32> = std::collections::BTreeMap::new();
    let mut selected = Region::new();
    // Threshold sweep: first admit cells whose spares are unused, then
    // singly-used, and so on, until 108 cells are placed.
    for threshold in 0u32..=6 {
        if selected.len() >= ASSAY_CELLS {
            break;
        }
        for cell in array.primaries() {
            if selected.len() >= ASSAY_CELLS {
                break;
            }
            if selected.contains(cell) {
                continue;
            }
            let spares: Vec<HexCoord> = array.adjacent_spares(cell).collect();
            if spares
                .iter()
                .all(|s| usage.get(s).copied().unwrap_or(0) <= threshold)
            {
                for s in &spares {
                    *usage.entry(*s).or_insert(0) += 1;
                }
                selected.insert(cell);
            }
        }
    }
    debug_assert_eq!(selected.len(), ASSAY_CELLS);
    (array, selected)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fabricated_chip_matches_paper() {
        let chip = fabricated_ivd_chip();
        assert_eq!(chip.array.primary_count(), ASSAY_CELLS);
        assert_eq!(chip.array.spare_count(), 0);
        assert_eq!(chip.assay_cells.len(), ASSAY_CELLS);
        chip.validate().expect("consistent layout");
        assert!(chip.array.region().is_connected());
    }

    #[test]
    fn dtmb26_chip_matches_figure12() {
        let chip = ivd_dtmb26_chip();
        assert_eq!(chip.array.primary_count(), DTMB26_PRIMARIES);
        assert_eq!(chip.array.spare_count(), DTMB26_SPARES);
        assert_eq!(chip.array.total_cells(), 343);
        assert_eq!(chip.assay_cells.len(), ASSAY_CELLS);
        chip.validate().expect("consistent layout");
        // Every assay cell is protected by at least one adjacent spare.
        for c in chip.assay_cells.iter() {
            assert!(
                chip.array.adjacent_spares(c).count() >= 1,
                "assay cell {c} has no adjacent spare"
            );
        }
    }

    #[test]
    fn dtmb26_assay_cells_have_two_spares_each() {
        // The DTMB(2,6) guarantee for the used cells (the pattern closes
        // spares around every primary).
        let chip = ivd_dtmb26_chip();
        for c in chip.assay_cells.iter() {
            assert_eq!(
                chip.array.adjacent_spares(c).count(),
                2,
                "assay cell {c} should see exactly 2 spares"
            );
        }
    }

    #[test]
    fn policy_covers_exactly_assay_cells() {
        let chip = ivd_dtmb26_chip();
        let policy = used_cells_policy(&chip);
        for c in chip.assay_cells.iter() {
            assert!(policy.requires(c));
        }
        let unused = chip
            .array
            .primaries()
            .find(|c| !chip.assay_cells.contains(*c))
            .expect("some primaries are unused");
        assert!(!policy.requires(unused));
    }

    #[test]
    fn spread_selection_reduces_contention() {
        let block = ivd_dtmb26_chip();
        let (array, spread) = ivd_dtmb26_spread_assay_cells();
        assert_eq!(spread.len(), ASSAY_CELLS);
        for c in spread.iter() {
            assert!(array.is_primary(c));
        }
        // Maximum used-cells-per-spare must be strictly lower for the
        // spread placement than for the contiguous block.
        let max_sharing = |array: &dmfb_reconfig::DefectTolerantArray, used: &Region| {
            array
                .spares()
                .map(|s| {
                    array
                        .adjacent_primaries(s)
                        .filter(|c| used.contains(*c))
                        .count()
                })
                .max()
                .unwrap_or(0)
        };
        let block_sharing = max_sharing(&block.array, &block.assay_cells);
        let spread_sharing = max_sharing(&array, &spread);
        assert!(
            spread_sharing < block_sharing,
            "spread {spread_sharing} vs block {block_sharing}"
        );
    }

    #[test]
    fn resources_sit_on_assay_cells() {
        let chip = ivd_dtmb26_chip();
        for m in &chip.mixers {
            for c in &m.cells {
                assert!(chip.assay_cells.contains(*c), "mixer cell {c} unused");
            }
        }
        for d in &chip.detectors {
            assert!(chip.assay_cells.contains(d.cell));
        }
        for p in &chip.dispensers {
            assert!(
                chip.assay_cells.contains(p.cell),
                "port {} off-area",
                p.label
            );
        }
    }
}
