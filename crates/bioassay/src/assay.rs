//! The clinical assay library and the multiplexed in-vitro diagnostics
//! protocol (paper Section 7).

use crate::kinetics::TrinderKinetics;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The metabolites measured by the paper's multiplexed diagnostics
/// platform.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Analyte {
    /// Blood glucose (Trinder's reaction with glucose oxidase).
    Glucose,
    /// Lactate (lactate oxidase).
    Lactate,
    /// Glutamate (glutamate oxidase).
    Glutamate,
    /// Pyruvate (pyruvate oxidase).
    Pyruvate,
}

impl fmt::Display for Analyte {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Analyte::Glucose => write!(f, "glucose"),
            Analyte::Lactate => write!(f, "lactate"),
            Analyte::Glutamate => write!(f, "glutamate"),
            Analyte::Pyruvate => write!(f, "pyruvate"),
        }
    }
}

impl Analyte {
    /// All four analytes.
    pub const ALL: [Analyte; 4] = [
        Analyte::Glucose,
        Analyte::Lactate,
        Analyte::Glutamate,
        Analyte::Pyruvate,
    ];

    /// The species name used in droplet [`Mixture`]s.
    ///
    /// [`Mixture`]: crate::droplet::Mixture
    #[must_use]
    pub fn species(&self) -> &'static str {
        match self {
            Analyte::Glucose => "glucose",
            Analyte::Lactate => "lactate",
            Analyte::Glutamate => "glutamate",
            Analyte::Pyruvate => "pyruvate",
        }
    }

    /// Default oxidase/peroxidase cascade parameters for the analyte.
    /// Values are representative of clinical enzyme preparations; the
    /// absolute numbers only shape the timing, not the yield analysis.
    #[must_use]
    pub fn kinetics(&self) -> TrinderKinetics {
        match self {
            Analyte::Glucose => TrinderKinetics::new(0.08, 6.0, 0.30, 1.0),
            Analyte::Lactate => TrinderKinetics::new(0.06, 4.0, 0.30, 1.0),
            Analyte::Glutamate => TrinderKinetics::new(0.04, 3.0, 0.25, 1.0),
            Analyte::Pyruvate => TrinderKinetics::new(0.05, 2.5, 0.25, 1.0),
        }
    }

    /// A typical physiological concentration range (mM) in human plasma,
    /// used to generate realistic synthetic patients.
    #[must_use]
    pub fn physiological_range_mm(&self) -> (f64, f64) {
        match self {
            Analyte::Glucose => (3.9, 7.1),
            Analyte::Lactate => (0.5, 2.2),
            Analyte::Glutamate => (0.02, 0.25),
            Analyte::Pyruvate => (0.03, 0.16),
        }
    }

    /// Calibration standards (mM) covering the clinical range.
    #[must_use]
    pub fn calibration_standards_mm(&self) -> Vec<f64> {
        let (_, hi) = self.physiological_range_mm();
        vec![0.0, hi * 0.25, hi * 0.5, hi, hi * 2.0, hi * 4.0]
    }
}

/// One requested measurement: which sample is assayed for which analyte,
/// and which chip resources carry it out.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct AssayRequest {
    /// Sample port label, e.g. `"SAMPLE1"`.
    pub sample_port: String,
    /// Reagent port label, e.g. `"REAGENT1"`.
    pub reagent_port: String,
    /// The analyte this reagent detects.
    pub analyte: Analyte,
    /// Mixer name.
    pub mixer: String,
    /// Index into the chip's detector list.
    pub detector: usize,
}

/// A batch of concurrent assay requests — the multiplexed in-vitro
/// diagnostics workload.
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct MultiplexedIvd {
    /// The requested measurements.
    pub requests: Vec<AssayRequest>,
}

impl MultiplexedIvd {
    /// The paper's configuration: two physiological samples, two reagents
    /// (Figure 11: SAMPLE1/SAMPLE2 and REAGENT1/REAGENT2), assayed
    /// pairwise — four concurrent measurements on one chip.
    #[must_use]
    pub fn standard_panel() -> Self {
        MultiplexedIvd {
            requests: vec![
                AssayRequest {
                    sample_port: "SAMPLE1".into(),
                    reagent_port: "REAGENT1".into(),
                    analyte: Analyte::Glucose,
                    mixer: "mixer1".into(),
                    detector: 0,
                },
                AssayRequest {
                    sample_port: "SAMPLE1".into(),
                    reagent_port: "REAGENT2".into(),
                    analyte: Analyte::Lactate,
                    mixer: "mixer2".into(),
                    detector: 1,
                },
                AssayRequest {
                    sample_port: "SAMPLE2".into(),
                    reagent_port: "REAGENT1".into(),
                    analyte: Analyte::Glucose,
                    mixer: "mixer1".into(),
                    detector: 0,
                },
                AssayRequest {
                    sample_port: "SAMPLE2".into(),
                    reagent_port: "REAGENT2".into(),
                    analyte: Analyte::Lactate,
                    mixer: "mixer2".into(),
                    detector: 1,
                },
            ],
        }
    }

    /// An extended panel covering all four metabolites on both samples
    /// (eight measurements), exercising heavier concurrency.
    #[must_use]
    pub fn full_metabolic_panel() -> Self {
        let mut requests = Vec::new();
        for (si, sample) in ["SAMPLE1", "SAMPLE2"].iter().enumerate() {
            for (ai, analyte) in Analyte::ALL.iter().enumerate() {
                requests.push(AssayRequest {
                    sample_port: (*sample).into(),
                    reagent_port: format!("REAGENT{}", ai % 2 + 1),
                    analyte: *analyte,
                    mixer: format!("mixer{}", (si + ai) % 2 + 1),
                    detector: (si + ai) % 2,
                });
            }
        }
        MultiplexedIvd { requests }
    }
}

/// The result of one completed assay.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct AssayOutcome {
    /// Which measurement this is.
    pub request: AssayRequest,
    /// The sample's true concentration (mM) — known in simulation.
    pub true_concentration_mm: f64,
    /// The instrument's estimate (mM) from the calibration curve.
    pub measured_concentration_mm: f64,
    /// Raw (noisy) absorbance reading at 545 nm.
    pub absorbance: f64,
    /// Droplet moves spent on transport.
    pub transport_moves: usize,
    /// Wall-clock completion time of this assay within the protocol, s.
    pub completion_time_s: f64,
}

impl AssayOutcome {
    /// Relative measurement error |est − true| / true (0 when truth is 0).
    #[must_use]
    pub fn relative_error(&self) -> f64 {
        if self.true_concentration_mm == 0.0 {
            return 0.0;
        }
        (self.measured_concentration_mm - self.true_concentration_mm).abs()
            / self.true_concentration_mm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyte_metadata() {
        for a in Analyte::ALL {
            assert!(!a.species().is_empty());
            assert!(!a.to_string().is_empty());
            let (lo, hi) = a.physiological_range_mm();
            assert!(0.0 < lo && lo < hi);
            let standards = a.calibration_standards_mm();
            assert!(standards.len() >= 4);
            assert_eq!(standards[0], 0.0);
            assert!(standards.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn standard_panel_matches_paper_figure11() {
        let panel = MultiplexedIvd::standard_panel();
        assert_eq!(panel.requests.len(), 4);
        // Two samples x two reagents.
        let samples: std::collections::BTreeSet<_> =
            panel.requests.iter().map(|r| &r.sample_port).collect();
        let reagents: std::collections::BTreeSet<_> =
            panel.requests.iter().map(|r| &r.reagent_port).collect();
        assert_eq!(samples.len(), 2);
        assert_eq!(reagents.len(), 2);
    }

    #[test]
    fn full_panel_covers_all_analytes() {
        let panel = MultiplexedIvd::full_metabolic_panel();
        assert_eq!(panel.requests.len(), 8);
        for a in Analyte::ALL {
            assert!(panel.requests.iter().any(|r| r.analyte == a));
        }
    }

    #[test]
    fn relative_error() {
        let outcome = AssayOutcome {
            request: MultiplexedIvd::standard_panel().requests[0].clone(),
            true_concentration_mm: 5.0,
            measured_concentration_mm: 5.5,
            absorbance: 0.2,
            transport_moves: 10,
            completion_time_s: 30.0,
        };
        assert!((outcome.relative_error() - 0.1).abs() < 1e-12);
    }
}
