//! On-chip serial dilution.
//!
//! Clinical samples often exceed an assay's linear range; digital
//! microfluidics handles this with binary serial dilution: merge the
//! sample droplet 1:1 with buffer, mix, split — each stage halves the
//! concentration. The paper's platform performs exactly these merge/split
//! primitives; this module plans and simulates the ladder and integrates
//! with the Trinder kinetics so a diluted sample can be measured back.

use crate::droplet::{Droplet, DropletId, Mixture};
use serde::{Deserialize, Serialize};

/// A planned binary dilution ladder.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DilutionPlan {
    /// Number of 1:1 merge-mix-split stages.
    pub stages: u32,
}

impl DilutionPlan {
    /// Plans the smallest binary ladder achieving at least
    /// `target_dilution` (e.g. 8.0 → 3 stages for a 1:8 dilution).
    ///
    /// # Panics
    ///
    /// Panics if `target_dilution < 1` or non-finite.
    #[must_use]
    pub fn for_target(target_dilution: f64) -> Self {
        assert!(
            target_dilution.is_finite() && target_dilution >= 1.0,
            "dilution factor must be >= 1"
        );
        DilutionPlan {
            stages: target_dilution.log2().ceil().max(0.0) as u32,
        }
    }

    /// The exact dilution factor the ladder achieves (`2^stages`).
    #[must_use]
    pub fn achieved_dilution(&self) -> f64 {
        2f64.powi(self.stages as i32)
    }

    /// Buffer droplets consumed (one per stage).
    #[must_use]
    pub fn buffer_droplets(&self) -> u32 {
        self.stages
    }

    /// Executes the ladder on `sample`, consuming one buffer droplet of
    /// equal volume per stage. Returns the diluted droplet (same volume as
    /// the input) and the waste droplets produced by the splits.
    ///
    /// `next_id` supplies identities for the waste halves.
    #[must_use]
    pub fn execute(
        &self,
        mut sample: Droplet,
        buffer: &Mixture,
        mut next_id: impl FnMut() -> DropletId,
    ) -> (Droplet, Vec<Droplet>) {
        let mut waste = Vec::with_capacity(self.stages as usize);
        for _ in 0..self.stages {
            let buffer_droplet = Droplet::new(
                next_id(),
                // Rendezvous bookkeeping only; geometry is the router's job.
                sample.position,
                sample.volume_nl,
                buffer.clone(),
            );
            sample.merge(buffer_droplet);
            let off = sample.position.step(dmfb_grid::HexDir::East);
            let half = sample.split(next_id(), off);
            waste.push(half);
        }
        (sample, waste)
    }
}

/// Convenience: dilute a raw concentration by a ladder and report the
/// concentration the assay will actually see.
#[must_use]
pub fn diluted_concentration(raw_mm: f64, plan: &DilutionPlan) -> f64 {
    raw_mm / plan.achieved_dilution()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmfb_grid::HexCoord;

    fn sample(conc: f64) -> Droplet {
        Droplet::new(
            DropletId(0),
            HexCoord::new(0, 0),
            50.0,
            Mixture::single("glucose", conc),
        )
    }

    #[test]
    fn plans_smallest_sufficient_ladder() {
        assert_eq!(DilutionPlan::for_target(1.0).stages, 0);
        assert_eq!(DilutionPlan::for_target(2.0).stages, 1);
        assert_eq!(DilutionPlan::for_target(5.0).stages, 3);
        assert_eq!(DilutionPlan::for_target(8.0).stages, 3);
        assert_eq!(DilutionPlan::for_target(9.0).stages, 4);
        assert_eq!(DilutionPlan::for_target(8.0).achieved_dilution(), 8.0);
    }

    #[test]
    #[should_panic(expected = ">= 1")]
    fn rejects_sub_unity_targets() {
        let _ = DilutionPlan::for_target(0.5);
    }

    #[test]
    fn execution_halves_per_stage_and_conserves_volume() {
        let plan = DilutionPlan { stages: 3 };
        let mut ids = 100u32;
        let (out, waste) = plan.execute(sample(16.0), &Mixture::new(), || {
            ids += 1;
            DropletId(ids)
        });
        assert!((out.contents.concentration("glucose") - 2.0).abs() < 1e-12);
        assert!((out.volume_nl - 50.0).abs() < 1e-9);
        assert_eq!(waste.len(), 3);
        // Waste concentrations descend the ladder: 8, 4, 2.
        let wc: Vec<f64> = waste
            .iter()
            .map(|d| d.contents.concentration("glucose"))
            .collect();
        assert!((wc[0] - 8.0).abs() < 1e-12);
        assert!((wc[1] - 4.0).abs() < 1e-12);
        assert!((wc[2] - 2.0).abs() < 1e-12);
        // Solute conservation: output + waste = input.
        let total: f64 = out.contents.concentration("glucose") * out.volume_nl
            + waste
                .iter()
                .map(|d| d.contents.concentration("glucose") * d.volume_nl)
                .sum::<f64>();
        assert!((total - 16.0 * 50.0).abs() < 1e-9);
    }

    #[test]
    fn zero_stage_ladder_is_identity() {
        let plan = DilutionPlan { stages: 0 };
        let (out, waste) = plan.execute(sample(5.0), &Mixture::new(), || DropletId(9));
        assert_eq!(out.contents.concentration("glucose"), 5.0);
        assert!(waste.is_empty());
        assert_eq!(plan.buffer_droplets(), 0);
    }

    #[test]
    fn diluted_concentration_helper() {
        let plan = DilutionPlan::for_target(4.0);
        assert!((diluted_concentration(20.0, &plan) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn dilution_brings_sample_into_assay_range() {
        use crate::assay::Analyte;
        // A grossly hyperglycaemic sample (40 mM) is outside the glucose
        // calibration range (max standard 28.4 mM); a 1:4 dilution brings
        // it inside, and the measurement round-trips after multiplying
        // back.
        let analyte = Analyte::Glucose;
        let standards = analyte.calibration_standards_mm();
        let max_standard = standards.last().copied().unwrap();
        let raw = 40.0;
        assert!(raw > max_standard);
        let plan = DilutionPlan::for_target(raw / max_standard * 2.0);
        let seen = diluted_concentration(raw, &plan);
        assert!(seen <= max_standard);
        let kinetics = analyte.kinetics();
        let curve = crate::kinetics::CalibrationCurve::build(&kinetics, &standards, 60.0);
        let state = kinetics.integrate(seen, 60.0, 0.05);
        let a = crate::kinetics::absorbance_545nm(
            state.quinoneimine_mm,
            crate::kinetics::DROPLET_PATH_CM,
            crate::kinetics::QUINONEIMINE_EPSILON,
        );
        let measured = curve.concentration(a) * plan.achieved_dilution();
        assert!(
            (measured - raw).abs() / raw < 0.2,
            "measured {measured} vs raw {raw}"
        );
    }
}
