//! Operational feasibility: can a reconfigured chip still run its assay?
//!
//! The paper's closing argument is not just that a DTMB array can be
//! *reconfigured* around its defects, but that the reconfigured chip still
//! **performs the multiplexed in-vitro-diagnostics protocol** within its
//! timing requirements. Matching feasibility is necessary but not
//! sufficient: a chip can have a perfect primary→spare assignment and
//! still be operationally dead because catastrophic faults elsewhere in
//! the array sever every droplet route, or because the detours and
//! remapped resources stretch the protocol past its deadline.
//!
//! [`FeasibilityChecker`] owns a chip description, an assay batch and a
//! [`TimingBudget`], and answers that question per fault state: it remaps
//! every resource through the reconfiguration plan, routes every droplet
//! transport around the faults ([`plan_protocol`]), and compares the
//! resulting makespan against the budget. The operational-yield engine in
//! `dmfb-yield` calls it once per Monte-Carlo trial.

use crate::assay::MultiplexedIvd;
use crate::chip::ChipDescription;
use crate::droplet::ElectrowettingModel;
use crate::schedule::{plan_protocol, ExecError, ProtocolSchedule};
use dmfb_defects::DefectMap;
use dmfb_reconfig::ReconfigPlan;
use std::fmt;

/// The protocol deadline an operational chip must meet.
///
/// # Example
///
/// ```
/// use dmfb_bioassay::feasibility::TimingBudget;
///
/// let budget = TimingBudget::absolute(250.0);
/// assert!(budget.allows(249.9));
/// assert!(!budget.allows(250.1));
/// assert!(TimingBudget::unlimited().allows(1e12));
/// ```
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct TimingBudget {
    /// Maximum tolerated protocol makespan in seconds.
    pub max_makespan_s: f64,
}

impl TimingBudget {
    /// A budget that only fails structurally impossible protocols (no
    /// deadline).
    #[must_use]
    pub fn unlimited() -> Self {
        TimingBudget {
            max_makespan_s: f64::INFINITY,
        }
    }

    /// An absolute deadline in seconds.
    #[must_use]
    pub fn absolute(max_makespan_s: f64) -> Self {
        TimingBudget { max_makespan_s }
    }

    /// The paper-style relative budget: the fault-free chip's makespan for
    /// `batch`, stretched by `slack` (e.g. `1.5` = "reconfiguration may
    /// cost up to 50% extra protocol time").
    ///
    /// # Errors
    ///
    /// Returns the scheduling error if even the fault-free chip cannot run
    /// the batch (which indicates a broken layout, not a defect problem).
    ///
    /// # Example
    ///
    /// ```
    /// use dmfb_bioassay::feasibility::TimingBudget;
    /// use dmfb_bioassay::layout::ivd_dtmb26_chip;
    /// use dmfb_bioassay::MultiplexedIvd;
    ///
    /// let chip = ivd_dtmb26_chip();
    /// let budget =
    ///     TimingBudget::with_slack(&chip, &MultiplexedIvd::standard_panel(), 1.5).unwrap();
    /// assert!(budget.max_makespan_s.is_finite());
    /// ```
    pub fn with_slack(
        chip: &ChipDescription,
        batch: &MultiplexedIvd,
        slack: f64,
    ) -> Result<Self, ExecError> {
        let clean = plan_protocol(
            chip,
            &DefectMap::new(),
            None,
            &ElectrowettingModel::default(),
            batch,
        )?;
        Ok(TimingBudget {
            max_makespan_s: clean.makespan_s() * slack,
        })
    }

    /// Whether a makespan meets the budget.
    #[must_use]
    pub fn allows(&self, makespan_s: f64) -> bool {
        makespan_s <= self.max_makespan_s
    }
}

/// Why a chip instance is operationally infeasible.
#[derive(Clone, PartialEq, Debug)]
#[non_exhaustive]
pub enum Infeasibility {
    /// The protocol cannot execute at all: a resource is dead with no
    /// replacement, or a droplet route is severed.
    Exec(ExecError),
    /// The protocol schedules, but not within the timing budget.
    OverBudget {
        /// The achievable makespan, seconds.
        makespan_s: f64,
        /// The budget it exceeds, seconds.
        budget_s: f64,
    },
}

impl fmt::Display for Infeasibility {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Infeasibility::Exec(e) => write!(f, "protocol cannot execute: {e}"),
            Infeasibility::OverBudget {
                makespan_s,
                budget_s,
            } => write!(
                f,
                "protocol makespan {makespan_s:.1}s exceeds budget {budget_s:.1}s"
            ),
        }
    }
}

impl std::error::Error for Infeasibility {}

impl From<ExecError> for Infeasibility {
    fn from(e: ExecError) -> Self {
        Infeasibility::Exec(e)
    }
}

/// Decides, per fault state, whether a chip still runs its assay batch
/// within budget. Built once, queried once per Monte-Carlo trial.
///
/// # Example
///
/// ```
/// use dmfb_bioassay::feasibility::{FeasibilityChecker, TimingBudget};
/// use dmfb_bioassay::layout::ivd_dtmb26_chip;
/// use dmfb_bioassay::MultiplexedIvd;
/// use dmfb_defects::DefectMap;
///
/// let checker = FeasibilityChecker::new(
///     ivd_dtmb26_chip(),
///     MultiplexedIvd::standard_panel(),
///     TimingBudget::unlimited(),
/// );
/// // A fault-free chip is always operational.
/// let schedule = checker.check(&DefectMap::new(), None).unwrap();
/// assert_eq!(schedule.ops.len(), 4);
/// ```
#[derive(Clone, Debug)]
pub struct FeasibilityChecker {
    chip: ChipDescription,
    batch: MultiplexedIvd,
    budget: TimingBudget,
    actuation: ElectrowettingModel,
}

impl FeasibilityChecker {
    /// Creates a checker for `chip` running `batch` under `budget`.
    #[must_use]
    pub fn new(chip: ChipDescription, batch: MultiplexedIvd, budget: TimingBudget) -> Self {
        FeasibilityChecker {
            chip,
            batch,
            budget,
            actuation: ElectrowettingModel::default(),
        }
    }

    /// Overrides the electrowetting actuation model used for timing.
    #[must_use]
    pub fn with_actuation(mut self, actuation: ElectrowettingModel) -> Self {
        self.actuation = actuation;
        self
    }

    /// The chip under evaluation.
    #[must_use]
    pub fn chip(&self) -> &ChipDescription {
        &self.chip
    }

    /// The assay batch being checked.
    #[must_use]
    pub fn batch(&self) -> &MultiplexedIvd {
        &self.batch
    }

    /// The timing budget.
    #[must_use]
    pub fn budget(&self) -> TimingBudget {
        self.budget
    }

    /// Checks one chip instance: the true fault state plus the
    /// reconfiguration plan that is supposed to hide it. Returns the
    /// proving schedule, or why the chip is operationally dead.
    ///
    /// # Errors
    ///
    /// [`Infeasibility::Exec`] when the protocol cannot execute at all,
    /// [`Infeasibility::OverBudget`] when it schedules but too slowly.
    pub fn check(
        &self,
        defects: &DefectMap,
        plan: Option<&ReconfigPlan>,
    ) -> Result<ProtocolSchedule, Infeasibility> {
        let schedule = plan_protocol(&self.chip, defects, plan, &self.actuation, &self.batch)?;
        let makespan = schedule.makespan_s();
        if !self.budget.allows(makespan) {
            return Err(Infeasibility::OverBudget {
                makespan_s: makespan,
                budget_s: self.budget.max_makespan_s,
            });
        }
        Ok(schedule)
    }

    /// Boolean convenience over [`FeasibilityChecker::check`].
    #[must_use]
    pub fn is_feasible(&self, defects: &DefectMap, plan: Option<&ReconfigPlan>) -> bool {
        self.check(defects, plan).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout;
    use dmfb_reconfig::{attempt_reconfiguration, ReconfigPolicy};

    fn checker(budget: TimingBudget) -> FeasibilityChecker {
        FeasibilityChecker::new(
            layout::ivd_dtmb26_chip(),
            MultiplexedIvd::standard_panel(),
            budget,
        )
    }

    #[test]
    fn clean_chip_is_feasible_under_relative_budget() {
        let chip = layout::ivd_dtmb26_chip();
        let budget =
            TimingBudget::with_slack(&chip, &MultiplexedIvd::standard_panel(), 1.5).unwrap();
        let c = checker(budget);
        assert!(c.is_feasible(&DefectMap::new(), None));
        assert_eq!(c.batch().requests.len(), 4);
        assert!(c.chip().validate().is_ok());
    }

    #[test]
    fn unplanned_fault_on_mixer_is_infeasible() {
        let c = checker(TimingBudget::unlimited());
        let defects = DefectMap::from_cells([c.chip().mixers[0].rendezvous()]);
        let err = c.check(&defects, None).unwrap_err();
        assert!(matches!(err, Infeasibility::Exec(_)), "{err}");
        assert!(err.to_string().contains("cannot execute"));
    }

    #[test]
    fn reconfiguration_restores_feasibility() {
        let chip = layout::ivd_dtmb26_chip();
        let budget =
            TimingBudget::with_slack(&chip, &MultiplexedIvd::standard_panel(), 2.0).unwrap();
        let c = checker(budget);
        let mut defects = DefectMap::from_cells([c.chip().mixers[0].rendezvous()]);
        defects.close_shorts();
        let plan = attempt_reconfiguration(
            &c.chip().array,
            &defects,
            &ReconfigPolicy::UsedCells(c.chip().assay_cells.iter().collect()),
        )
        .unwrap();
        assert!(!c.is_feasible(&defects, None));
        assert!(c.is_feasible(&defects, Some(&plan)));
    }

    #[test]
    fn impossible_budget_rejects_even_clean_chips() {
        let c = checker(TimingBudget::absolute(0.001));
        let err = c.check(&DefectMap::new(), None).unwrap_err();
        assert!(matches!(err, Infeasibility::OverBudget { .. }));
        assert!(err.to_string().contains("exceeds budget"));
    }

    #[test]
    fn budget_scales_with_clean_makespan() {
        let chip = layout::ivd_dtmb26_chip();
        let panel = MultiplexedIvd::standard_panel();
        let b1 = TimingBudget::with_slack(&chip, &panel, 1.0).unwrap();
        let b2 = TimingBudget::with_slack(&chip, &panel, 2.0).unwrap();
        assert!((b2.max_makespan_s - 2.0 * b1.max_makespan_s).abs() < 1e-9);
        // Slack 1.0 exactly admits the clean chip.
        let c = checker(b1);
        assert!(c.is_feasible(&DefectMap::new(), None));
    }
}
