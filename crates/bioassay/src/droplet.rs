//! Droplets and the electrowetting transport model.

use dmfb_grid::HexCoord;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a droplet within one protocol execution.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct DropletId(pub u32);

/// The chemical contents of a droplet: concentration (mM) per species.
///
/// # Example
///
/// ```
/// use dmfb_bioassay::droplet::Mixture;
///
/// let sample = Mixture::single("glucose", 5.0);
/// let reagent = Mixture::single("glucose_oxidase", 2.0);
/// let mixed = sample.mixed_with(1.0, &reagent, 1.0);
/// assert!((mixed.concentration("glucose") - 2.5).abs() < 1e-12);
/// ```
#[derive(Clone, PartialEq, Debug, Default, Serialize, Deserialize)]
pub struct Mixture {
    species: BTreeMap<String, f64>,
}

impl Mixture {
    /// An empty (buffer-only) mixture.
    #[must_use]
    pub fn new() -> Self {
        Mixture::default()
    }

    /// A mixture containing one species at `concentration_mm` (mM).
    ///
    /// # Panics
    ///
    /// Panics if the concentration is negative or non-finite.
    #[must_use]
    pub fn single(species: impl Into<String>, concentration_mm: f64) -> Self {
        let mut m = Mixture::new();
        m.set(species, concentration_mm);
        m
    }

    /// Sets the concentration of a species.
    ///
    /// # Panics
    ///
    /// Panics if the concentration is negative or non-finite.
    pub fn set(&mut self, species: impl Into<String>, concentration_mm: f64) {
        assert!(
            concentration_mm.is_finite() && concentration_mm >= 0.0,
            "concentration must be finite and non-negative"
        );
        self.species.insert(species.into(), concentration_mm);
    }

    /// The concentration of `species`, 0 if absent.
    #[must_use]
    pub fn concentration(&self, species: &str) -> f64 {
        self.species.get(species).copied().unwrap_or(0.0)
    }

    /// Volume-weighted mixing of two droplet contents.
    ///
    /// # Panics
    ///
    /// Panics if both volumes are zero or either is negative.
    #[must_use]
    pub fn mixed_with(&self, self_volume: f64, other: &Mixture, other_volume: f64) -> Mixture {
        assert!(
            self_volume >= 0.0 && other_volume >= 0.0 && self_volume + other_volume > 0.0,
            "volumes must be non-negative and not both zero"
        );
        let total = self_volume + other_volume;
        let mut out = Mixture::new();
        for (s, c) in &self.species {
            out.species.insert(s.clone(), c * self_volume / total);
        }
        for (s, c) in &other.species {
            *out.species.entry(s.clone()).or_insert(0.0) += c * other_volume / total;
        }
        out
    }

    /// Iterates `(species, concentration)` sorted by species name.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.species.iter().map(|(s, c)| (s.as_str(), *c))
    }
}

/// A droplet on the array.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Droplet {
    /// Identity within a protocol run.
    pub id: DropletId,
    /// Current cell.
    pub position: HexCoord,
    /// Volume in nanolitres.
    pub volume_nl: f64,
    /// Chemical contents.
    pub contents: Mixture,
}

impl Droplet {
    /// Creates a droplet at a position.
    ///
    /// # Panics
    ///
    /// Panics if `volume_nl` is not positive and finite.
    #[must_use]
    pub fn new(id: DropletId, position: HexCoord, volume_nl: f64, contents: Mixture) -> Self {
        assert!(
            volume_nl.is_finite() && volume_nl > 0.0,
            "droplet volume must be positive"
        );
        Droplet {
            id,
            position,
            volume_nl,
            contents,
        }
    }

    /// Merges another droplet into this one (volumes add, contents mix).
    pub fn merge(&mut self, other: Droplet) {
        self.contents = self
            .contents
            .mixed_with(self.volume_nl, &other.contents, other.volume_nl);
        self.volume_nl += other.volume_nl;
    }

    /// Splits this droplet in two equal halves — the electrowetting split
    /// operation (three electrodes: outer two on, centre off). The first
    /// half stays in place; the returned half carries `new_id` and sits at
    /// `new_position`. Contents are identical in both halves.
    ///
    /// # Panics
    ///
    /// Panics if `new_position` is not adjacent to the droplet (a split
    /// can only place the second half on a neighbouring electrode).
    #[must_use]
    pub fn split(&mut self, new_id: DropletId, new_position: HexCoord) -> Droplet {
        assert!(
            self.position.is_adjacent(new_position),
            "split half must land on an adjacent electrode"
        );
        self.volume_nl /= 2.0;
        Droplet {
            id: new_id,
            position: new_position,
            volume_nl: self.volume_nl,
            contents: self.contents.clone(),
        }
    }
}

impl fmt::Display for Droplet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "droplet #{} at {} ({:.1} nL)",
            self.id.0, self.position, self.volume_nl
        )
    }
}

/// The electrowetting actuation model: control voltage determines droplet
/// velocity (observed up to ~20 cm/s, paper Section 3), which with the
/// electrode pitch gives the per-move actuation time.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct ElectrowettingModel {
    /// Control voltage in volts (0–90 V usable range).
    pub voltage_v: f64,
    /// Electrode pitch in micrometres.
    pub pitch_um: f64,
}

impl Default for ElectrowettingModel {
    fn default() -> Self {
        ElectrowettingModel {
            voltage_v: 60.0,
            pitch_um: 1_000.0,
        }
    }
}

impl ElectrowettingModel {
    /// Threshold voltage below which the droplet does not move.
    pub const THRESHOLD_V: f64 = 12.0;
    /// Maximum usable control voltage.
    pub const MAX_V: f64 = 90.0;
    /// Peak droplet velocity at maximum voltage (cm/s).
    pub const MAX_VELOCITY_CM_S: f64 = 20.0;

    /// Creates a model, clamping the voltage into `[0, 90]`.
    #[must_use]
    pub fn with_voltage(voltage_v: f64, pitch_um: f64) -> Self {
        ElectrowettingModel {
            voltage_v: voltage_v.clamp(0.0, Self::MAX_V),
            pitch_um,
        }
    }

    /// Droplet velocity in cm/s: zero below threshold, then linear in the
    /// excess voltage up to 20 cm/s at 90 V.
    #[must_use]
    pub fn velocity_cm_s(&self) -> f64 {
        if self.voltage_v <= Self::THRESHOLD_V {
            return 0.0;
        }
        let span = Self::MAX_V - Self::THRESHOLD_V;
        Self::MAX_VELOCITY_CM_S * (self.voltage_v - Self::THRESHOLD_V) / span
    }

    /// Time for one cell-to-cell move in milliseconds; `None` when the
    /// voltage is below the actuation threshold.
    #[must_use]
    pub fn step_time_ms(&self) -> Option<f64> {
        let v = self.velocity_cm_s();
        if v <= 0.0 {
            return None;
        }
        // pitch [um] -> cm = 1e-4; time [s] = dist/vel; -> ms.
        Some(self.pitch_um * 1e-4 / v * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixture_mixing_conserves_species() {
        let a = Mixture::single("glucose", 10.0);
        let mut b = Mixture::single("lactate", 4.0);
        b.set("glucose", 2.0);
        let m = a.mixed_with(2.0, &b, 2.0);
        assert!((m.concentration("glucose") - 6.0).abs() < 1e-12);
        assert!((m.concentration("lactate") - 2.0).abs() < 1e-12);
        assert_eq!(m.concentration("unknown"), 0.0);
        assert_eq!(m.iter().count(), 2);
    }

    #[test]
    #[should_panic(expected = "volumes")]
    fn mixing_zero_volumes_rejected() {
        let a = Mixture::new();
        let _ = a.mixed_with(0.0, &Mixture::new(), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_concentration_rejected() {
        let _ = Mixture::single("x", -1.0);
    }

    #[test]
    fn droplet_merge() {
        let mut a = Droplet::new(
            DropletId(0),
            HexCoord::new(0, 0),
            10.0,
            Mixture::single("glucose", 8.0),
        );
        let b = Droplet::new(DropletId(1), HexCoord::new(1, 0), 30.0, Mixture::new());
        a.merge(b);
        assert!((a.volume_nl - 40.0).abs() < 1e-12);
        assert!((a.contents.concentration("glucose") - 2.0).abs() < 1e-12);
        assert!(a.to_string().contains("40.0 nL"));
    }

    #[test]
    fn split_halves_volume_keeps_contents() {
        let mut a = Droplet::new(
            DropletId(0),
            HexCoord::new(0, 0),
            80.0,
            Mixture::single("glucose", 4.0),
        );
        let b = a.split(DropletId(1), HexCoord::new(1, 0));
        assert!((a.volume_nl - 40.0).abs() < 1e-12);
        assert!((b.volume_nl - 40.0).abs() < 1e-12);
        assert_eq!(b.contents.concentration("glucose"), 4.0);
        assert_eq!(b.id, DropletId(1));
        assert_eq!(b.position, HexCoord::new(1, 0));
        // Merge-then-split round trip: a 1:1 buffer merge then split gives
        // half the concentration at the original volume.
        let buffer = Droplet::new(DropletId(2), HexCoord::new(0, 1), 40.0, Mixture::new());
        a.merge(buffer);
        let _half = a.split(DropletId(3), HexCoord::new(1, 0));
        assert!((a.volume_nl - 40.0).abs() < 1e-12);
        assert!((a.contents.concentration("glucose") - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "adjacent electrode")]
    fn split_requires_adjacency() {
        let mut a = Droplet::new(DropletId(0), HexCoord::new(0, 0), 10.0, Mixture::new());
        let _ = a.split(DropletId(1), HexCoord::new(5, 5));
    }

    #[test]
    fn velocity_curve() {
        let stuck = ElectrowettingModel::with_voltage(10.0, 1_000.0);
        assert_eq!(stuck.velocity_cm_s(), 0.0);
        assert!(stuck.step_time_ms().is_none());
        let max = ElectrowettingModel::with_voltage(90.0, 1_000.0);
        assert!((max.velocity_cm_s() - 20.0).abs() < 1e-12);
        // 1 mm at 20 cm/s = 5 ms.
        assert!((max.step_time_ms().unwrap() - 5.0).abs() < 1e-9);
        // Monotone in voltage.
        let mid = ElectrowettingModel::with_voltage(50.0, 1_000.0);
        assert!(mid.velocity_cm_s() < max.velocity_cm_s());
        assert!(mid.velocity_cm_s() > 0.0);
        // Clamping.
        let over = ElectrowettingModel::with_voltage(200.0, 1_000.0);
        assert!((over.voltage_v - 90.0).abs() < 1e-12);
    }
}
