//! Property-based tests for routing, mixing and kinetics.

use dmfb_bioassay::droplet::Mixture;
use dmfb_bioassay::kinetics::{absorbance_545nm, TrinderKinetics};
use dmfb_bioassay::router::{spacing_violation, Router};
use dmfb_bioassay::Analyte;
use dmfb_defects::DefectMap;
use dmfb_grid::{HexCoord, Region};
use proptest::prelude::*;

fn arb_region() -> impl Strategy<Value = Region> {
    (3u32..9, 3u32..9).prop_map(|(w, h)| Region::parallelogram(w, h))
}

proptest! {
    /// Routes, when they exist, are valid droplet paths: in-region,
    /// fault-free, adjacent steps, correct endpoints — and optimal on a
    /// fault-free chip.
    #[test]
    fn routes_are_valid(
        region in arb_region(),
        faults in prop::collection::vec((0i32..9, 0i32..9), 0..8),
    ) {
        let defects = DefectMap::from_cells(
            faults.iter().map(|&(q, r)| HexCoord::new(q, r)).filter(|c| region.contains(*c)),
        );
        let router = Router::new(&region, &defects);
        let cells: Vec<HexCoord> = region.iter().collect();
        let from = cells[0];
        let to = cells[cells.len() - 1];
        if let Some(path) = router.route(from, to, &[]) {
            prop_assert_eq!(*path.first().unwrap(), from);
            prop_assert_eq!(*path.last().unwrap(), to);
            for w in path.windows(2) {
                prop_assert!(w[0].is_adjacent(w[1]));
            }
            for c in &path {
                prop_assert!(region.contains(*c));
                prop_assert!(!defects.is_faulty(*c));
            }
            if defects.is_fault_free() {
                prop_assert_eq!(path.len() as u32, from.distance(to) + 1, "BFS must be shortest");
            }
        }
    }

    /// Routes around parked droplets keep fluidic spacing.
    #[test]
    fn routes_keep_spacing(region in arb_region(), park_q in 0i32..9, park_r in 0i32..9) {
        let parked = HexCoord::new(park_q, park_r);
        prop_assume!(region.contains(parked));
        let router = Router::new(&region, &DefectMap::new());
        let cells: Vec<HexCoord> = region.iter().collect();
        let from = cells[0];
        let to = cells[cells.len() - 1];
        prop_assume!(from != parked && to != parked);
        if let Some(path) = router.route(from, to, &[parked]) {
            for c in &path {
                prop_assert!(spacing_violation(&[*c, parked]).is_none(), "cell {c} violates spacing");
            }
        }
    }

    /// Volume-weighted mixing conserves total solute amount.
    #[test]
    fn mixing_conserves_mass(c1 in 0.0f64..100.0, c2 in 0.0f64..100.0, v1 in 0.1f64..100.0, v2 in 0.1f64..100.0) {
        let a = Mixture::single("x", c1);
        let b = Mixture::single("x", c2);
        let mixed = a.mixed_with(v1, &b, v2);
        let before = c1 * v1 + c2 * v2;
        let after = mixed.concentration("x") * (v1 + v2);
        prop_assert!((before - after).abs() < 1e-9 * before.max(1.0));
        // Mixed concentration lies between the inputs.
        prop_assert!(mixed.concentration("x") >= c1.min(c2) - 1e-12);
        prop_assert!(mixed.concentration("x") <= c1.max(c2) + 1e-12);
    }

    /// Kinetics: the coloured product is non-negative, bounded by the
    /// consumed analyte, and monotone in the initial concentration.
    #[test]
    fn kinetics_sane(conc in 0.0f64..20.0, duration in 1.0f64..120.0) {
        for analyte in Analyte::ALL {
            let k = analyte.kinetics();
            let s = k.integrate(conc, duration, 0.05);
            prop_assert!(s.quinoneimine_mm >= 0.0);
            prop_assert!(s.analyte_mm >= 0.0);
            let consumed = conc - s.analyte_mm;
            prop_assert!(s.quinoneimine_mm + s.peroxide_mm <= consumed + 1e-6);
            // Monotonicity in concentration.
            let more = k.integrate(conc + 1.0, duration, 0.05);
            prop_assert!(more.quinoneimine_mm >= s.quinoneimine_mm - 1e-9);
        }
    }

    /// Absorbance is linear and non-negative.
    #[test]
    fn absorbance_linear(c in 0.0f64..10.0, scale in 1.0f64..5.0) {
        let a1 = absorbance_545nm(c, 0.03, 26.0);
        let a2 = absorbance_545nm(c * scale, 0.03, 26.0);
        prop_assert!(a1 >= 0.0);
        prop_assert!((a2 - a1 * scale).abs() < 1e-9);
    }

    /// Longer reaction windows never bleach the product (monotone in time).
    #[test]
    fn product_monotone_in_time(conc in 0.5f64..10.0) {
        let k = TrinderKinetics::new(0.08, 6.0, 0.3, 1.0);
        let short = k.integrate(conc, 10.0, 0.05).quinoneimine_mm;
        let long = k.integrate(conc, 60.0, 0.05).quinoneimine_mm;
        prop_assert!(long >= short - 1e-9);
    }
}
