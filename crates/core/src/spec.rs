//! The unified scheme/engine parameter vocabulary shared by the CLI
//! argument parser, the `dmfb serve` request validator, and the
//! design-space search enumerator.
//!
//! Three front ends accept the same scheme × estimator × defect-model ×
//! assay parameter space: `dmfb yield`/`sweep`/`bench` flags, the
//! `/v1/yield` JSON body, and `dmfb search`'s candidate enumeration.
//! Before this module each maintained its own copy of the token tables
//! and the foreign-parameter coherence rules; they drifted apart only by
//! luck. This module owns the vocabulary once:
//!
//! - [`SchemeSpec`] — a fully-resolved scheme selection (family plus its
//!   sub-parameters), with a canonical string form ([`SchemeSpec::canonical`]).
//! - [`EngineSpec`]/[`EngineParams`] — everything that shapes a cached
//!   evaluator engine, with the deterministic cache key
//!   ([`EngineParams::engine_key`]) the serve LRU and the reply bodies use.
//! - Token parsers ([`parse_scheme_token`] and friends) producing the
//!   shared `unknown … (valid: …)` diagnostics.
//! - Coherence guards ([`reject_foreign_subparams`],
//!   [`reject_foreign_estimator_params`], [`check_assay_subparams`])
//!   parameterised by a [`ParamStyle`] dialect, so the CLI keeps its
//!   `--flag` phrasing and the service its JSON-field phrasing while both
//!   run the *same* rules.
//!
//! Parameter names are stored canonically with underscores (the JSON
//! field spelling); [`ParamStyle::Cli`] renders them as `--dash-flags`.

use crate::Biochip;
use dmfb_reconfig::dtmb::DtmbKind;
use dmfb_reconfig::SquarePattern;
use dmfb_yield::AssayPanel;

/// Upper bound on user-supplied array dimensions. Beyond this the region
/// constructors would panic on i32 conversion or allocate unboundedly;
/// the cap turns both into a clean front-end error long before either
/// point.
pub const MAX_DIM: u32 = 4096;

/// Upper bound on the hex primary-cell count a request may ask for.
pub const MAX_PRIMARIES: usize = 65_536;

/// Upper bound on `block_trials`. A batch is rounded up to whole 64-lane
/// words, so widths beyond this only inflate per-worker scratch buffers
/// without adding parallelism.
pub const MAX_BLOCK_TRIALS: usize = 65_536;

/// Upper bound on the Monte-Carlo trial count of one request.
pub const MAX_TRIALS: u32 = 10_000_000;

/// Every scheme-shaping sub-parameter any scheme understands, in
/// canonical (underscore) spelling. A new scheme parameter must be added
/// here so the per-scheme guard, the assay guard, and bench's blanket
/// rejection keep covering it.
pub const SCHEME_SUBPARAMS: [&str; 7] = [
    "design",
    "primaries",
    "pattern",
    "width",
    "height",
    "module_rows",
    "spare_rows",
];

/// Sub-parameters of the stratified estimator; rejected under the naive
/// estimator rather than silently ignored.
pub const ESTIMATOR_SUBPARAMS: [&str; 2] = ["tolerance", "pilot"];

/// Sub-parameters of the clustered defect model; rejected under the
/// Bernoulli model rather than silently ignored.
pub const CLUSTER_SUBPARAMS: [&str; 4] = [
    "cluster_mean",
    "cluster_dispersion",
    "cluster_radius",
    "cluster_peak",
];

/// Why `block_trials` cannot ride with the clustered defect model — the
/// shared tail of the CLI's and the service's rejection messages.
pub const CLUSTERED_BLOCK_REASON: &str =
    "the clustered defect sampler draws a variable-length stream per trial \
     that cannot be transposed into lanes; it always runs the scalar engine";

/// Which front-end dialect a diagnostic is rendered in: `--dash-flag`
/// phrasing for the CLI, `'json_field'` phrasing for the service. The
/// rules behind the messages are identical; only the spelling of a
/// parameter reference differs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParamStyle {
    /// `--cluster-mean requires --defect-model clustered`
    Cli,
    /// `'cluster_mean' requires "defect_model": "clustered"`
    Json,
}

impl ParamStyle {
    /// One parameter reference: `--module-rows` (CLI) or `'module_rows'`
    /// (JSON).
    #[must_use]
    pub fn param(self, name: &str) -> String {
        match self {
            ParamStyle::Cli => format!("--{}", name.replace('_', "-")),
            ParamStyle::Json => format!("'{name}'"),
        }
    }

    /// A parameter list for `(its parameters: …)` clauses: dash-flags for
    /// the CLI, bare field names for JSON.
    #[must_use]
    fn param_list(self, names: &[&str]) -> String {
        match self {
            ParamStyle::Cli => names
                .iter()
                .map(|k| format!("--{}", k.replace('_', "-")))
                .collect::<Vec<_>>()
                .join(", "),
            ParamStyle::Json => names.join(", "),
        }
    }
}

/// The yield tier a request or search targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tier {
    /// No reconfiguration: the chip is good iff no in-scope primary fails.
    Raw,
    /// Reconfigured (matching) yield — the paper's headline metric.
    Reconfigured,
    /// Assay-aware operational yield over the IVD case-study chip.
    Operational,
}

impl Tier {
    /// The wire/CLI label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Tier::Raw => "raw",
            Tier::Reconfigured => "reconfigured",
            Tier::Operational => "operational",
        }
    }

    /// Parses a tier token; `None` defaults to the reconfigured tier.
    pub fn parse(token: Option<&str>) -> Result<Tier, String> {
        match token {
            None | Some("reconfigured") => Ok(Tier::Reconfigured),
            Some("raw") => Ok(Tier::Raw),
            Some("operational") => Ok(Tier::Operational),
            Some(other) => Err(format!(
                "unknown tier '{other}' (valid: raw, reconfigured, operational)"
            )),
        }
    }
}

/// A fully-resolved redundancy-scheme selection: the family plus every
/// sub-parameter that shapes the array. Two equal specs describe the
/// same evaluator engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchemeSpec {
    /// Hexagonal DTMB patterns (the default), or no redundancy at all.
    HexDtmb {
        /// Which DTMB design; `None` = no redundancy.
        design: Option<DtmbKind>,
        /// Primary-cell count of the array.
        primaries: usize,
    },
    /// Square-lattice interstitial patterns.
    SquareDtmb {
        /// Which spare pattern.
        pattern: SquarePattern,
        /// Array width in cells.
        width: u32,
        /// Array height in cells.
        height: u32,
    },
    /// Boundary spare-row baseline (shifted replacement).
    SpareRows {
        /// Array width in cells.
        width: u32,
        /// Module rows above the spare rows.
        module_rows: u32,
        /// Spare rows at the bottom.
        spare_rows: u32,
    },
}

impl SchemeSpec {
    /// The scheme-family token (`hex-dtmb`, `square-dtmb`, `spare-rows`).
    #[must_use]
    pub fn scheme_name(&self) -> &'static str {
        match self {
            SchemeSpec::HexDtmb { .. } => "hex-dtmb",
            SchemeSpec::SquareDtmb { .. } => "square-dtmb",
            SchemeSpec::SpareRows { .. } => "spare-rows",
        }
    }

    /// The canonical sub-parameter names this family understands, in
    /// canonical (underscore) spelling.
    #[must_use]
    pub fn allowed_subparams(&self) -> &'static [&'static str] {
        match self {
            SchemeSpec::HexDtmb { .. } => &["design", "primaries"],
            SchemeSpec::SquareDtmb { .. } => &["pattern", "width", "height"],
            SchemeSpec::SpareRows { .. } => &["width", "module_rows", "spare_rows"],
        }
    }

    /// The canonical string form: family plus every sub-parameter in
    /// declaration order, `key=value` separated by `:`. This is the
    /// string the bench `spec` column records and the engine cache key
    /// extends, so it is stable across releases.
    #[must_use]
    pub fn canonical(&self) -> String {
        match self {
            SchemeSpec::HexDtmb { design, primaries } => format!(
                "hex-dtmb:design={}:primaries={primaries}",
                design.map_or("none".to_string(), |kind| kind.to_string())
            ),
            SchemeSpec::SquareDtmb {
                pattern,
                width,
                height,
            } => format!("square-dtmb:pattern={pattern:?}:width={width}:height={height}"),
            SchemeSpec::SpareRows {
                width,
                module_rows,
                spare_rows,
            } => format!(
                "spare-rows:width={width}:module-rows={module_rows}:spare-rows={spare_rows}"
            ),
        }
    }

    /// Builds the hex chip this spec describes, or `None` for the
    /// square-lattice families (which run the generic engine instead).
    #[must_use]
    pub fn biochip(&self) -> Option<Biochip> {
        match self {
            SchemeSpec::HexDtmb { design, primaries } => Some(match design {
                Some(kind) => Biochip::dtmb(*kind, *primaries),
                None => Biochip::without_redundancy(*primaries),
            }),
            _ => None,
        }
    }
}

/// Everything that selects a cached evaluator engine: a scheme, or the
/// fixed assay chip (which overrides any scheme shape).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineSpec {
    /// A scheme-shaped matching engine.
    Scheme(SchemeSpec),
    /// The Section 7 assay stack over the fixed IVD case-study chip.
    Assay(AssayPanel),
}

impl EngineSpec {
    /// Canonical string form (see [`SchemeSpec::canonical`]).
    #[must_use]
    pub fn canonical(&self) -> String {
        match self {
            EngineSpec::Scheme(spec) => spec.canonical(),
            EngineSpec::Assay(panel) => format!("assay:{}", panel.label()),
        }
    }
}

/// The full engine descriptor: what to build ([`EngineSpec`]) plus the
/// trial-engine width, which sizes per-worker scratch state and is
/// therefore part of the engine identity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EngineParams {
    /// What the engine evaluates.
    pub spec: EngineSpec,
    /// Trial-engine selection: `None` = auto, `Some(0)` = scalar,
    /// `Some(n)` = block engine with `n`-trial batches.
    pub block_trials: Option<usize>,
}

impl EngineParams {
    /// The block-engine segment of the key (`auto`, `scalar`, or the
    /// batch width).
    #[must_use]
    pub fn block_label(&self) -> String {
        match self.block_trials {
            None => "auto".to_string(),
            Some(0) => "scalar".to_string(),
            Some(n) => n.to_string(),
        }
    }

    /// The deterministic engine-cache key: the canonical spec form plus
    /// the trial-engine width. Two parameter sets share a cached engine
    /// iff their keys are equal; the serve reply embeds the key verbatim
    /// in its `engine` field, so the format is wire-stable.
    #[must_use]
    pub fn engine_key(&self) -> String {
        format!("{}:block={}", self.spec.canonical(), self.block_label())
    }
}

/// A scheme-family token, before its sub-parameters are resolved.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchemeKind {
    /// `hex-dtmb` (the default).
    HexDtmb,
    /// `square-dtmb`.
    SquareDtmb,
    /// `spare-rows`.
    SpareRows,
}

/// Parses a scheme-family token; `None` defaults to `hex-dtmb`.
pub fn parse_scheme_token(token: Option<&str>) -> Result<SchemeKind, String> {
    match token {
        None | Some("hex-dtmb") => Ok(SchemeKind::HexDtmb),
        Some("square-dtmb") => Ok(SchemeKind::SquareDtmb),
        Some("spare-rows") => Ok(SchemeKind::SpareRows),
        Some(other) => Err(format!(
            "unknown scheme '{other}' (valid: hex-dtmb, square-dtmb, spare-rows)"
        )),
    }
}

/// Parses a DTMB design token; `None` or `none` selects no redundancy.
pub fn parse_design_token(token: Option<&str>) -> Result<Option<DtmbKind>, String> {
    match token {
        None | Some("none") => Ok(None),
        Some("dtmb16") => Ok(Some(DtmbKind::Dtmb16)),
        Some("dtmb26") => Ok(Some(DtmbKind::Dtmb26A)),
        Some("dtmb26b") => Ok(Some(DtmbKind::Dtmb26B)),
        Some("dtmb36") => Ok(Some(DtmbKind::Dtmb36)),
        Some("dtmb44") => Ok(Some(DtmbKind::Dtmb44)),
        Some(other) => Err(format!("unknown design '{other}'")),
    }
}

/// Parses a square-pattern token; `None` defaults to the perfect code.
pub fn parse_pattern_token(token: Option<&str>) -> Result<SquarePattern, String> {
    match token {
        None | Some("perfect-code") => Ok(SquarePattern::PerfectCode),
        Some("stripes") => Ok(SquarePattern::Stripes),
        Some("checkerboard") => Ok(SquarePattern::Checkerboard),
        Some("quarter") => Ok(SquarePattern::Quarter),
        Some(other) => Err(format!(
            "unknown pattern '{other}' \
             (valid: perfect-code, stripes, checkerboard, quarter)"
        )),
    }
}

/// Which yield estimator was selected (the stratified variant's tuning
/// parses separately — the CLI and the service carry different config
/// payloads).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EstimatorKind {
    /// Plain Monte-Carlo (the default).
    Naive,
    /// Defect-count-stratified rare-event estimator.
    Stratified,
}

/// Parses an estimator token; `None` defaults to naive.
pub fn parse_estimator_token(token: Option<&str>) -> Result<EstimatorKind, String> {
    match token {
        None | Some("naive") => Ok(EstimatorKind::Naive),
        Some("stratified") => Ok(EstimatorKind::Stratified),
        Some(other) => Err(format!(
            "unknown estimator '{other}' (valid: naive, stratified)"
        )),
    }
}

/// Which defect model was selected (cluster tuning parses separately).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DefectModelKind {
    /// The paper's i.i.d. cell-failure assumption (the default).
    Bernoulli,
    /// Negative-binomial clustered wafer defects.
    Clustered,
}

/// Parses a defect-model token; `None` defaults to Bernoulli.
pub fn parse_defect_model_token(token: Option<&str>) -> Result<DefectModelKind, String> {
    match token {
        None | Some("bernoulli") => Ok(DefectModelKind::Bernoulli),
        Some("clustered") => Ok(DefectModelKind::Clustered),
        Some(other) => Err(format!(
            "unknown defect model '{other}' (valid: bernoulli, clustered)"
        )),
    }
}

/// Rejects scheme sub-parameters the selected scheme would silently
/// ignore (`--pattern checkerboard` without `--scheme square-dtmb` would
/// otherwise run hex and mislabel what was measured). `has` reports
/// whether a canonical (underscore) parameter name is present in the
/// request.
pub fn reject_foreign_subparams(
    style: ParamStyle,
    spec: &SchemeSpec,
    has: impl Fn(&str) -> bool,
) -> Result<(), String> {
    let scheme = spec.scheme_name();
    let allowed = spec.allowed_subparams();
    for key in SCHEME_SUBPARAMS {
        if has(key) && !allowed.contains(&key) {
            return Err(match style {
                ParamStyle::Cli => format!(
                    "{} does not apply to --scheme {scheme} (its parameters: {})",
                    style.param(key),
                    style.param_list(allowed)
                ),
                ParamStyle::Json => format!(
                    "'{key}' does not apply to scheme '{scheme}' (its parameters: {})",
                    style.param_list(allowed)
                ),
            });
        }
    }
    Ok(())
}

/// Rejects estimator/defect-model sub-parameters that the selected
/// estimator or model would silently ignore, and the one combination
/// that is statistically incoherent: the stratified estimator conditions
/// on the i.i.d. Bernoulli defect count, so it cannot run under the
/// clustered model.
pub fn reject_foreign_estimator_params(
    style: ParamStyle,
    estimator: EstimatorKind,
    model: DefectModelKind,
    has: impl Fn(&str) -> bool,
) -> Result<(), String> {
    if estimator == EstimatorKind::Naive {
        for key in ESTIMATOR_SUBPARAMS {
            if has(key) {
                return Err(match style {
                    ParamStyle::Cli => format!("--{key} requires --estimator stratified"),
                    ParamStyle::Json => format!("'{key}' requires \"estimator\": \"stratified\""),
                });
            }
        }
    }
    if model == DefectModelKind::Bernoulli {
        for key in CLUSTER_SUBPARAMS {
            if has(key) {
                return Err(match style {
                    ParamStyle::Cli => {
                        format!("{} requires --defect-model clustered", style.param(key))
                    }
                    ParamStyle::Json => {
                        format!("'{key}' requires \"defect_model\": \"clustered\"")
                    }
                });
            }
        }
    }
    if estimator == EstimatorKind::Stratified && model == DefectModelKind::Clustered {
        return Err(match style {
            ParamStyle::Cli => {
                "--estimator stratified conditions on the i.i.d. Bernoulli defect count; \
                 it cannot run under --defect-model clustered"
                    .into()
            }
            ParamStyle::Json => {
                "the stratified estimator conditions on the i.i.d. Bernoulli defect count; \
                 it cannot run under the clustered defect model"
                    .into()
            }
        });
    }
    Ok(())
}

/// Validates an assay request: hexagonal scheme only (the IVD case-study
/// chip is a hex DTMB(2,6) array), and since the assay workload *fixes*
/// the chip, every array-shaping sub-parameter is rejected rather than
/// silently ignored — the same discipline as
/// [`reject_foreign_subparams`].
pub fn check_assay_subparams(
    style: ParamStyle,
    hex_scheme: bool,
    has: impl Fn(&str) -> bool,
) -> Result<(), String> {
    if !hex_scheme {
        return Err(match style {
            ParamStyle::Cli => {
                "--assay requires --scheme hex-dtmb (the IVD case-study chip is hexagonal)".into()
            }
            ParamStyle::Json => "'assay' requires scheme 'hex-dtmb' \
                 (the IVD case-study chip is hexagonal)"
                .into(),
        });
    }
    for key in SCHEME_SUBPARAMS {
        if has(key) {
            return Err(match style {
                ParamStyle::Cli => format!(
                    "{} does not apply with --assay: the assay workload fixes the chip \
                     to the DTMB(2,6) IVD case-study layout",
                    style.param(key)
                ),
                ParamStyle::Json => format!(
                    "'{key}' does not apply with 'assay': the assay workload \
                     fixes the chip to the DTMB(2,6) IVD case-study layout"
                ),
            });
        }
    }
    Ok(())
}

/// The diagnostic for `p` under the clustered defect model (no single
/// survival probability parameterises the cluster sampler).
#[must_use]
pub fn clustered_p_error(style: ParamStyle) -> String {
    match style {
        ParamStyle::Cli => "--p does not apply with --defect-model clustered \
                            (the cluster parameters set the defect intensity)"
            .into(),
        ParamStyle::Json => "'p' does not apply with \"defect_model\": \"clustered\" \
                             (the cluster parameters set the defect intensity)"
            .into(),
    }
}

/// The diagnostic for a `block_trials` value above [`MAX_BLOCK_TRIALS`].
#[must_use]
pub fn block_trials_cap_error(style: ParamStyle, n: usize) -> String {
    format!(
        "need {} <= {MAX_BLOCK_TRIALS}, got {n} \
         (wider batches only grow the per-worker scratch state)",
        style.param("block_trials")
    )
}

/// The diagnostic for an array dimension outside `min..=`[`MAX_DIM`].
#[must_use]
pub fn dim_range_error(style: ParamStyle, key: &str, min: u32, value: u32) -> String {
    format!(
        "need {min} <= {} <= {MAX_DIM}, got {value}",
        style.param(key)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_forms_are_wire_stable() {
        let hex = SchemeSpec::HexDtmb {
            design: Some(DtmbKind::Dtmb26A),
            primaries: 60,
        };
        assert_eq!(hex.canonical(), "hex-dtmb:design=DTMB(2,6):primaries=60");
        let bare = SchemeSpec::HexDtmb {
            design: None,
            primaries: 100,
        };
        assert_eq!(bare.canonical(), "hex-dtmb:design=none:primaries=100");
        let square = SchemeSpec::SquareDtmb {
            pattern: SquarePattern::PerfectCode,
            width: 16,
            height: 12,
        };
        assert_eq!(
            square.canonical(),
            "square-dtmb:pattern=PerfectCode:width=16:height=12"
        );
        let spare = SchemeSpec::SpareRows {
            width: 8,
            module_rows: 6,
            spare_rows: 1,
        };
        assert_eq!(
            spare.canonical(),
            "spare-rows:width=8:module-rows=6:spare-rows=1"
        );
    }

    #[test]
    fn engine_keys_extend_the_canonical_form() {
        let params = EngineParams {
            spec: EngineSpec::Scheme(SchemeSpec::HexDtmb {
                design: Some(DtmbKind::Dtmb26A),
                primaries: 60,
            }),
            block_trials: None,
        };
        assert_eq!(
            params.engine_key(),
            "hex-dtmb:design=DTMB(2,6):primaries=60:block=auto"
        );
        let scalar = EngineParams {
            block_trials: Some(0),
            ..params
        };
        assert_eq!(
            scalar.engine_key(),
            "hex-dtmb:design=DTMB(2,6):primaries=60:block=scalar"
        );
        let assay = EngineParams {
            spec: EngineSpec::Assay(AssayPanel::StandardIvd),
            block_trials: Some(128),
        };
        assert_eq!(assay.engine_key(), "assay:ivd-panel:block=128");
    }

    #[test]
    fn dialects_render_the_same_rule_differently() {
        let spec = SchemeSpec::HexDtmb {
            design: None,
            primaries: 100,
        };
        let cli =
            reject_foreign_subparams(ParamStyle::Cli, &spec, |k| k == "module_rows").unwrap_err();
        assert_eq!(
            cli,
            "--module-rows does not apply to --scheme hex-dtmb \
             (its parameters: --design, --primaries)"
        );
        let json =
            reject_foreign_subparams(ParamStyle::Json, &spec, |k| k == "module_rows").unwrap_err();
        assert_eq!(
            json,
            "'module_rows' does not apply to scheme 'hex-dtmb' \
             (its parameters: design, primaries)"
        );
    }

    #[test]
    fn stratified_clustered_is_incoherent_in_both_dialects() {
        for style in [ParamStyle::Cli, ParamStyle::Json] {
            let err = reject_foreign_estimator_params(
                style,
                EstimatorKind::Stratified,
                DefectModelKind::Clustered,
                |_| false,
            )
            .unwrap_err();
            assert!(err.contains("i.i.d. Bernoulli defect count"), "{err}");
        }
    }

    #[test]
    fn token_parsers_default_and_reject() {
        assert_eq!(parse_scheme_token(None).unwrap(), SchemeKind::HexDtmb);
        assert!(parse_scheme_token(Some("triangular"))
            .unwrap_err()
            .contains("hex-dtmb, square-dtmb, spare-rows"));
        assert_eq!(
            parse_design_token(Some("dtmb26")).unwrap(),
            Some(DtmbKind::Dtmb26A)
        );
        assert!(parse_design_token(Some("dtmb99")).is_err());
        assert_eq!(Tier::parse(None).unwrap(), Tier::Reconfigured);
        assert!(Tier::parse(Some("cosmic")).unwrap_err().contains("valid:"));
        assert_eq!(
            parse_estimator_token(Some("stratified")).unwrap(),
            EstimatorKind::Stratified
        );
        assert_eq!(
            parse_defect_model_token(Some("clustered")).unwrap(),
            DefectModelKind::Clustered
        );
    }
}
