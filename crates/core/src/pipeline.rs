//! The end-to-end pipeline: design → inject → test → reconfigure → report.

use dmfb_defects::injection::{Bernoulli, InjectionModel};
use dmfb_defects::testing::{self, MeasurementModel};
use dmfb_defects::DefectMap;
use dmfb_grid::Region;
use dmfb_reconfig::dtmb::DtmbKind;
use dmfb_reconfig::{
    attempt_reconfiguration, DefectTolerantArray, ReconfigFailure, ReconfigPlan, ReconfigPolicy,
};
use dmfb_sim::BernoulliEstimate;
use dmfb_yield::{analytical, effective, MonteCarloYield};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A biochip under yield analysis: a defect-tolerant array plus the policy
/// deciding which primary cells must work.
///
/// # Example
///
/// ```
/// use dmfb_core::{Biochip, DtmbKind};
///
/// let chip = Biochip::dtmb(DtmbKind::Dtmb36, 120);
/// let report = chip.yield_report(0.95, 1_000, 7);
/// assert!(report.reconfigured_yield.point() >= report.raw_yield.point());
/// assert!(report.effective_yield <= report.reconfigured_yield.point());
/// ```
#[derive(Clone, Debug)]
pub struct Biochip {
    array: DefectTolerantArray,
    policy: ReconfigPolicy,
    threads: usize,
}

impl Biochip {
    /// A biochip using the given DTMB design with exactly `primaries`
    /// primary cells (spares added per the pattern).
    ///
    /// # Panics
    ///
    /// Panics if `primaries == 0`.
    #[must_use]
    pub fn dtmb(kind: DtmbKind, primaries: usize) -> Self {
        Biochip {
            array: kind.with_primary_count(primaries),
            policy: ReconfigPolicy::AllPrimaries,
            threads: 1,
        }
    }

    /// A biochip without redundancy on a roughly square region with
    /// `primaries` cells — the paper's baseline.
    ///
    /// # Panics
    ///
    /// Panics if `primaries == 0`.
    #[must_use]
    pub fn without_redundancy(primaries: usize) -> Self {
        assert!(primaries > 0, "need at least one cell");
        let side = (primaries as f64).sqrt().ceil() as u32;
        let mut region = Region::parallelogram(side, side);
        // Trim surplus cells from the high end.
        let cells: Vec<_> = region.iter().collect();
        for c in cells.into_iter().rev().take(region.len() - primaries) {
            region.remove(c);
        }
        Biochip {
            array: DefectTolerantArray::without_redundancy(region),
            policy: ReconfigPolicy::AllPrimaries,
            threads: 1,
        }
    }

    /// Wraps an existing array (e.g. the Figure 12 case-study chip).
    #[must_use]
    pub fn from_array(array: DefectTolerantArray) -> Self {
        Biochip {
            array,
            policy: ReconfigPolicy::AllPrimaries,
            threads: 1,
        }
    }

    /// Replaces the success policy (e.g. used-cells-only for the case
    /// study).
    #[must_use]
    pub fn with_policy(mut self, policy: ReconfigPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Runs Monte-Carlo trials across `threads` worker threads (results
    /// are identical for any thread count; `0` = one worker per available
    /// core, per [`dmfb_sim::auto_threads`]).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The underlying array.
    #[must_use]
    pub fn array(&self) -> &DefectTolerantArray {
        &self.array
    }

    /// The success policy.
    #[must_use]
    pub fn policy(&self) -> &ReconfigPolicy {
        &self.policy
    }

    /// Estimates yield at survival probability `p` with and without local
    /// reconfiguration, plus the effective-yield and analytical references.
    #[must_use]
    pub fn yield_report(&self, p: f64, trials: u32, seed: u64) -> YieldReport {
        let mc = MonteCarloYield::new(self.array.clone(), self.policy.clone())
            .with_threads(self.threads);
        let reconfigured = mc.estimate_survival(p, trials, seed);

        // Raw yield: the chip is good only when no in-scope primary fails.
        let model = Bernoulli::from_survival(p);
        let raw_mc = dmfb_sim::MonteCarlo::new(trials, seed ^ 0x5A5A_5A5A);
        let region = self.array.region().clone();
        let array = &self.array;
        let policy = &self.policy;
        let raw = raw_mc.run(|rng| {
            let defects = model.inject(&region, rng);
            let any_relevant = defects
                .faulty_cells()
                .any(|c| array.is_primary(c) && policy.requires(c));
            !any_relevant
        });

        let analytical = match self.array.kind() {
            Some(DtmbKind::Dtmb16) => Some(analytical::dtmb16_yield(p, self.array.primary_count())),
            None => Some(analytical::no_redundancy_yield(
                p,
                self.array.primary_count(),
            )),
            _ => None,
        };

        YieldReport {
            survival_p: p,
            raw_yield: raw,
            reconfigured_yield: reconfigured,
            effective_yield: effective::effective_yield_of(&self.array, reconfigured.point()),
            redundancy_ratio: self.array.redundancy_ratio(),
            analytical,
        }
    }

    /// Estimates yield with exactly `m` random cell failures per chip — the
    /// Figure 13 protocol.
    #[must_use]
    pub fn exact_fault_yield(&self, m: usize, trials: u32, seed: u64) -> BernoulliEstimate {
        MonteCarloYield::new(self.array.clone(), self.policy.clone())
            .with_threads(self.threads)
            .estimate_exact_faults(m, trials, seed)
    }

    /// Simulates one fabricated chip instance end to end: inject defects at
    /// survival `p`, run the droplet-trace test to localise them, then
    /// attempt local reconfiguration *using only what the test detected*.
    #[must_use]
    pub fn simulate_one(&self, p: f64, seed: u64) -> PipelineOutcome {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut defects = Bernoulli::from_survival(p).inject(self.array.region(), &mut rng);
        defects.close_shorts();
        let diagnosis =
            testing::diagnose(self.array.region(), &defects, MeasurementModel::default());
        let plan = attempt_reconfiguration(&self.array, &diagnosis.detected, &self.policy);
        PipelineOutcome {
            true_defects: defects,
            detected: diagnosis.detected.clone(),
            test_droplets: diagnosis.droplets_used,
            test_moves: diagnosis.total_moves,
            plan,
        }
    }
}

/// Yield metrics for one design point.
#[derive(Clone, Debug)]
pub struct YieldReport {
    /// The survival probability evaluated.
    pub survival_p: f64,
    /// Yield without reconfiguration (all in-scope primaries fault-free).
    pub raw_yield: BernoulliEstimate,
    /// Yield with local reconfiguration.
    pub reconfigured_yield: BernoulliEstimate,
    /// Effective yield `EY = Y · n / N` of the reconfigured estimate.
    pub effective_yield: f64,
    /// The array's redundancy ratio.
    pub redundancy_ratio: f64,
    /// Closed-form reference where one exists (no-redundancy and
    /// DTMB(1,6)).
    pub analytical: Option<f64>,
}

/// One chip instance's journey through test and reconfiguration.
#[derive(Clone, Debug)]
pub struct PipelineOutcome {
    /// The defects actually present.
    pub true_defects: DefectMap,
    /// The defects found by droplet-trace testing.
    pub detected: DefectMap,
    /// Test droplets dispensed.
    pub test_droplets: usize,
    /// Total electrode actuations spent testing.
    pub test_moves: usize,
    /// The reconfiguration result based on the detected faults.
    pub plan: Result<ReconfigPlan, ReconfigFailure>,
}

impl PipelineOutcome {
    /// Whether this chip instance ships (reconfiguration succeeded).
    #[must_use]
    pub fn ships(&self) -> bool {
        self.plan.is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_orders_yields_correctly() {
        let chip = Biochip::dtmb(DtmbKind::Dtmb26A, 80);
        let r = chip.yield_report(0.95, 1_500, 3);
        assert!(r.reconfigured_yield.point() > r.raw_yield.point());
        assert!(r.effective_yield <= r.reconfigured_yield.point());
        assert!((r.redundancy_ratio - 1.0 / 3.0).abs() < 0.15);
        assert!(r.analytical.is_none());
        assert_eq!(r.survival_p, 0.95);
    }

    #[test]
    fn no_redundancy_matches_analytic() {
        let chip = Biochip::without_redundancy(108);
        assert_eq!(chip.array().primary_count(), 108);
        let r = chip.yield_report(0.99, 4_000, 9);
        let analytic = r.analytical.unwrap();
        assert!((analytic - 0.3375).abs() < 1e-3);
        assert!((r.reconfigured_yield.point() - analytic).abs() < 0.03);
        // Raw == reconfigured when there are no spares.
        assert!((r.raw_yield.point() - r.reconfigured_yield.point()).abs() < 0.03);
    }

    #[test]
    fn dtmb16_reports_cluster_model() {
        let chip = Biochip::dtmb(DtmbKind::Dtmb16, 60);
        let r = chip.yield_report(0.97, 1_500, 5);
        let analytic = r.analytical.unwrap();
        assert!((r.reconfigured_yield.point() - analytic).abs() < 0.06);
    }

    #[test]
    fn exact_fault_mode() {
        let chip = Biochip::dtmb(DtmbKind::Dtmb26A, 100);
        let zero = chip.exact_fault_yield(0, 200, 1);
        assert_eq!(zero.point(), 1.0);
        let some = chip.exact_fault_yield(10, 800, 1);
        assert!(some.point() < 1.0);
    }

    #[test]
    fn pipeline_outcome_end_to_end() {
        let chip = Biochip::dtmb(DtmbKind::Dtmb36, 60);
        let outcome = chip.simulate_one(0.9, 42);
        // Droplet-trace testing finds every catastrophic fault it can reach.
        assert!(outcome.test_droplets >= 1);
        if outcome.true_defects.is_fault_free() {
            assert!(outcome.ships());
        }
        if let Ok(plan) = &outcome.plan {
            for (faulty, spare) in plan.iter() {
                assert!(faulty.is_adjacent(spare));
                assert!(chip.array().is_spare(spare));
            }
        }
        // Detected faults are a subset of true faults.
        for c in outcome.detected.faulty_cells() {
            assert!(outcome.true_defects.is_faulty(c));
        }
    }

    #[test]
    fn threads_do_not_change_results() {
        let a = Biochip::dtmb(DtmbKind::Dtmb44, 60).yield_report(0.93, 1_000, 11);
        let b = Biochip::dtmb(DtmbKind::Dtmb44, 60)
            .with_threads(4)
            .yield_report(0.93, 1_000, 11);
        assert_eq!(
            a.reconfigured_yield.successes(),
            b.reconfigured_yield.successes()
        );
    }

    #[test]
    fn policy_accessor() {
        let chip = Biochip::dtmb(DtmbKind::Dtmb16, 30)
            .with_policy(ReconfigPolicy::UsedCells(Default::default()));
        assert!(matches!(chip.policy(), ReconfigPolicy::UsedCells(_)));
    }
}
