//! Convenience re-exports for typical experiments.
//!
//! ```
//! use dmfb_core::prelude::*;
//!
//! let chip = Biochip::dtmb(DtmbKind::Dtmb26A, 100);
//! let y = chip.yield_report(0.95, 500, 1).reconfigured_yield;
//! assert!(y.point() > 0.0);
//! ```

pub use crate::{Biochip, PipelineOutcome, YieldReport};

pub use dmfb_grid::{CellMap, HexCoord, HexDir, Region, SquareCoord, SquareRegion, Topology};

pub use dmfb_defects::injection::{Bernoulli, ClusteredSpot, ExactCount, InjectionModel};
pub use dmfb_defects::scenario::{Scenario, ScenarioError, StepAction, Trajectory};
pub use dmfb_defects::testing::{covering_walk, diagnose, MeasurementModel};
pub use dmfb_defects::ClusteredDefects;
pub use dmfb_defects::{CatastrophicDefect, DefectCause, DefectMap, FaultClass};

pub use dmfb_reconfig::dtmb::DtmbKind;
pub use dmfb_reconfig::shifted::{ModuleBand, SpareRowArray};
pub use dmfb_reconfig::{
    attempt_reconfiguration, scheme_audit, CellRole, DefectTolerantArray, ReconfigPlan,
    ReconfigPolicy, RedundancyScheme, SchemeStructure, SquarePattern, TrialEvaluator,
};

pub use dmfb_sim::{
    auto_threads, parallel_map, BernoulliEstimate, MonteCarlo, StratifiedConfig,
    StratifiedEstimate, StratifiedMonteCarlo, Summary,
};

pub use dmfb_yield::analytical::{dtmb16_yield, independent_repair_yield, no_redundancy_yield};
pub use dmfb_yield::{
    effective_yield, named_campaign, tolerance_profile, AssayPanel, CampaignReport, CampaignRunner,
    MonteCarloYield, NamedCampaign, OperationalEstimate, OperationalYield, SchemeYield,
    StratifiedOperationalEstimate, StratifiedPoint, ToleranceProfile, TrialVerdict, YieldCurve,
    YieldPoint, NAMED_CAMPAIGNS,
};

pub use dmfb_bioassay::layout::{fabricated_ivd_chip, ivd_dtmb26_chip, used_cells_policy};
pub use dmfb_bioassay::online::{OnlineExecutor, OperationalFault};
pub use dmfb_bioassay::schedule::Executor;
pub use dmfb_bioassay::{
    Analyte, ChipDescription, FeasibilityChecker, Infeasibility, MultiplexedIvd, ProtocolSchedule,
    TimingBudget,
};
