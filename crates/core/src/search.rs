//! Pareto design-space search over redundancy schemes: "give me the
//! cheapest array that hits yield Y".
//!
//! The paper evaluates a handful of named DTMB/spare-row configurations
//! by hand; this module inverts that. [`run_search`] enumerates the
//! discrete candidate space — DTMB(a,b) designs × [`SquarePattern`]s ×
//! spare-row counts × array dimensions, capped by a [`SearchSpace`] —
//! and scores each candidate's redundancy-area overhead against its
//! yield at the requested tier:
//!
//! 1. **Exact pruning first.** Every candidate gets the Hall-bound
//!    Poisson-binomial ceiling
//!    [`TrialEvaluator::survival_upper_bound`](dmfb_reconfig::TrialEvaluator::survival_upper_bound)
//!    — a closed form, no sampling. Candidates whose ceiling already
//!    falls below the target yield are hopeless and are never simulated,
//!    which is what lets the search spend ~4k stratified trials per
//!    survivor instead of 40k naive trials per candidate.
//! 2. **Stratified scoring.** Survivors run the defect-count-stratified
//!    estimator (the same engine `dmfb yield --estimator stratified`
//!    uses) for a tight confidence interval at rare-failure targets.
//! 3. **Pareto frontier.** The scored candidates reduce to the
//!    non-dominated set of (area overhead, yield) points, stably ordered
//!    by ascending overhead.
//!
//! Results are a pure function of (spec space, target, trials, seed):
//! candidate `i` draws its seed from `SeedSequence::nth_seed(seed, i)`
//! over the *enumeration* index, candidates fan out over
//! [`parallel_map`] with single-threaded engines inside, so the report
//! is byte-identical at any `--threads` setting.

use crate::spec::{SchemeSpec, Tier};
use dmfb_bioassay::layout::{fabricated_ivd_chip, ivd_dtmb26_chip};
use dmfb_bioassay::TimingBudget;
use dmfb_grid::SquareRegion;
use dmfb_reconfig::dtmb::DtmbKind;
use dmfb_reconfig::shifted::{ModuleBand, SpareRowArray};
use dmfb_reconfig::{SquarePattern, TrialEvaluator};
use dmfb_sim::{parallel_map, SeedSequence, StratifiedConfig, StratifiedEstimate};
use dmfb_yield::operational::DEFAULT_SLACK;
use dmfb_yield::{AssayPanel, OperationalYield, SchemeYield};

/// Trials a naive (non-stratified, non-pruned) scorer would spend per
/// candidate to reach comparable confidence at rare-failure targets; the
/// JSON report quotes `candidates × NAIVE_TRIALS_PER_CANDIDATE` as the
/// avoided cost.
pub const NAIVE_TRIALS_PER_CANDIDATE: u64 = 40_000;

/// Caps on the enumerated candidate space. The ladders are fixed;
/// the caps trim them so CI smoke runs stay small while `--max-*` flags
/// can widen the space.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SearchSpace {
    /// Largest hex primary-cell count to enumerate.
    pub max_primaries: usize,
    /// Largest square-lattice dimension (width/height/module rows).
    pub max_dim: u32,
}

impl Default for SearchSpace {
    fn default() -> Self {
        SearchSpace {
            max_primaries: 100,
            max_dim: 16,
        }
    }
}

impl SearchSpace {
    /// The deterministic candidate enumeration, in stable order: hex
    /// designs (including the no-redundancy baseline) over the primaries
    /// ladder, square patterns over the side ladder, spare-row
    /// configurations over width × module-rows × spare-rows.
    #[must_use]
    pub fn candidates(&self, tier: Tier) -> Vec<SchemeSpec> {
        let mut out = Vec::new();
        const DESIGNS: [Option<DtmbKind>; 6] = [
            None,
            Some(DtmbKind::Dtmb16),
            Some(DtmbKind::Dtmb26A),
            Some(DtmbKind::Dtmb26B),
            Some(DtmbKind::Dtmb36),
            Some(DtmbKind::Dtmb44),
        ];
        for design in DESIGNS {
            for primaries in [30usize, 60, 100, 200, 500] {
                if primaries <= self.max_primaries {
                    out.push(SchemeSpec::HexDtmb { design, primaries });
                }
            }
        }
        // Raw yield is defined over the hex chip's primary cells only
        // (the same rule the serve validator enforces).
        if tier == Tier::Raw {
            return out;
        }
        const PATTERNS: [SquarePattern; 4] = [
            SquarePattern::PerfectCode,
            SquarePattern::Stripes,
            SquarePattern::Checkerboard,
            SquarePattern::Quarter,
        ];
        for pattern in PATTERNS {
            for side in [8u32, 12, 16, 24, 32] {
                if side <= self.max_dim {
                    out.push(SchemeSpec::SquareDtmb {
                        pattern,
                        width: side,
                        height: side,
                    });
                }
            }
        }
        for width in [8u32, 16] {
            for module_rows in [4u32, 6, 8] {
                if width <= self.max_dim && module_rows <= self.max_dim {
                    for spare_rows in 0u32..=4 {
                        out.push(SchemeSpec::SpareRows {
                            width,
                            module_rows,
                            spare_rows,
                        });
                    }
                }
            }
        }
        out
    }
}

/// One search invocation: target, tier, statistics, and the space caps.
#[derive(Clone, Copy, Debug)]
pub struct SearchConfig {
    /// The yield the caller wants to reach.
    pub target_yield: f64,
    /// Which yield tier candidates are scored on.
    pub tier: Tier,
    /// Assay panel for the operational tier (`None` otherwise).
    pub assay: Option<AssayPanel>,
    /// Per-cell survival probability.
    pub p: f64,
    /// Stratified trial budget per surviving candidate.
    pub trials: u32,
    /// Master seed; candidate `i` draws `SeedSequence::nth_seed(seed, i)`.
    pub seed: u64,
    /// Worker threads across candidates (`0` = one per core). Never
    /// changes any number in the report.
    pub threads: usize,
    /// Candidate-space caps.
    pub space: SearchSpace,
    /// Stratified-estimator tuning for the scoring runs.
    pub stratified: StratifiedConfig,
}

impl SearchConfig {
    /// A search at the given target with every other knob at its default.
    #[must_use]
    pub fn new(target_yield: f64) -> Self {
        SearchConfig {
            target_yield,
            tier: Tier::Reconfigured,
            assay: None,
            p: 0.95,
            trials: 4_000,
            seed: 1,
            threads: 0,
            space: SearchSpace::default(),
            stratified: StratifiedConfig::default(),
        }
    }
}

/// One scored candidate row.
#[derive(Clone, Debug, PartialEq)]
pub struct CandidateScore {
    /// Canonical spec string (see [`SchemeSpec::canonical`]).
    pub spec: String,
    /// Primary (functional) cell count.
    pub primary_cells: usize,
    /// Spare (redundant) cell count.
    pub spare_cells: usize,
    /// Redundancy-area overhead: `spare_cells / primary_cells`.
    pub overhead: f64,
    /// Exact Hall-bound ceiling on the yield (1.0 when no bound applies).
    pub bound_hi: f64,
    /// Exact guaranteed-tolerance floor on the yield.
    pub bound_lo: f64,
    /// Whether the exact ceiling pruned the candidate before sampling.
    pub pruned: bool,
    /// Estimated yield at the requested tier (`None` for pruned rows).
    pub yield_point: Option<f64>,
    /// 95% confidence interval around `yield_point` (0/0 when pruned;
    /// degenerate when the estimate resolved exactly).
    pub ci_lo: f64,
    /// Upper end of the interval.
    pub ci_hi: f64,
    /// Trials actually spent on this candidate.
    pub trials_used: u64,
}

impl CandidateScore {
    /// Whether this row's estimate reaches the target.
    #[must_use]
    pub fn meets(&self, target: f64) -> bool {
        self.yield_point.is_some_and(|y| y >= target)
    }
}

/// The full search outcome: every scored candidate plus the Pareto
/// frontier and the cost bookkeeping the acceptance gate reads.
#[derive(Clone, Debug, PartialEq)]
pub struct SearchReport {
    /// The target yield the search ran against.
    pub target_yield: f64,
    /// The tier candidates were scored on.
    pub tier: Tier,
    /// Assay panel (operational tier only).
    pub assay: Option<AssayPanel>,
    /// Per-cell survival probability.
    pub p: f64,
    /// Per-candidate stratified budget.
    pub trials: u32,
    /// Master seed.
    pub seed: u64,
    /// Size of the enumerated candidate space.
    pub candidates: usize,
    /// Candidates eliminated by the exact bound before any sampling.
    pub pruned: usize,
    /// Candidates that were actually simulated.
    pub evaluated: usize,
    /// Monte-Carlo trials actually spent, summed over all candidates.
    pub trials_used: u64,
    /// What naive 40k-per-candidate scoring would have cost.
    pub naive_trials: u64,
    /// Every candidate in enumeration order.
    pub scored: Vec<CandidateScore>,
    /// The non-dominated (overhead, yield) rows, ascending overhead.
    pub frontier: Vec<CandidateScore>,
}

impl SearchReport {
    /// The cheapest frontier row meeting the target, if any.
    #[must_use]
    pub fn best(&self) -> Option<&CandidateScore> {
        self.frontier
            .iter()
            .find(|row| row.meets(self.target_yield))
    }
}

/// Scores one scheme-shaped candidate on the reconfigured tier.
fn score_scheme(spec: &SchemeSpec, config: &SearchConfig, seed: u64) -> CandidateScore {
    match spec {
        SchemeSpec::HexDtmb { .. } => {
            let chip = spec.biochip().expect("hex spec builds a biochip");
            let evaluator = TrialEvaluator::new(chip.array(), chip.policy());
            let cells = (chip.array().primary_count(), chip.array().spare_count());
            score_evaluator(spec, evaluator, cells, config, seed)
        }
        SchemeSpec::SquareDtmb {
            pattern,
            width,
            height,
        } => {
            let region = SquareRegion::rect(*width, *height);
            let evaluator = TrialEvaluator::for_scheme(&region, pattern);
            // Interstitial schemes: units are primary cells, resources are
            // single-cell spares, so the evaluator's member counts *are*
            // the physical cell counts.
            let cells = (
                evaluator.unit_cell_counts().sum(),
                evaluator.resource_cell_counts().sum(),
            );
            score_evaluator(spec, evaluator, cells, config, seed)
        }
        SchemeSpec::SpareRows {
            width,
            module_rows,
            spare_rows,
        } => {
            let array = SpareRowArray::new(
                *width,
                vec![ModuleBand {
                    name: "Module 1".into(),
                    rows: *module_rows,
                }],
                *spare_rows,
            );
            let region = array.region();
            let evaluator = TrialEvaluator::for_scheme(&region, &array);
            // Spare-row resources are indestructible in the compiled
            // scheme (no member cells), but their silicon area is real:
            // count it from the geometry, not the evaluator.
            let cells = (
                (*width as usize) * (*module_rows as usize),
                (*width as usize) * (*spare_rows as usize),
            );
            score_evaluator(spec, evaluator, cells, config, seed)
        }
    }
}

/// The shared scoring path: exact bounds, prune-or-sample, one row out.
fn score_evaluator<C: Copy + Ord + Send + Sync + std::fmt::Debug>(
    spec: &SchemeSpec,
    evaluator: TrialEvaluator<C>,
    (primary_cells, spare_cells): (usize, usize),
    config: &SearchConfig,
    seed: u64,
) -> CandidateScore {
    let overhead = if primary_cells == 0 {
        0.0
    } else {
        spare_cells as f64 / primary_cells as f64
    };
    let bound_hi = evaluator.survival_upper_bound(config.p);
    let bound_lo = evaluator.survival_lower_bound(config.p);
    let mut row = CandidateScore {
        spec: spec.canonical(),
        primary_cells,
        spare_cells,
        overhead,
        bound_hi,
        bound_lo,
        pruned: false,
        yield_point: None,
        ci_lo: 0.0,
        ci_hi: 0.0,
        trials_used: 0,
    };
    if config.tier == Tier::Raw {
        // Raw yield has a closed form: every in-scope primary cell must
        // survive. No sampling, no pruning.
        let n = i32::try_from(primary_cells).expect("cell count fits i32");
        let y = config.p.powi(n);
        row.yield_point = Some(y);
        row.ci_lo = y;
        row.ci_hi = y;
        row.bound_hi = y;
        row.bound_lo = y;
        return row;
    }
    if bound_hi < config.target_yield {
        row.pruned = true;
        return row;
    }
    let engine = SchemeYield::from_evaluator(spec.canonical(), evaluator).with_threads(1);
    let estimate =
        engine.estimate_survival_stratified(config.p, config.trials, seed, &config.stratified);
    fill_estimate(&mut row, &estimate);
    row
}

/// Copies a stratified estimate into a candidate row.
fn fill_estimate(row: &mut CandidateScore, estimate: &StratifiedEstimate) {
    let (lo, hi) = estimate.ci95();
    row.yield_point = Some(estimate.point);
    row.ci_lo = lo;
    row.ci_hi = hi;
    row.trials_used = estimate.trials;
}

/// The operational-tier candidate space: the paper's fabricated IVD chip
/// (no redundancy) against the DTMB(2,6) redesign, both running `panel`
/// under the used-cells policy. The assay fixes the working area, so the
/// space is the chip choice itself.
fn operational_candidates(panel: AssayPanel) -> Vec<(String, dmfb_bioassay::ChipDescription)> {
    vec![
        (
            format!("assay:{}:chip=fabricated", panel.label()),
            fabricated_ivd_chip(),
        ),
        (
            format!("assay:{}:chip=dtmb26", panel.label()),
            ivd_dtmb26_chip(),
        ),
    ]
}

/// Scores one operational candidate chip.
fn score_operational(
    label: &str,
    chip: &dmfb_bioassay::ChipDescription,
    panel: AssayPanel,
    config: &SearchConfig,
    seed: u64,
) -> CandidateScore {
    let primary_cells = chip.array.primary_count();
    let spare_cells = chip.array.spare_count();
    let overhead = if primary_cells == 0 {
        0.0
    } else {
        spare_cells as f64 / primary_cells as f64
    };
    let mut row = CandidateScore {
        spec: label.to_string(),
        primary_cells,
        spare_cells,
        overhead,
        bound_hi: 1.0,
        bound_lo: 0.0,
        pruned: false,
        yield_point: None,
        ci_lo: 0.0,
        ci_hi: 0.0,
        trials_used: 0,
    };
    let batch = panel.batch();
    let budget = TimingBudget::with_slack(chip, &batch, DEFAULT_SLACK)
        .expect("the case-study chips run their own panels");
    let engine = OperationalYield::new(chip.clone(), batch, budget).with_threads(1);
    let estimate = engine.estimate_stratified(config.p, config.trials, seed, &config.stratified);
    fill_estimate(&mut row, &estimate.operational);
    // The stratified operational estimate reports the shared trial spend
    // once; raw/reconfigured ride the same draws.
    row
}

/// Reduces scored rows to the Pareto-optimal set: sort by ascending
/// overhead (ties: higher yield, then spec string for stability), then
/// keep each row only if it strictly improves the best yield seen at
/// lower-or-equal overhead. Pruned rows carry no estimate and cannot be
/// frontier members.
#[must_use]
pub fn pareto_frontier(scored: &[CandidateScore]) -> Vec<CandidateScore> {
    let mut rows: Vec<&CandidateScore> =
        scored.iter().filter(|r| r.yield_point.is_some()).collect();
    rows.sort_by(|a, b| {
        a.overhead
            .total_cmp(&b.overhead)
            .then_with(|| b.yield_point.unwrap().total_cmp(&a.yield_point.unwrap()))
            .then_with(|| a.spec.cmp(&b.spec))
    });
    let mut frontier: Vec<CandidateScore> = Vec::new();
    let mut best = f64::NEG_INFINITY;
    for row in rows {
        let y = row.yield_point.unwrap();
        if y > best {
            best = y;
            frontier.push(row.clone());
        }
    }
    frontier
}

/// Runs the full search. See the module docs for the three stages; the
/// report is a pure function of the config (thread count excluded).
#[must_use]
pub fn run_search(config: &SearchConfig) -> SearchReport {
    let scored: Vec<CandidateScore> = match (config.tier, config.assay) {
        (Tier::Operational, Some(panel)) => {
            let chips = operational_candidates(panel);
            parallel_map(config.threads, &chips, |i, (label, chip)| {
                score_operational(
                    label,
                    chip,
                    panel,
                    config,
                    SeedSequence::nth_seed(config.seed, i as u64),
                )
            })
        }
        _ => {
            let candidates = config.space.candidates(config.tier);
            parallel_map(config.threads, &candidates, |i, spec| {
                score_scheme(spec, config, SeedSequence::nth_seed(config.seed, i as u64))
            })
        }
    };
    let pruned = scored.iter().filter(|r| r.pruned).count();
    let trials_used: u64 = scored.iter().map(|r| r.trials_used).sum();
    let frontier = pareto_frontier(&scored);
    SearchReport {
        target_yield: config.target_yield,
        tier: config.tier,
        assay: config.assay,
        p: config.p,
        trials: config.trials,
        seed: config.seed,
        candidates: scored.len(),
        pruned,
        evaluated: scored.len() - pruned,
        trials_used,
        naive_trials: scored.len() as u64 * NAIVE_TRIALS_PER_CANDIDATE,
        scored,
        frontier,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> SearchConfig {
        let mut config = SearchConfig::new(0.9);
        config.trials = 400;
        config.space = SearchSpace {
            max_primaries: 30,
            max_dim: 8,
        };
        config.threads = 1;
        config
    }

    #[test]
    fn enumeration_is_stable_and_capped() {
        let space = SearchSpace {
            max_primaries: 100,
            max_dim: 16,
        };
        let all = space.candidates(Tier::Reconfigured);
        // 6 designs × 3 primaries + 4 patterns × 3 sides + 2 × 3 × 5 spare rows.
        assert_eq!(all.len(), 18 + 12 + 30);
        assert_eq!(all, space.candidates(Tier::Reconfigured));
        let raw = space.candidates(Tier::Raw);
        assert_eq!(raw.len(), 18);
        assert!(raw.iter().all(|s| matches!(s, SchemeSpec::HexDtmb { .. })));
    }

    #[test]
    fn pruning_eliminates_hopeless_candidates_without_trials() {
        let mut config = small_config();
        config.target_yield = 0.99;
        let report = run_search(&config);
        assert!(report.pruned > 0, "no-redundancy candidates must be pruned");
        assert!(
            report
                .scored
                .iter()
                .filter(|r| r.pruned)
                .all(|r| r.trials_used == 0 && r.yield_point.is_none()),
            "pruned rows must not spend trials"
        );
        assert!(report.trials_used < report.naive_trials);
    }

    #[test]
    fn frontier_has_no_dominated_rows() {
        let report = run_search(&small_config());
        for a in &report.frontier {
            for b in &report.frontier {
                if std::ptr::eq(a, b) {
                    continue;
                }
                let dominates = b.overhead <= a.overhead
                    && b.yield_point.unwrap() >= a.yield_point.unwrap()
                    && (b.overhead < a.overhead || b.yield_point.unwrap() > a.yield_point.unwrap());
                assert!(!dominates, "{} dominates {}", b.spec, a.spec);
            }
        }
        // Stable ascending order.
        for pair in report.frontier.windows(2) {
            assert!(pair[0].overhead < pair[1].overhead);
            assert!(pair[0].yield_point.unwrap() < pair[1].yield_point.unwrap());
        }
    }

    #[test]
    fn reports_are_thread_count_invariant() {
        let mut config = small_config();
        let one = run_search(&config);
        config.threads = 0;
        let auto = run_search(&config);
        assert_eq!(one, auto);
    }

    #[test]
    fn raw_tier_is_exact_and_free() {
        let mut config = small_config();
        config.tier = Tier::Raw;
        let report = run_search(&config);
        assert_eq!(report.trials_used, 0);
        for row in &report.scored {
            let y = row.yield_point.unwrap();
            let expected = config.p.powi(row.primary_cells as i32);
            assert!((y - expected).abs() < 1e-12);
        }
    }
}
