//! # dmfb-core
//!
//! Yield enhancement of digital microfluidics-based biochips using space
//! redundancy and local reconfiguration — a full Rust implementation of
//! Su, Chakrabarty and Pamula (DATE 2005).
//!
//! This facade crate re-exports the whole workspace and adds the
//! [`Biochip`] pipeline: a single entry point that designs a
//! defect-tolerant array, injects manufacturing defects, tests the chip
//! with simulated droplet traces, attempts local reconfiguration, and
//! reports yield metrics.
//!
//! ## Quick start
//!
//! ```
//! use dmfb_core::{Biochip, DtmbKind};
//!
//! // A DTMB(2,6) biochip with ~100 primary cells.
//! let chip = Biochip::dtmb(DtmbKind::Dtmb26A, 100);
//!
//! // Estimate manufacturing yield at 95% per-cell survival probability,
//! // with and without local reconfiguration.
//! let report = chip.yield_report(0.95, 2_000, 42);
//! assert!(report.reconfigured_yield.point() > report.raw_yield.point());
//! ```
//!
//! ## Layered API
//!
//! Everything the pipeline uses is public through the re-exported crates:
//! [`grid`], [`graph`], [`sim`], [`defects`], [`reconfig`],
//! [`yield_model`], [`bioassay`]. The [`prelude`] pulls in the names needed
//! by typical experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod pipeline;
pub mod prelude;
pub mod search;
pub mod spec;

pub use pipeline::{Biochip, PipelineOutcome, YieldReport};
pub use search::{CandidateScore, SearchConfig, SearchReport, SearchSpace};
pub use spec::{EngineParams, EngineSpec, SchemeSpec, Tier};

pub use dmfb_bioassay as bioassay;
pub use dmfb_defects as defects;
pub use dmfb_graph as graph;
pub use dmfb_grid as grid;
pub use dmfb_reconfig as reconfig;
pub use dmfb_sim as sim;
pub use dmfb_yield as yield_model;

pub use dmfb_grid::{HexCoord, HexDir, Region};
pub use dmfb_reconfig::dtmb::DtmbKind;
pub use dmfb_reconfig::{CellRole, DefectTolerantArray, ReconfigPolicy};
