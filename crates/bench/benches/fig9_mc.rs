//! Times one Figure 9 Monte-Carlo data point (reduced trials) per design:
//! Bernoulli injection + Hopcroft–Karp reconfigurability per trial.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dmfb_core::prelude::*;
use std::hint::black_box;

const DESIGNS: [DtmbKind; 3] = [DtmbKind::Dtmb26A, DtmbKind::Dtmb36, DtmbKind::Dtmb44];

fn bench_fig9(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_mc_point");
    group.sample_size(10);
    for kind in DESIGNS {
        let est = MonteCarloYield::new(kind.with_primary_count(120), ReconfigPolicy::AllPrimaries);
        group.bench_with_input(
            BenchmarkId::new("n120_p0.95_200trials", kind),
            &est,
            |b, est| {
                b.iter(|| black_box(est.estimate_survival(0.95, 200, 7)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
