//! Ablation: the paper's i.i.d. failure assumption versus clustered spot
//! defects with the same expected failure count, on a DTMB(2,6) array.

use criterion::{criterion_group, criterion_main, Criterion};
use dmfb_core::prelude::*;
use std::hint::black_box;

fn bench_clustered(c: &mut Criterion) {
    let est = MonteCarloYield::new(
        DtmbKind::Dtmb26A.with_primary_count(120),
        ReconfigPolicy::AllPrimaries,
    );
    // Matched expectations: Bernoulli q=0.05 on ~168 cells ≈ 8.4 failures;
    // clustered model tuned to the same mean.
    let clustered = ClusteredSpot::new(2.0, 1, 0.6);
    let mut group = c.benchmark_group("ablation_injection_models");
    group.sample_size(10);
    group.bench_function("iid_bernoulli_200trials", |b| {
        b.iter(|| black_box(est.estimate_survival(0.95, 200, 3)));
    });
    group.bench_function("clustered_spot_200trials", |b| {
        b.iter(|| black_box(est.estimate_with(&clustered, 200, 3)));
    });
    group.finish();
}

criterion_group!(benches, bench_clustered);
criterion_main!(benches);
