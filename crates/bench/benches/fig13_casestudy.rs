//! Times the Figure 13 case-study estimator: exact-m injection on the
//! 252+91 DTMB(2,6) chip with the used-cells policy, at the paper's
//! critical point m = 35.

use criterion::{criterion_group, criterion_main, Criterion};
use dmfb_core::prelude::*;
use std::hint::black_box;

fn bench_fig13(c: &mut Criterion) {
    let chip = ivd_dtmb26_chip();
    let policy = used_cells_policy(&chip);
    let biochip = Biochip::from_array(chip.array).with_policy(policy);
    let mut group = c.benchmark_group("fig13_casestudy");
    group.sample_size(10);
    group.bench_function("m35_200trials", |b| {
        b.iter(|| black_box(biochip.exact_fault_yield(35, 200, 11)));
    });
    group.bench_function("m10_200trials", |b| {
        b.iter(|| black_box(biochip.exact_fault_yield(10, 200, 11)));
    });
    group.finish();
}

criterion_group!(benches, bench_fig13);
criterion_main!(benches);
