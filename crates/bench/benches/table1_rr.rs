//! Times the Table 1 computation: pattern instantiation + degree audit +
//! redundancy ratio over all four designs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dmfb_core::prelude::*;
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_rr");
    group.sample_size(20);
    for kind in DtmbKind::TABLE1 {
        group.bench_with_input(
            BenchmarkId::new("instantiate+audit", kind),
            &kind,
            |b, &k| {
                b.iter(|| {
                    let array = k.with_primary_count(black_box(240));
                    let audit = array.audit().expect("audit");
                    black_box((array.redundancy_ratio(), audit));
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
