//! Ablation: Hopcroft–Karp versus the simple augmenting-path matcher on
//! reconfiguration-shaped bipartite graphs of growing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dmfb_core::graph::{
    augmenting_path_matching, hopcroft_karp, BipartiteGraph, BitsetGraph, BitsetMatcher,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

/// Builds a sparse bipartite graph shaped like a reconfiguration instance:
/// each left node (faulty primary) sees ~2 of the right nodes (spares).
fn reconfiguration_graph(faults: usize, spares: usize, seed: u64) -> BipartiteGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = BipartiteGraph::new(faults, spares);
    for a in 0..faults {
        for _ in 0..2 {
            g.add_edge(a, rng.gen_range(0..spares));
        }
    }
    g
}

fn bench_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("matching_algorithms");
    for &size in &[32usize, 128, 512] {
        let g = reconfiguration_graph(size, size / 2 + 8, 42);
        group.bench_with_input(BenchmarkId::new("hopcroft_karp", size), &g, |b, g| {
            b.iter(|| black_box(hopcroft_karp(g)));
        });
        group.bench_with_input(BenchmarkId::new("augmenting_path", size), &g, |b, g| {
            b.iter(|| black_box(augmenting_path_matching(g)));
        });
        let bg = BitsetGraph::from_graph(&g);
        group.bench_with_input(BenchmarkId::new("bitset_hk", size), &bg, |b, bg| {
            let mut matcher = BitsetMatcher::new();
            b.iter(|| black_box(matcher.max_matching(bg).len()));
        });
        group.bench_with_input(
            BenchmarkId::new("bitset_hk_feasibility", size),
            &bg,
            |b, bg| {
                let mut matcher = BitsetMatcher::new();
                b.iter(|| black_box(matcher.covers_all_left(bg)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_matching);
criterion_main!(benches);
