//! Times the Figure 2 baseline comparison: spare-row shifted replacement
//! vs interstitial local reconfiguration for the same fault.

use criterion::{criterion_group, criterion_main, Criterion};
use dmfb_core::prelude::*;
use std::hint::black_box;

fn bench_fig2(c: &mut Criterion) {
    let spare_row = SpareRowArray::figure2_example();
    let dtmb = DtmbKind::Dtmb26A.with_primary_count(48);
    let fault_cell: HexCoord = dtmb.primaries().nth(20).expect("cell");
    let defects = DefectMap::from_cells([fault_cell]);

    let mut group = c.benchmark_group("fig2_reconfiguration");
    group.bench_function("shifted_replacement_1fault", |b| {
        b.iter(|| black_box(spare_row.shifted_replacement(&[SquareCoord::new(0, 1)])));
    });
    group.bench_function("local_reconfiguration_1fault", |b| {
        b.iter(|| {
            black_box(attempt_reconfiguration(
                &dtmb,
                &defects,
                &ReconfigPolicy::AllPrimaries,
            ))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
