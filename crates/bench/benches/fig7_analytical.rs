//! Times the Figure 7 computation: the DTMB(1,6) analytical model and the
//! no-redundancy baseline over the survival grid.

use criterion::{criterion_group, criterion_main, Criterion};
use dmfb_bench::{FIG7_9_ARRAY_SIZES, FIG7_9_SURVIVAL_GRID};
use dmfb_core::prelude::*;
use std::hint::black_box;

fn bench_fig7(c: &mut Criterion) {
    c.bench_function("fig7_analytical_grid", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &n in &FIG7_9_ARRAY_SIZES {
                for &p in &FIG7_9_SURVIVAL_GRID {
                    acc += dtmb16_yield(black_box(p), n);
                    acc += no_redundancy_yield(black_box(p), n);
                }
            }
            black_box(acc)
        });
    });
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
