//! Times a reduced Figure 10 sweep: effective-yield curves for all four
//! designs plus crossover detection.

use criterion::{criterion_group, criterion_main, Criterion};
use dmfb_core::prelude::*;
use std::hint::black_box;

fn bench_fig10(c: &mut Criterion) {
    let estimators: Vec<MonteCarloYield> = DtmbKind::TABLE1
        .iter()
        .map(|&k| MonteCarloYield::new(k.with_primary_count(100), ReconfigPolicy::AllPrimaries))
        .collect();
    let grid = [0.85, 0.90, 0.95, 1.00];
    let mut group = c.benchmark_group("fig10_effective");
    group.sample_size(10);
    group.bench_function("4designs_4points_100trials", |b| {
        b.iter(|| {
            let mut curves = Vec::new();
            for est in &estimators {
                let pts: Vec<YieldPoint> = grid
                    .iter()
                    .enumerate()
                    .map(|(i, &p)| {
                        let e = est.estimate_survival(p, 100, i as u64);
                        let scale =
                            est.array().primary_count() as f64 / est.array().total_cells() as f64;
                        YieldPoint {
                            x: p,
                            y: e.point() * scale,
                            ci95: e.wilson95(),
                            trials: e.trials(),
                        }
                    })
                    .collect();
                curves.push(YieldCurve::new("c", pts));
            }
            let crossings = curves[0].crossover_with(&curves[3]);
            black_box((curves, crossings))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);
