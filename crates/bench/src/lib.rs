//! Shared harness for the figure/table generators and criterion benches.
//!
//! Every experiment in the paper's evaluation section has (a) a binary in
//! `src/bin/` that regenerates the corresponding table or figure as text,
//! printing paper-expected values next to measured ones, and (b) a
//! criterion bench timing the underlying computation. This library holds
//! the pieces they share: experiment parameter sets, plain-text table
//! rendering, and the machine-readable [`BenchReport`] JSON format
//! (`BENCH_*.json`) that `dmfb bench --json` emits and CI archives.

mod compare;
pub mod json;
mod report;

pub use compare::{
    compare, CompareOutcome, EntryDelta, LatencyDelta, DEFAULT_REGRESSION_THRESHOLD,
};
pub use report::{BenchEntry, BenchReport, BENCH_SCHEMA};

use std::fmt::Write as _;

/// The survival probabilities swept by Figures 7 and 9 (the paper plots
/// roughly the 0.90–1.00 range where yields are meaningfully distinct).
pub const FIG7_9_SURVIVAL_GRID: [f64; 11] = [
    0.90, 0.91, 0.92, 0.93, 0.94, 0.95, 0.96, 0.97, 0.98, 0.99, 1.00,
];

/// The wider survival grid used by the Figure 10 effective-yield curves,
/// where the low-`p` regime is what separates the designs: DTMB(4,4) only
/// pulls ahead once cell survival drops well below 0.8.
pub const FIG10_SURVIVAL_GRID: [f64; 16] = [
    0.70, 0.72, 0.74, 0.76, 0.78, 0.80, 0.82, 0.84, 0.86, 0.88, 0.90, 0.92, 0.94, 0.96, 0.98, 1.00,
];

/// Primary-cell counts plotted in Figures 7 and 9.
pub const FIG7_9_ARRAY_SIZES: [usize; 3] = [60, 120, 240];

/// Monte-Carlo trials per data point, per the paper ("After 10000
/// simulation runs ...").
pub const PAPER_TRIALS: u32 = 10_000;

/// Master seed used by all figure generators, so the printed numbers are
/// reproducible and match `EXPERIMENTS.md`.
pub const FIGURE_SEED: u64 = 0xDA7E_2005_u64;

/// A minimal plain-text table renderer for figure output.
///
/// # Example
///
/// ```
/// use dmfb_bench::TextTable;
///
/// let mut t = TextTable::new(vec!["p".into(), "yield".into()]);
/// t.row(vec!["0.95".into(), "0.4690".into()]);
/// let s = t.render();
/// assert!(s.contains("yield"));
/// ```
#[derive(Clone, Debug)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(header: Vec<String>) -> Self {
        TextTable {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a row. Rows shorter than the header are padded with blanks;
    /// longer rows are allowed and extend the width bookkeeping.
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain([self.header.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        for row in std::iter::once(&self.header).chain(self.rows.iter()) {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |row: &[String], widths: &[usize], out: &mut String| {
            for (i, w) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                let _ = write!(out, "{cell:>w$}  ", w = w);
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        render_row(&self.header, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        out.push_str(&"-".repeat(total.max(4)));
        out.push('\n');
        for row in &self.rows {
            render_row(row, &widths, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(vec!["a".into(), "bbbb".into()]);
        t.row(vec!["xx".into(), "y".into()]);
        t.row(vec!["1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains('a') && lines[0].contains("bbbb"));
        assert!(lines[1].starts_with('-'));
    }

    #[test]
    fn constants_sane() {
        assert!(FIG7_9_SURVIVAL_GRID.windows(2).all(|w| w[0] < w[1]));
        assert!(FIG10_SURVIVAL_GRID.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(PAPER_TRIALS, 10_000);
    }
}
