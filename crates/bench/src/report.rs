//! Machine-readable benchmark reports (`BENCH_*.json`).
//!
//! `dmfb bench --json` serialises its measurements with this module so CI
//! can archive them as workflow artifacts and later PRs can diff
//! throughput numbers instead of eyeballing log output. The environment
//! vendors no JSON library, so the writer is a small hand-rolled emitter
//! for the fixed `dmfb-bench/1` schema (reading goes through the shared
//! bounded parser in [`crate::json`]):
//!
//! ```json
//! {
//!   "schema": "dmfb-bench/1",
//!   "label": "quick",
//!   "created_unix_ms": 1753660800000,
//!   "threads": 8,
//!   "quick": true,
//!   "entries": [
//!     {
//!       "name": "dtmb26/incremental",
//!       "scheme": "hex-dtmb",
//!       "design": "DTMB(2,6)",
//!       "primaries": 120,
//!       "trials": 2000,
//!       "grid_points": 1,
//!       "wall_ms": 12.5,
//!       "trials_per_sec": 160000.0,
//!       "yield_estimate": 0.9435,
//!       "assay": null,
//!       "operational_yield": null,
//!       "estimator": "naive",
//!       "defect_model": "bernoulli",
//!       "engine": "block",
//!       "variance": null,
//!       "effective_samples": null,
//!       "p50_ms": null,
//!       "p95_ms": null,
//!       "p99_ms": null,
//!       "cache_hit_rate": null
//!     }
//!   ]
//! }
//! ```
//!
//! Assay-aware (operational-yield) workloads fill the assay columns:
//! `"assay"` carries the panel label (`"ivd-panel"`/`"metabolic-panel"`)
//! and `"operational_yield"` the third-tier yield, with `yield_estimate`
//! holding the reconfigured (second-tier) yield for comparability.
//!
//! **Schema evolution (PR 5).** `dmfb-bench/1` gained four *optional*
//! columns — `estimator` (`"naive"`/`"stratified"`), `defect_model`
//! (`"bernoulli"`/`"clustered"`), `variance` (the estimator's variance
//! estimate) and `effective_samples` (the naive-trial-equivalent sample
//! count of a stratified run). The schema identifier is unchanged because
//! the bump is backward-readable both ways: old readers ignore the new
//! keys, and [`BenchReport::from_json`] defaults every one of them to
//! `None`/`null` when absent, so pre-bump `BENCH_*.json` artifacts keep
//! parsing. Since this PR the reports are no longer write-only: the
//! hand-rolled [`BenchReport::from_json`] reader feeds the
//! `dmfb bench --compare` regression gate.
//!
//! **Schema evolution (PR 6).** One more optional column, same rules:
//! `engine` records which trial engine ran the workload — `"scalar"`
//! (one trial at a time) or `"block"` (the word-parallel 64-trials-per-
//! word batch pipeline) — and defaults to `None` on pre-bump reports.
//!
//! **Schema evolution (PR 7).** Four more optional columns, same rules,
//! carrying the `dmfb soak` latency profile: `p50_ms`, `p95_ms`,
//! `p99_ms` (request-latency percentiles in milliseconds) and
//! `cache_hit_rate` (the serving daemon's evaluator-cache hit fraction
//! over the soak window, in `[0, 1]`). Throughput-only workloads leave
//! all four `null`. In the same PR the reader was hardened for
//! untrusted input now that `BENCH` documents can arrive over the wire:
//! oversized or over-deep payloads, duplicate `(name, scheme)` workload
//! labels, non-finite or negative throughput/latency numbers, and
//! out-of-range integer fields are rejected with clean errors instead of
//! being silently accepted.
//!
//! **Schema evolution (PR 9).** One more optional column, same rules:
//! `campaign` names the adversarial campaign a workload replayed
//! (`"edge-column-wipeout"`, `"reservoir-cluster"`, …) when the entry
//! came from the `dmfb bench --assay` campaign workloads; throughput-only
//! entries and pre-bump reports leave it `null`/`None`. On campaign
//! entries `yield_estimate`/`operational_yield` carry the *final-step*
//! reconfigured and operational survival — the after-the-attack numbers.
//!
//! **Schema evolution (PR 10).** One more optional column, same rules:
//! `spec` carries the canonical [`SchemeSpec`] descriptor string of the
//! configuration the workload ran (e.g.
//! `"hex-dtmb:design=DTMB(2,6):primaries=60"`), the exact same string the
//! serve engine cache and `dmfb search` key on — so BENCH rows join
//! against search frontiers and serve cache telemetry without re-parsing
//! the `scheme`/`design`/`primaries` columns. Pre-bump reports and
//! workloads without a single-scheme identity (soak mixes) leave it
//! `null`/`None`.
//!
//! [`SchemeSpec`]: https://docs.rs/dmfb_core/latest/dmfb_core/spec/enum.SchemeSpec.html

use crate::json::{get, json_number, json_string, opt_f64, opt_string, JsonValue};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::{SystemTime, UNIX_EPOCH};

/// The schema identifier written into every report.
pub const BENCH_SCHEMA: &str = "dmfb-bench/1";

/// One measured configuration: a named workload with its wall time and
/// derived throughput.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchEntry {
    /// Unique entry name, conventionally `<design>/<engine>`.
    pub name: String,
    /// Redundancy-scheme family the workload ran on (`hex-dtmb`,
    /// `square-dtmb`, `spare-rows`), so `BENCH_*.json` artifacts from
    /// different schemes stay distinguishable in the perf trajectory.
    pub scheme: String,
    /// Human-readable design label (e.g. `DTMB(2,6)`).
    pub design: String,
    /// Primary-cell count of the benchmarked array.
    pub primaries: usize,
    /// Monte-Carlo trials executed.
    pub trials: u64,
    /// Survival-grid points served by those trials (1 for single-point
    /// estimates; the grid length for batched sweeps).
    pub grid_points: usize,
    /// Wall-clock time in milliseconds.
    pub wall_ms: f64,
    /// Effective point-trials per second:
    /// `trials × grid_points / wall seconds`.
    pub trials_per_sec: f64,
    /// The yield estimate the workload produced (a cross-engine sanity
    /// anchor for report consumers). For assay workloads this is the
    /// *reconfigured* yield, so it stays comparable with the non-assay
    /// entries.
    pub yield_estimate: f64,
    /// Assay-panel label (`ivd-panel`, `metabolic-panel`) for operational
    /// workloads; `None` (JSON `null`) for pure matching workloads.
    pub assay: Option<String>,
    /// Operational (assay-aware) yield for assay workloads; `None` (JSON
    /// `null`) otherwise. By construction
    /// `operational_yield <= yield_estimate` on assay entries.
    pub operational_yield: Option<f64>,
    /// Which yield estimator ran the workload (`"naive"` or
    /// `"stratified"`); `None` on pre-bump reports.
    pub estimator: Option<String>,
    /// Which defect model drove the workload (`"bernoulli"` or
    /// `"clustered"`); `None` on pre-bump reports.
    pub defect_model: Option<String>,
    /// Which trial engine ran the workload: `"scalar"` (one trial at a
    /// time) or `"block"` (word-parallel, 64 trials per machine word);
    /// `None` on pre-bump reports and on workloads the engine axis does
    /// not apply to (e.g. the per-trial graph-rebuild reference).
    pub engine: Option<String>,
    /// Variance estimate attached to `yield_estimate` (stratified
    /// workloads report the stratified variance, naive rare-event
    /// workloads the binomial `ŷ(1−ŷ)/n`); `None` when not recorded.
    pub variance: Option<f64>,
    /// Naive-trial-equivalent sample count: how many plain Monte-Carlo
    /// trials the workload's precision would have cost. For naive
    /// workloads this equals `trials`; for stratified ones the ratio
    /// `effective_samples / trials` is the rare-event speed-up.
    pub effective_samples: Option<f64>,
    /// Median request latency in milliseconds (`dmfb soak` workloads);
    /// `None` on throughput-only entries and pre-bump reports.
    pub p50_ms: Option<f64>,
    /// 95th-percentile request latency in milliseconds; `None` on
    /// throughput-only entries and pre-bump reports.
    pub p95_ms: Option<f64>,
    /// 99th-percentile request latency in milliseconds; `None` on
    /// throughput-only entries and pre-bump reports.
    pub p99_ms: Option<f64>,
    /// Evaluator-cache hit fraction over the soak window, in `[0, 1]`;
    /// `None` on throughput-only entries and pre-bump reports.
    pub cache_hit_rate: Option<f64>,
    /// Adversarial campaign the workload replayed (the scenario name,
    /// e.g. `"edge-column-wipeout"`); `None` on non-campaign entries and
    /// pre-bump reports.
    pub campaign: Option<String>,
    /// Canonical `SchemeSpec` string of the configuration the workload
    /// ran (e.g. `"hex-dtmb:design=DTMB(2,6):primaries=60"`) — the same
    /// descriptor the serve engine cache and `dmfb search` key on; `None`
    /// on pre-bump reports and workloads without a single-scheme
    /// identity.
    pub spec: Option<String>,
}

impl BenchEntry {
    fn to_json(&self, out: &mut String) {
        out.push('{');
        let _ = write!(out, "\"name\":{}", json_string(&self.name));
        let _ = write!(out, ",\"scheme\":{}", json_string(&self.scheme));
        let _ = write!(out, ",\"design\":{}", json_string(&self.design));
        let _ = write!(out, ",\"primaries\":{}", self.primaries);
        let _ = write!(out, ",\"trials\":{}", self.trials);
        let _ = write!(out, ",\"grid_points\":{}", self.grid_points);
        let _ = write!(out, ",\"wall_ms\":{}", json_number(self.wall_ms));
        let _ = write!(
            out,
            ",\"trials_per_sec\":{}",
            json_number(self.trials_per_sec)
        );
        let _ = write!(
            out,
            ",\"yield_estimate\":{}",
            json_number(self.yield_estimate)
        );
        let _ = match &self.assay {
            Some(a) => write!(out, ",\"assay\":{}", json_string(a)),
            None => write!(out, ",\"assay\":null"),
        };
        let _ = match self.operational_yield {
            Some(y) => write!(out, ",\"operational_yield\":{}", json_number(y)),
            None => write!(out, ",\"operational_yield\":null"),
        };
        let _ = match &self.estimator {
            Some(e) => write!(out, ",\"estimator\":{}", json_string(e)),
            None => write!(out, ",\"estimator\":null"),
        };
        let _ = match &self.defect_model {
            Some(m) => write!(out, ",\"defect_model\":{}", json_string(m)),
            None => write!(out, ",\"defect_model\":null"),
        };
        let _ = match &self.engine {
            Some(e) => write!(out, ",\"engine\":{}", json_string(e)),
            None => write!(out, ",\"engine\":null"),
        };
        let _ = match self.variance {
            Some(v) => write!(out, ",\"variance\":{}", json_number(v)),
            None => write!(out, ",\"variance\":null"),
        };
        let _ = match self.effective_samples {
            Some(v) => write!(out, ",\"effective_samples\":{}", json_number(v)),
            None => write!(out, ",\"effective_samples\":null"),
        };
        let _ = match self.p50_ms {
            Some(v) => write!(out, ",\"p50_ms\":{}", json_number(v)),
            None => write!(out, ",\"p50_ms\":null"),
        };
        let _ = match self.p95_ms {
            Some(v) => write!(out, ",\"p95_ms\":{}", json_number(v)),
            None => write!(out, ",\"p95_ms\":null"),
        };
        let _ = match self.p99_ms {
            Some(v) => write!(out, ",\"p99_ms\":{}", json_number(v)),
            None => write!(out, ",\"p99_ms\":null"),
        };
        let _ = match self.cache_hit_rate {
            Some(v) => write!(out, ",\"cache_hit_rate\":{}", json_number(v)),
            None => write!(out, ",\"cache_hit_rate\":null"),
        };
        let _ = match &self.campaign {
            Some(c) => write!(out, ",\"campaign\":{}", json_string(c)),
            None => write!(out, ",\"campaign\":null"),
        };
        let _ = match &self.spec {
            Some(s) => write!(out, ",\"spec\":{}", json_string(s)),
            None => write!(out, ",\"spec\":null"),
        };
        out.push('}');
    }
}

/// A complete benchmark run, serialisable to a `BENCH_<label>.json` file.
///
/// # Example
///
/// ```
/// use dmfb_bench::{BenchEntry, BenchReport};
///
/// let mut report = BenchReport::new("quick", 4, true);
/// report.push(BenchEntry {
///     name: "dtmb26/incremental".into(),
///     scheme: "hex-dtmb".into(),
///     design: "DTMB(2,6)".into(),
///     primaries: 120,
///     trials: 2_000,
///     grid_points: 1,
///     wall_ms: 12.5,
///     trials_per_sec: 160_000.0,
///     yield_estimate: 0.94,
///     assay: None,
///     operational_yield: None,
///     estimator: Some("naive".into()),
///     defect_model: Some("bernoulli".into()),
///     engine: Some("block".into()),
///     variance: None,
///     effective_samples: None,
///     p50_ms: None,
///     p95_ms: None,
///     p99_ms: None,
///     cache_hit_rate: None,
///     campaign: None,
///     spec: Some("hex-dtmb:design=DTMB(2,6):primaries=120".into()),
/// });
/// let json = report.to_json();
/// assert!(json.contains("\"schema\":\"dmfb-bench/1\""));
/// assert_eq!(report.file_name(), "BENCH_quick.json");
/// // Reports round-trip through the hand-rolled reader.
/// let back = BenchReport::from_json(&json).unwrap();
/// assert_eq!(back, report);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct BenchReport {
    /// Report label; becomes the `BENCH_<label>.json` file-name stem.
    pub label: String,
    /// Milliseconds since the Unix epoch at report creation.
    pub created_unix_ms: u64,
    /// Worker threads the run was configured with (post `0 = auto`
    /// resolution).
    pub threads: usize,
    /// Whether this was a `--quick` run (CI smoke) or the full suite.
    pub quick: bool,
    /// The measurements.
    pub entries: Vec<BenchEntry>,
}

impl BenchReport {
    /// Creates an empty report stamped with the current wall-clock time.
    #[must_use]
    pub fn new(label: impl Into<String>, threads: usize, quick: bool) -> Self {
        let created_unix_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
            .unwrap_or(0);
        BenchReport {
            label: label.into(),
            created_unix_ms,
            threads,
            quick,
            entries: Vec::new(),
        }
    }

    /// Appends a measurement.
    pub fn push(&mut self, entry: BenchEntry) {
        self.entries.push(entry);
    }

    /// Serialises the report as a single JSON object (no trailing
    /// newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + 300 * self.entries.len());
        out.push('{');
        let _ = write!(out, "\"schema\":{}", json_string(BENCH_SCHEMA));
        let _ = write!(out, ",\"label\":{}", json_string(&self.label));
        let _ = write!(out, ",\"created_unix_ms\":{}", self.created_unix_ms);
        let _ = write!(out, ",\"threads\":{}", self.threads);
        let _ = write!(out, ",\"quick\":{}", self.quick);
        out.push_str(",\"entries\":[");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            e.to_json(&mut out);
        }
        out.push_str("]}");
        out
    }

    /// The conventional file name for this report: `BENCH_<label>.json`,
    /// with the label sanitised to `[A-Za-z0-9._-]`.
    #[must_use]
    pub fn file_name(&self) -> String {
        let stem: String = self
            .label
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                    c
                } else {
                    '-'
                }
            })
            .collect();
        format!("BENCH_{stem}.json")
    }

    /// Writes `<dir>/BENCH_<label>.json` (plus a trailing newline) and
    /// returns the path.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from writing the file.
    pub fn write_to_dir(&self, dir: &Path) -> std::io::Result<PathBuf> {
        let path = dir.join(self.file_name());
        let mut json = self.to_json();
        json.push('\n');
        std::fs::write(&path, json)?;
        Ok(path)
    }

    /// Parses a `dmfb-bench/1` report back from its JSON serialisation —
    /// the reader behind `dmfb bench --compare` and the soak gate.
    /// Tolerant where tolerance is safe: unknown keys are skipped and
    /// every post-bump optional column (`estimator`, `defect_model`,
    /// `engine`, `variance`, `effective_samples`, `assay`,
    /// `operational_yield`, `p50_ms`, `p95_ms`, `p99_ms`,
    /// `cache_hit_rate`, `campaign`, `spec`) defaults to `None` when absent, so pre-bump
    /// artifacts stay readable. Strict where the document could be
    /// hostile (soak baselines can arrive over the wire): payloads over
    /// [`crate::json::MAX_DOCUMENT_BYTES`] or nested deeper than
    /// [`crate::json::MAX_DEPTH`] are refused, duplicate
    /// `(name, scheme)` workload labels are an error (they would make
    /// the compare gate's match-up ambiguous), `wall_ms`,
    /// `trials_per_sec`, and the latency percentiles must be finite and
    /// non-negative, `cache_hit_rate` must lie in `[0, 1]`, and integer
    /// fields must actually be non-negative integers in range.
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax error, limit violation,
    /// wrong or missing `schema` identifier, missing required field, or
    /// invalid field value.
    pub fn from_json(json: &str) -> Result<BenchReport, String> {
        let value = JsonValue::parse(json)?;
        let top = value.as_object("top-level report")?;
        let schema = get(top, "schema")?.as_str("schema")?;
        if schema != BENCH_SCHEMA {
            return Err(format!(
                "unsupported schema '{schema}' (expected '{BENCH_SCHEMA}')"
            ));
        }
        let mut entries: Vec<BenchEntry> = Vec::new();
        for (i, e) in get(top, "entries")?.as_array("entries")?.iter().enumerate() {
            let obj = e.as_object(&format!("entries[{i}]"))?;
            let entry = BenchEntry {
                name: get(obj, "name")?.as_str("name")?.to_string(),
                scheme: get(obj, "scheme")?.as_str("scheme")?.to_string(),
                design: get(obj, "design")?.as_str("design")?.to_string(),
                primaries: req_usize(obj, "primaries")?,
                trials: req_u64(obj, "trials")?,
                grid_points: req_usize(obj, "grid_points")?,
                wall_ms: req_nonneg(obj, "wall_ms")?,
                trials_per_sec: req_nonneg(obj, "trials_per_sec")?,
                yield_estimate: opt_f64(obj, "yield_estimate")?.unwrap_or(f64::NAN),
                assay: opt_string(obj, "assay")?,
                operational_yield: opt_f64(obj, "operational_yield")?,
                estimator: opt_string(obj, "estimator")?,
                defect_model: opt_string(obj, "defect_model")?,
                engine: opt_string(obj, "engine")?,
                variance: opt_f64(obj, "variance")?,
                effective_samples: opt_f64(obj, "effective_samples")?,
                p50_ms: opt_nonneg(obj, "p50_ms")?,
                p95_ms: opt_nonneg(obj, "p95_ms")?,
                p99_ms: opt_nonneg(obj, "p99_ms")?,
                cache_hit_rate: opt_unit_fraction(obj, "cache_hit_rate")?,
                campaign: opt_string(obj, "campaign")?,
                spec: opt_string(obj, "spec")?,
            };
            if let Some(prev) = entries
                .iter()
                .find(|p| p.name == entry.name && p.scheme == entry.scheme)
            {
                return Err(format!(
                    "duplicate workload label '{}' for scheme '{}'",
                    prev.name, prev.scheme
                ));
            }
            entries.push(entry);
        }
        Ok(BenchReport {
            label: get(top, "label")?.as_str("label")?.to_string(),
            created_unix_ms: req_u64(top, "created_unix_ms")?,
            threads: req_usize(top, "threads")?,
            quick: get(top, "quick")?.as_bool("quick")?,
            entries,
        })
    }
}

/// Required finite non-negative float field.
fn req_nonneg(obj: &[(String, JsonValue)], key: &str) -> Result<f64, String> {
    let x = get(obj, key)?.as_f64(key)?;
    if x.is_finite() && x >= 0.0 {
        Ok(x)
    } else {
        Err(format!("{key} must be a finite non-negative number"))
    }
}

/// Optional finite non-negative float field (absent/`null` → `None`).
fn opt_nonneg(obj: &[(String, JsonValue)], key: &str) -> Result<Option<f64>, String> {
    match opt_f64(obj, key)? {
        None => Ok(None),
        Some(x) if x.is_finite() && x >= 0.0 => Ok(Some(x)),
        Some(_) => Err(format!("{key} must be a finite non-negative number")),
    }
}

/// Optional fraction field in `[0, 1]` (absent/`null` → `None`).
fn opt_unit_fraction(obj: &[(String, JsonValue)], key: &str) -> Result<Option<f64>, String> {
    match opt_f64(obj, key)? {
        None => Ok(None),
        Some(x) if x.is_finite() && (0.0..=1.0).contains(&x) => Ok(Some(x)),
        Some(_) => Err(format!("{key} must be a fraction in [0, 1]")),
    }
}

/// Required non-negative integer field, range-checked before the cast
/// (JSON numbers are `f64`, exact for integers up to 2⁵³).
fn req_u64(obj: &[(String, JsonValue)], key: &str) -> Result<u64, String> {
    let x = get(obj, key)?.as_f64(key)?;
    const MAX_EXACT: f64 = 9_007_199_254_740_992.0; // 2^53
    if x.is_finite() && x >= 0.0 && x.fract() == 0.0 && x <= MAX_EXACT {
        Ok(x as u64)
    } else {
        Err(format!("{key} must be a non-negative integer"))
    }
}

/// Required non-negative integer field narrowed to `usize`.
fn req_usize(obj: &[(String, JsonValue)], key: &str) -> Result<usize, String> {
    usize::try_from(req_u64(obj, key)?).map_err(|_| format!("{key} out of range"))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal JSON syntax checker (objects, arrays, strings, numbers,
    /// booleans, null) — enough to prove the emitter produces
    /// well-formed documents without trusting the parser under test.
    fn validate_json(s: &str) -> Result<(), String> {
        let b = s.as_bytes();
        let mut i = 0usize;
        fn ws(b: &[u8], i: &mut usize) {
            while *i < b.len() && (b[*i] as char).is_ascii_whitespace() {
                *i += 1;
            }
        }
        fn value(b: &[u8], i: &mut usize) -> Result<(), String> {
            ws(b, i);
            match b.get(*i) {
                Some(b'{') => {
                    *i += 1;
                    ws(b, i);
                    if b.get(*i) == Some(&b'}') {
                        *i += 1;
                        return Ok(());
                    }
                    loop {
                        string(b, i)?;
                        ws(b, i);
                        if b.get(*i) != Some(&b':') {
                            return Err(format!("expected ':' at {i}"));
                        }
                        *i += 1;
                        value(b, i)?;
                        ws(b, i);
                        match b.get(*i) {
                            Some(b',') => *i += 1,
                            Some(b'}') => {
                                *i += 1;
                                return Ok(());
                            }
                            _ => return Err(format!("expected ',' or '}}' at {i}")),
                        }
                        ws(b, i);
                    }
                }
                Some(b'[') => {
                    *i += 1;
                    ws(b, i);
                    if b.get(*i) == Some(&b']') {
                        *i += 1;
                        return Ok(());
                    }
                    loop {
                        value(b, i)?;
                        ws(b, i);
                        match b.get(*i) {
                            Some(b',') => *i += 1,
                            Some(b']') => {
                                *i += 1;
                                return Ok(());
                            }
                            _ => return Err(format!("expected ',' or ']' at {i}")),
                        }
                    }
                }
                Some(b'"') => string(b, i),
                Some(b't') => literal(b, i, "true"),
                Some(b'f') => literal(b, i, "false"),
                Some(b'n') => literal(b, i, "null"),
                Some(_) => number(b, i),
                None => Err("unexpected end".into()),
            }
        }
        fn literal(b: &[u8], i: &mut usize, lit: &str) -> Result<(), String> {
            if b[*i..].starts_with(lit.as_bytes()) {
                *i += lit.len();
                Ok(())
            } else {
                Err(format!("bad literal at {i}"))
            }
        }
        fn string(b: &[u8], i: &mut usize) -> Result<(), String> {
            ws(b, i);
            if b.get(*i) != Some(&b'"') {
                return Err(format!("expected string at {i}"));
            }
            *i += 1;
            while let Some(&c) = b.get(*i) {
                match c {
                    b'"' => {
                        *i += 1;
                        return Ok(());
                    }
                    b'\\' => *i += 2,
                    c if c < 0x20 => return Err(format!("raw control char at {i}")),
                    _ => *i += 1,
                }
            }
            Err("unterminated string".into())
        }
        fn number(b: &[u8], i: &mut usize) -> Result<(), String> {
            let start = *i;
            while let Some(&c) = b.get(*i) {
                if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                    *i += 1;
                } else {
                    break;
                }
            }
            let text = std::str::from_utf8(&b[start..*i]).unwrap();
            text.parse::<f64>()
                .map(|_| ())
                .map_err(|_| format!("bad number '{text}' at {start}"))
        }
        value(b, &mut i)?;
        ws(b, &mut i);
        if i == b.len() {
            Ok(())
        } else {
            Err(format!("trailing garbage at {i}"))
        }
    }

    fn sample_entry() -> BenchEntry {
        BenchEntry {
            name: "dtmb26/batched-sweep".into(),
            scheme: "hex-dtmb".into(),
            design: "DTMB(2,6)".into(),
            primaries: 120,
            trials: 2_000,
            grid_points: 11,
            wall_ms: 42.75,
            trials_per_sec: 514_619.88,
            yield_estimate: 0.9435,
            assay: None,
            operational_yield: None,
            estimator: Some("naive".into()),
            defect_model: Some("bernoulli".into()),
            engine: Some("scalar".into()),
            variance: None,
            effective_samples: None,
            p50_ms: None,
            p95_ms: None,
            p99_ms: None,
            cache_hit_rate: None,
            campaign: None,
            spec: Some("hex-dtmb:design=DTMB(2,6):primaries=120".into()),
        }
    }

    #[test]
    fn report_serialises_to_valid_json() {
        let mut r = BenchReport::new("quick", 8, true);
        r.push(sample_entry());
        r.push(BenchEntry {
            name: "weird \"label\"\n\\".into(),
            yield_estimate: f64::NAN,
            ..sample_entry()
        });
        let json = r.to_json();
        validate_json(&json).expect("emitter must produce valid JSON");
        assert!(json.contains("\"schema\":\"dmfb-bench/1\""));
        assert!(json.contains("\"scheme\":\"hex-dtmb\""));
        assert!(json.contains("\"entries\":[{"));
        assert!(json.contains("\"yield_estimate\":null"), "NaN → null");
        assert!(json.contains("\\\"label\\\""), "escaped quotes");
        assert!(json.contains("\"assay\":null"), "no-assay entries are null");
        assert!(json.contains("\"operational_yield\":null"));
        assert!(json.contains("\"p50_ms\":null"), "latency columns present");
        assert!(json.contains("\"cache_hit_rate\":null"));
    }

    #[test]
    fn assay_entries_fill_the_operational_columns() {
        let mut r = BenchReport::new("assay", 2, true);
        r.push(BenchEntry {
            name: "ivd/operational".into(),
            assay: Some("ivd-panel".into()),
            operational_yield: Some(0.8812),
            ..sample_entry()
        });
        let json = r.to_json();
        validate_json(&json).unwrap();
        assert!(json.contains("\"assay\":\"ivd-panel\""));
        assert!(json.contains("\"operational_yield\":0.8812"));
    }

    #[test]
    fn soak_entries_fill_the_latency_columns() {
        let mut r = BenchReport::new("serve", 4, false);
        r.push(BenchEntry {
            name: "dtmb26/serve-warm".into(),
            p50_ms: Some(0.42),
            p95_ms: Some(0.97),
            p99_ms: Some(1.31),
            cache_hit_rate: Some(0.98),
            ..sample_entry()
        });
        let json = r.to_json();
        validate_json(&json).unwrap();
        assert!(json.contains("\"p50_ms\":0.42"));
        assert!(json.contains("\"p95_ms\":0.97"));
        assert!(json.contains("\"p99_ms\":1.31"));
        assert!(json.contains("\"cache_hit_rate\":0.98"));
        let back = BenchReport::from_json(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn empty_report_is_valid_json() {
        let r = BenchReport::new("empty", 1, false);
        let json = r.to_json();
        validate_json(&json).unwrap();
        assert!(json.ends_with("\"entries\":[]}"));
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate_json("{\"a\":}").is_err());
        assert!(validate_json("{\"a\":1,}").is_err());
        assert!(validate_json("[1 2]").is_err());
        assert!(validate_json("{} trailing").is_err());
        assert!(validate_json("\"unterminated").is_err());
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let mut r = BenchReport::new("roundtrip", 8, true);
        r.push(sample_entry());
        r.push(BenchEntry {
            name: "dtmb26/rare-stratified".into(),
            estimator: Some("stratified".into()),
            defect_model: Some("bernoulli".into()),
            variance: Some(3.1e-9),
            effective_samples: Some(48_000.0),
            assay: Some("ivd-panel".into()),
            operational_yield: Some(0.88),
            p50_ms: Some(0.5),
            p95_ms: Some(1.25),
            p99_ms: Some(2.0),
            cache_hit_rate: Some(0.75),
            campaign: Some("edge-column-wipeout".into()),
            ..sample_entry()
        });
        r.push(BenchEntry {
            name: "weird \"label\"\n\\ ünïcode".into(),
            ..sample_entry()
        });
        let back = BenchReport::from_json(&r.to_json()).expect("round trip");
        assert_eq!(back, r);
    }

    #[test]
    fn reader_accepts_pre_bump_reports() {
        // A PR 2–4-era report: none of the new optional columns present.
        let old = r#"{"schema":"dmfb-bench/1","label":"quick","created_unix_ms":1,
            "threads":4,"quick":true,"entries":[{"name":"dtmb26/incremental",
            "scheme":"hex-dtmb","design":"DTMB(2,6)","primaries":120,"trials":2000,
            "grid_points":1,"wall_ms":12.5,"trials_per_sec":160000.0,
            "yield_estimate":0.9435,"assay":null,"operational_yield":null}]}"#;
        let r = BenchReport::from_json(old).expect("pre-bump reports stay readable");
        assert_eq!(r.entries.len(), 1);
        let e = &r.entries[0];
        assert_eq!(e.estimator, None);
        assert_eq!(e.defect_model, None);
        assert_eq!(e.engine, None);
        assert_eq!(e.variance, None);
        assert_eq!(e.effective_samples, None);
        assert_eq!(e.p50_ms, None);
        assert_eq!(e.p95_ms, None);
        assert_eq!(e.p99_ms, None);
        assert_eq!(e.cache_hit_rate, None);
        assert_eq!(e.campaign, None);
        assert_eq!(e.spec, None);
        assert_eq!(e.trials_per_sec, 160_000.0);
    }

    #[test]
    fn reader_skips_unknown_future_fields() {
        let future = r#"{"schema":"dmfb-bench/1","label":"x","created_unix_ms":0,
            "threads":1,"quick":false,"future_top":{"a":[1,2]},"entries":[]}"#;
        let r = BenchReport::from_json(future).unwrap();
        assert!(r.entries.is_empty());
    }

    #[test]
    fn reader_rejects_garbage_and_wrong_schema() {
        assert!(BenchReport::from_json("not json").is_err());
        assert!(BenchReport::from_json("{\"schema\":\"dmfb-bench/9\"}").is_err());
        assert!(BenchReport::from_json("{\"schema\":\"dmfb-bench/1\"}").is_err());
        assert!(BenchReport::from_json("{} garbage").is_err());
    }

    /// Serialises a report whose single entry has one field overridden
    /// with raw JSON — the hostile-input helper for the hardening tests.
    fn doctored(field: &str, raw: &str) -> String {
        let mut r = BenchReport::new("hostile", 1, true);
        r.push(sample_entry());
        let json = r.to_json();
        let needle = format!("\"{field}\":");
        let start = json.rfind(&needle).unwrap() + needle.len();
        let end = start
            + json[start..]
                .find([',', '}'])
                .expect("field value is not a container");
        format!("{}{raw}{}", &json[..start], &json[end..])
    }

    #[test]
    fn reader_rejects_nonfinite_and_negative_throughput() {
        for (field, raw) in [
            ("trials_per_sec", "null"),
            ("trials_per_sec", "-1.0"),
            ("wall_ms", "-0.5"),
            ("p50_ms", "-1.0"),
            ("cache_hit_rate", "1.5"),
            ("cache_hit_rate", "-0.1"),
        ] {
            let doc = doctored(field, raw);
            let err = BenchReport::from_json(&doc).unwrap_err();
            assert!(err.contains(field), "{field}={raw}: {err}");
        }
        // NaN cannot be written literally; a non-number type exercises
        // the same rejection path.
        let doc = doctored("trials_per_sec", "\"fast\"");
        assert!(BenchReport::from_json(&doc).is_err());
    }

    #[test]
    fn reader_rejects_bad_integers() {
        for (field, raw) in [
            ("trials", "-5"),
            ("trials", "2.5"),
            ("trials", "1e300"),
            ("primaries", "-1"),
            ("grid_points", "0.5"),
        ] {
            let doc = doctored(field, raw);
            let err = BenchReport::from_json(&doc).unwrap_err();
            assert!(err.contains(field), "{field}={raw}: {err}");
        }
    }

    #[test]
    fn reader_rejects_duplicate_workload_labels() {
        let mut r = BenchReport::new("dup", 1, true);
        r.push(sample_entry());
        r.push(sample_entry());
        let err = BenchReport::from_json(&r.to_json()).unwrap_err();
        assert!(err.contains("duplicate workload label"), "{err}");
        // The same name under a different scheme is a legitimate pairing
        // (the compare key is (name, scheme)).
        let mut ok = BenchReport::new("dup", 1, true);
        ok.push(sample_entry());
        ok.push(BenchEntry {
            scheme: "square-dtmb".into(),
            ..sample_entry()
        });
        BenchReport::from_json(&ok.to_json()).unwrap();
    }

    #[test]
    fn reader_rejects_oversized_and_overdeep_payloads() {
        let bomb = format!(
            "{{\"schema\":\"dmfb-bench/1\",\"pad\":\"{}\"}}",
            "x".repeat(crate::json::MAX_DOCUMENT_BYTES)
        );
        let err = BenchReport::from_json(&bomb).unwrap_err();
        assert!(err.contains("too large"), "{err}");
        let deep = format!(
            "{{\"schema\":\"dmfb-bench/1\",\"pad\":{}{}}}",
            "[".repeat(256),
            "]".repeat(256)
        );
        let err = BenchReport::from_json(&deep).unwrap_err();
        assert!(err.contains("too deep"), "{err}");
    }

    #[test]
    fn file_name_is_sanitised() {
        let r = BenchReport::new("quick run/7", 1, true);
        assert_eq!(r.file_name(), "BENCH_quick-run-7.json");
    }

    #[test]
    fn write_round_trip() {
        let dir = std::env::temp_dir().join(format!(
            "dmfb-bench-test-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let mut r = BenchReport::new("roundtrip", 2, true);
        r.push(sample_entry());
        let path = r.write_to_dir(&dir).unwrap();
        assert!(path
            .file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .starts_with("BENCH_"));
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.ends_with('\n'));
        validate_json(text.trim_end()).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
