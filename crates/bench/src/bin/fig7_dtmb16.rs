//! Regenerates **Figure 7**: analytical yield of DTMB(1,6) versus a biochip
//! without redundancy, for several array sizes, with a Monte-Carlo
//! cross-check column.

use dmfb_bench::{TextTable, FIG7_9_ARRAY_SIZES, FIG7_9_SURVIVAL_GRID, FIGURE_SEED, PAPER_TRIALS};
use dmfb_core::prelude::*;

fn main() {
    println!("Figure 7: Yield of DTMB(1,6) (analytical) vs no redundancy\n");
    for &n in &FIG7_9_ARRAY_SIZES {
        println!("n = {n} primary cells");
        let chip = Biochip::dtmb(DtmbKind::Dtmb16, n);
        let mut table = TextTable::new(vec![
            "p".into(),
            "no-redundancy p^n".into(),
            "DTMB(1,6) analytic".into(),
            "DTMB(1,6) Monte-Carlo".into(),
        ]);
        for (i, &p) in FIG7_9_SURVIVAL_GRID.iter().enumerate() {
            let mc = chip.yield_report(p, PAPER_TRIALS, FIGURE_SEED.wrapping_add(i as u64));
            table.row(vec![
                format!("{p:.2}"),
                format!("{:.4}", no_redundancy_yield(p, n)),
                format!("{:.4}", dtmb16_yield(p, n)),
                format!("{:.4}", mc.reconfigured_yield.point()),
            ]);
        }
        print!("{}", table.render());
        println!();
    }
    println!(
        "Shape check vs paper: DTMB(1,6) >> p^n for every p < 1; yield falls \
         with n; MC tracks the cluster model (MC runs slightly above it \
         because boundary spares serve fewer primaries)."
    );
}
