//! Regenerates **Figure 10**: effective yield `EY = Y/(1+RR)` for all four
//! redundancy levels at `n = 100`, including the crossover points that
//! drive the paper's design guidance (high redundancy for low `p`, low
//! redundancy for high `p`).

use dmfb_bench::{TextTable, FIG10_SURVIVAL_GRID, FIGURE_SEED, PAPER_TRIALS};
use dmfb_core::prelude::*;

const N: usize = 100;

fn main() {
    println!("Figure 10: Effective yield for different redundancy levels (n = {N})\n");
    let estimators: Vec<(DtmbKind, MonteCarloYield)> = DtmbKind::TABLE1
        .iter()
        .map(|&k| {
            (
                k,
                MonteCarloYield::new(k.with_primary_count(N), ReconfigPolicy::AllPrimaries),
            )
        })
        .collect();

    let mut header = vec!["p".into()];
    header.extend(estimators.iter().map(|(k, _)| k.to_string()));
    let mut table = TextTable::new(header);

    let mut curves: Vec<YieldCurve> = Vec::new();
    let mut all_points: Vec<Vec<YieldPoint>> = vec![Vec::new(); estimators.len()];
    for (i, &p) in FIG10_SURVIVAL_GRID.iter().enumerate() {
        let mut row = vec![format!("{p:.2}")];
        for (d, (_, est)) in estimators.iter().enumerate() {
            let seed = FIGURE_SEED
                .wrapping_add(i as u64)
                .wrapping_mul(37)
                .wrapping_add(d as u64);
            let y = est.estimate_survival(p, PAPER_TRIALS, seed);
            let n = est.array().primary_count() as f64;
            let total = est.array().total_cells() as f64;
            let ey = y.point() * n / total;
            row.push(format!("{ey:.4}"));
            all_points[d].push(YieldPoint {
                x: p,
                y: ey,
                ci95: y.wilson95(),
                trials: y.trials(),
            });
        }
        table.row(row);
    }
    for ((kind, _), points) in estimators.iter().zip(all_points) {
        curves.push(YieldCurve::new(kind.to_string(), points));
    }
    print!("{}", table.render());

    println!("\nCrossover points (where the better design switches):");
    for i in 0..curves.len() {
        for j in i + 1..curves.len() {
            let xs = curves[i].crossover_with(&curves[j]);
            if xs.is_empty() {
                continue;
            }
            let formatted: Vec<String> = xs.iter().map(|x| format!("{x:.3}")).collect();
            println!(
                "  {} vs {}: p = {}",
                curves[i].label,
                curves[j].label,
                formatted.join(", ")
            );
        }
    }
    println!(
        "\nShape check vs paper: DTMB(4,4) has the best EY at small p; \
         DTMB(1,6)/DTMB(2,6) win at high p; the curves cross in between."
    );
}
