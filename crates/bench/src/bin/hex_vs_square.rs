//! Extension study: hexagonal vs square electrodes for interstitial
//! redundancy.
//!
//! The paper motivates hexagonal electrodes qualitatively ("close-packed
//! design ... expected to increase the effectiveness of droplet
//! transportation"). This study quantifies the redundancy side of that
//! choice: the area cost of a given spare-coverage guarantee on each
//! lattice, and Monte-Carlo yield at matched guarantees.

use dmfb_bench::TextTable;
use dmfb_core::prelude::*;
use dmfb_core::reconfig::square_dtmb::SquarePattern;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn main() {
    println!("Hex vs square electrodes: area cost of interstitial coverage\n");
    let mut table = TextTable::new(vec![
        "guarantee".into(),
        "hexagonal design (RR)".into(),
        "square design (RR)".into(),
        "hex area saving".into(),
    ]);
    let rows: [(&str, DtmbKind, SquarePattern); 3] = [
        (
            "s = 1 spare/primary",
            DtmbKind::Dtmb16,
            SquarePattern::PerfectCode,
        ),
        (
            "s = 2 spares/primary",
            DtmbKind::Dtmb26A,
            SquarePattern::Stripes,
        ),
        (
            "s = 4 spares/primary",
            DtmbKind::Dtmb44,
            SquarePattern::Checkerboard,
        ),
    ];
    for (label, hex, square) in rows {
        let hex_rr = hex.redundancy_ratio_limit();
        let sq_rr = square.redundancy_ratio_limit();
        table.row(vec![
            label.into(),
            format!("{hex} ({hex_rr:.4})"),
            format!("{square} ({sq_rr:.4})"),
            format!("{:.0}%", 100.0 * (1.0 - (1.0 + hex_rr) / (1.0 + sq_rr))),
        ]);
    }
    print!("{}", table.render());

    println!("\nThe naive square port of DTMB(2,6)'s sublattice (both coordinates even):");
    let region = dmfb_core::grid::SquareRegion::rect(12, 12);
    let (min, max) = SquarePattern::Quarter.audit(&region);
    println!(
        "  interior spare-degree range ({min}, {max}) — odd/odd cells have NO adjacent \
         spare, so a single fault there is fatal. Microfluidic locality \
         admits no fix without raising RR."
    );

    // Monte-Carlo at matched s = 1 guarantee: exact-m fault yield.
    println!("\nYield with m random faults at the s = 1 guarantee (2000 trials):");
    let hex_chip = Biochip::dtmb(DtmbKind::Dtmb16, 80);
    let sq_region = dmfb_core::grid::SquareRegion::rect(10, 10);
    let sq_cells: Vec<_> = sq_region.iter().collect();
    let mut table = TextTable::new(vec![
        "m".into(),
        format!("hex DTMB(1,6), n={}", hex_chip.array().primary_count()),
        "square perfect-code, n=80".into(),
    ]);
    for m in [1usize, 2, 4, 8, 12] {
        let hex_y = hex_chip.exact_fault_yield(m, 2_000, 5 + m as u64).point();
        // Square MC: sample m faulty cells uniformly, check matching.
        let mut successes = 0u32;
        let trials = 2_000u32;
        for t in 0..trials {
            let mut rng = StdRng::seed_from_u64(97 + t as u64 * 131 + m as u64);
            let mut cells = sq_cells.clone();
            cells.shuffle(&mut rng);
            if SquarePattern::PerfectCode.is_reconfigurable(&sq_region, &cells[..m]) {
                successes += 1;
            }
        }
        table.row(vec![
            m.to_string(),
            format!("{hex_y:.4}"),
            format!("{:.4}", f64::from(successes) / f64::from(trials)),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nReading: at equal coverage guarantees the hexagonal lattice needs \
         ~10-33% less array area, which is the quantitative case for the \
         paper's hexagonal-electrode biochips."
    );
}
