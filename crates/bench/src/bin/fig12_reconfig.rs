//! Regenerates **Figure 12**: the DTMB(2,6)-based multiplexed-diagnostics
//! chip (252 primary + 91 spare cells, 108 assay cells) and an example of
//! successful local reconfiguration in the presence of 10 faulty cells.

use dmfb_core::grid::render;
use dmfb_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let chip = ivd_dtmb26_chip();
    println!(
        "Figure 12(a): DTMB(2,6) design — {} primary cells ({} used in assays) + {} spare cells\n",
        chip.array.primary_count(),
        chip.assay_cells.len(),
        chip.array.spare_count()
    );

    // Fault-free layout.
    let layout = render::hex(chip.array.region(), |c| {
        if chip.array.is_spare(c) {
            'o'
        } else if chip.assay_cells.contains(c) {
            '#'
        } else {
            '.'
        }
    });
    println!("{layout}");
    println!("legend: # assay primary, . unused primary, o spare\n");

    // Figure 12(b): 10 random faults + local reconfiguration.
    let mut rng = StdRng::seed_from_u64(2005);
    let mut defects = ExactCount::new(10).inject(chip.array.region(), &mut rng);
    defects.close_shorts();
    let policy = used_cells_policy(&chip);
    match attempt_reconfiguration(&chip.array, &defects, &policy) {
        Ok(plan) => {
            println!(
                "Figure 12(b): {} faults injected, {} assay-cell replacement(s):\n",
                defects.fault_count(),
                plan.len()
            );
            let art = render::hex(chip.array.region(), |c| {
                let faulty = defects.is_faulty(c);
                if plan.spares_used().any(|s| s == c) {
                    'R'
                } else if faulty && chip.array.is_spare(c) {
                    'x'
                } else if faulty {
                    'X'
                } else if chip.array.is_spare(c) {
                    'o'
                } else if chip.assay_cells.contains(c) {
                    '#'
                } else {
                    '.'
                }
            });
            println!("{art}");
            println!("legend: X faulty primary, x faulty spare, R spare used in reconfiguration");
            for (faulty, spare) in plan.iter() {
                println!("  assay cell {faulty} -> spare {spare}");
            }
        }
        Err(e) => println!("reconfiguration failed: {e}"),
    }
}
