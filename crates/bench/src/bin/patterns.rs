//! Renders the DTMB spare patterns of **Figures 3–6** and audits their
//! `(s, p)` degree guarantees.

use dmfb_core::grid::render;
use dmfb_core::prelude::*;

fn main() {
    for kind in DtmbKind::ALL {
        let region = Region::parallelogram(12, 8);
        let array = kind.instantiate(&region);
        let audit = array.audit().expect("audit");
        let (s, p) = kind.spec();
        println!(
            "{kind}  —  s={s}, p={p}, RR→{:.4}   (audit: {} interior primaries, \
             spare-degree {:?}, primary-degree {:?}, matches spec: {})",
            kind.redundancy_ratio_limit(),
            audit.interior_primaries,
            audit.spares_per_interior_primary,
            audit.primaries_per_interior_spare,
            audit.matches(s, p)
        );
        let art = render::hex(&region, |c| if array.is_spare(c) { 'o' } else { '.' });
        println!("{art}");
    }
    println!("legend: o spare cell, . primary cell (rows sheared like the hex lattice)");
}
