//! Regenerates **Figure 13**: yield of the DTMB(2,6)-based multiplexed
//! diagnostics chip in the presence of `m` random cell failures, plus the
//! Section 7 headline numbers.
//!
//! Paper checkpoints:
//! * the non-redundant 108-cell chip yields only `0.99^108 ≈ 0.3378`;
//! * "For up to 35 faults, the redundant design can provide a yield of at
//!   least 0.90."

use dmfb_bench::{TextTable, FIGURE_SEED, PAPER_TRIALS};
use dmfb_core::prelude::*;

fn main() {
    println!("Figure 13: case-study yield vs number of injected faults m\n");
    println!(
        "Section 7 baseline: non-redundant 108-cell chip at p = 0.99 -> Y = {:.4} (paper: 0.3378)\n",
        no_redundancy_yield(0.99, 108)
    );

    let chip = ivd_dtmb26_chip();
    let used = Biochip::from_array(chip.array.clone()).with_policy(used_cells_policy(&chip));
    let all = Biochip::from_array(chip.array.clone());
    // Placement ablation: same array, assay cells spread to minimise spare
    // contention (the paper's exact placement is unpublished; block and
    // spread bracket it).
    let (spread_array, spread_cells) = dmfb_core::bioassay::layout::ivd_dtmb26_spread_assay_cells();
    let spread = Biochip::from_array(spread_array)
        .with_policy(ReconfigPolicy::UsedCells(spread_cells.iter().collect()));

    let mut table = TextTable::new(vec![
        "m".into(),
        "yield (block placement)".into(),
        "95% CI".into(),
        "yield (spread placement)".into(),
        "yield (all primaries)".into(),
    ]);
    let ms: Vec<usize> = (0..=60).step_by(5).collect();
    let mut used_points = Vec::new();
    let mut spread_points = Vec::new();
    for (i, &m) in ms.iter().enumerate() {
        let seed = FIGURE_SEED.wrapping_add(1000 + i as u64);
        let u = used.exact_fault_yield(m, PAPER_TRIALS, seed);
        let s = spread.exact_fault_yield(m, PAPER_TRIALS, seed ^ 0x1234);
        let a = all.exact_fault_yield(m, PAPER_TRIALS, seed ^ 0xABCD);
        let (lo, hi) = u.wilson95();
        table.row(vec![
            m.to_string(),
            format!("{:.4}", u.point()),
            format!("[{lo:.4}, {hi:.4}]"),
            format!("{:.4}", s.point()),
            format!("{:.4}", a.point()),
        ]);
        used_points.push(YieldPoint {
            x: m as f64,
            y: u.point(),
            ci95: (lo, hi),
            trials: u.trials(),
        });
        spread_points.push(YieldPoint {
            x: m as f64,
            y: s.point(),
            ci95: s.wilson95(),
            trials: s.trials(),
        });
    }
    print!("{}", table.render());

    let curve = YieldCurve::new("block", used_points);
    let spread_curve = YieldCurve::new("spread", spread_points);
    match curve.last_x_at_least(0.90) {
        Some(x) => println!("\nBlock placement: yield >= 0.90 up to m = {x:.0} (paper: up to 35)."),
        None => println!("\nBlock placement never reaches 0.90 — check the model!"),
    }
    if let Some(x) = spread_curve.last_x_at_least(0.90) {
        println!("Spread placement: yield >= 0.90 up to m = {x:.0}.");
    }
    println!(
        "Shape check vs paper: monotone non-increasing in m; the used-cells \
         policy (faults on unused primaries are harmless) is the one \
         consistent with the paper's >= 0.90 @ 35 claim; block vs spread \
         placement brackets the paper's unpublished assay-cell mapping."
    );
}
