//! Regenerates **Table 1**: redundancy ratios of the defect-tolerant
//! architectures, both the large-array limit the paper reports and the
//! exact finite-array values our constructor produces.

use dmfb_bench::TextTable;
use dmfb_core::prelude::*;

fn main() {
    println!("Table 1: Redundancy ratios for the defect-tolerant architectures\n");
    let mut table = TextTable::new(vec![
        "design".into(),
        "paper RR".into(),
        "limit s/p".into(),
        "finite RR (n=600)".into(),
        "spares".into(),
    ]);
    let paper = [0.1667, 0.3333, 0.5000, 1.0000];
    for (kind, expected) in DtmbKind::TABLE1.iter().zip(paper) {
        let array = kind.with_primary_count(600);
        table.row(vec![
            kind.to_string(),
            format!("{expected:.4}"),
            format!("{:.4}", kind.redundancy_ratio_limit()),
            format!("{:.4}", array.redundancy_ratio()),
            array.spare_count().to_string(),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nFinite arrays run slightly above the limit because the spare \
         pattern is closed around the boundary (cf. the 252+91 case-study chip)."
    );
}
