//! Regenerates the **Figure 2** comparison: boundary spare-row "shifted
//! replacement" versus interstitial local reconfiguration.
//!
//! The paper's point: with a single boundary spare row, a fault far from
//! the spare row drags fault-free modules through reconfiguration, and two
//! faulty rows kill the chip; interstitial redundancy replaces each faulty
//! cell with one adjacent spare.

use dmfb_bench::TextTable;
use dmfb_core::prelude::*;

fn main() {
    let array = SpareRowArray::figure2_example();
    println!(
        "Spare-row baseline: {} modules x {} columns, 1 spare row\n",
        3,
        array.width()
    );

    let mut table = TextTable::new(vec![
        "scenario".into(),
        "outcome".into(),
        "modules reconfigured".into(),
        "cells remapped".into(),
    ]);

    // Fig 2(b): fault in Module 1 (adjacent to the spare row).
    let plan = array
        .shifted_replacement(&[SquareCoord::new(3, 4)])
        .expect("one faulty row fits one spare row");
    table.row(vec![
        "fault in Module 1 (Fig 2b)".into(),
        "tolerated".into(),
        plan.modules_reconfigured.join(" + "),
        plan.cells_remapped.to_string(),
    ]);

    // Fig 2(c): fault in Module 3 (farthest from the spare row).
    let plan = array
        .shifted_replacement(&[SquareCoord::new(0, 1)])
        .expect("one faulty row fits one spare row");
    table.row(vec![
        "fault in Module 3 (Fig 2c)".into(),
        "tolerated".into(),
        plan.modules_reconfigured.join(" + "),
        plan.cells_remapped.to_string(),
    ]);

    // Two faulty rows: the baseline dies.
    let failure = array
        .shifted_replacement(&[SquareCoord::new(0, 0), SquareCoord::new(5, 3)])
        .expect_err("two faulty rows exceed one spare row");
    table.row(vec![
        "faults in Modules 2 and 3".into(),
        "FAILS".into(),
        format!(
            "{} faulty rows > {} spare row",
            failure.faulty_rows.len(),
            failure.spare_rows
        ),
        "-".into(),
    ]);
    print!("{}", table.render());

    // Interstitial comparison: same fault count on a DTMB(2,6) array of
    // comparable size (48 primaries).
    println!("\nInterstitial DTMB(2,6) on a comparable 48-primary array:");
    let dtmb = DtmbKind::Dtmb26A.with_primary_count(48);
    let mut table = TextTable::new(vec![
        "scenario".into(),
        "outcome".into(),
        "cells remapped".into(),
    ]);
    for (label, k) in [("1 fault", 1usize), ("2 faults", 2), ("3 faults", 3)] {
        let faulty: Vec<HexCoord> = dtmb.primaries().step_by(7).take(k).collect();
        match attempt_reconfiguration(
            &dtmb,
            &DefectMap::from_cells(faulty),
            &ReconfigPolicy::AllPrimaries,
        ) {
            Ok(plan) => table.row(vec![
                label.into(),
                "tolerated (local)".into(),
                plan.len().to_string(),
            ]),
            Err(e) => table.row(vec![label.into(), format!("FAILS: {e}"), "-".into()]),
        }
    }
    print!("{}", table.render());

    // Yield at equal redundancy overhead (RR = 1/6): 48 primaries + one
    // 8-cell spare row versus DTMB(1,6) with 48 primaries.
    println!("\nYield at equal redundancy (RR = 1/6), analytical:");
    let mut table = TextTable::new(vec![
        "p".into(),
        "spare-row baseline".into(),
        "DTMB(1,6) interstitial".into(),
    ]);
    for p in [0.90, 0.95, 0.99] {
        table.row(vec![
            format!("{p:.2}"),
            format!(
                "{:.4}",
                dmfb_core::yield_model::analytical::spare_row_yield(p, 8, 6, 1)
            ),
            format!("{:.4}", dtmb16_yield(p, 48)),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nShape check vs paper: the spare-row scheme remaps whole modules \
         (16-48 cells here) and dies on a second faulty row; local \
         reconfiguration remaps exactly one cell per fault and yields more \
         at the same redundancy ratio."
    );
}
