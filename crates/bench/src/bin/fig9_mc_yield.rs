//! Regenerates **Figure 9**: Monte-Carlo yield of DTMB(2,6), DTMB(3,6) and
//! DTMB(4,4) over the survival probability, for several array sizes,
//! 10 000 trials per point.

use dmfb_bench::{TextTable, FIG7_9_ARRAY_SIZES, FIG7_9_SURVIVAL_GRID, FIGURE_SEED, PAPER_TRIALS};
use dmfb_core::prelude::*;

const DESIGNS: [DtmbKind; 3] = [DtmbKind::Dtmb26A, DtmbKind::Dtmb36, DtmbKind::Dtmb44];

fn main() {
    println!("Figure 9: Monte-Carlo yield of DTMB(2,6), DTMB(3,6), DTMB(4,4)");
    println!("({PAPER_TRIALS} trials per point)\n");
    for &n in &FIG7_9_ARRAY_SIZES {
        println!("n = {n} primary cells");
        let mut header = vec!["p".into(), "p^n".into()];
        header.extend(DESIGNS.iter().map(|k| k.to_string()));
        let mut table = TextTable::new(header);

        let estimators: Vec<MonteCarloYield> = DESIGNS
            .iter()
            .map(|k| MonteCarloYield::new(k.with_primary_count(n), ReconfigPolicy::AllPrimaries))
            .collect();
        for (i, &p) in FIG7_9_SURVIVAL_GRID.iter().enumerate() {
            let mut row = vec![
                format!("{p:.2}"),
                format!("{:.4}", no_redundancy_yield(p, n)),
            ];
            for (d, est) in estimators.iter().enumerate() {
                let seed = FIGURE_SEED
                    .wrapping_add(i as u64)
                    .wrapping_mul(31)
                    .wrapping_add(d as u64);
                row.push(format!(
                    "{:.4}",
                    est.estimate_survival(p, PAPER_TRIALS, seed).point()
                ));
            }
            table.row(row);
        }
        print!("{}", table.render());
        println!();
    }
    println!(
        "Shape check vs paper: at every (n, p), yield orders \
         DTMB(4,4) >= DTMB(3,6) >= DTMB(2,6) >> p^n, and all curves rise \
         towards 1 as p -> 1."
    );
}
