//! Ablation study: the paper's i.i.d. failure assumption versus clustered
//! spot defects at matched expected failure counts.
//!
//! The paper scopes its independence assumption to "random and small spot
//! defects". This study measures what happens when that assumption breaks:
//! clusters concentrate failures, exhausting all spares in a
//! neighbourhood at once.

use dmfb_bench::{TextTable, FIGURE_SEED};
use dmfb_core::prelude::*;

fn main() {
    println!("Ablation: i.i.d. vs clustered spot defects, DTMB(2,6), n = 120\n");
    let est = MonteCarloYield::new(
        DtmbKind::Dtmb26A.with_primary_count(120),
        ReconfigPolicy::AllPrimaries,
    );
    let total_cells = est.array().total_cells() as f64;

    let mut table = TextTable::new(vec![
        "E[failures]".into(),
        "i.i.d. yield".into(),
        "clustered yield (r=1)".into(),
        "clustered yield (r=2)".into(),
    ]);
    for (i, &mean_clusters) in [0.5f64, 1.0, 2.0, 3.0, 4.0].iter().enumerate() {
        let seed = FIGURE_SEED.wrapping_add(7_000 + i as u64);
        let tight = ClusteredSpot::new(mean_clusters, 1, 0.6);
        let expected = tight.expected_failures();
        // Match the i.i.d. model to the tight cluster's expectation.
        let q = expected / total_cells;
        let iid = est.estimate_survival(1.0 - q, 10_000, seed).point();
        let y_tight = est.estimate_with(&tight, 10_000, seed ^ 0x1).point();
        // A wider, shallower cluster with the same expectation.
        let peak2 = expected / (mean_clusters * footprint_weight(2));
        let wide = ClusteredSpot::new(mean_clusters, 2, peak2.min(1.0));
        let y_wide = est.estimate_with(&wide, 10_000, seed ^ 0x2).point();
        table.row(vec![
            format!("{expected:.1}"),
            format!("{iid:.4}"),
            format!("{y_tight:.4}"),
            format!("{y_wide:.4}"),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nReading: at equal expected failure counts, clustering reduces \
         yield — neighbouring faults contend for the same spares — so the \
         paper's independence assumption is the optimistic end of the range."
    );
}

/// Sum of the linear decay over a cluster footprint of the given radius
/// (matches `ClusteredSpot::expected_failures` with peak 1.0).
fn footprint_weight(radius: u32) -> f64 {
    let mut w = 0.0;
    for k in 0..=radius {
        let ring = if k == 0 { 1.0 } else { 6.0 * f64::from(k) };
        w += ring * (1.0 - f64::from(k) / (f64::from(radius) + 1.0));
    }
    w
}
