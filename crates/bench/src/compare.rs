//! Perf-trajectory comparison: diff two `dmfb-bench/1` reports and gate
//! on throughput (and, where recorded, latency-percentile) regressions.
//!
//! This is the logic behind `dmfb bench --compare <baseline.json>` and the
//! CI `perf-gate` job: the repo commits baseline `BENCH_*.json` files
//! under `benchmarks/`, every CI run re-measures the same workloads, and
//! this module decides whether any workload's throughput regressed by more
//! than the threshold (25% by default).
//!
//! **Hardware normalisation.** Raw trials-per-second numbers are not
//! comparable across machines (a laptop baseline vs a CI runner differs by
//! a constant factor), so the gate normalises: it computes the *median*
//! current/baseline throughput ratio across all matched workloads — the
//! machine-speed factor — and flags only workloads that fall more than the
//! threshold below that factor. A uniform slowdown of every workload
//! (different hardware) passes; a single workload losing ground against
//! the rest of the suite (a real hot-path regression) fails. The
//! un-normalised ratios are still reported for eyeballing.
//!
//! **Latency gating (PR 7).** Workloads carrying the soak latency
//! columns (`p50_ms`/`p95_ms`/`p99_ms`) on *both* sides are additionally
//! gated on latency, with the same suite-median normalisation but in the
//! opposite direction: latency regresses *upward*, so a workload fails
//! when any percentile's normalised current/baseline ratio exceeds
//! `1 + threshold`. A baseline entry with a latency profile whose
//! current counterpart lost it fails the gate outright, for the same
//! reason vanished workloads do.
//!
//! # Example
//!
//! ```
//! use dmfb_bench::{compare, BenchEntry, BenchReport};
//!
//! let entry = |name: &str, tps: f64| BenchEntry {
//!     name: name.into(),
//!     scheme: "hex-dtmb".into(),
//!     design: "DTMB(2,6)".into(),
//!     primaries: 120,
//!     trials: 2_000,
//!     grid_points: 1,
//!     wall_ms: 1.0,
//!     trials_per_sec: tps,
//!     yield_estimate: 0.9,
//!     assay: None,
//!     operational_yield: None,
//!     estimator: None,
//!     defect_model: None,
//!     engine: None,
//!     variance: None,
//!     effective_samples: None,
//!     p50_ms: None,
//!     p95_ms: None,
//!     p99_ms: None,
//!     cache_hit_rate: None,
//!     campaign: None,
//!     spec: None,
//! };
//! let mut baseline = BenchReport::new("base", 1, true);
//! baseline.push(entry("a", 1_000.0));
//! baseline.push(entry("b", 1_000.0));
//! let mut current = BenchReport::new("now", 1, true);
//! current.push(entry("a", 500.0)); // half speed vs...
//! current.push(entry("b", 510.0)); // ...the same factor suite-wide
//! let outcome = compare(&baseline, &current, 0.25);
//! // A uniform slowdown is hardware, not a regression.
//! assert!(!outcome.has_regression());
//! ```

use crate::report::{BenchEntry, BenchReport};
use crate::TextTable;

/// Default regression threshold: a workload fails the gate when its
/// normalised throughput drops by more than this fraction.
pub const DEFAULT_REGRESSION_THRESHOLD: f64 = 0.25;

/// One matched workload's throughput delta.
#[derive(Clone, Debug, PartialEq)]
pub struct EntryDelta {
    /// Workload name (`BenchEntry::name`).
    pub name: String,
    /// Scheme family, part of the match key.
    pub scheme: String,
    /// Baseline trials-per-second.
    pub baseline_tps: f64,
    /// Current trials-per-second.
    pub current_tps: f64,
    /// Raw `current / baseline` throughput ratio.
    pub ratio: f64,
    /// `ratio / machine_factor`: 1.0 means "kept pace with the suite",
    /// below `1 − threshold` means regression.
    pub normalized_ratio: f64,
    /// Whether this workload fails the throughput gate.
    pub regressed: bool,
    /// Latency-percentile delta, for workloads that carry the full
    /// `p50/p95/p99` soak profile on both sides; `None` otherwise.
    pub latency: Option<LatencyDelta>,
}

/// A matched workload's latency-percentile delta (`p50`, `p95`, `p99`
/// in that order throughout).
#[derive(Clone, Debug, PartialEq)]
pub struct LatencyDelta {
    /// Baseline percentile latencies in milliseconds.
    pub baseline_ms: [f64; 3],
    /// Current percentile latencies in milliseconds.
    pub current_ms: [f64; 3],
    /// Raw `current / baseline` ratio per percentile (above 1.0 = got
    /// slower).
    pub ratios: [f64; 3],
    /// Worst per-percentile `ratio / latency_machine_factor` — the
    /// number the gate compares against `1 + threshold`.
    pub worst_normalized: f64,
    /// Whether this workload fails the latency gate.
    pub regressed: bool,
}

/// The outcome of comparing a current report against a baseline.
#[derive(Clone, Debug, PartialEq)]
pub struct CompareOutcome {
    /// Per-workload deltas for every `(name, scheme)` pair present in
    /// both reports (with finite, positive throughput on both sides).
    pub deltas: Vec<EntryDelta>,
    /// Median current/baseline ratio over the matched workloads — the
    /// machine-speed factor the gate normalises by. `1.0` when nothing
    /// matched.
    pub machine_factor: f64,
    /// Median current/baseline latency ratio pooled over every matched
    /// percentile — the factor the latency gate normalises by. `1.0`
    /// when no workload carries a latency profile.
    pub latency_machine_factor: f64,
    /// Regression threshold the gate applied.
    pub threshold: f64,
    /// Baseline workloads missing from the current run. The gate treats
    /// these as failures: a silently vanished workload would otherwise
    /// un-gate itself.
    pub missing_in_current: Vec<String>,
    /// Baseline workloads whose latency profile the current run dropped
    /// (matched on throughput but `p50/p95/p99` vanished). Failures, for
    /// the same reason as `missing_in_current`.
    pub missing_latency_in_current: Vec<String>,
    /// Current workloads with no baseline (new benchmarks; informational).
    pub new_in_current: Vec<String>,
}

impl CompareOutcome {
    /// Whether any workload regressed (throughput or latency) or any
    /// baseline workload — or its latency profile — vanished.
    #[must_use]
    pub fn has_regression(&self) -> bool {
        !self.missing_in_current.is_empty()
            || !self.missing_latency_in_current.is_empty()
            || self
                .deltas
                .iter()
                .any(|d| d.regressed || d.latency.as_ref().is_some_and(|l| l.regressed))
    }

    /// The workloads that failed the gate on either axis.
    #[must_use]
    pub fn regressions(&self) -> Vec<&EntryDelta> {
        self.deltas
            .iter()
            .filter(|d| d.regressed || d.latency.as_ref().is_some_and(|l| l.regressed))
            .collect()
    }

    /// Renders the comparison as an aligned text table plus a verdict
    /// line.
    #[must_use]
    pub fn render(&self) -> String {
        let mut table = TextTable::new(vec![
            "workload".into(),
            "scheme".into(),
            "baseline t/s".into(),
            "current t/s".into(),
            "ratio".into(),
            "vs-suite".into(),
            "verdict".into(),
        ]);
        for d in &self.deltas {
            table.row(vec![
                d.name.clone(),
                d.scheme.clone(),
                format!("{:.0}", d.baseline_tps),
                format!("{:.0}", d.current_tps),
                format!("{:.2}x", d.ratio),
                format!("{:.2}x", d.normalized_ratio),
                if d.regressed { "REGRESSED" } else { "ok" }.into(),
            ]);
        }
        let mut out = table.render();
        if self.deltas.iter().any(|d| d.latency.is_some()) {
            let mut lat = TextTable::new(vec![
                "workload".into(),
                "p50 ms".into(),
                "p95 ms".into(),
                "p99 ms".into(),
                "worst-vs-suite".into(),
                "verdict".into(),
            ]);
            for d in &self.deltas {
                let Some(l) = &d.latency else { continue };
                lat.row(vec![
                    d.name.clone(),
                    format!("{:.3}→{:.3}", l.baseline_ms[0], l.current_ms[0]),
                    format!("{:.3}→{:.3}", l.baseline_ms[1], l.current_ms[1]),
                    format!("{:.3}→{:.3}", l.baseline_ms[2], l.current_ms[2]),
                    format!("{:.2}x", l.worst_normalized),
                    if l.regressed { "REGRESSED" } else { "ok" }.into(),
                ]);
            }
            out.push_str(&lat.render());
        }
        for name in &self.missing_in_current {
            out.push_str(&format!(
                "MISSING: baseline workload '{name}' not in current run\n"
            ));
        }
        for name in &self.missing_latency_in_current {
            out.push_str(&format!(
                "MISSING: baseline latency profile for '{name}' not in current run\n"
            ));
        }
        for name in &self.new_in_current {
            out.push_str(&format!("new workload (no baseline): '{name}'\n"));
        }
        out.push_str(&format!(
            "machine factor {:.2}x (latency {:.2}x), threshold {:.0}%: {}\n",
            self.machine_factor,
            self.latency_machine_factor,
            self.threshold * 100.0,
            if self.has_regression() {
                "PERF GATE FAILED"
            } else {
                "perf gate passed"
            }
        ));
        out
    }
}

/// Match key for a workload across reports.
fn key(e: &BenchEntry) -> (String, String) {
    (e.name.clone(), e.scheme.clone())
}

/// The `[p50, p95, p99]` triple of an entry, when all three are present
/// and positive (zero would make ratios meaningless).
fn latency_triple(e: &BenchEntry) -> Option<[f64; 3]> {
    let t = [e.p50_ms?, e.p95_ms?, e.p99_ms?];
    t.iter().all(|x| x.is_finite() && *x > 0.0).then_some(t)
}

/// Median of an unsorted sample; `1.0` when empty.
fn median(mut xs: Vec<f64>) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    if xs.len() % 2 == 1 {
        xs[xs.len() / 2]
    } else {
        (xs[xs.len() / 2 - 1] + xs[xs.len() / 2]) / 2.0
    }
}

/// Diffs `current` against `baseline` and applies the normalised
/// regression gate at `threshold` (e.g. `0.25` for 25%) — downward on
/// throughput, upward on the latency percentiles of workloads that carry
/// them. Workloads whose throughput is non-finite or non-positive on
/// either side are excluded from both the deltas and the machine factor.
#[must_use]
pub fn compare(baseline: &BenchReport, current: &BenchReport, threshold: f64) -> CompareOutcome {
    assert!(
        (0.0..1.0).contains(&threshold),
        "threshold must be in [0, 1), got {threshold}"
    );
    let mut deltas = Vec::new();
    let mut missing = Vec::new();
    let mut missing_latency = Vec::new();
    for b in &baseline.entries {
        let Some(c) = current.entries.iter().find(|c| key(c) == key(b)) else {
            missing.push(format!("{}/{}", b.scheme, b.name));
            continue;
        };
        let usable = |x: f64| x.is_finite() && x > 0.0;
        if !usable(b.trials_per_sec) || !usable(c.trials_per_sec) {
            continue;
        }
        let latency = match (latency_triple(b), latency_triple(c)) {
            (Some(base), Some(cur)) => Some(LatencyDelta {
                baseline_ms: base,
                current_ms: cur,
                ratios: [cur[0] / base[0], cur[1] / base[1], cur[2] / base[2]],
                worst_normalized: 0.0, // filled below
                regressed: false,      // filled below
            }),
            (Some(_), None) => {
                missing_latency.push(format!("{}/{}", b.scheme, b.name));
                None
            }
            _ => None,
        };
        deltas.push(EntryDelta {
            name: b.name.clone(),
            scheme: b.scheme.clone(),
            baseline_tps: b.trials_per_sec,
            current_tps: c.trials_per_sec,
            ratio: c.trials_per_sec / b.trials_per_sec,
            normalized_ratio: 0.0, // filled below
            regressed: false,      // filled below
            latency,
        });
    }
    let machine_factor = median(deltas.iter().map(|d| d.ratio).collect());
    let latency_machine_factor = median(
        deltas
            .iter()
            .filter_map(|d| d.latency.as_ref())
            .flat_map(|l| l.ratios)
            .collect(),
    );
    for d in &mut deltas {
        d.normalized_ratio = d.ratio / machine_factor;
        d.regressed = d.normalized_ratio < 1.0 - threshold;
        if let Some(l) = &mut d.latency {
            l.worst_normalized = l
                .ratios
                .iter()
                .map(|r| r / latency_machine_factor)
                .fold(f64::NEG_INFINITY, f64::max);
            l.regressed = l.worst_normalized > 1.0 + threshold;
        }
    }
    let new_in_current = current
        .entries
        .iter()
        .filter(|c| !baseline.entries.iter().any(|b| key(b) == key(c)))
        .map(|c| format!("{}/{}", c.scheme, c.name))
        .collect();
    CompareOutcome {
        deltas,
        machine_factor,
        latency_machine_factor,
        threshold,
        missing_in_current: missing,
        missing_latency_in_current: missing_latency,
        new_in_current,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(name: &str, scheme: &str, tps: f64) -> BenchEntry {
        BenchEntry {
            name: name.into(),
            scheme: scheme.into(),
            design: "D".into(),
            primaries: 100,
            trials: 1_000,
            grid_points: 1,
            wall_ms: 1.0,
            trials_per_sec: tps,
            yield_estimate: 0.9,
            assay: None,
            operational_yield: None,
            estimator: None,
            defect_model: None,
            engine: None,
            variance: None,
            effective_samples: None,
            p50_ms: None,
            p95_ms: None,
            p99_ms: None,
            cache_hit_rate: None,
            campaign: None,
            spec: None,
        }
    }

    fn lat_entry(name: &str, tps: f64, p50: f64, p95: f64, p99: f64) -> BenchEntry {
        BenchEntry {
            p50_ms: Some(p50),
            p95_ms: Some(p95),
            p99_ms: Some(p99),
            cache_hit_rate: Some(0.9),
            ..entry(name, "serve", tps)
        }
    }

    fn report(entries: Vec<BenchEntry>) -> BenchReport {
        let mut r = BenchReport::new("t", 1, true);
        for e in entries {
            r.push(e);
        }
        r
    }

    #[test]
    fn identical_reports_pass() {
        let b = report(vec![entry("a", "s", 100.0), entry("b", "s", 200.0)]);
        let out = compare(&b, &b.clone(), 0.25);
        assert!(!out.has_regression());
        assert_eq!(out.machine_factor, 1.0);
        assert!(out.regressions().is_empty());
        assert!(out.render().contains("perf gate passed"));
    }

    #[test]
    fn single_workload_regression_is_flagged() {
        let base = report(vec![
            entry("a", "s", 1_000.0),
            entry("b", "s", 1_000.0),
            entry("c", "s", 1_000.0),
        ]);
        let cur = report(vec![
            entry("a", "s", 1_000.0),
            entry("b", "s", 1_000.0),
            entry("c", "s", 500.0), // lost half vs a steady suite
        ]);
        let out = compare(&base, &cur, 0.25);
        assert!(out.has_regression());
        let regs = out.regressions();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].name, "c");
        assert!(out.render().contains("REGRESSED"));
    }

    #[test]
    fn uniform_hardware_slowdown_passes() {
        let base = report(vec![entry("a", "s", 1_000.0), entry("b", "s", 2_000.0)]);
        let cur = report(vec![entry("a", "s", 250.0), entry("b", "s", 500.0)]);
        let out = compare(&base, &cur, 0.25);
        assert!((out.machine_factor - 0.25).abs() < 1e-12);
        assert!(!out.has_regression(), "4x slower hardware is not a bug");
    }

    #[test]
    fn missing_baseline_workload_fails_the_gate() {
        let base = report(vec![entry("a", "s", 100.0), entry("b", "s", 100.0)]);
        let cur = report(vec![entry("a", "s", 100.0)]);
        let out = compare(&base, &cur, 0.25);
        assert!(out.has_regression());
        assert_eq!(out.missing_in_current, vec!["s/b".to_string()]);
    }

    #[test]
    fn new_workloads_are_informational() {
        let base = report(vec![entry("a", "s", 100.0)]);
        let cur = report(vec![entry("a", "s", 100.0), entry("z", "s", 50.0)]);
        let out = compare(&base, &cur, 0.25);
        assert!(!out.has_regression());
        assert_eq!(out.new_in_current, vec!["s/z".to_string()]);
    }

    #[test]
    fn schemes_disambiguate_equal_names() {
        let base = report(vec![entry("a", "s1", 100.0), entry("a", "s2", 100.0)]);
        let cur = report(vec![entry("a", "s1", 100.0), entry("a", "s2", 40.0)]);
        let out = compare(&base, &cur, 0.25);
        let regs = out.regressions();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].scheme, "s2");
    }

    #[test]
    fn non_finite_throughputs_are_skipped() {
        let base = report(vec![entry("a", "s", f64::INFINITY), entry("b", "s", 10.0)]);
        let cur = report(vec![entry("a", "s", 1.0), entry("b", "s", 10.0)]);
        let out = compare(&base, &cur, 0.25);
        assert_eq!(out.deltas.len(), 1);
        assert!(!out.has_regression());
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn rejects_silly_thresholds() {
        let r = report(vec![]);
        let _ = compare(&r, &r.clone(), 1.5);
    }

    #[test]
    fn latency_regression_is_flagged_even_when_throughput_holds() {
        let base = report(vec![
            lat_entry("warm", 1_000.0, 0.5, 1.0, 1.5),
            lat_entry("cold", 1_000.0, 5.0, 8.0, 10.0),
            lat_entry("mixed", 1_000.0, 1.0, 2.0, 3.0),
        ]);
        let cur = report(vec![
            lat_entry("warm", 1_000.0, 0.5, 1.0, 6.0), // p99 blew up 4x
            lat_entry("cold", 1_000.0, 5.0, 8.0, 10.0),
            lat_entry("mixed", 1_000.0, 1.0, 2.0, 3.0),
        ]);
        let out = compare(&base, &cur, 0.25);
        assert!(out.has_regression());
        let regs = out.regressions();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].name, "warm");
        assert!(!regs[0].regressed, "throughput held; latency regressed");
        assert!(regs[0].latency.as_ref().unwrap().regressed);
        let rendered = out.render();
        assert!(rendered.contains("p99 ms"));
        assert!(rendered.contains("REGRESSED"));
        assert!(rendered.contains("PERF GATE FAILED"));
    }

    #[test]
    fn uniform_latency_slowdown_is_hardware_not_regression() {
        let base = report(vec![
            lat_entry("warm", 1_000.0, 0.5, 1.0, 1.5),
            lat_entry("cold", 1_000.0, 5.0, 8.0, 10.0),
        ]);
        // Everything exactly 3x slower: slower machine, steady shape.
        let cur = report(vec![
            lat_entry("warm", 1_000.0, 1.5, 3.0, 4.5),
            lat_entry("cold", 1_000.0, 15.0, 24.0, 30.0),
        ]);
        let out = compare(&base, &cur, 0.25);
        assert!((out.latency_machine_factor - 3.0).abs() < 1e-12);
        assert!(!out.has_regression());
    }

    #[test]
    fn uniform_latency_improvement_passes_and_is_reported() {
        let base = report(vec![lat_entry("warm", 1_000.0, 1.0, 2.0, 4.0)]);
        let cur = report(vec![lat_entry("warm", 1_000.0, 0.5, 1.0, 2.0)]);
        let out = compare(&base, &cur, 0.25);
        assert!(!out.has_regression());
        let l = out.deltas[0].latency.as_ref().unwrap();
        assert_eq!(l.ratios, [0.5, 0.5, 0.5]);
    }

    #[test]
    fn dropped_latency_profile_fails_the_gate() {
        let base = report(vec![lat_entry("warm", 1_000.0, 0.5, 1.0, 1.5)]);
        let cur = report(vec![entry("warm", "serve", 1_000.0)]);
        let out = compare(&base, &cur, 0.25);
        assert!(out.has_regression());
        assert_eq!(
            out.missing_latency_in_current,
            vec!["serve/warm".to_string()]
        );
        assert!(out.render().contains("latency profile"));
    }

    #[test]
    fn latency_free_baselines_keep_the_old_behaviour() {
        // A pre-PR 7 baseline against a current run that *gained*
        // latency columns: informational, never a failure.
        let base = report(vec![entry("warm", "serve", 1_000.0)]);
        let cur = report(vec![lat_entry("warm", 1_000.0, 0.5, 1.0, 1.5)]);
        let out = compare(&base, &cur, 0.25);
        assert!(!out.has_regression());
        assert_eq!(out.latency_machine_factor, 1.0);
        assert!(out.deltas[0].latency.is_none());
    }
}
