//! A minimal hand-rolled JSON reader/writer shared by the report layer
//! and the serving stack.
//!
//! The environment vendors no JSON library, so this module carries just
//! enough of RFC 8259 to round-trip the fixed `dmfb-bench/1` document
//! shape and the `dmfb serve` request/reply bodies. Because the serving
//! daemon parses **untrusted network input**, the parser is bounded on
//! both axes a recursive-descent reader can be attacked on:
//!
//! - **Payload size** — [`JsonValue::parse`] rejects documents larger
//!   than [`MAX_DOCUMENT_BYTES`] before touching a single byte, so a
//!   client cannot make the server buffer-and-parse arbitrarily large
//!   bodies.
//! - **Nesting depth** — containers deeper than [`MAX_DEPTH`] are
//!   rejected with a clean error instead of overflowing the parse
//!   recursion stack (`[[[[…` is a classic stack-exhaustion DoS).
//!
//! Both limits are far above anything the schemas legitimately produce;
//! trusted callers with unusual needs can pick their own bounds via
//! [`JsonValue::parse_with_limits`].

use std::fmt::Write as _;

/// Largest document [`JsonValue::parse`] accepts, in bytes (1 MiB). A
/// full-suite bench report is ~10 KiB; serve requests are under 1 KiB.
pub const MAX_DOCUMENT_BYTES: usize = 1 << 20;

/// Deepest container nesting [`JsonValue::parse`] accepts. The bench
/// schema needs 3 levels; serve requests need 2.
pub const MAX_DEPTH: usize = 64;

/// A parsed JSON value tree.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`; exact for the magnitudes the
    /// schemas carry).
    Number(f64),
    /// A string with escapes decoded.
    String(String),
    /// An array of values.
    Array(Vec<JsonValue>),
    /// An object as an ordered key/value list (duplicate keys keep the
    /// first occurrence via [`get`]).
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses a complete JSON document under the default
    /// [`MAX_DOCUMENT_BYTES`] / [`MAX_DEPTH`] limits.
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax error, or a limit
    /// violation (oversized document, over-deep nesting).
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        JsonValue::parse_with_limits(text, MAX_DOCUMENT_BYTES, MAX_DEPTH)
    }

    /// Parses with caller-chosen size and depth bounds.
    ///
    /// # Errors
    ///
    /// As [`JsonValue::parse`], against the supplied limits.
    pub fn parse_with_limits(
        text: &str,
        max_bytes: usize,
        max_depth: usize,
    ) -> Result<JsonValue, String> {
        if text.len() > max_bytes {
            return Err(format!(
                "document too large: {} bytes (limit {max_bytes})",
                text.len()
            ));
        }
        let b = text.as_bytes();
        let mut i = 0usize;
        let v = JsonValue::value(b, &mut i, max_depth)?;
        skip_ws(b, &mut i);
        if i == b.len() {
            Ok(v)
        } else {
            Err(format!("trailing garbage at byte {i}"))
        }
    }

    /// Borrows the object fields, or errors with `what` for context.
    ///
    /// # Errors
    ///
    /// When the value is not an object.
    pub fn as_object(&self, what: &str) -> Result<&[(String, JsonValue)], String> {
        match self {
            JsonValue::Object(o) => Ok(o),
            _ => Err(format!("{what} must be an object")),
        }
    }

    /// Borrows the array items, or errors with `what` for context.
    ///
    /// # Errors
    ///
    /// When the value is not an array.
    pub fn as_array(&self, what: &str) -> Result<&[JsonValue], String> {
        match self {
            JsonValue::Array(a) => Ok(a),
            _ => Err(format!("{what} must be an array")),
        }
    }

    /// Borrows the string contents, or errors with `what` for context.
    ///
    /// # Errors
    ///
    /// When the value is not a string.
    pub fn as_str(&self, what: &str) -> Result<&str, String> {
        match self {
            JsonValue::String(s) => Ok(s),
            _ => Err(format!("{what} must be a string")),
        }
    }

    /// Returns the number, or errors with `what` for context.
    ///
    /// # Errors
    ///
    /// When the value is not a number.
    pub fn as_f64(&self, what: &str) -> Result<f64, String> {
        match self {
            JsonValue::Number(x) => Ok(*x),
            _ => Err(format!("{what} must be a number")),
        }
    }

    /// Returns the boolean, or errors with `what` for context.
    ///
    /// # Errors
    ///
    /// When the value is not a boolean.
    pub fn as_bool(&self, what: &str) -> Result<bool, String> {
        match self {
            JsonValue::Bool(x) => Ok(*x),
            _ => Err(format!("{what} must be a boolean")),
        }
    }

    fn value(b: &[u8], i: &mut usize, depth: usize) -> Result<JsonValue, String> {
        skip_ws(b, i);
        match b.get(*i) {
            Some(b'{') => {
                if depth == 0 {
                    return Err(format!("nesting too deep at byte {i}"));
                }
                *i += 1;
                let mut fields = Vec::new();
                skip_ws(b, i);
                if b.get(*i) == Some(&b'}') {
                    *i += 1;
                    return Ok(JsonValue::Object(fields));
                }
                loop {
                    skip_ws(b, i);
                    let key = parse_string(b, i)?;
                    skip_ws(b, i);
                    if b.get(*i) != Some(&b':') {
                        return Err(format!("expected ':' at byte {i}"));
                    }
                    *i += 1;
                    fields.push((key, JsonValue::value(b, i, depth - 1)?));
                    skip_ws(b, i);
                    match b.get(*i) {
                        Some(b',') => *i += 1,
                        Some(b'}') => {
                            *i += 1;
                            return Ok(JsonValue::Object(fields));
                        }
                        _ => return Err(format!("expected ',' or '}}' at byte {i}")),
                    }
                }
            }
            Some(b'[') => {
                if depth == 0 {
                    return Err(format!("nesting too deep at byte {i}"));
                }
                *i += 1;
                let mut items = Vec::new();
                skip_ws(b, i);
                if b.get(*i) == Some(&b']') {
                    *i += 1;
                    return Ok(JsonValue::Array(items));
                }
                loop {
                    items.push(JsonValue::value(b, i, depth - 1)?);
                    skip_ws(b, i);
                    match b.get(*i) {
                        Some(b',') => *i += 1,
                        Some(b']') => {
                            *i += 1;
                            return Ok(JsonValue::Array(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at byte {i}")),
                    }
                }
            }
            Some(b'"') => Ok(JsonValue::String(parse_string(b, i)?)),
            Some(b't') => parse_literal(b, i, "true").map(|()| JsonValue::Bool(true)),
            Some(b'f') => parse_literal(b, i, "false").map(|()| JsonValue::Bool(false)),
            Some(b'n') => parse_literal(b, i, "null").map(|()| JsonValue::Null),
            Some(_) => {
                let start = *i;
                while let Some(&c) = b.get(*i) {
                    if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                        *i += 1;
                    } else {
                        break;
                    }
                }
                let text = std::str::from_utf8(&b[start..*i])
                    .map_err(|_| format!("invalid bytes at {start}"))?;
                text.parse::<f64>()
                    .map(JsonValue::Number)
                    .map_err(|_| format!("bad number '{text}' at byte {start}"))
            }
            None => Err("unexpected end of input".into()),
        }
    }
}

/// Looks up a required key on a parsed JSON object.
///
/// # Errors
///
/// When the key is absent.
pub fn get<'a>(obj: &'a [(String, JsonValue)], key: &str) -> Result<&'a JsonValue, String> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing field '{key}'"))
}

/// Optional string column: absent or `null` → `None`.
///
/// # Errors
///
/// When the key is present but not a string.
pub fn opt_string(obj: &[(String, JsonValue)], key: &str) -> Result<Option<String>, String> {
    match obj.iter().find(|(k, _)| k == key) {
        None => Ok(None),
        Some((_, JsonValue::Null)) => Ok(None),
        Some((_, v)) => Ok(Some(v.as_str(key)?.to_string())),
    }
}

/// Optional numeric column: absent or `null` → `None`.
///
/// # Errors
///
/// When the key is present but not a number.
pub fn opt_f64(obj: &[(String, JsonValue)], key: &str) -> Result<Option<f64>, String> {
    match obj.iter().find(|(k, _)| k == key) {
        None => Ok(None),
        Some((_, JsonValue::Null)) => Ok(None),
        Some((_, v)) => Ok(Some(v.as_f64(key)?)),
    }
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && (b[*i] as char).is_ascii_whitespace() {
        *i += 1;
    }
}

fn parse_literal(b: &[u8], i: &mut usize, lit: &str) -> Result<(), String> {
    if b[*i..].starts_with(lit.as_bytes()) {
        *i += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {i}"))
    }
}

fn parse_string(b: &[u8], i: &mut usize) -> Result<String, String> {
    if b.get(*i) != Some(&b'"') {
        return Err(format!("expected string at byte {i}"));
    }
    *i += 1;
    let mut out = String::new();
    loop {
        match b.get(*i) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *i += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *i += 1;
                match b.get(*i) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*i + 1..*i + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {i}"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {i}"))?;
                        // Surrogates degrade to the replacement character —
                        // the schemas never emit them.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *i += 4;
                    }
                    _ => return Err(format!("bad escape at byte {i}")),
                }
                *i += 1;
            }
            Some(&c) if c < 0x20 => return Err(format!("raw control char at byte {i}")),
            Some(_) => {
                // Copy the full UTF-8 code point.
                let start = *i;
                *i += 1;
                while *i < b.len() && (b[*i] & 0b1100_0000) == 0b1000_0000 {
                    *i += 1;
                }
                out.push_str(
                    std::str::from_utf8(&b[start..*i])
                        .map_err(|_| format!("invalid UTF-8 at byte {start}"))?,
                );
            }
        }
    }
}

/// Quotes and escapes `s` as a JSON string literal.
#[must_use]
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a float as a JSON number; non-finite values (which JSON cannot
/// represent) degrade to `null`.
#[must_use]
pub fn json_number(x: f64) -> String {
    if x.is_finite() {
        // `{}` prints integral floats without a fractional part; that is
        // still a valid JSON number, so pass it through unchanged.
        format!("{x}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_usual_shapes() {
        let v = JsonValue::parse(r#"{"a":[1,2.5,-3e2],"b":"x","c":true,"d":null}"#).unwrap();
        let obj = v.as_object("top").unwrap();
        let arr = get(obj, "a").unwrap().as_array("a").unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[1].as_f64("a[1]").unwrap(), 2.5);
        assert_eq!(get(obj, "b").unwrap().as_str("b").unwrap(), "x");
        assert!(get(obj, "c").unwrap().as_bool("c").unwrap());
        assert_eq!(opt_f64(obj, "d").unwrap(), None);
        assert_eq!(opt_string(obj, "missing").unwrap(), None);
    }

    #[test]
    fn rejects_oversized_documents() {
        let big = format!("\"{}\"", "x".repeat(32));
        let err = JsonValue::parse_with_limits(&big, 16, MAX_DEPTH).unwrap_err();
        assert!(err.contains("too large"), "{err}");
        // The same document passes under the default limit.
        JsonValue::parse(&big).unwrap();
    }

    #[test]
    fn rejects_overdeep_nesting() {
        let deep = "[".repeat(MAX_DEPTH + 1) + &"]".repeat(MAX_DEPTH + 1);
        let err = JsonValue::parse(&deep).unwrap_err();
        assert!(err.contains("nesting too deep"), "{err}");
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        JsonValue::parse(&ok).unwrap();
        let mixed = "{\"k\":".repeat(MAX_DEPTH + 1) + "1" + &"}".repeat(MAX_DEPTH + 1);
        assert!(JsonValue::parse(&mixed).unwrap_err().contains("too deep"));
    }

    #[test]
    fn rejects_syntax_errors() {
        for bad in [
            "{\"a\":}",
            "{\"a\":1,}",
            "[1 2]",
            "{} trailing",
            "\"unterminated",
            "{'single':1}",
            "nul",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "weird \"label\"\n\\ ünïcode\ttab";
        let doc = format!("[{}]", json_string(original));
        let v = JsonValue::parse(&doc).unwrap();
        assert_eq!(v.as_array("doc").unwrap()[0].as_str("s").unwrap(), original);
    }

    #[test]
    fn numbers_round_trip_and_nonfinite_degrade() {
        assert_eq!(json_number(42.75), "42.75");
        assert_eq!(json_number(-1e-9), "-0.000000001");
        assert_eq!(json_number(f64::NAN), "null");
        assert_eq!(json_number(f64::INFINITY), "null");
    }
}
