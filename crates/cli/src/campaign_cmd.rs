//! `dmfb campaign` — scripted adversarial fault campaigns through the
//! three-tier pipeline.
//!
//! The command compiles a scenario (built-in via `--name`, or a DSL file
//! via `--script`) against the DTMB(2,6) IVD case-study chip and prints
//! the NA-0090 replay marker stream followed by the per-step verdict
//! table: deterministic reconfigured/operational verdicts on the targeted
//! damage alone, plus Monte-Carlo survival of all three tiers under the
//! damage merged with Bernoulli background defects. The entire stdout is
//! a pure function of `(scenario, assay, p, trials, seed)` — thread count
//! never changes a byte, which is what CI's `campaign-replay` gate
//! checks.

use dmfb_core::prelude::*;

/// Validated parameters of one `dmfb campaign` invocation.
pub struct CampaignConfig {
    /// Assay panel of the operational tier.
    pub panel: AssayPanel,
    /// Background cell-survival probability.
    pub p: f64,
    /// Monte-Carlo trials per step.
    pub trials: u32,
    /// Master seed (drives both damage trajectory and background draws).
    pub seed: u64,
    /// Worker threads (`0` = one per available core).
    pub threads: usize,
    /// Dry-run: print markers only, inject nothing.
    pub rehearse: bool,
}

/// Renders the `--list` output: one line per built-in campaign.
#[must_use]
pub fn list() -> String {
    let mut out = String::new();
    for c in NAMED_CAMPAIGNS {
        out.push_str(&format!("{:<22} {}\n", c.name, c.summary));
    }
    out
}

/// Runs the campaign and renders the full report (header, marker stream,
/// and — unless rehearsing — the per-step verdict table).
#[must_use]
pub fn run(scenario: &Scenario, config: &CampaignConfig) -> String {
    let runner = CampaignRunner::ivd(config.panel).with_threads(config.threads);
    let mut out = format!(
        "campaign {} | chip DTMB(2,6) IVD case study | assay {}\n",
        scenario.name(),
        config.panel.label()
    );
    if config.rehearse {
        out.push_str(&format!(
            "seed {} | rehearsal (no damage injected) | steps {}\n\n",
            config.seed,
            scenario.steps().len()
        ));
        out.push_str(&runner.rehearse(scenario, config.seed).markers());
    } else {
        out.push_str(&format!(
            "seed {} | p {} | trials {} | steps {}\n\n",
            config.seed,
            config.p,
            config.trials,
            scenario.steps().len()
        ));
        let report = runner.run(scenario, config.p, config.trials, config.seed);
        out.push_str(&report.markers());
        out.push('\n');
        out.push_str(&report.table());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_names_every_built_in_campaign() {
        let listing = list();
        for c in NAMED_CAMPAIGNS {
            assert!(listing.contains(c.name));
            assert!(listing.contains(c.summary));
        }
    }

    #[test]
    fn rehearsal_output_is_marker_only_and_deterministic() {
        let scenario = named_campaign("edge-column-wipeout").unwrap();
        let config = CampaignConfig {
            panel: AssayPanel::StandardIvd,
            p: 0.99,
            trials: 8,
            seed: 7,
            threads: 1,
            rehearse: true,
        };
        let a = run(&scenario, &config);
        let b = run(&scenario, &config);
        assert_eq!(a, b);
        assert!(a.contains("rehearsal"));
        assert!(a.contains("marker step=0 k=7"));
        assert!(!a.contains("hostile"));
        assert!(!a.contains("step,action"));
    }

    #[test]
    fn live_output_is_thread_invariant() {
        let scenario = named_campaign("parametric-drift").unwrap();
        let mk = |threads| CampaignConfig {
            panel: AssayPanel::StandardIvd,
            p: 0.99,
            trials: 16,
            seed: 3,
            threads,
            rehearse: false,
        };
        let single = run(&scenario, &mk(1));
        let auto = run(&scenario, &mk(0));
        assert_eq!(single, auto);
        assert!(single.contains("step,action,faults,reconf,op,raw,reconfigured,operational"));
        assert!(single.contains("hostile"));
    }
}
