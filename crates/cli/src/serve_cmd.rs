//! `dmfb soak` — the service-latency counterpart of `bench_cmd`.
//!
//! The heavy lifting (phases, percentiles, contract probes) lives in
//! [`dmfb_serve::soak`]; this module owns the CLI-side glue that
//! `cmd_soak` shares with `cmd_bench`: loading a committed
//! `dmfb-bench/1` baseline and pushing the soak report through the same
//! compare machinery, so the latency-percentile gate lists every failed
//! workload — regressed throughput, regressed percentiles, vanished
//! workloads, dropped latency profiles — instead of stopping at the
//! first.

use dmfb_serve::{run_soak, SoakConfig, SoakReport};

/// Runs the soak and, when a baseline path is given, diffs the report
/// against it. Returns the soak output, the rendered comparison (when
/// one ran) and the combined failure list: soak contract violations
/// first, then every workload the gate flagged.
pub fn run_with_gate(
    config: &SoakConfig,
    baseline_path: Option<&str>,
) -> Result<(SoakReport, Option<String>, Vec<String>), String> {
    let soak = run_soak(config)?;
    let mut failures = soak.failures.clone();
    let mut rendered = None;
    if let Some(path) = baseline_path {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read baseline '{path}': {e}"))?;
        let baseline = dmfb_bench::BenchReport::from_json(text.trim_end())
            .map_err(|e| format!("cannot parse baseline '{path}': {e}"))?;
        let outcome = dmfb_bench::compare(
            &baseline,
            &soak.report,
            dmfb_bench::DEFAULT_REGRESSION_THRESHOLD,
        );
        failures.extend(
            outcome
                .regressions()
                .iter()
                .map(|d| format!("{}/{}", d.scheme, d.name)),
        );
        failures.extend(outcome.missing_in_current.iter().cloned());
        failures.extend(
            outcome
                .missing_latency_in_current
                .iter()
                .map(|name| format!("{name} (latency profile dropped)")),
        );
        rendered = Some(outcome.render());
    }
    Ok((soak, rendered, failures))
}
