//! `dmfb bench` — the performance-reporting suite behind the CI
//! `bench-smoke` job.
//!
//! Runs the Monte-Carlo yield workload through each engine generation —
//! the per-trial graph-rebuild path, the incremental bitset evaluator,
//! and the batched whole-curve sweep — on a fixed set of DTMB designs,
//! and reports wall time plus effective trial throughput. `--json` writes
//! a `BENCH_<label>.json` file in the [`dmfb_bench`] schema so CI can
//! archive the numbers and later PRs can compare them.

use dmfb_bench::{BenchEntry, BenchReport, TextTable, FIG7_9_SURVIVAL_GRID};
use dmfb_core::prelude::*;
use std::time::Instant;

/// Survival probability used for the single-point engine comparisons.
const BENCH_P: f64 = 0.95;

/// Master seed for all bench workloads (throughput, not statistics, is
/// the point — but determinism keeps yield anchors comparable across
/// runs).
const BENCH_SEED: u64 = 0xBE7C_2005;

/// Configuration for one `dmfb bench` invocation.
pub struct BenchConfig {
    /// Quick mode: small arrays and trial counts for the CI smoke job.
    pub quick: bool,
    /// Worker threads (`0` = one per available core).
    pub threads: usize,
    /// Emit a `BENCH_*.json` report instead of only the text table.
    pub json: bool,
    /// Directory receiving the JSON report.
    pub out_dir: String,
    /// Report label (file-name stem suffix).
    pub label: String,
}

/// One benchmarked workload: `(design, primaries, trials)`.
fn cases(quick: bool) -> Vec<(DtmbKind, usize, u32)> {
    if quick {
        vec![
            (DtmbKind::Dtmb26A, 120, 2_000),
            (DtmbKind::Dtmb44, 120, 2_000),
        ]
    } else {
        vec![
            (DtmbKind::Dtmb16, 240, 10_000),
            (DtmbKind::Dtmb26A, 240, 10_000),
            (DtmbKind::Dtmb36, 240, 10_000),
            (DtmbKind::Dtmb44, 240, 10_000),
        ]
    }
}

/// Short CLI-style design tag for entry names (`dtmb26`, `dtmb44`, …).
fn tag(kind: DtmbKind) -> &'static str {
    match kind {
        DtmbKind::Dtmb16 => "dtmb16",
        DtmbKind::Dtmb26A => "dtmb26",
        DtmbKind::Dtmb26B => "dtmb26b",
        DtmbKind::Dtmb36 => "dtmb36",
        DtmbKind::Dtmb44 => "dtmb44",
    }
}

fn entry(
    name: String,
    kind: DtmbKind,
    primaries: usize,
    trials: u32,
    grid_points: usize,
    wall_ms: f64,
    yield_estimate: f64,
) -> BenchEntry {
    let point_trials = u64::from(trials) * grid_points as u64;
    BenchEntry {
        name,
        design: kind.to_string(),
        primaries,
        trials: u64::from(trials),
        grid_points,
        wall_ms,
        trials_per_sec: if wall_ms > 0.0 {
            point_trials as f64 / (wall_ms / 1_000.0)
        } else {
            f64::INFINITY
        },
        yield_estimate,
    }
}

/// Runs the suite and returns the filled report.
#[must_use]
pub fn run(config: &BenchConfig) -> BenchReport {
    let threads = if config.threads == 0 {
        auto_threads()
    } else {
        config.threads
    };
    let mut report = BenchReport::new(config.label.clone(), threads, config.quick);
    for (kind, primaries, trials) in cases(config.quick) {
        let mc = MonteCarloYield::new(
            kind.with_primary_count(primaries),
            ReconfigPolicy::AllPrimaries,
        )
        .with_threads(threads);

        let t0 = Instant::now();
        let rebuild = mc.estimate_survival(BENCH_P, trials, BENCH_SEED);
        report.push(entry(
            format!("{}/rebuild", tag(kind)),
            kind,
            primaries,
            trials,
            1,
            t0.elapsed().as_secs_f64() * 1_000.0,
            rebuild.point(),
        ));

        let t0 = Instant::now();
        let fast = mc.estimate_survival_fast(BENCH_P, trials, BENCH_SEED);
        report.push(entry(
            format!("{}/incremental", tag(kind)),
            kind,
            primaries,
            trials,
            1,
            t0.elapsed().as_secs_f64() * 1_000.0,
            fast.point(),
        ));

        let grid = FIG7_9_SURVIVAL_GRID;
        let t0 = Instant::now();
        let curve = mc.sweep_survival_batched(&grid, trials, BENCH_SEED);
        let at_bench_p = curve
            .iter()
            .find(|pt| (pt.x - BENCH_P).abs() < 1e-9)
            .map_or(f64::NAN, |pt| pt.y);
        report.push(entry(
            format!("{}/batched-sweep", tag(kind)),
            kind,
            primaries,
            trials,
            grid.len(),
            t0.elapsed().as_secs_f64() * 1_000.0,
            at_bench_p,
        ));
    }
    report
}

/// Renders the report as an aligned text table.
#[must_use]
pub fn render_table(report: &BenchReport) -> String {
    let mut table = TextTable::new(vec![
        "workload".into(),
        "primaries".into(),
        "trials".into(),
        "grid".into(),
        "wall_ms".into(),
        "point-trials/s".into(),
        "yield@0.95".into(),
    ]);
    for e in &report.entries {
        table.row(vec![
            e.name.clone(),
            e.primaries.to_string(),
            e.trials.to_string(),
            e.grid_points.to_string(),
            format!("{:.1}", e.wall_ms),
            format!("{:.0}", e.trials_per_sec),
            format!("{:.4}", e.yield_estimate),
        ]);
    }
    table.render()
}
