//! `dmfb bench` — the performance-reporting suite behind the CI
//! `bench-smoke` job.
//!
//! Runs the Monte-Carlo yield workload through each engine generation —
//! the per-trial graph-rebuild path (hex only), the incremental bitset
//! evaluator (scalar), the word-parallel block pipeline (64 trials per
//! machine word), and the batched whole-curve sweep — for the selected
//! redundancy scheme (`--scheme hex-dtmb | square-dtmb | spare-rows`),
//! and reports wall time plus effective trial throughput. Every scheme
//! rides the same generic engine, so the per-scheme `BENCH_*.json`
//! artifacts are directly comparable. `--json` writes the file in the
//! [`dmfb_bench`] schema (which records the scheme per entry) so CI can
//! archive the numbers and later PRs can compare them.

use crate::SchemeChoice;
use dmfb_bench::{BenchEntry, BenchReport, TextTable, FIG7_9_SURVIVAL_GRID};
use dmfb_core::prelude::*;
use std::time::Instant;

/// Runs the configured suite, then diffs it against the committed
/// baseline report at `baseline_path` with the default 25% normalised
/// regression threshold. Returns the rendered comparison plus the full
/// list of gate failures — every regressed workload and every baseline
/// workload missing from the current run — so the caller can enumerate
/// all of them instead of stopping at the first.
pub fn run_compare(
    config: &BenchConfig,
    baseline_path: &str,
) -> Result<(BenchReport, String, Vec<String>), String> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline '{baseline_path}': {e}"))?;
    let baseline = dmfb_bench::BenchReport::from_json(text.trim_end())
        .map_err(|e| format!("cannot parse baseline '{baseline_path}': {e}"))?;
    let report = run(config);
    let outcome = dmfb_bench::compare(&baseline, &report, dmfb_bench::DEFAULT_REGRESSION_THRESHOLD);
    let mut failures: Vec<String> = outcome
        .regressions()
        .iter()
        .map(|d| format!("{}/{}", d.scheme, d.name))
        .collect();
    failures.extend(outcome.missing_in_current.iter().cloned());
    Ok((report, outcome.render(), failures))
}

/// Survival probability used for the single-point engine comparisons.
const BENCH_P: f64 = 0.95;

/// Master seed for all bench workloads (throughput, not statistics, is
/// the point — but determinism keeps yield anchors comparable across
/// runs).
const BENCH_SEED: u64 = 0xBE7C_2005;

/// Configuration for one `dmfb bench` invocation.
pub struct BenchConfig {
    /// Quick mode: small arrays and trial counts for the CI smoke job.
    pub quick: bool,
    /// Worker threads (`0` = one per available core).
    pub threads: usize,
    /// Emit a `BENCH_*.json` report instead of only the text table.
    pub json: bool,
    /// Directory receiving the JSON report.
    pub out_dir: String,
    /// Report label (file-name stem suffix).
    pub label: String,
    /// Redundancy scheme whose workloads to run.
    pub scheme: SchemeChoice,
    /// When set, run the operational-yield assay suite on the IVD
    /// case-study chip instead of the matching-only scheme suite.
    pub assay: Option<AssayPanel>,
    /// Batch width for the block-engine workloads (`None` = the library
    /// default). `Some(0)` is rejected upstream: the suite pins the
    /// scalar and block engines per workload.
    pub block_trials: Option<usize>,
    /// When set, run the design-space-search suite (the `dmfb search`
    /// scorer on a capped candidate space) instead of a scheme suite.
    pub search: bool,
}

/// One benchmarked hex workload: `(design, primaries, trials)`.
fn hex_cases(quick: bool) -> Vec<(DtmbKind, usize, u32)> {
    if quick {
        vec![
            (DtmbKind::Dtmb26A, 120, 2_000),
            (DtmbKind::Dtmb44, 120, 2_000),
        ]
    } else {
        vec![
            (DtmbKind::Dtmb16, 240, 10_000),
            (DtmbKind::Dtmb26A, 240, 10_000),
            (DtmbKind::Dtmb36, 240, 10_000),
            (DtmbKind::Dtmb44, 240, 10_000),
        ]
    }
}

/// Square patterns worth benchmarking (the defective quarter pattern's
/// yield is ~0 everywhere interesting, so it is excluded).
fn square_cases(quick: bool) -> Vec<(SquarePattern, u32, u32)> {
    let (side, trials) = if quick { (12, 2_000) } else { (24, 10_000) };
    vec![
        (SquarePattern::PerfectCode, side, trials),
        (SquarePattern::Stripes, side, trials),
        (SquarePattern::Checkerboard, side, trials),
    ]
}

/// Short CLI-style design tag for entry names (`dtmb26`, `dtmb44`, …).
fn tag(kind: DtmbKind) -> &'static str {
    match kind {
        DtmbKind::Dtmb16 => "dtmb16",
        DtmbKind::Dtmb26A => "dtmb26",
        DtmbKind::Dtmb26B => "dtmb26b",
        DtmbKind::Dtmb36 => "dtmb36",
        DtmbKind::Dtmb44 => "dtmb44",
    }
}

/// Short CLI-style pattern tag for entry names.
fn pattern_tag(pattern: SquarePattern) -> &'static str {
    match pattern {
        SquarePattern::PerfectCode => "perfect-code",
        SquarePattern::Stripes => "stripes",
        SquarePattern::Checkerboard => "checkerboard",
        SquarePattern::Quarter => "quarter",
    }
}

#[allow(clippy::too_many_arguments)]
fn entry(
    name: String,
    scheme: &str,
    design: String,
    primaries: usize,
    trials: u32,
    grid_points: usize,
    wall_ms: f64,
    yield_estimate: f64,
) -> BenchEntry {
    let point_trials = u64::from(trials) * grid_points as u64;
    BenchEntry {
        name,
        scheme: scheme.to_string(),
        design,
        primaries,
        trials: u64::from(trials),
        grid_points,
        wall_ms,
        trials_per_sec: if wall_ms > 0.0 {
            point_trials as f64 / (wall_ms / 1_000.0)
        } else {
            f64::INFINITY
        },
        yield_estimate,
        assay: None,
        operational_yield: None,
        estimator: Some("naive".to_string()),
        defect_model: Some("bernoulli".to_string()),
        engine: None,
        variance: None,
        effective_samples: None,
        p50_ms: None,
        p95_ms: None,
        p99_ms: None,
        cache_hit_rate: None,
        campaign: None,
        spec: None,
    }
}

/// Canonical [`SchemeChoice`] descriptor string for a hex workload — the
/// same string the serve engine cache and `dmfb search` key on.
fn hex_spec(kind: DtmbKind, primaries: usize) -> Option<String> {
    Some(
        SchemeChoice::HexDtmb {
            design: Some(kind),
            primaries,
        }
        .canonical(),
    )
}

/// Runs `incremental` (scalar engine, pinned for baseline continuity),
/// `block` (the word-parallel batch pipeline on the same workload) and
/// `batched-sweep` (block engine) workloads for one scheme-generic
/// engine and appends the entries. `primaries` is the primary-*cell*
/// count of the array (for the spare-row scheme that is cells, not the
/// coarser module-row units the matcher works on — `BenchEntry.primaries`
/// is documented as a cell count).
#[allow(clippy::too_many_arguments)]
fn run_generic_engine(
    report: &mut BenchReport,
    est: &SchemeYield<SquareCoord>,
    scheme: &str,
    name_stem: &str,
    spec: &str,
    primaries: usize,
    trials: u32,
    block_trials: Option<usize>,
) {
    let scalar = est.clone().with_block_trials(Some(0));
    let block = est.clone().with_block_trials(block_trials);

    let t0 = Instant::now();
    let fast = scalar.estimate_survival(BENCH_P, trials, BENCH_SEED);
    let mut e = entry(
        format!("{name_stem}/incremental"),
        scheme,
        est.label().to_string(),
        primaries,
        trials,
        1,
        t0.elapsed().as_secs_f64() * 1_000.0,
        fast.point(),
    );
    e.engine = Some("scalar".to_string());
    e.spec = Some(spec.to_string());
    report.push(e);

    let t0 = Instant::now();
    let batch = block.estimate_survival(BENCH_P, trials, BENCH_SEED);
    debug_assert_eq!(batch, fast, "engines must be byte-identical");
    let mut e = entry(
        format!("{name_stem}/block"),
        scheme,
        est.label().to_string(),
        primaries,
        trials,
        1,
        t0.elapsed().as_secs_f64() * 1_000.0,
        batch.point(),
    );
    e.engine = Some("block".to_string());
    e.spec = Some(spec.to_string());
    report.push(e);

    let grid = FIG7_9_SURVIVAL_GRID;
    let t0 = Instant::now();
    let curve = block.sweep_survival_batched(&grid, trials, BENCH_SEED);
    let at_bench_p = curve
        .iter()
        .find(|pt| (pt.x - BENCH_P).abs() < 1e-9)
        .map_or(f64::NAN, |pt| pt.y);
    let mut e = entry(
        format!("{name_stem}/batched-sweep"),
        scheme,
        est.label().to_string(),
        primaries,
        trials,
        grid.len(),
        t0.elapsed().as_secs_f64() * 1_000.0,
        at_bench_p,
    );
    e.engine = Some("block".to_string());
    e.spec = Some(spec.to_string());
    report.push(e);
}

/// Runs the suite and returns the filled report.
#[must_use]
pub fn run(config: &BenchConfig) -> BenchReport {
    let threads = if config.threads == 0 {
        auto_threads()
    } else {
        config.threads
    };
    let mut report = BenchReport::new(config.label.clone(), threads, config.quick);
    if config.search {
        run_search_suite(&mut report, config.quick, threads);
        return report;
    }
    if let Some(panel) = config.assay {
        run_assay(
            &mut report,
            panel,
            config.quick,
            threads,
            config.block_trials,
        );
        return report;
    }
    match &config.scheme {
        SchemeChoice::HexDtmb { .. } => {
            run_hex(&mut report, config.quick, threads, config.block_trials);
            run_rare_event(&mut report, config.quick, threads);
        }
        SchemeChoice::SquareDtmb { .. } => {
            for (pattern, side, trials) in square_cases(config.quick) {
                let est = SchemeYield::from_scheme(&SquareRegion::rect(side, side), &pattern)
                    .with_threads(threads);
                let spec = SchemeChoice::SquareDtmb {
                    pattern,
                    width: side,
                    height: side,
                }
                .canonical();
                run_generic_engine(
                    &mut report,
                    &est,
                    "square-dtmb",
                    &format!("square-{}", pattern_tag(pattern)),
                    &spec,
                    est.evaluator().unit_count(),
                    trials,
                    config.block_trials,
                );
            }
        }
        SchemeChoice::SpareRows { .. } => {
            let (width, rows, spares, trials) = if config.quick {
                (12u32, 10u32, 2u32, 2_000u32)
            } else {
                (24, 20, 3, 10_000)
            };
            let array = SpareRowArray::new(
                width,
                vec![ModuleBand {
                    name: "Module 1".into(),
                    rows,
                }],
                spares,
            );
            let est = SchemeYield::from_scheme(&array.region(), &array).with_threads(threads);
            let spec = SchemeChoice::SpareRows {
                width,
                module_rows: rows,
                spare_rows: spares,
            }
            .canonical();
            run_generic_engine(
                &mut report,
                &est,
                "spare-rows",
                &format!("spare-rows-{width}x{rows}+{spares}"),
                &spec,
                (width * rows) as usize,
                trials,
                config.block_trials,
            );
        }
    }
    report
}

/// The assay suite: the operational-yield engine on the DTMB(2,6) IVD
/// case-study chip — one single-point workload (the paper's p = 0.95
/// anchor) and one three-tier sweep sharing each trial across a small
/// grid. Entries carry the assay label and the operational-yield column;
/// `yield_estimate` stays the reconfigured (second-tier) yield so the
/// entries remain comparable with the matching-only suites.
fn run_assay(
    report: &mut BenchReport,
    panel: AssayPanel,
    quick: bool,
    threads: usize,
    block_trials: Option<usize>,
) {
    let trials: u32 = if quick { 300 } else { 2_000 };
    let engine = OperationalYield::ivd(panel)
        .with_threads(threads)
        .with_block_trials(block_trials);
    let primaries = engine.chip().array.primary_count();
    let stem = panel.label();

    let t0 = Instant::now();
    let e = engine.estimate(BENCH_P, trials, BENCH_SEED);
    let mut point = entry(
        format!("{stem}/operational-point"),
        "hex-dtmb",
        "DTMB(2,6) IVD".to_string(),
        primaries,
        trials,
        1,
        t0.elapsed().as_secs_f64() * 1_000.0,
        e.reconfigured.point(),
    );
    point.assay = Some(stem.to_string());
    point.operational_yield = Some(e.operational.point());
    point.engine = Some("block".to_string());
    point.spec = Some(assay_spec(panel));
    report.push(point);

    let grid = [0.90, 0.925, BENCH_P, 0.975, 1.00];
    let t0 = Instant::now();
    let rows = engine.sweep(&grid, trials, BENCH_SEED);
    let at_bench_p = rows
        .iter()
        .find(|r| (r.p - BENCH_P).abs() < 1e-9)
        .expect("the grid contains the bench anchor");
    let mut sweep = entry(
        format!("{stem}/operational-sweep"),
        "hex-dtmb",
        "DTMB(2,6) IVD".to_string(),
        primaries,
        trials,
        grid.len(),
        t0.elapsed().as_secs_f64() * 1_000.0,
        at_bench_p.reconfigured.point(),
    );
    sweep.assay = Some(stem.to_string());
    sweep.operational_yield = Some(at_bench_p.operational.point());
    sweep.engine = Some("block".to_string());
    sweep.spec = Some(assay_spec(panel));
    report.push(sweep);

    run_campaigns(report, panel, primaries, trials, threads);
}

/// The campaign verdict workloads: replay the named adversarial
/// campaigns through the three-tier pipeline and record the *final-step*
/// survival — the after-the-attack yields — in the campaign column
/// family. One estimate runs per campaign step (common random numbers
/// across steps), so `grid_points` carries the step count and the
/// throughput number stays an honest point-trials-per-second figure.
fn run_campaigns(
    report: &mut BenchReport,
    panel: AssayPanel,
    primaries: usize,
    trials: u32,
    threads: usize,
) {
    let runner = CampaignRunner::ivd(panel).with_threads(threads);
    let stem = panel.label();
    for name in ["edge-column-wipeout", "reservoir-cluster"] {
        let scenario = named_campaign(name).expect("built-in campaign");
        let t0 = Instant::now();
        let outcome = runner.run(&scenario, BENCH_P, trials, BENCH_SEED);
        let last = outcome.steps.last().expect("campaigns have steps");
        let mut e = entry(
            format!("{stem}/campaign-{name}"),
            "hex-dtmb",
            "DTMB(2,6) IVD".to_string(),
            primaries,
            trials,
            outcome.steps.len(),
            t0.elapsed().as_secs_f64() * 1_000.0,
            last.estimate.reconfigured.point(),
        );
        e.assay = Some(stem.to_string());
        e.operational_yield = Some(last.estimate.operational.point());
        e.engine = Some("scalar".to_string());
        e.campaign = Some(name.to_string());
        e.spec = Some(assay_spec(panel));
        report.push(e);
    }
}

/// Canonical engine descriptor string for assay workloads.
fn assay_spec(panel: AssayPanel) -> String {
    dmfb_core::spec::EngineSpec::Assay(panel).canonical()
}

/// The design-space-search suite: one full `dmfb search` scoring pass
/// (exact Hall-bound pruning plus stratified scoring) on a capped
/// reconfigured-tier space, and one on the operational IVD pair. The
/// entry's `trials` column records the trials *actually spent* after
/// pruning, so the committed baseline documents the pruning win, and
/// `spec` carries the winning frontier row.
fn run_search_suite(report: &mut BenchReport, quick: bool, threads: usize) {
    use dmfb_core::search::{run_search, SearchConfig, SearchSpace};

    let mut config = SearchConfig::new(0.99);
    config.threads = threads;
    if quick {
        config.trials = 400;
        config.space = SearchSpace {
            max_primaries: 60,
            max_dim: 12,
        };
    }
    let t0 = Instant::now();
    let outcome = run_search(&config);
    let wall_ms = t0.elapsed().as_secs_f64() * 1_000.0;
    // The cheapest row meeting the target, or the highest-yield frontier
    // row when nothing reaches it — either way a stable yield anchor.
    let best = outcome.best().or_else(|| outcome.frontier.last());
    let mut e = entry(
        "search/reconfigured".to_string(),
        "search",
        format!(
            "target 0.99 ({} candidates, {} pruned)",
            outcome.candidates, outcome.pruned
        ),
        0,
        u32::try_from(outcome.trials_used).unwrap_or(u32::MAX),
        1,
        wall_ms,
        best.and_then(|row| row.yield_point).unwrap_or(f64::NAN),
    );
    e.trials = outcome.trials_used;
    e.estimator = Some("stratified".to_string());
    e.spec = best.map(|row| row.spec.clone());
    report.push(e);

    config.tier = dmfb_core::Tier::Operational;
    config.assay = Some(AssayPanel::StandardIvd);
    let t0 = Instant::now();
    let outcome = run_search(&config);
    let wall_ms = t0.elapsed().as_secs_f64() * 1_000.0;
    let best = outcome.best().or_else(|| outcome.frontier.last());
    let mut e = entry(
        "search/assay-ivd".to_string(),
        "search",
        "target 0.99 operational".to_string(),
        0,
        u32::try_from(outcome.trials_used).unwrap_or(u32::MAX),
        1,
        wall_ms,
        best.and_then(|row| row.yield_point).unwrap_or(f64::NAN),
    );
    e.trials = outcome.trials_used;
    e.estimator = Some("stratified".to_string());
    e.assay = Some(AssayPanel::StandardIvd.label().to_string());
    e.spec = best.map(|row| row.spec.clone());
    report.push(e);
}

/// Survival probability of the rare-event (stratified-vs-naive) showcase:
/// the DTMB(2,6) case study at `p = 0.999`, where naive Monte-Carlo
/// wastes ~85% of its trials on defect-free chips.
const RARE_P: f64 = 0.999;

/// The rare-event workload pair on the DTMB(2,6) case study: the naive
/// incremental engine with a full trial budget, then the stratified
/// estimator with **one tenth** of it. Both entries record variance and
/// effective samples, so the committed baseline carries the acceptance
/// evidence: the stratified run's `effective_samples` must beat the naive
/// run's actual trial count despite spending 10× fewer evaluations.
fn run_rare_event(report: &mut BenchReport, quick: bool, threads: usize) {
    // The full case-study array in both modes (the failure event is too
    // rare to observe at all on smaller chips); quick mode only trims the
    // trial budget.
    let (primaries, naive_trials) = if quick { (240, 40_000) } else { (240, 400_000) };
    let strat_budget = naive_trials / 10;
    let mc = MonteCarloYield::new(
        DtmbKind::Dtmb26A.with_primary_count(primaries),
        ReconfigPolicy::AllPrimaries,
    )
    .with_threads(threads);

    let t0 = Instant::now();
    let naive = mc.estimate_survival_fast(RARE_P, naive_trials, BENCH_SEED);
    let mut naive_entry = entry(
        "dtmb26/rare-naive".to_string(),
        "hex-dtmb",
        DtmbKind::Dtmb26A.to_string(),
        primaries,
        naive_trials,
        1,
        t0.elapsed().as_secs_f64() * 1_000.0,
        naive.point(),
    );
    // Same Agresti–Coull smoothing as the stratified estimator's
    // variance, so an all-success run still admits the failure its trial
    // count cannot exclude and the two entries stay comparable.
    let s = (naive.successes() as f64 + 1.0) / (naive.trials() as f64 + 2.0);
    naive_entry.variance = Some(s * (1.0 - s) / f64::from(naive_trials));
    naive_entry.effective_samples = Some(f64::from(naive_trials));
    naive_entry.engine = Some("block".to_string());
    naive_entry.spec = hex_spec(DtmbKind::Dtmb26A, primaries);
    report.push(naive_entry);

    let t0 = Instant::now();
    let strat = mc.estimate_survival_stratified(
        RARE_P,
        strat_budget,
        BENCH_SEED,
        &StratifiedConfig::default(),
    );
    let wall_ms = t0.elapsed().as_secs_f64() * 1_000.0;
    let mut strat_entry = entry(
        "dtmb26/rare-stratified".to_string(),
        "hex-dtmb",
        DtmbKind::Dtmb26A.to_string(),
        primaries,
        u32::try_from(strat.trials).unwrap_or(u32::MAX),
        1,
        wall_ms,
        strat.point,
    );
    strat_entry.estimator = Some("stratified".to_string());
    strat_entry.variance = Some(strat.variance);
    let effective = strat.effective_trials();
    // Measured, never fabricated. Infinity (nothing sampled at all —
    // only possible when every stratum resolved exactly) cannot ride in
    // JSON and is reported as the absent column.
    strat_entry.effective_samples = effective.is_finite().then_some(effective);
    strat_entry.engine = Some("block".to_string());
    strat_entry.spec = hex_spec(DtmbKind::Dtmb26A, primaries);
    report.push(strat_entry);
}

/// Survival probability of the scalar-vs-block acceptance pair: the
/// high-survival regime where the Hall-bound classifier retires most
/// lanes without the matcher.
const PAIR_P: f64 = 0.99;

/// The hexagonal suite keeps the historic engine comparison — per-trial
/// rebuild, the incremental evaluator (pinned to the scalar engine for
/// baseline continuity), the word-parallel block pipeline on the same
/// workload, and the batched sweep (block engine) — plus the
/// `dtmb26/p99-scalar`/`dtmb26/p99-block` acceptance pair whose
/// committed throughput ratio documents the block-engine speed-up.
fn run_hex(report: &mut BenchReport, quick: bool, threads: usize, block_trials: Option<usize>) {
    for (kind, primaries, trials) in hex_cases(quick) {
        let mc = MonteCarloYield::new(
            kind.with_primary_count(primaries),
            ReconfigPolicy::AllPrimaries,
        )
        .with_threads(threads);
        let scalar = mc.clone().with_block_trials(Some(0));
        let block = mc.clone().with_block_trials(block_trials);

        let t0 = Instant::now();
        let rebuild = mc.estimate_survival(BENCH_P, trials, BENCH_SEED);
        let mut e = entry(
            format!("{}/rebuild", tag(kind)),
            "hex-dtmb",
            kind.to_string(),
            primaries,
            trials,
            1,
            t0.elapsed().as_secs_f64() * 1_000.0,
            rebuild.point(),
        );
        e.spec = hex_spec(kind, primaries);
        report.push(e);

        let t0 = Instant::now();
        let fast = scalar.estimate_survival_fast(BENCH_P, trials, BENCH_SEED);
        let mut e = entry(
            format!("{}/incremental", tag(kind)),
            "hex-dtmb",
            kind.to_string(),
            primaries,
            trials,
            1,
            t0.elapsed().as_secs_f64() * 1_000.0,
            fast.point(),
        );
        e.engine = Some("scalar".to_string());
        e.spec = hex_spec(kind, primaries);
        report.push(e);

        let t0 = Instant::now();
        let batch = block.estimate_survival_fast(BENCH_P, trials, BENCH_SEED);
        debug_assert_eq!(batch, fast, "engines must be byte-identical");
        let mut e = entry(
            format!("{}/block", tag(kind)),
            "hex-dtmb",
            kind.to_string(),
            primaries,
            trials,
            1,
            t0.elapsed().as_secs_f64() * 1_000.0,
            batch.point(),
        );
        e.engine = Some("block".to_string());
        e.spec = hex_spec(kind, primaries);
        report.push(e);

        let grid = FIG7_9_SURVIVAL_GRID;
        let t0 = Instant::now();
        let curve = block.sweep_survival_batched(&grid, trials, BENCH_SEED);
        let at_bench_p = curve
            .iter()
            .find(|pt| (pt.x - BENCH_P).abs() < 1e-9)
            .map_or(f64::NAN, |pt| pt.y);
        let mut e = entry(
            format!("{}/batched-sweep", tag(kind)),
            "hex-dtmb",
            kind.to_string(),
            primaries,
            trials,
            grid.len(),
            t0.elapsed().as_secs_f64() * 1_000.0,
            at_bench_p,
        );
        e.engine = Some("block".to_string());
        e.spec = hex_spec(kind, primaries);
        report.push(e);
    }

    // The acceptance pair: one workload, both engines, p = 0.99 on the
    // DTMB(2,6) case study — the regime the classifier tiers target.
    let (primaries, trials) = if quick { (120, 20_000) } else { (240, 100_000) };
    let mc = MonteCarloYield::new(
        DtmbKind::Dtmb26A.with_primary_count(primaries),
        ReconfigPolicy::AllPrimaries,
    )
    .with_threads(threads);
    for (engine_tag, block_sel) in [("scalar", Some(0)), ("block", block_trials)] {
        let engine = mc.clone().with_block_trials(block_sel);
        let t0 = Instant::now();
        let est = engine.estimate_survival_fast(PAIR_P, trials, BENCH_SEED);
        let mut e = entry(
            format!("dtmb26/p99-{engine_tag}"),
            "hex-dtmb",
            DtmbKind::Dtmb26A.to_string(),
            primaries,
            trials,
            1,
            t0.elapsed().as_secs_f64() * 1_000.0,
            est.point(),
        );
        e.engine = Some(engine_tag.to_string());
        e.spec = hex_spec(DtmbKind::Dtmb26A, primaries);
        report.push(e);
    }
}

/// Renders the report as an aligned text table.
#[must_use]
pub fn render_table(report: &BenchReport) -> String {
    let mut table = TextTable::new(vec![
        "workload".into(),
        "scheme".into(),
        "estimator".into(),
        "engine".into(),
        "primaries".into(),
        "trials".into(),
        "grid".into(),
        "wall_ms".into(),
        "point-trials/s".into(),
        "yield".into(),
        "eff-samples".into(),
        "assay".into(),
        "op-yield".into(),
        "campaign".into(),
    ]);
    for e in &report.entries {
        table.row(vec![
            e.name.clone(),
            e.scheme.clone(),
            e.estimator.clone().unwrap_or_else(|| "-".into()),
            e.engine.clone().unwrap_or_else(|| "-".into()),
            e.primaries.to_string(),
            e.trials.to_string(),
            e.grid_points.to_string(),
            format!("{:.1}", e.wall_ms),
            format!("{:.0}", e.trials_per_sec),
            format!("{:.4}", e.yield_estimate),
            e.effective_samples
                .map_or_else(|| "-".into(), |x| format!("{x:.0}")),
            e.assay.clone().unwrap_or_else(|| "-".into()),
            e.operational_yield
                .map_or_else(|| "-".into(), |y| format!("{y:.4}")),
            e.campaign.clone().unwrap_or_else(|| "-".into()),
        ]);
    }
    table.render()
}
