//! `dmfb` — command-line driver for the dmfb-redundancy toolchain.
//!
//! ```text
//! dmfb yield   --design dtmb26 --primaries 100 --p 0.95
//! dmfb sweep   --design dtmb44 --primaries 100 --from 0.80 --to 1.00 --steps 11 --effective
//! dmfb faults  --casestudy --max-m 40
//! dmfb render  --design dtmb16 --primaries 100 --inject 0.9 --seed 7
//! dmfb assay   --faults 10 --seed 42
//! ```

mod bench_cmd;
mod campaign_cmd;
mod serve_cmd;

use dmfb_core::prelude::*;
use dmfb_core::spec::{self, DefectModelKind, ParamStyle, SchemeKind};
use dmfb_core::{grid::render, yield_model::effective};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::process::ExitCode;

/// Like `println!`, but a closed stdout (`dmfb ... | head`) ends the
/// process quietly with success instead of panicking on broken pipe.
macro_rules! outln {
    ($($arg:tt)*) => {{
        use std::io::Write as _;
        if writeln!(std::io::stdout(), $($arg)*).is_err() {
            std::process::exit(0);
        }
    }};
}

/// `print!` counterpart of [`outln!`].
macro_rules! out {
    ($($arg:tt)*) => {{
        use std::io::Write as _;
        if write!(std::io::stdout(), $($arg)*).is_err() {
            std::process::exit(0);
        }
    }};
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = match Options::parse(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "yield" => cmd_yield(&opts),
        "sweep" => cmd_sweep(&opts),
        "search" => cmd_search(&opts),
        "faults" => cmd_faults(&opts),
        "render" => cmd_render(&opts),
        "assay" => cmd_assay(&opts),
        "profile" => cmd_profile(&opts),
        "bench" => cmd_bench(&opts),
        "campaign" => cmd_campaign(&opts),
        "serve" => cmd_serve(&opts),
        "soak" => cmd_soak(&opts),
        "help" | "--help" | "-h" => {
            outln!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
dmfb — yield enhancement for digital microfluidic biochips (DATE 2005)

USAGE:
  dmfb yield  [--scheme SCHEME] --design <D> --primaries <N> --p <P> [--trials T] [--seed S]
              [--threads K] [--estimator E] [--defect-model M] [--block-trials N]
  dmfb yield  --scheme hex-dtmb --assay ivd-panel|metabolic-panel --p <P> [--trials T]
              [--seed S] [--threads K] [--estimator E] [--defect-model M] [--block-trials N]
              (raw vs reconfigured vs operational yield)
  dmfb sweep  [--scheme SCHEME] --design <D> --primaries <N> [--from P] [--to P] [--steps K]
              [--effective] [--batched] [--trials T] [--seed S] [--threads K] [--estimator E]
              [--block-trials N]
  dmfb sweep  --scheme hex-dtmb --assay PANEL [--from P] [--to P] [--steps K] [--trials T]
              [--seed S] [--threads K] [--estimator E]
              (three-tier CSV on the IVD case-study chip)
  dmfb search --target-yield <Y> [--tier raw|reconfigured|operational] [--assay PANEL]
              [--p P] [--trials T] [--seed S] [--threads K] [--max-primaries N]
              [--max-dim D] [--tolerance T] [--pilot N] [--json | --csv]
              (Pareto design-space search: enumerates DTMB designs, square
               patterns and spare-row counts under the caps, prunes hopeless
               candidates with the exact Hall bound before any sampling, scores
               survivors with the stratified estimator, and emits the
               non-dominated (area overhead, yield) frontier; --assay scores
               the operational tier on the IVD case-study chips; output is
               byte-identical across reruns and thread counts)
  dmfb faults (--casestudy | --design <D> --primaries <N>) [--max-m M] [--trials T]
  dmfb render --design <D> --primaries <N> [--inject P] [--seed S]
  dmfb assay  [--faults M] [--seed S]
  dmfb profile (--casestudy | --design <D> --primaries <N>) [--trials T]
  dmfb bench  [--scheme SCHEME | --assay PANEL | --search] [--quick] [--json] [--out DIR]
              [--label L] [--threads K] [--block-trials N] [--compare BASELINE.json]
              (fixed workload suite per scheme; scheme sub-parameters are rejected;
               --compare diffs against a committed dmfb-bench/1 report, lists every
               workload past the >25% normalised regression gate, then exits non-zero)
  dmfb campaign (--name C | --script FILE) [--assay PANEL] [--p P] [--trials T] [--seed S]
              [--threads K] [--rehearse] [--list]
              (scripted adversarial fault campaign on the DTMB(2,6) IVD case-study
               chip: compiles a scenario DSL into a deterministic seeded damage
               trajectory with NA-0090 replay markers (k = seed + idx), then reports
               per step the deterministic reconfigured/operational verdict on the
               targeted damage plus raw/reconfigured/operational survival under that
               damage merged with Bernoulli background defects; output is
               byte-identical across reruns and thread counts; --rehearse dry-runs
               markers only, --list names the built-in campaigns)
  dmfb serve  [--addr A] [--workers N] [--threads K] [--cache-capacity C]
              (long-lived yield daemon over HTTP/1.1: POST /v1/yield runs any
               yield/assay request from a JSON body, GET /v1/health reports cache
               statistics, POST /v1/shutdown stops gracefully; evaluator engines are
               cached per scheme so repeat requests skip construction, and identical
               requests get byte-identical replies)
  dmfb soak   [--addr A] [--requests N] [--concurrency C] [--trials T] [--primaries P]
              [--require-speedup F] [--quick] [--json] [--out DIR] [--label L]
              [--compare BASELINE.json] [--shutdown]
              (load harness for a running dmfb serve: cold/warm/mixed phases, emits
               p50/p95/p99 latency and cache hit rate as dmfb-bench/1 columns,
               verifies byte-identity and 4xx handling under load, gates against a
               committed baseline with the shared compare machinery)
  dmfb help

SCHEMES: hex-dtmb (default) | square-dtmb | spare-rows
  --scheme hex-dtmb    hexagonal DTMB patterns; pick one with --design/--primaries
  --scheme square-dtmb square interstitial patterns; sub-parameters:
                       --pattern perfect-code|stripes|checkerboard|quarter
                       --width W --height H (default 16x16)
  --scheme spare-rows  boundary spare-row baseline (shifted replacement);
                       sub-parameters: --width W --module-rows R --spare-rows S
ESTIMATORS (yield and sweep): --estimator naive (default) | stratified
  stratified = defect-count-stratified rare-event estimator: exact at p near 1
               with 10x+ fewer trials; sub-parameters:
               --tolerance T (truncated binomial mass, default 1e-6)
               --pilot N     (pilot trials per stratum, default 64)
ENGINES (yield, sweep, bench): --block-trials N picks the trial engine
  absent = auto (word-parallel block pipeline, 256 trials per batch);
  0 = force the scalar one-trial-at-a-time engine; N >= 1 = block engine
  with N-trial batches. Both engines are byte-identical at any width and
  thread count. Per-trial-only paths (clustered defects, hex naive
  reports, assay stratified) reject the flag rather than ignore it.
DEFECT MODELS (yield): --defect-model bernoulli (default) | clustered
  clustered = negative-binomial cluster seeds spreading over the lattice;
              sub-parameters: --cluster-mean F (default 1.0)
              --cluster-dispersion R (default 1) --cluster-radius D (default 2)
              --cluster-peak P (default 0.8)
ASSAYS (hex-dtmb only; fixes the chip to the DTMB(2,6) IVD case study):
  --assay ivd-panel        four concurrent measurements (paper Figure 11)
  --assay metabolic-panel  eight measurements across all four metabolites
CAMPAIGNS (campaign): edge-column-wipeout | reservoir-cluster | wear-trajectory
  | parametric-drift, or --script FILE in the scenario DSL (lines:
  'scenario <name>', then 'step calm | wipe-column I | wipe-row I |
  cluster Q R radius N peak P | wear mtbf H stress S hours T |
  drift sigma S tolerance T | salvo N'); dmfb campaign --list for summaries
DESIGNS: none | dtmb16 | dtmb26 | dtmb26b | dtmb36 | dtmb44
THREADS: --threads 0 (default) = one worker per available core";

/// Which redundancy scheme a command drives: the shared descriptor from
/// [`dmfb_core::spec`], fully resolved (family plus sub-parameters).
/// Hexagonal DTMB keeps the historic report formats; the other schemes
/// run through the generic [`SchemeYield`] engine.
pub(crate) use dmfb_core::spec::SchemeSpec as SchemeChoice;

/// Parsed `--key value` options (flags store "true").
struct Options {
    map: BTreeMap<String, String>,
}

impl Options {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut map = BTreeMap::new();
        let mut i = 0;
        while i < args.len() {
            let arg = &args[i];
            let Some(key) = arg.strip_prefix("--") else {
                return Err(format!("expected --option, got '{arg}'"));
            };
            let is_flag = matches!(
                key,
                "effective"
                    | "casestudy"
                    | "all-primaries"
                    | "json"
                    | "csv"
                    | "quick"
                    | "batched"
                    | "shutdown"
                    | "rehearse"
                    | "list"
                    | "search"
            );
            if is_flag {
                map.insert(key.to_string(), "true".to_string());
                i += 1;
            } else {
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| format!("--{key} requires a value"))?;
                map.insert(key.to_string(), value.clone());
                i += 2;
            }
        }
        Ok(Options { map })
    }

    fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.map.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value '{v}' for --{key}")),
        }
    }

    fn flag(&self, key: &str) -> bool {
        self.map.contains_key(key)
    }

    fn design(&self) -> Result<Option<DtmbKind>, String> {
        spec::parse_design_token(self.map.get("design").map(String::as_str))
    }

    fn scheme(&self) -> Result<SchemeChoice, String> {
        match spec::parse_scheme_token(self.map.get("scheme").map(String::as_str))? {
            SchemeKind::HexDtmb => Ok(SchemeChoice::HexDtmb {
                design: self.design()?,
                primaries: self.get("primaries", 100)?,
            }),
            SchemeKind::SquareDtmb => Ok(SchemeChoice::SquareDtmb {
                pattern: spec::parse_pattern_token(self.map.get("pattern").map(String::as_str))?,
                width: self.get("width", 16)?,
                height: self.get("height", 16)?,
            }),
            SchemeKind::SpareRows => Ok(SchemeChoice::SpareRows {
                width: self.get("width", 8)?,
                module_rows: self.get("module-rows", 6)?,
                spare_rows: self.get("spare-rows", 1)?,
            }),
        }
    }

    fn assay(&self) -> Result<Option<AssayPanel>, String> {
        match self.map.get("assay") {
            None => Ok(None),
            Some(v) => v.parse().map(Some),
        }
    }

    fn estimator(&self) -> Result<EstimatorChoice, String> {
        spec::parse_estimator_token(self.map.get("estimator").map(String::as_str))
    }

    /// Tuning for the stratified estimator (`--tolerance`, `--pilot`).
    fn stratified_config(&self) -> Result<StratifiedConfig, String> {
        let tolerance: f64 = self.get("tolerance", 1e-6)?;
        let pilot: u32 = self.get("pilot", 64)?;
        if !(0.0..1.0).contains(&tolerance) {
            return Err("need 0 <= --tolerance < 1".into());
        }
        if pilot == 0 {
            return Err("--pilot must be at least 1".into());
        }
        Ok(StratifiedConfig {
            tolerance,
            pilot,
            ..StratifiedConfig::default()
        })
    }

    fn defect_model(&self) -> Result<DefectModelChoice, String> {
        match spec::parse_defect_model_token(self.map.get("defect-model").map(String::as_str))? {
            DefectModelKind::Bernoulli => Ok(DefectModelChoice::Bernoulli),
            DefectModelKind::Clustered => {
                let mean: f64 = self.get("cluster-mean", 1.0)?;
                let dispersion: u32 = self.get("cluster-dispersion", 1)?;
                let radius: u32 = self.get("cluster-radius", 2)?;
                let peak: f64 = self.get("cluster-peak", 0.8)?;
                if !(mean >= 0.0 && mean.is_finite()) {
                    return Err("--cluster-mean must be non-negative and finite".into());
                }
                if dispersion == 0 {
                    return Err("--cluster-dispersion must be at least 1".into());
                }
                if radius > 64 {
                    return Err("need --cluster-radius <= 64".into());
                }
                if !(0.0..=1.0).contains(&peak) {
                    return Err("need 0 <= --cluster-peak <= 1".into());
                }
                Ok(DefectModelChoice::Clustered(ClusteredDefects::new(
                    mean, dispersion, radius, peak,
                )))
            }
        }
    }

    /// Trial-engine selection (`--block-trials`): `None` = auto (block
    /// engine at the default width), `Some(0)` = scalar, `Some(n)` =
    /// block engine with `n`-trial batches.
    fn block_trials(&self) -> Result<Option<usize>, String> {
        match self.map.get("block-trials") {
            None => Ok(None),
            Some(v) => {
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("invalid value '{v}' for --block-trials"))?;
                if n > spec::MAX_BLOCK_TRIALS {
                    return Err(spec::block_trials_cap_error(ParamStyle::Cli, n));
                }
                Ok(Some(n))
            }
        }
    }

    /// Presence check keyed by the canonical (underscore) parameter name
    /// the shared [`dmfb_core::spec`] guards use; CLI flags spell it with
    /// dashes.
    fn has_param(&self, key: &str) -> bool {
        self.flag(&key.replace('_', "-"))
    }

    fn biochip(&self) -> Result<Biochip, String> {
        // 0 = one worker per available core (the default).
        let threads: usize = self.get("threads", 0)?;
        let chip = self
            .scheme()?
            .biochip()
            .ok_or("hex-dtmb runs through the --design path, not the generic engine")?;
        Ok(chip.with_threads(threads))
    }
}

/// Which yield estimator a command runs (the shared token from
/// [`dmfb_core::spec`]).
pub(crate) use dmfb_core::spec::EstimatorKind as EstimatorChoice;

/// Which defect model drives the random chips.
pub(crate) enum DefectModelChoice {
    /// The paper's i.i.d. cell-failure assumption (the default).
    Bernoulli,
    /// Negative-binomial clustered wafer defects.
    Clustered(ClusteredDefects),
}

/// Renders a canonical (underscore) parameter name as its CLI flag
/// spelling for diagnostics that enumerate the shared tables.
fn dash(key: &str) -> String {
    key.replace('_', "-")
}

/// Rejects estimator/defect-model sub-parameters that the selected
/// estimator or model would silently ignore, and the one combination that
/// is statistically incoherent (stratified + clustered). The rules live
/// in [`dmfb_core::spec`], shared with the serve validator.
fn reject_foreign_estimator_params(opts: &Options) -> Result<(), String> {
    let estimator = opts.estimator()?;
    let model = match opts.defect_model()? {
        DefectModelChoice::Bernoulli => DefectModelKind::Bernoulli,
        DefectModelChoice::Clustered(_) => DefectModelKind::Clustered,
    };
    spec::reject_foreign_estimator_params(ParamStyle::Cli, estimator, model, |key| {
        opts.has_param(key)
    })
}

/// Rejects scheme sub-parameters that the selected scheme would silently
/// ignore (`yield --pattern checkerboard` without `--scheme square-dtmb`
/// would otherwise run hex and mislabel what was measured). The rule
/// lives in [`dmfb_core::spec`], shared with the serve validator.
fn reject_foreign_subparams(opts: &Options, choice: &SchemeChoice) -> Result<(), String> {
    spec::reject_foreign_subparams(ParamStyle::Cli, choice, |key| opts.has_param(key))
}

/// Validates an `--assay` request: hexagonal scheme only (the IVD
/// case-study chip is a hex DTMB(2,6) array), and since the assay workload
/// *fixes* the chip, every array-shaping sub-parameter is rejected rather
/// than silently ignored — the same discipline as
/// [`reject_foreign_subparams`], shared through [`dmfb_core::spec`].
fn check_assay_subparams(opts: &Options, choice: &SchemeChoice) -> Result<(), String> {
    spec::check_assay_subparams(
        ParamStyle::Cli,
        matches!(choice, SchemeChoice::HexDtmb { .. }),
        |key| opts.has_param(key),
    )
}

/// Rejects a non-hex `--scheme` (and stray non-hex sub-parameters) on
/// commands that only model hexagonal arrays (faults, render, assay,
/// profile) — silently running hex under a square-dtmb/spare-rows label
/// would misattribute the numbers. The same commands run fixed workloads
/// that `--assay` does not parameterise, so it is rejected too.
fn require_hex_scheme(opts: &Options) -> Result<(), String> {
    if opts.flag("assay") {
        return Err("--assay is supported by yield, sweep and bench only".into());
    }
    if opts.flag("estimator") || opts.flag("defect-model") {
        return Err("--estimator/--defect-model are supported by yield and sweep only".into());
    }
    if opts.flag("block-trials") {
        return Err("--block-trials is supported by yield, sweep and bench only".into());
    }
    for key in spec::ESTIMATOR_SUBPARAMS
        .iter()
        .chain(&spec::CLUSTER_SUBPARAMS)
    {
        if opts.has_param(key) {
            return Err(format!(
                "--{} is an estimator/defect-model sub-parameter; \
                 it is supported by yield and sweep only",
                dash(key)
            ));
        }
    }
    let choice = opts.scheme()?;
    if matches!(choice, SchemeChoice::HexDtmb { .. }) {
        reject_foreign_subparams(opts, &choice)
    } else {
        Err("this command models hexagonal arrays only; \
             --scheme square-dtmb/spare-rows is supported by yield, sweep and bench"
            .into())
    }
}

/// Rejects `--block-trials` on a path that can only run one trial at a
/// time (`why` names the reason and, where one exists, the block-capable
/// alternative). Silently ignoring the flag would mislabel what engine
/// produced the numbers.
fn reject_block_trials(opts: &Options, why: &str) -> Result<(), String> {
    if opts.flag("block-trials") {
        return Err(format!("--block-trials does not apply here: {why}"));
    }
    Ok(())
}

/// Builds the generic fast engine for a square-lattice (square-dtmb or
/// spare-rows) scheme choice, returning the engine together with the
/// lattice region it was compiled over (the defect-sampler hook needs
/// the topology).
fn generic_engine(
    choice: &SchemeChoice,
    threads: usize,
) -> Result<(SchemeYield<SquareCoord>, SquareRegion), String> {
    let check_dim = |name: &str, value: u32, min: u32| -> Result<(), String> {
        if value < min || value > spec::MAX_DIM {
            Err(spec::dim_range_error(ParamStyle::Cli, name, min, value))
        } else {
            Ok(())
        }
    };
    let (est, region) = match choice {
        SchemeChoice::HexDtmb { .. } => {
            return Err("hex-dtmb runs through the --design path, not the generic engine".into())
        }
        SchemeChoice::SquareDtmb {
            pattern,
            width,
            height,
        } => {
            check_dim("width", *width, 1)?;
            check_dim("height", *height, 1)?;
            let region = SquareRegion::rect(*width, *height);
            (SchemeYield::from_scheme(&region, pattern), region)
        }
        SchemeChoice::SpareRows {
            width,
            module_rows,
            spare_rows,
        } => {
            check_dim("width", *width, 1)?;
            check_dim("module-rows", *module_rows, 1)?;
            check_dim("spare-rows", *spare_rows, 0)?;
            let array = SpareRowArray::new(
                *width,
                vec![ModuleBand {
                    name: "Module 1".into(),
                    rows: *module_rows,
                }],
                *spare_rows,
            );
            let region = array.region();
            (SchemeYield::from_scheme(&region, &array), region)
        }
    };
    Ok((est.with_threads(threads), region))
}

/// Prints the hex design header line shared by every `dmfb yield`
/// report variant; `rr` appends the redundancy-ratio column when known.
fn print_design_header(chip: &Biochip, rr: Option<f64>) {
    let design = chip
        .array()
        .kind()
        .map_or("none".to_string(), |k| k.to_string());
    let (primaries, spares) = (chip.array().primary_count(), chip.array().spare_count());
    match rr {
        Some(rr) => {
            outln!("design: {design} | primaries {primaries} | spares {spares} | RR {rr:.4}")
        }
        None => outln!("design: {design} | primaries {primaries} | spares {spares}"),
    }
}

/// Prints one stratified estimate line plus its rare-event bookkeeping.
fn print_stratified(name: &str, est: &StratifiedEstimate) {
    let (lo, hi) = est.ci95();
    outln!(
        "{name}: {:.6}  (95% CI [{lo:.6}, {hi:.6}], {} trials over {} strata)",
        est.point,
        est.trials,
        est.strata.len()
    );
    let eff = est.effective_trials();
    outln!(
        "  std error {:.3e} | truncated mass {:.1e} | effective samples {} ({}x speed-up)",
        est.std_error(),
        est.truncated_mass,
        if eff.is_finite() {
            format!("{eff:.0}")
        } else {
            "inf".to_string()
        },
        if eff.is_finite() {
            format!("{:.1}", eff / est.trials.max(1) as f64)
        } else {
            "inf".to_string()
        }
    );
}

fn cmd_yield(opts: &Options) -> Result<(), String> {
    let p: f64 = opts.get("p", 0.95)?;
    if !(0.0..=1.0).contains(&p) {
        return Err("need 0 <= p <= 1".into());
    }
    let trials: u32 = opts.get("trials", 10_000)?;
    let seed: u64 = opts.get("seed", 1)?;
    let choice = opts.scheme()?;
    reject_foreign_estimator_params(opts)?;
    let estimator = opts.estimator()?;
    let model = opts.defect_model()?;
    let block_trials = opts.block_trials()?;
    if matches!(model, DefectModelChoice::Clustered(_)) {
        reject_block_trials(
            opts,
            "the clustered defect sampler draws a variable-length stream per trial \
             that cannot be transposed into lanes; it always runs the scalar engine",
        )?;
    }
    if matches!(model, DefectModelChoice::Clustered(_)) && opts.flag("p") {
        return Err("--p does not apply with --defect-model clustered \
             (the cluster parameters set the defect intensity)"
            .into());
    }
    if let Some(panel) = opts.assay()? {
        check_assay_subparams(opts, &choice)?;
        let engine = OperationalYield::ivd(panel)
            .with_threads(opts.get("threads", 0)?)
            .with_block_trials(block_trials);
        let chip = engine.chip();
        outln!(
            "assay: {} ({} measurements) | chip: DTMB(2,6) IVD case study | \
             {} primaries + {} spares | {} assay cells",
            panel.label(),
            panel.batch().requests.len(),
            chip.array.primary_count(),
            chip.array.spare_count(),
            chip.assay_cells.len()
        );
        outln!(
            "timing budget     : {:.1}s protocol makespan",
            engine.budget().max_makespan_s
        );
        if let DefectModelChoice::Clustered(cluster) = &model {
            let region = engine.chip().array.region().clone();
            outln!(
                "defect model      : clustered (mean {:.2} clusters, dispersion {}, \
                 radius {}, peak {:.2}; ~{:.2} expected failures/chip)",
                cluster.mean_clusters(),
                cluster.dispersion(),
                cluster.spread_radius(),
                cluster.peak_probability(),
                cluster.expected_failures_in(&region)
            );
            let e = engine.estimate_with(trials, seed, |rng| cluster.inject_in(&region, rng));
            let line = |name: &str, est: &BernoulliEstimate| {
                let (lo, hi) = est.wilson95();
                outln!(
                    "{name}: {:.4}  (95% CI [{lo:.4}, {hi:.4}], {} trials)",
                    est.point(),
                    est.trials()
                );
            };
            line("raw yield         ", &e.raw);
            line("reconfigured yield", &e.reconfigured);
            line("operational yield ", &e.operational);
            return Ok(());
        }
        outln!("survival p        : {p:.4}");
        if matches!(estimator, EstimatorChoice::Stratified) {
            reject_block_trials(
                opts,
                "the operational stratified estimator conditions each stratum on its \
                 defect count, already skipping the defect-free bulk the block engine \
                 short-circuits; it runs the scalar engine",
            )?;
            let e = engine.estimate_stratified(p, trials, seed, &opts.stratified_config()?);
            print_stratified("raw yield         ", &e.raw);
            print_stratified("reconfigured yield", &e.reconfigured);
            print_stratified("operational yield ", &e.operational);
            return Ok(());
        }
        let e = engine.estimate(p, trials, seed);
        let line = |name: &str, est: &BernoulliEstimate| {
            let (lo, hi) = est.wilson95();
            outln!(
                "{name}: {:.4}  (95% CI [{lo:.4}, {hi:.4}], {} trials)",
                est.point(),
                est.trials()
            );
        };
        line("raw yield         ", &e.raw);
        line("reconfigured yield", &e.reconfigured);
        line("operational yield ", &e.operational);
        return Ok(());
    }
    reject_foreign_subparams(opts, &choice)?;
    if !matches!(choice, SchemeChoice::HexDtmb { .. }) {
        let (est, region) = generic_engine(&choice, opts.get("threads", 0)?)?;
        let est = est.with_block_trials(block_trials);
        outln!(
            "scheme: {} | units {} | spare resources {}",
            est.label(),
            est.evaluator().unit_count(),
            est.evaluator().resource_count()
        );
        if let DefectModelChoice::Clustered(cluster) = &model {
            outln!(
                "defect model      : clustered (~{:.2} expected failures/chip)",
                cluster.expected_failures_in(&region)
            );
            let e = est.estimate_with_defects(trials, seed, |rng| cluster.inject_in(&region, rng));
            let (lo, hi) = e.wilson95();
            outln!(
                "reconfigured yield: {:.4}  (95% CI [{lo:.4}, {hi:.4}], {} trials)",
                e.point(),
                e.trials()
            );
            return Ok(());
        }
        outln!("survival p        : {p:.4}");
        if matches!(estimator, EstimatorChoice::Stratified) {
            let e = est.estimate_survival_stratified(p, trials, seed, &opts.stratified_config()?);
            print_stratified("reconfigured yield", &e);
            return Ok(());
        }
        let e = est.estimate_survival(p, trials, seed);
        let (lo, hi) = e.wilson95();
        outln!(
            "reconfigured yield: {:.4}  (95% CI [{lo:.4}, {hi:.4}], {} trials)",
            e.point(),
            e.trials()
        );
        return Ok(());
    }
    let chip = opts.biochip()?;
    if let DefectModelChoice::Clustered(cluster) = &model {
        let mc = MonteCarloYield::new(chip.array().clone(), chip.policy().clone())
            .with_threads(opts.get("threads", 0)?);
        print_design_header(&chip, None);
        outln!(
            "defect model      : clustered (mean {:.2} clusters, dispersion {}, \
             radius {}, peak {:.2}; ~{:.2} expected failures/chip)",
            cluster.mean_clusters(),
            cluster.dispersion(),
            cluster.spread_radius(),
            cluster.peak_probability(),
            cluster.expected_failures_in(chip.array().region())
        );
        let region = chip.array().region().clone();
        let e = mc.estimate_with_defects(trials, seed, |rng| cluster.inject_in(&region, rng));
        let (lo, hi) = e.wilson95();
        outln!(
            "reconfigured yield: {:.4}  (95% CI [{lo:.4}, {hi:.4}], {} trials)",
            e.point(),
            e.trials()
        );
        return Ok(());
    }
    if matches!(estimator, EstimatorChoice::Stratified) {
        let mc = MonteCarloYield::new(chip.array().clone(), chip.policy().clone())
            .with_threads(opts.get("threads", 0)?)
            .with_block_trials(block_trials);
        print_design_header(&chip, None);
        outln!("survival p        : {p:.4}");
        let e = mc.estimate_survival_stratified(p, trials, seed, &opts.stratified_config()?);
        print_stratified("reconfigured yield", &e);
        return Ok(());
    }
    reject_block_trials(
        opts,
        "the hex yield report cross-checks the per-trial rebuild engine; \
         use --estimator stratified or sweep --batched for the block engine",
    )?;
    let r = chip.yield_report(p, trials, seed);
    print_design_header(&chip, Some(r.redundancy_ratio));
    outln!("survival p        : {:.4}", r.survival_p);
    outln!("raw yield         : {}", r.raw_yield);
    outln!("reconfigured yield: {}", r.reconfigured_yield);
    outln!("effective yield   : {:.4}", r.effective_yield);
    if let Some(a) = r.analytical {
        outln!("analytical        : {a:.4}");
    }
    Ok(())
}

fn cmd_sweep(opts: &Options) -> Result<(), String> {
    let from: f64 = opts.get("from", 0.90)?;
    let to: f64 = opts.get("to", 1.00)?;
    let steps: usize = opts.get("steps", 11)?;
    let trials: u32 = opts.get("trials", 10_000)?;
    let seed: u64 = opts.get("seed", 1)?;
    if steps < 2 || !(0.0..=1.0).contains(&from) || !(0.0..=1.0).contains(&to) || from >= to {
        return Err("need 0 <= from < to <= 1 and steps >= 2".into());
    }
    let effective = opts.flag("effective");
    let ps: Vec<f64> = (0..steps)
        .map(|i| from + (to - from) * i as f64 / (steps - 1) as f64)
        .collect();
    let choice = opts.scheme()?;
    reject_foreign_estimator_params(opts)?;
    let estimator = opts.estimator()?;
    let block_trials = opts.block_trials()?;
    if matches!(opts.defect_model()?, DefectModelChoice::Clustered(_)) {
        return Err(
            "--defect-model clustered has no survival probability to sweep; \
             use dmfb yield --defect-model clustered for a point estimate"
                .into(),
        );
    }
    if matches!(estimator, EstimatorChoice::Stratified) && opts.flag("batched") {
        return Err(
            "--batched does not apply with --estimator stratified: the stratified \
             estimator allocates its trial budget per grid point"
                .into(),
        );
    }
    let stratified_csv = |pts: &[StratifiedPoint], ey: Option<&dyn Fn(f64) -> f64>| {
        outln!(
            "p,yield,ci_lo,ci_hi,std_err,eff_samples{}",
            if ey.is_some() { ",effective_yield" } else { "" }
        );
        for pt in pts {
            let (lo, hi) = pt.estimate.ci95();
            let eff = pt.estimate.effective_trials();
            let eff = if eff.is_finite() {
                format!("{eff:.0}")
            } else {
                "inf".to_string()
            };
            match ey {
                Some(f) => outln!(
                    "{:.4},{:.6},{lo:.6},{hi:.6},{:.3e},{eff},{:.4}",
                    pt.x,
                    pt.estimate.point,
                    pt.estimate.std_error(),
                    f(pt.estimate.point)
                ),
                None => outln!(
                    "{:.4},{:.6},{lo:.6},{hi:.6},{:.3e},{eff}",
                    pt.x,
                    pt.estimate.point,
                    pt.estimate.std_error()
                ),
            }
        }
    };
    if let Some(panel) = opts.assay()? {
        check_assay_subparams(opts, &choice)?;
        if effective {
            return Err("--effective does not apply with --assay".into());
        }
        if opts.flag("batched") {
            return Err(
                "--batched does not apply with --assay: the operational sweep always \
                 shares each trial's random chip across the whole grid"
                    .into(),
            );
        }
        let engine = OperationalYield::ivd(panel)
            .with_threads(opts.get("threads", 0)?)
            .with_block_trials(block_trials);
        if matches!(estimator, EstimatorChoice::Stratified) {
            reject_block_trials(
                opts,
                "the operational stratified estimator conditions each stratum on its \
                 defect count, already skipping the defect-free bulk the block engine \
                 short-circuits; it runs the scalar engine",
            )?;
            let config = opts.stratified_config()?;
            outln!("p,raw,reconfigured,operational,op_std_err,op_eff_samples");
            for (j, &p) in ps.iter().enumerate() {
                let e = engine.estimate_stratified(p, trials, seed.wrapping_add(j as u64), &config);
                let eff = e.operational.effective_trials();
                let eff = if eff.is_finite() {
                    format!("{eff:.0}")
                } else {
                    "inf".to_string()
                };
                outln!(
                    "{:.4},{:.6},{:.6},{:.6},{:.3e},{eff}",
                    p,
                    e.raw.point,
                    e.reconfigured.point,
                    e.operational.point,
                    e.operational.std_error()
                );
            }
            return Ok(());
        }
        outln!("p,raw,reconfigured,operational,op_ci_lo,op_ci_hi");
        for row in engine.sweep(&ps, trials, seed) {
            let (lo, hi) = row.operational.wilson95();
            outln!(
                "{:.4},{:.4},{:.4},{:.4},{lo:.4},{hi:.4}",
                row.p,
                row.raw.point(),
                row.reconfigured.point(),
                row.operational.point()
            );
        }
        return Ok(());
    }
    reject_foreign_subparams(opts, &choice)?;
    if !matches!(choice, SchemeChoice::HexDtmb { .. }) {
        // Non-hex schemes always ride the generic fast engine; the
        // effective-yield column is a hex-array metric.
        if effective {
            return Err("--effective requires --scheme hex-dtmb".into());
        }
        let (est, _) = generic_engine(&choice, opts.get("threads", 0)?)?;
        let est = est.with_block_trials(block_trials);
        if matches!(estimator, EstimatorChoice::Stratified) {
            let pts = est.sweep_survival_stratified(&ps, trials, seed, &opts.stratified_config()?);
            stratified_csv(&pts, None);
            return Ok(());
        }
        let pts = if opts.flag("batched") {
            est.sweep_survival_batched(&ps, trials, seed)
        } else {
            est.sweep_survival(&ps, trials, seed)
        };
        outln!("p,yield,ci_lo,ci_hi");
        for pt in pts {
            outln!("{:.4},{:.4},{:.4},{:.4}", pt.x, pt.y, pt.ci95.0, pt.ci95.1);
        }
        return Ok(());
    }
    let chip = opts.biochip()?;
    if matches!(estimator, EstimatorChoice::Stratified) {
        let threads: usize = opts.get("threads", 0)?;
        let mc = MonteCarloYield::new(chip.array().clone(), chip.policy().clone())
            .with_threads(threads)
            .with_block_trials(block_trials);
        let pts = mc.sweep_survival_stratified(&ps, trials, seed, &opts.stratified_config()?);
        let array = chip.array();
        let ey = |y: f64| effective::effective_yield_of(array, y);
        stratified_csv(&pts, if effective { Some(&ey) } else { None });
        return Ok(());
    }
    outln!(
        "p,yield,ci_lo,ci_hi{}",
        if effective { ",effective_yield" } else { "" }
    );
    let emit = |p: f64, y: f64, lo: f64, hi: f64, ey: f64| {
        if effective {
            outln!("{p:.4},{y:.4},{lo:.4},{hi:.4},{ey:.4}");
        } else {
            outln!("{p:.4},{y:.4},{lo:.4},{hi:.4}");
        }
    };
    if opts.flag("batched") {
        // Batched engine: one Monte-Carlo pass serves the whole curve
        // (common random numbers across the grid; single master seed).
        let threads: usize = opts.get("threads", 0)?;
        let mc = MonteCarloYield::new(chip.array().clone(), chip.policy().clone())
            .with_threads(threads)
            .with_block_trials(block_trials);
        for pt in mc.sweep_survival_batched(&ps, trials, seed) {
            let ey = effective::effective_yield_of(chip.array(), pt.y);
            emit(pt.x, pt.y, pt.ci95.0, pt.ci95.1, ey);
        }
        return Ok(());
    }
    reject_block_trials(
        opts,
        "the non-batched hex sweep rebuilds a full yield report per grid point; \
         use --batched (or --estimator stratified) for the block engine",
    )?;
    for (i, &p) in ps.iter().enumerate() {
        let r = chip.yield_report(p, trials, seed.wrapping_add(i as u64));
        let (lo, hi) = r.reconfigured_yield.wilson95();
        emit(p, r.reconfigured_yield.point(), lo, hi, r.effective_yield);
    }
    Ok(())
}

/// Rejects every parameter that `dmfb search` does not take: the search
/// enumerates the scheme space itself, always scores with the stratified
/// estimator under i.i.d. Bernoulli defects (the exact pruning bound
/// requires it), and lets the scorer pick its own trial engine.
fn check_search_params(opts: &Options) -> Result<(), String> {
    if opts.flag("scheme") {
        return Err("--scheme does not apply to search: the search enumerates \
             every scheme family itself (cap the space with --max-primaries/--max-dim)"
            .into());
    }
    for key in spec::SCHEME_SUBPARAMS {
        if opts.has_param(key) {
            return Err(format!(
                "--{} does not apply to search: the search enumerates the \
                 candidate space itself (cap it with --max-primaries/--max-dim)",
                dash(key)
            ));
        }
    }
    if opts.flag("estimator") {
        return Err("--estimator does not apply to search: candidate scoring \
             always runs the stratified estimator (tune it with --tolerance/--pilot)"
            .into());
    }
    if opts.flag("defect-model") {
        return Err("--defect-model does not apply to search: the exact \
             Hall-bound pruning conditions on i.i.d. Bernoulli defects"
            .into());
    }
    for key in spec::CLUSTER_SUBPARAMS {
        if opts.has_param(key) {
            return Err(format!(
                "--{} requires --defect-model clustered, which search does not support",
                dash(key)
            ));
        }
    }
    reject_block_trials(
        opts,
        "the stratified scorer picks its own engine per candidate",
    )
}

/// Writes one frontier row in the `dmfb-search/1` JSON shape.
fn search_row_json(out: &mut String, row: &dmfb_core::CandidateScore, target: f64) {
    use std::fmt::Write as _;
    let _ = write!(
        out,
        "{{\"spec\": \"{}\", \"overhead\": {:.6}, \"yield\": {:.6}, \
         \"ci_lo\": {:.6}, \"ci_hi\": {:.6}, \"primary_cells\": {}, \
         \"spare_cells\": {}, \"trials\": {}, \"meets_target\": {}}}",
        row.spec,
        row.overhead,
        row.yield_point.unwrap_or(0.0),
        row.ci_lo,
        row.ci_hi,
        row.primary_cells,
        row.spare_cells,
        row.trials_used,
        row.meets(target)
    );
}

fn cmd_search(opts: &Options) -> Result<(), String> {
    use dmfb_core::search::{run_search, SearchConfig, SearchSpace};
    check_search_params(opts)?;
    if !opts.flag("target-yield") {
        return Err(
            "--target-yield <Y> is required (the yield the cheapest candidate must reach)".into(),
        );
    }
    let target: f64 = opts.get("target-yield", 0.0)?;
    if !(target > 0.0 && target <= 1.0) {
        return Err("need 0 < --target-yield <= 1".into());
    }
    let assay = opts.assay()?;
    // `--assay` alone implies the operational tier (the panel is what the
    // tier scores); an explicit raw/reconfigured tier contradicts it.
    let tier = match (opts.map.get("tier").map(String::as_str), assay) {
        (None, Some(_)) => spec::Tier::Operational,
        (token, _) => spec::Tier::parse(token)?,
    };
    match (tier, assay) {
        (spec::Tier::Operational, None) => {
            return Err(
                "--tier operational requires --assay (valid: ivd-panel, metabolic-panel)".into(),
            )
        }
        (spec::Tier::Raw | spec::Tier::Reconfigured, Some(_)) => {
            return Err(format!(
                "--assay scores the operational tier; it cannot combine with --tier {}",
                tier.label()
            ))
        }
        _ => {}
    }
    let p: f64 = opts.get("p", 0.95)?;
    if !(0.0..=1.0).contains(&p) {
        return Err("need 0 <= p <= 1".into());
    }
    let trials: u32 = opts.get("trials", 4_000)?;
    if trials == 0 {
        return Err("--trials must be at least 1".into());
    }
    let max_primaries: usize = opts.get("max-primaries", 100)?;
    if max_primaries == 0 || max_primaries > spec::MAX_PRIMARIES {
        return Err(format!(
            "need 1 <= --max-primaries <= {}, got {max_primaries}",
            spec::MAX_PRIMARIES
        ));
    }
    let max_dim: u32 = opts.get("max-dim", 16)?;
    if max_dim == 0 || max_dim > spec::MAX_DIM {
        return Err(format!(
            "need 1 <= --max-dim <= {}, got {max_dim}",
            spec::MAX_DIM
        ));
    }
    if opts.flag("json") && opts.flag("csv") {
        return Err("--json and --csv are mutually exclusive".into());
    }
    let config = SearchConfig {
        target_yield: target,
        tier,
        assay,
        p,
        trials,
        seed: opts.get("seed", 1)?,
        threads: opts.get("threads", 0)?,
        space: SearchSpace {
            max_primaries,
            max_dim,
        },
        stratified: opts.stratified_config()?,
    };
    let report = run_search(&config);

    if opts.flag("csv") {
        outln!("spec,overhead,yield,ci_lo,ci_hi,primary_cells,spare_cells,trials,meets_target");
        for row in &report.frontier {
            outln!(
                "{},{:.6},{:.6},{:.6},{:.6},{},{},{},{}",
                row.spec,
                row.overhead,
                row.yield_point.unwrap_or(0.0),
                row.ci_lo,
                row.ci_hi,
                row.primary_cells,
                row.spare_cells,
                row.trials_used,
                row.meets(target)
            );
        }
        return Ok(());
    }
    if opts.flag("json") {
        let mut rows = String::new();
        for (i, row) in report.frontier.iter().enumerate() {
            if i > 0 {
                rows.push_str(", ");
            }
            search_row_json(&mut rows, row, target);
        }
        let assay_json = report
            .assay
            .map_or("null".to_string(), |panel| format!("\"{}\"", panel.label()));
        let best_json = report
            .best()
            .map_or("null".to_string(), |row| format!("\"{}\"", row.spec));
        outln!(
            "{{\"schema\": \"dmfb-search/1\", \"target_yield\": {:.6}, \
             \"tier\": \"{}\", \"assay\": {}, \"p\": {:.6}, \"trials\": {}, \
             \"seed\": {}, \"candidates\": {}, \"pruned\": {}, \"evaluated\": {}, \
             \"trials_used\": {}, \"naive_trials\": {}, \"frontier\": [{}], \
             \"best\": {}}}",
            report.target_yield,
            report.tier.label(),
            assay_json,
            report.p,
            report.trials,
            report.seed,
            report.candidates,
            report.pruned,
            report.evaluated,
            report.trials_used,
            report.naive_trials,
            rows,
            best_json
        );
        return Ok(());
    }

    outln!(
        "search: target {} yield {:.4} at p {:.4}",
        report.tier.label(),
        report.target_yield,
        report.p
    );
    outln!(
        "space : {} candidates | pruned {} (exact Hall bound, no trials) | evaluated {}",
        report.candidates,
        report.pruned,
        report.evaluated
    );
    let saved = report.naive_trials as f64 / report.trials_used.max(1) as f64;
    outln!(
        "cost  : {} stratified trials vs {} naive 40k-per-candidate ({saved:.1}x saved)",
        report.trials_used,
        report.naive_trials
    );
    outln!();
    outln!("frontier (non-dominated, ascending overhead):");
    outln!(
        "  {:<52} {:>9} {:>8}  {:<18} {:>6}",
        "spec",
        "overhead",
        "yield",
        "95% CI",
        "meets"
    );
    for row in &report.frontier {
        outln!(
            "  {:<52} {:>9.4} {:>8.4}  [{:.4}, {:.4}]   {:>6}",
            row.spec,
            row.overhead,
            row.yield_point.unwrap_or(0.0),
            row.ci_lo,
            row.ci_hi,
            if row.meets(target) { "yes" } else { "no" }
        );
    }
    outln!();
    match report.best() {
        Some(row) => outln!(
            "best  : {} (overhead {:.4}, yield {:.4})",
            row.spec,
            row.overhead,
            row.yield_point.unwrap_or(0.0)
        ),
        None => outln!(
            "best  : no enumerated candidate reaches yield {:.4} — widen the space \
             with --max-primaries/--max-dim or lower the target",
            report.target_yield
        ),
    }
    Ok(())
}

fn cmd_bench(opts: &Options) -> Result<(), String> {
    // Bench runs a fixed per-scheme workload suite so BENCH_*.json
    // artifacts stay comparable across runs; silently ignoring scheme
    // sub-parameters would mislabel what was measured.
    for key in spec::SCHEME_SUBPARAMS {
        if opts.has_param(key) {
            return Err(format!(
                "--{} is not supported by bench: it runs a fixed workload \
                 suite per --scheme (use yield/sweep for custom arrays)",
                dash(key)
            ));
        }
    }
    // Likewise the estimator/defect-model knobs: the suite pins both per
    // workload (including the naive-vs-stratified rare-event pair) so the
    // perf trajectory stays comparable.
    for key in ["estimator", "defect_model"]
        .iter()
        .chain(&spec::ESTIMATOR_SUBPARAMS)
        .chain(&spec::CLUSTER_SUBPARAMS)
    {
        if opts.has_param(key) {
            return Err(format!(
                "--{} is not supported by bench: the workload suite pins the \
                 estimator and defect model per entry (use yield/sweep instead)",
                dash(key)
            ));
        }
    }
    let assay = opts.assay()?;
    if assay.is_some() && !matches!(opts.scheme()?, SchemeChoice::HexDtmb { .. }) {
        return Err(
            "--assay requires --scheme hex-dtmb (the IVD case-study chip is hexagonal)".into(),
        );
    }
    let search = opts.flag("search");
    if search && (assay.is_some() || opts.flag("scheme")) {
        return Err("--search is its own bench suite; it does not combine with \
             --scheme or --assay (the search scorer covers both tiers itself)"
            .into());
    }
    let block_trials = opts.block_trials()?;
    if search && block_trials.is_some() {
        return Err(
            "--block-trials is not supported by the search suite: the stratified \
             scorer picks its own engine per candidate"
                .into(),
        );
    }
    if block_trials == Some(0) {
        return Err(
            "--block-trials 0 is not supported by bench: the suite pins the scalar \
             and block engines per workload so both columns stay populated"
                .into(),
        );
    }
    let quick = opts.flag("quick");
    let default_label = if search {
        "search".to_string()
    } else {
        if quick { "quick" } else { "full" }.to_string()
    };
    let config = bench_cmd::BenchConfig {
        quick,
        threads: opts.get("threads", 0)?,
        json: opts.flag("json"),
        out_dir: opts.get("out", ".".to_string())?,
        label: opts.get("label", default_label)?,
        scheme: opts.scheme()?,
        assay,
        block_trials,
        search,
    };
    if let Some(baseline) = opts.map.get("compare") {
        let (report, rendered, regressed) = bench_cmd::run_compare(&config, baseline)?;
        out!("{}", bench_cmd::render_table(&report));
        if config.json {
            let path = report
                .write_to_dir(std::path::Path::new(&config.out_dir))
                .map_err(|e| format!("cannot write bench report: {e}"))?;
            outln!("wrote {}", path.display());
        }
        out!("{rendered}");
        if !regressed.is_empty() {
            return Err(format!(
                "perf gate failed against baseline '{baseline}': {} workload(s) \
                 regressed or vanished: {}",
                regressed.len(),
                regressed.join(", ")
            ));
        }
        return Ok(());
    }
    let report = bench_cmd::run(&config);
    out!("{}", bench_cmd::render_table(&report));
    if config.json {
        let path = report
            .write_to_dir(std::path::Path::new(&config.out_dir))
            .map_err(|e| format!("cannot write bench report: {e}"))?;
        outln!("wrote {}", path.display());
    }
    Ok(())
}

/// Rejects yield-request parameters on the daemon commands: `serve`
/// takes them per request in the `POST /v1/yield` body, and `soak` runs
/// a fixed workload mix. Silently ignoring them would suggest the flag
/// configured the daemon when it configured nothing.
fn reject_per_request_params(opts: &Options, command: &str, hint: &str) -> Result<(), String> {
    for key in [
        "scheme",
        "estimator",
        "defect-model",
        "block-trials",
        "assay",
        "p",
    ]
    .iter()
    .chain(&spec::ESTIMATOR_SUBPARAMS)
    .chain(&spec::CLUSTER_SUBPARAMS)
    {
        if opts.has_param(key) {
            return Err(format!(
                "--{} is not supported by {command}: {hint}",
                dash(key)
            ));
        }
    }
    Ok(())
}

/// Rejects every parameter `dmfb campaign` would otherwise silently
/// ignore: the workload fixes the chip to the DTMB(2,6) IVD case-study
/// layout (so scheme/array parameters do not apply), runs the plain
/// Monte-Carlo tier only (no estimator/defect-model sub-parameters), and
/// rides the scalar arbitrary-sampler path (no `--block-trials`).
fn check_campaign_subparams(opts: &Options) -> Result<(), String> {
    if !matches!(opts.scheme()?, SchemeChoice::HexDtmb { .. }) {
        return Err(
            "campaigns replay hex scenario scripts on the IVD case-study chip; \
             --scheme square-dtmb/spare-rows does not apply"
                .into(),
        );
    }
    for key in spec::SCHEME_SUBPARAMS {
        if opts.has_param(key) {
            return Err(format!(
                "--{} does not apply to campaign: the campaign workload fixes the \
                 chip to the DTMB(2,6) IVD case-study layout",
                dash(key)
            ));
        }
    }
    if opts.flag("estimator") || opts.flag("defect-model") {
        return Err("--estimator/--defect-model are supported by yield and sweep only".into());
    }
    for key in spec::ESTIMATOR_SUBPARAMS
        .iter()
        .chain(&spec::CLUSTER_SUBPARAMS)
    {
        if opts.has_param(key) {
            return Err(format!(
                "--{} is an estimator/defect-model sub-parameter; \
                 it is supported by yield and sweep only",
                dash(key)
            ));
        }
    }
    reject_block_trials(
        opts,
        "campaign steps ride the scalar arbitrary-sampler path \
         (targeted damage merges into every trial's defect draw)",
    )
}

fn cmd_campaign(opts: &Options) -> Result<(), String> {
    check_campaign_subparams(opts)?;
    if opts.flag("list") {
        out!("{}", campaign_cmd::list());
        return Ok(());
    }
    let scenario = match (opts.map.get("name"), opts.map.get("script")) {
        (Some(_), Some(_)) => {
            return Err("--name and --script are mutually exclusive".into());
        }
        (None, None) => {
            return Err("campaign needs --name <campaign> or --script <file> \
                 (dmfb campaign --list shows the built-ins)"
                .into());
        }
        (Some(name), None) => named_campaign(name).ok_or_else(|| {
            let names: Vec<&str> = NAMED_CAMPAIGNS.iter().map(|c| c.name).collect();
            format!(
                "unknown campaign '{name}' (available: {})",
                names.join(", ")
            )
        })?,
        (None, Some(path)) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read script '{path}': {e}"))?;
            Scenario::parse(&text).map_err(|e| e.to_string())?
        }
    };
    let p: f64 = opts.get("p", 0.99)?;
    if !(0.0..=1.0).contains(&p) {
        return Err("need 0 <= p <= 1".into());
    }
    let trials: u32 = opts.get("trials", 2_000)?;
    if trials == 0 {
        return Err("--trials must be at least 1".into());
    }
    let config = campaign_cmd::CampaignConfig {
        panel: opts.assay()?.unwrap_or(AssayPanel::StandardIvd),
        p,
        trials,
        seed: opts.get("seed", 2005)?,
        threads: opts.get("threads", 0)?,
        rehearse: opts.flag("rehearse"),
    };
    out!("{}", campaign_cmd::run(&scenario, &config));
    Ok(())
}

fn cmd_serve(opts: &Options) -> Result<(), String> {
    reject_per_request_params(
        opts,
        "serve",
        "it is a per-request parameter; send it as a field in the POST /v1/yield body",
    )?;
    for key in spec::SCHEME_SUBPARAMS.iter().chain(&["trials", "seed"]) {
        if opts.has_param(key) {
            return Err(format!(
                "--{} is not supported by serve: it is a per-request parameter; \
                 send it as a field in the POST /v1/yield body",
                dash(key)
            ));
        }
    }
    let config = dmfb_serve::ServerConfig {
        addr: opts.get("addr", "127.0.0.1:8750".to_string())?,
        workers: opts.get("workers", 4)?,
        threads: opts.get("threads", 1)?,
        cache_capacity: opts.get("cache-capacity", 32)?,
    };
    if config.workers == 0 {
        return Err("--workers must be at least 1".into());
    }
    let server = dmfb_serve::Server::bind(config.clone())
        .map_err(|e| format!("cannot bind '{}': {e}", config.addr))?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    outln!(
        "dmfb serve: listening on http://{addr} \
         ({} workers, {} engine thread(s), cache capacity {})",
        config.workers,
        config.threads,
        config.cache_capacity
    );
    outln!("endpoints: POST /v1/yield | GET /v1/health | POST /v1/shutdown");
    server.run().map_err(|e| format!("server error: {e}"))
}

fn cmd_soak(opts: &Options) -> Result<(), String> {
    reject_per_request_params(
        opts,
        "soak",
        "the soak drives a fixed cold/warm/mixed workload mix so latency baselines \
         stay comparable (--trials and --primaries size the dtmb26 workload)",
    )?;
    for key in spec::SCHEME_SUBPARAMS {
        if key != "primaries" && opts.has_param(key) {
            return Err(format!(
                "--{} is not supported by soak: the workload mix is fixed \
                 (--primaries sizes the dtmb26 workload)",
                dash(key)
            ));
        }
    }
    let quick = opts.flag("quick");
    let config = dmfb_serve::SoakConfig {
        addr: opts.get("addr", "127.0.0.1:8750".to_string())?,
        requests: opts.get("requests", if quick { 48 } else { 160 })?,
        concurrency: opts.get("concurrency", 4)?,
        trials: opts.get("trials", 16)?,
        primaries: opts.get("primaries", 2400)?,
        require_speedup: opts.get("require-speedup", 0.0)?,
        probe_errors: true,
        shutdown: opts.flag("shutdown"),
        label: opts.get("label", "serve".to_string())?,
        quick,
    };
    if config.requests == 0 || config.concurrency == 0 || config.trials == 0 {
        return Err("--requests, --concurrency and --trials must be at least 1".into());
    }
    if !(config.require_speedup >= 0.0 && config.require_speedup.is_finite()) {
        return Err("--require-speedup must be non-negative and finite".into());
    }
    let baseline = opts.map.get("compare").map(String::as_str);
    let (soak, rendered, failures) = serve_cmd::run_with_gate(&config, baseline)?;
    out!("{}", soak.rendered);
    if opts.flag("json") {
        let out_dir: String = opts.get("out", ".".to_string())?;
        let path = soak
            .report
            .write_to_dir(std::path::Path::new(&out_dir))
            .map_err(|e| format!("cannot write soak report: {e}"))?;
        outln!("wrote {}", path.display());
    }
    if let Some(rendered) = rendered {
        out!("{rendered}");
    }
    if !failures.is_empty() {
        return Err(format!(
            "soak gate failed: {} issue(s):\n  {}",
            failures.len(),
            failures.join("\n  ")
        ));
    }
    outln!(
        "soak clean: {} requests/phase over {} connections against {}",
        config.requests,
        config.concurrency,
        config.addr
    );
    Ok(())
}

fn cmd_faults(opts: &Options) -> Result<(), String> {
    require_hex_scheme(opts)?;
    let trials: u32 = opts.get("trials", 10_000)?;
    let seed: u64 = opts.get("seed", 1)?;
    let max_m: usize = opts.get("max-m", 40)?;
    let chip = if opts.flag("casestudy") {
        let description = ivd_dtmb26_chip();
        let policy = if opts.flag("all-primaries") {
            ReconfigPolicy::AllPrimaries
        } else {
            used_cells_policy(&description)
        };
        Biochip::from_array(description.array).with_policy(policy)
    } else {
        opts.biochip()?
    };
    outln!("m,yield,ci_lo,ci_hi");
    for m in 0..=max_m {
        let est = chip.exact_fault_yield(m, trials, seed.wrapping_add(m as u64));
        let (lo, hi) = est.wilson95();
        outln!("{m},{:.4},{lo:.4},{hi:.4}", est.point());
    }
    Ok(())
}

fn cmd_render(opts: &Options) -> Result<(), String> {
    require_hex_scheme(opts)?;
    let chip = opts.biochip()?;
    let p: f64 = opts.get("inject", 1.0)?;
    let seed: u64 = opts.get("seed", 1)?;
    let array = chip.array();
    let mut rng = StdRng::seed_from_u64(seed);
    let defects = Bernoulli::from_survival(p).inject(array.region(), &mut rng);
    let plan = attempt_reconfiguration(array, &defects, chip.policy());
    let art = render::hex(array.region(), |c| {
        glyph(array, &defects, plan.as_ref().ok(), c)
    });
    outln!("legend: . primary  o spare  X faulty primary  x faulty spare  R replacing spare");
    out!("{art}");
    match &plan {
        Ok(plan) if defects.fault_count() > 0 => {
            outln!("reconfiguration OK: {} replacement(s)", plan.len());
        }
        Ok(_) => outln!("fault-free"),
        Err(failure) => outln!("{failure}"),
    }
    Ok(())
}

fn glyph(
    array: &DefectTolerantArray,
    defects: &DefectMap,
    plan: Option<&ReconfigPlan>,
    cell: HexCoord,
) -> char {
    let faulty = defects.is_faulty(cell);
    let spare = array.is_spare(cell);
    let replacing = plan.is_some_and(|p| p.spares_used().any(|s| s == cell));
    match (spare, faulty, replacing) {
        (true, true, _) => 'x',
        (true, false, true) => 'R',
        (true, false, false) => 'o',
        (false, true, _) => 'X',
        (false, false, _) => '.',
    }
}

fn cmd_assay(opts: &Options) -> Result<(), String> {
    require_hex_scheme(opts)?;
    let m: usize = opts.get("faults", 0)?;
    let seed: u64 = opts.get("seed", 42)?;
    let chip = ivd_dtmb26_chip();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut defects = ExactCount::new(m).inject(chip.array.region(), &mut rng);
    defects.close_shorts();
    let policy = used_cells_policy(&chip);
    let plan = attempt_reconfiguration(&chip.array, &defects, &policy)
        .map_err(|e| format!("chip cannot be reconfigured: {e}"))?;
    outln!(
        "chip: {} primaries + {} spares, {} assay cells, {} injected fault(s), {} replacement(s)",
        chip.array.primary_count(),
        chip.array.spare_count(),
        chip.assay_cells.len(),
        defects.fault_count(),
        plan.len()
    );
    let exec = Executor::new(chip, defects, Some(plan));
    let outcomes = exec
        .run(&MultiplexedIvd::standard_panel(), &mut rng)
        .map_err(|e| e.to_string())?;
    outln!("assay         sample    true mM  measured mM  error%  moves  done@s");
    for o in &outcomes {
        outln!(
            "{:<12}  {:<8}  {:>7.3}  {:>11.3}  {:>5.1}%  {:>5}  {:>6.1}",
            o.request.analyte.to_string(),
            o.request.sample_port,
            o.true_concentration_mm,
            o.measured_concentration_mm,
            100.0 * o.relative_error(),
            o.transport_moves,
            o.completion_time_s
        );
    }
    let ey = effective::effective_yield_of(exec_array(&exec), 1.0);
    outln!("(array effective-yield scale factor n/N = {ey:.4})");
    Ok(())
}

/// Accessor shim: the executor owns the chip; reach its array for stats.
fn exec_array(_exec: &Executor) -> &DefectTolerantArray {
    // The Executor API intentionally hides its internals; recompute the
    // case-study array instead (cheap, deterministic).
    use std::sync::OnceLock;
    static ARRAY: OnceLock<DefectTolerantArray> = OnceLock::new();
    ARRAY.get_or_init(|| ivd_dtmb26_chip().array)
}

fn cmd_profile(opts: &Options) -> Result<(), String> {
    require_hex_scheme(opts)?;
    let trials: u32 = opts.get("trials", 2_000)?;
    let seed: u64 = opts.get("seed", 1)?;
    let (array, policy, label) = if opts.flag("casestudy") {
        let chip = ivd_dtmb26_chip();
        let policy = used_cells_policy(&chip);
        (chip.array, policy, "IVD case-study chip".to_string())
    } else {
        let chip = opts.biochip()?;
        let label = chip
            .array()
            .kind()
            .map_or("no-redundancy".to_string(), |k| k.to_string());
        (chip.array().clone(), chip.policy().clone(), label)
    };
    let profile = tolerance_profile(&array, &policy, trials, seed);
    outln!(
        "{label}: {} primaries + {} spares, {trials} trials",
        array.primary_count(),
        array.spare_count()
    );
    outln!(
        "tolerated faults: mean {:.1}, sd {:.1}, min {:.0}, max {:.0}",
        profile.stats.mean(),
        profile.stats.stddev(),
        profile.stats.min(),
        profile.stats.max()
    );
    for level in [0.99, 0.95, 0.90, 0.50] {
        outln!(
            "  P(tolerate >= m) >= {level:.2} up to m = {}",
            profile.quantile_at_least(level)
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(args: &[&str]) -> Options {
        Options::parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn parses_key_values_and_flags() {
        let o = opts(&["--p", "0.95", "--effective", "--trials", "500"]);
        assert_eq!(o.get::<f64>("p", 0.0).unwrap(), 0.95);
        assert_eq!(o.get::<u32>("trials", 0).unwrap(), 500);
        assert!(o.flag("effective"));
        assert!(!o.flag("casestudy"));
        // Defaults when absent.
        assert_eq!(o.get::<u64>("seed", 9).unwrap(), 9);
    }

    #[test]
    fn campaign_rejects_foreign_parameters() {
        for (args, needle) in [
            (&["--scheme", "square-dtmb"][..], "IVD case-study chip"),
            (&["--design", "dtmb44"][..], "fixes the chip"),
            (&["--primaries", "100"][..], "fixes the chip"),
            (&["--estimator", "stratified"][..], "yield and sweep only"),
            (&["--tolerance", "1e-6"][..], "sub-parameter"),
            (&["--cluster-mean", "2"][..], "sub-parameter"),
            (&["--block-trials", "64"][..], "scalar arbitrary-sampler"),
        ] {
            let err = check_campaign_subparams(&opts(args)).unwrap_err();
            assert!(err.contains(needle), "{args:?}: {err}");
        }
        assert!(check_campaign_subparams(&opts(&["--p", "0.99", "--rehearse"])).is_ok());
    }

    #[test]
    fn rejects_malformed_arguments() {
        let args: Vec<String> = vec!["p".into()];
        assert!(Options::parse(&args).is_err());
        let args: Vec<String> = vec!["--trials".into()];
        assert!(Options::parse(&args).is_err());
        let o = opts(&["--trials", "abc"]);
        assert!(o.get::<u32>("trials", 0).is_err());
    }

    #[test]
    fn design_names_map_to_kinds() {
        assert_eq!(opts(&[]).design().unwrap(), None);
        assert_eq!(
            opts(&["--design", "dtmb16"]).design().unwrap(),
            Some(DtmbKind::Dtmb16)
        );
        assert_eq!(
            opts(&["--design", "dtmb26b"]).design().unwrap(),
            Some(DtmbKind::Dtmb26B)
        );
        assert_eq!(opts(&["--design", "none"]).design().unwrap(), None);
        assert!(opts(&["--design", "bogus"]).design().is_err());
    }

    #[test]
    fn scheme_parsing() {
        assert!(matches!(
            opts(&[]).scheme().unwrap(),
            SchemeChoice::HexDtmb { .. }
        ));
        assert!(matches!(
            opts(&["--scheme", "hex-dtmb"]).scheme().unwrap(),
            SchemeChoice::HexDtmb { .. }
        ));
        match opts(&[
            "--scheme",
            "square-dtmb",
            "--pattern",
            "stripes",
            "--width",
            "9",
        ])
        .scheme()
        .unwrap()
        {
            SchemeChoice::SquareDtmb {
                pattern,
                width,
                height,
            } => {
                assert_eq!(pattern, SquarePattern::Stripes);
                assert_eq!((width, height), (9, 16));
            }
            _ => panic!("expected square-dtmb"),
        }
        match opts(&["--scheme", "spare-rows", "--spare-rows", "2"])
            .scheme()
            .unwrap()
        {
            SchemeChoice::SpareRows {
                width,
                module_rows,
                spare_rows,
            } => assert_eq!((width, module_rows, spare_rows), (8, 6, 2)),
            _ => panic!("expected spare-rows"),
        }
        assert!(opts(&["--scheme", "nope"]).scheme().is_err());
        assert!(opts(&["--scheme", "square-dtmb", "--pattern", "nope"])
            .scheme()
            .is_err());
    }

    #[test]
    fn foreign_subparams_rejected() {
        // --pattern without --scheme square-dtmb would silently run hex.
        let o = opts(&["--pattern", "checkerboard"]);
        assert!(reject_foreign_subparams(&o, &o.scheme().unwrap()).is_err());
        let o = opts(&["--scheme", "square-dtmb", "--design", "dtmb44"]);
        assert!(reject_foreign_subparams(&o, &o.scheme().unwrap()).is_err());
        let o = opts(&["--scheme", "spare-rows", "--height", "4"]);
        assert!(reject_foreign_subparams(&o, &o.scheme().unwrap()).is_err());
        // Matching sub-parameters pass.
        let o = opts(&[
            "--scheme",
            "square-dtmb",
            "--pattern",
            "stripes",
            "--width",
            "9",
        ]);
        assert!(reject_foreign_subparams(&o, &o.scheme().unwrap()).is_ok());
        let o = opts(&["--design", "dtmb16", "--primaries", "40"]);
        assert!(reject_foreign_subparams(&o, &o.scheme().unwrap()).is_ok());
        let o = opts(&[
            "--scheme",
            "spare-rows",
            "--width",
            "6",
            "--spare-rows",
            "2",
        ]);
        assert!(reject_foreign_subparams(&o, &o.scheme().unwrap()).is_ok());
    }

    #[test]
    fn block_trials_parsing() {
        // Absent = auto; explicit values parse; 0 (scalar) is a valid
        // engine choice at the Options layer (bench rejects it itself).
        assert_eq!(opts(&[]).block_trials().unwrap(), None);
        assert_eq!(
            opts(&["--block-trials", "0"]).block_trials().unwrap(),
            Some(0)
        );
        assert_eq!(
            opts(&["--block-trials", "512"]).block_trials().unwrap(),
            Some(512)
        );
        assert_eq!(
            opts(&["--block-trials", &spec::MAX_BLOCK_TRIALS.to_string()])
                .block_trials()
                .unwrap(),
            Some(spec::MAX_BLOCK_TRIALS)
        );
        assert!(opts(&["--block-trials", "65537"]).block_trials().is_err());
        assert!(opts(&["--block-trials", "-1"]).block_trials().is_err());
        assert!(opts(&["--block-trials", "many"]).block_trials().is_err());
    }

    #[test]
    fn block_trials_rejected_on_scalar_only_paths() {
        let o = opts(&["--block-trials", "64"]);
        assert!(reject_block_trials(&o, "per-trial path").is_err());
        assert!(reject_block_trials(&opts(&[]), "per-trial path").is_ok());
        // Commands without an engine axis refuse the flag outright.
        assert!(require_hex_scheme(&o)
            .unwrap_err()
            .contains("yield, sweep and bench"));
    }

    #[test]
    fn biochip_construction_respects_options() {
        let chip = opts(&["--design", "dtmb44", "--primaries", "40"])
            .biochip()
            .unwrap();
        assert_eq!(chip.array().primary_count(), 40);
        assert_eq!(chip.array().kind(), Some(DtmbKind::Dtmb44));
        let plain = opts(&["--primaries", "25"]).biochip().unwrap();
        assert_eq!(plain.array().primary_count(), 25);
        assert_eq!(plain.array().kind(), None);
    }
}
