//! Golden-file, determinism and error-path tests for `dmfb search`.
//!
//! The committed files under `tests/golden/` pin the exact bytes of the
//! frontier outputs (table and CSV). Search is a determinism contract —
//! a pure function of (space, target, trials, seed) — so any byte drift
//! here is a real behaviour change, not noise.

use std::process::{Command, Output};

fn dmfb(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dmfb"))
        .args(args)
        .output()
        .expect("spawn dmfb")
}

fn golden(name: &str) -> String {
    let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// The capped smoke space every golden in this file uses.
const SMOKE_ARGS: [&str; 10] = [
    "search",
    "--target-yield",
    "0.99",
    "--max-primaries",
    "60",
    "--max-dim",
    "12",
    "--trials",
    "800",
    "--seed",
];

fn smoke_args(seed: &'static str, extra: &[&'static str]) -> Vec<&'static str> {
    let mut args: Vec<&str> = SMOKE_ARGS.to_vec();
    args.push(seed);
    args.extend_from_slice(extra);
    args
}

#[test]
fn frontier_table_matches_golden() {
    let out = dmfb(&smoke_args("7", &[]));
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        String::from_utf8(out.stdout).unwrap(),
        golden("search_frontier.txt")
    );
}

#[test]
fn frontier_csv_matches_golden_at_any_thread_count() {
    for threads in ["1", "0"] {
        let out = dmfb(&smoke_args("7", &["--csv", "--threads", threads]));
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert_eq!(
            String::from_utf8(out.stdout).unwrap(),
            golden("search_frontier.csv"),
            "--threads {threads} drifted from the golden frontier"
        );
    }
}

#[test]
fn json_report_logs_the_pruning_cost_win() {
    let out = dmfb(&smoke_args("7", &["--json"]));
    assert!(out.status.success());
    let body = String::from_utf8(out.stdout).unwrap();
    for key in [
        "\"schema\": \"dmfb-search/1\"",
        "\"candidates\": 35",
        "\"pruned\": ",
        "\"evaluated\": ",
        "\"trials_used\": ",
        "\"naive_trials\": 1400000",
        "\"frontier\": [",
        "\"best\": ",
    ] {
        assert!(body.contains(key), "JSON report missing {key}: {body}");
    }
    // The acceptance gate: pruning measurably beats naive scoring.
    let field = |name: &str| -> u64 {
        let start = body.find(&format!("\"{name}\": ")).unwrap() + name.len() + 4;
        body[start..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect::<String>()
            .parse()
            .unwrap()
    };
    assert!(field("pruned") > 0, "no candidates pruned: {body}");
    assert!(
        field("trials_used") < field("naive_trials") / 10,
        "pruning did not reduce cost: {body}"
    );
}

#[test]
fn assay_search_scores_the_operational_chip_pair() {
    let out = dmfb(&[
        "search",
        "--target-yield",
        "0.5",
        "--assay",
        "ivd-panel",
        "--trials",
        "200",
        "--json",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let body = String::from_utf8(out.stdout).unwrap();
    assert!(body.contains("\"tier\": \"operational\""));
    assert!(body.contains("\"assay\": \"ivd-panel\""));
    assert!(body.contains("assay:ivd-panel:chip=fabricated"));
    assert!(body.contains("assay:ivd-panel:chip=dtmb26"));
}

#[test]
fn search_rejects_foreign_and_incoherent_parameters() {
    let cases: &[(&[&str], &str)] = &[
        (&["search"], "--target-yield <Y> is required"),
        (
            &["search", "--target-yield", "0.99", "--scheme", "hex-dtmb"],
            "--scheme does not apply to search",
        ),
        (
            &["search", "--target-yield", "0.99", "--design", "dtmb26"],
            "--design does not apply to search",
        ),
        (
            &["search", "--target-yield", "0.99", "--spare-rows", "2"],
            "--spare-rows does not apply to search",
        ),
        (
            &["search", "--target-yield", "0.99", "--estimator", "naive"],
            "--estimator does not apply to search",
        ),
        (
            &[
                "search",
                "--target-yield",
                "0.99",
                "--defect-model",
                "clustered",
            ],
            "--defect-model does not apply to search",
        ),
        (
            &["search", "--target-yield", "0.99", "--block-trials", "64"],
            "--block-trials does not apply",
        ),
        (
            &["search", "--target-yield", "0.99", "--tier", "operational"],
            "--tier operational requires --assay",
        ),
        (
            &[
                "search",
                "--target-yield",
                "0.99",
                "--tier",
                "raw",
                "--assay",
                "ivd-panel",
            ],
            "--assay scores the operational tier",
        ),
        (
            &["search", "--target-yield", "1.5"],
            "need 0 < --target-yield <= 1",
        ),
    ];
    for (args, needle) in cases {
        let out = dmfb(args);
        assert!(!out.status.success(), "{args:?} unexpectedly succeeded");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(needle),
            "{args:?}: expected '{needle}' in: {stderr}"
        );
    }
}
